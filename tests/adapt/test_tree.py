"""Refinement forest weights (paper §4.1: Wcomp = leaves, Wremap = nodes)."""

import numpy as np
import pytest

from repro.adapt import AdaptiveMesh, RefinementForest, propagate_markings
from repro.mesh import box_mesh, single_tet, two_tets


def test_initial_weights():
    f = RefinementForest(5)
    assert f.wcomp().tolist() == [1] * 5
    assert f.wremap().tolist() == [1] * 5
    assert f.depth == 0


def test_single_refinement_weights():
    am = AdaptiveMesh(single_tet())
    marking = am.mark(edge_mask=np.ones(6, dtype=bool))
    am.refine(marking)
    # 1:8 -> 8 leaves, 9 nodes (root + 8 children)
    assert am.wcomp().tolist() == [8]
    assert am.wremap().tolist() == [9]
    assert am.forest.depth == 1


def test_two_level_weights():
    am = AdaptiveMesh(single_tet())
    am.refine(am.mark(edge_mask=np.ones(am.mesh.nedges, dtype=bool)))
    am.refine(am.mark(edge_mask=np.ones(am.mesh.nedges, dtype=bool)))
    # 8 children each split 1:8 -> 64 leaves; nodes 1 + 8 + 64 = 73
    assert am.wcomp().tolist() == [64]
    assert am.wremap().tolist() == [73]


def test_partial_refinement_weights():
    m = two_tets()
    am = AdaptiveMesh(m)
    # refine only edges of element 0 that are NOT shared with element 1:
    # element 0 is (0,1,2,3); shared face is (1,2,3); edge (0,1) is private
    mask = np.zeros(m.nedges, dtype=bool)
    e01 = np.flatnonzero((m.edges[:, 0] == 0) & (m.edges[:, 1] == 1))[0]
    mask[e01] = True
    am.refine(am.mark(edge_mask=mask))
    assert am.wcomp().tolist() == [2, 1]
    assert am.wremap().tolist() == [3, 1]


def test_root_of_elem_tracks_descendants():
    m = two_tets()
    am = AdaptiveMesh(m)
    am.refine(am.mark(edge_mask=np.ones(m.nedges, dtype=bool)))
    roots = am.forest.root_of_elem
    assert np.bincount(roots, minlength=2).tolist() == [8, 8]
    part = am.elem_partition(np.array([0, 1]))
    assert np.bincount(part).tolist() == [8, 8]


def test_predicted_weights_match_actual_after_refine():
    m = box_mesh(2, 2, 2)
    am = AdaptiveMesh(m)
    rng = np.random.default_rng(5)
    marking = am.mark(edge_mask=rng.random(m.nedges) < 0.2)
    pred_wc, pred_wr = am.predicted_weights(marking)
    am.refine(marking)
    assert np.array_equal(pred_wc, am.wcomp())
    assert np.array_equal(pred_wr, am.wremap())


def test_pop_level_restores_weights():
    am = AdaptiveMesh(single_tet())
    am.refine(am.mark(edge_mask=np.ones(6, dtype=bool)))
    am.forest.pop_level()
    assert am.forest.wcomp().tolist() == [1]
    assert am.forest.wremap().tolist() == [1]
    with pytest.raises(IndexError):
        am.forest.pop_level()


def test_record_shape_check():
    f = RefinementForest(3)
    with pytest.raises(ValueError):
        f.record_refinement(np.array([0, 1]), np.array([1, 1, 1, 1]))
