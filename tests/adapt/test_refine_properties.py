"""Property-based tests: refinement invariants under arbitrary markings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt import AdaptiveMesh, propagate_markings, subdivide
from repro.mesh import box_mesh


def _random_mask(nedges, seed, frac):
    rng = np.random.default_rng(seed)
    return rng.random(nedges) < frac


@given(seed=st.integers(0, 2**31), frac=st.floats(0.0, 1.0))
@settings(max_examples=30, deadline=None)
def test_refinement_invariants(seed, frac):
    m = box_mesh(2, 2, 2)
    marking = propagate_markings(m, _random_mask(m.nedges, seed, frac))
    res = subdivide(m, marking)
    # volume conserved
    assert res.mesh.total_volume() == pytest.approx(m.total_volume())
    # structural invariants (positive volumes, manifold faces, etc.)
    res.mesh.check()
    # element count = sum of children
    assert res.mesh.ne == res.child_count.sum()
    # growth factor within the paper's bound 1 <= G <= 8
    assert 1.0 <= res.growth_factor <= 8.0
    # conformity: no interior face orphaned into the boundary
    centroids = res.mesh.coords[res.mesh.bnd_faces].mean(axis=1)
    on_surface = np.zeros(len(centroids), dtype=bool)
    for ax in range(3):
        on_surface |= np.isclose(centroids[:, ax], 0.0)
        on_surface |= np.isclose(centroids[:, ax], 1.0)
    assert on_surface.all()


@given(seed=st.integers(0, 2**31), frac=st.floats(0.05, 0.9))
@settings(max_examples=20, deadline=None)
def test_marking_fixpoint_closed(seed, frac):
    """Re-running propagation on its own output changes nothing."""
    m = box_mesh(2, 2, 2)
    r1 = propagate_markings(m, _random_mask(m.nedges, seed, frac))
    r2 = propagate_markings(m, r1.edge_marked)
    assert np.array_equal(r1.edge_marked, r2.edge_marked)
    assert np.array_equal(r1.patterns, r2.patterns)
    assert r2.iterations == 1


@given(
    seed=st.integers(0, 2**31),
    frac=st.floats(0.0, 0.6),
    coarse_frac=st.floats(0.0, 1.0),
)
@settings(max_examples=20, deadline=None)
def test_coarsen_never_breaks_mesh(seed, frac, coarse_frac):
    m = box_mesh(2, 2, 2)
    am = AdaptiveMesh(m)
    am.refine(am.mark(edge_mask=_random_mask(m.nedges, seed, frac)))
    rng = np.random.default_rng(seed + 1)
    am.coarsen(rng.random(am.mesh.nedges) < coarse_frac)
    am.mesh.check()
    assert am.mesh.total_volume() == pytest.approx(1.0)
    assert am.mesh.ne >= m.ne  # never below the initial mesh
    assert am.wcomp().sum() == am.mesh.ne


@given(seed=st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_two_level_refinement_valid(seed):
    m = box_mesh(1, 1, 2, bounds=((0, 1), (0, 1), (0, 2)))
    am = AdaptiveMesh(m)
    rng = np.random.default_rng(seed)
    am.refine(am.mark(edge_mask=rng.random(am.mesh.nedges) < 0.4))
    am.refine(am.mark(edge_mask=rng.random(am.mesh.nedges) < 0.4))
    am.mesh.check()
    assert am.mesh.total_volume() == pytest.approx(2.0)
    assert am.wcomp().sum() == am.mesh.ne
    # Wremap >= Wcomp always (nodes include leaves)
    assert np.all(am.wremap() >= am.wcomp())
