"""Edge targeting and marking propagation."""

import numpy as np
import pytest

from repro.adapt import (
    element_patterns,
    is_valid,
    propagate_markings,
    shared_edge_mask,
    target_by_fraction,
    target_by_threshold,
)
from repro.mesh import box_mesh, single_tet, two_tets
from repro.parallel import CostLedger, MachineModel


def test_target_by_fraction_counts():
    err = np.linspace(0, 1, 100)
    for frac in (0.0, 0.05, 0.33, 0.60, 1.0):
        mask = target_by_fraction(err, frac)
        assert mask.sum() == round(frac * 100)
    # highest-error edges selected
    mask = target_by_fraction(err, 0.1)
    assert np.all(np.flatnonzero(mask) >= 90)


def test_target_by_fraction_validates():
    with pytest.raises(ValueError):
        target_by_fraction(np.ones(5), 1.5)


def test_target_by_fraction_deterministic_ties():
    err = np.ones(10)
    m1 = target_by_fraction(err, 0.3)
    m2 = target_by_fraction(err, 0.3)
    assert np.array_equal(m1, m2)
    assert m1.sum() == 3


def test_target_by_threshold():
    err = np.array([0.1, 0.5, 0.9])
    ref, coa = target_by_threshold(err, hi=0.8, lo=0.2)
    assert ref.tolist() == [False, False, True]
    assert coa.tolist() == [True, False, False]
    with pytest.raises(ValueError):
        target_by_threshold(err, hi=0.1, lo=0.5)


def test_propagation_fixpoint_is_valid():
    m = box_mesh(2, 2, 2)
    rng = np.random.default_rng(0)
    mask = rng.random(m.nedges) < 0.2
    res = propagate_markings(m, mask)
    assert is_valid(res.patterns).all()
    # marked set only grows
    assert np.all(res.edge_marked[mask])
    # patterns consistent with the final mask
    assert np.array_equal(element_patterns(m, res.edge_marked), res.patterns)


def test_propagation_empty_mask_is_identity():
    m = single_tet()
    res = propagate_markings(m, np.zeros(m.nedges, dtype=bool))
    assert res.edge_marked.sum() == 0
    assert np.all(res.patterns == 0)
    assert res.iterations == 1


def test_propagation_two_edges_upgrades_to_face():
    m = single_tet()
    # edges 0 (0-1) and 1 (0-2) lie in face (0,1,2); edge (1,2) must join
    mask = np.zeros(m.nedges, dtype=bool)
    mask[[0, 1]] = True
    res = propagate_markings(m, mask)
    assert res.edge_marked.sum() == 3
    assert bin(res.patterns[0]).count("1") == 3


def test_propagation_crosses_elements():
    """Marking in one element can force marks in its neighbour."""
    m = two_tets()
    # mark two edges of element 0 that lie on the shared face (1,2,3):
    # shared face edges are (1,2), (1,3), (2,3)
    def eid(a, b):
        key = np.flatnonzero((m.edges[:, 0] == min(a, b)) & (m.edges[:, 1] == max(a, b)))
        assert key.size == 1
        return key[0]

    mask = np.zeros(m.nedges, dtype=bool)
    mask[eid(1, 2)] = True
    mask[eid(1, 3)] = True
    res = propagate_markings(m, mask)
    # face (1,2,3) completes -> edge (2,3) marked; both elements become 1:4
    assert res.edge_marked[eid(2, 3)]
    assert res.iterations >= 2
    assert is_valid(res.patterns).all()


def test_full_marking_gives_1to8_everywhere():
    m = box_mesh(2, 2, 2)
    res = propagate_markings(m, np.ones(m.nedges, dtype=bool))
    assert np.all(res.patterns == 0b111111)


def test_shared_edge_mask():
    m = two_tets()
    part = np.array([0, 1])
    shared = shared_edge_mask(m, part)
    # exactly the 3 edges of the shared face (1,2,3)
    assert shared.sum() == 3
    sv = m.edges[shared]
    assert set(map(tuple, sv.tolist())) == {(1, 2), (1, 3), (2, 3)}
    # single partition: nothing shared
    assert shared_edge_mask(m, np.zeros(2, dtype=np.int64)).sum() == 0


def test_parallel_marking_matches_serial_and_charges_time():
    m = box_mesh(3, 3, 3)
    rng = np.random.default_rng(1)
    mask = rng.random(m.nedges) < 0.15
    serial = propagate_markings(m, mask)
    part = np.arange(m.ne) % 4
    ledger = CostLedger(4, MachineModel(t_setup=1e-5, t_word=1e-6, t_work=1e-6))
    par = propagate_markings(m, mask, part=part, ledger=ledger)
    assert np.array_equal(par.edge_marked, serial.edge_marked)
    assert np.array_equal(par.patterns, serial.patterns)
    assert ledger.elapsed > 0
    assert ledger.total_messages > 0  # shared edges were exchanged


def test_mask_shape_check():
    m = single_tet()
    with pytest.raises(ValueError, match="shape"):
        propagate_markings(m, np.zeros(3, dtype=bool))
