"""Geometric marking strategies."""

import numpy as np
import pytest

from repro.adapt import AdaptiveMesh
from repro.adapt.strategies import (
    mark_cylinder,
    mark_halfspace,
    mark_shell,
    mark_sphere,
)
from repro.mesh import box_mesh, edge_midpoints


@pytest.fixture
def mesh():
    return box_mesh(4, 4, 4)


def test_sphere_marks_inside_only(mesh):
    mask = mark_sphere(mesh, (0.5, 0.5, 0.5), 0.3)
    mid = edge_midpoints(mesh.coords, mesh.edges)
    d = np.linalg.norm(mid - 0.5, axis=1)
    assert np.array_equal(mask, d <= 0.3)
    assert 0 < mask.sum() < mesh.nedges


def test_shell_excludes_core(mesh):
    mask = mark_shell(mesh, (0.5, 0.5, 0.5), radius=0.35, thickness=0.1)
    mid = edge_midpoints(mesh.coords, mesh.edges)
    d = np.linalg.norm(mid - 0.5, axis=1)
    assert not mask[d < 0.25].any()
    assert not mask[d > 0.45].any()


def test_cylinder_contains_axis_edges(mesh):
    mask = mark_cylinder(mesh, (0.0, 0.5, 0.5), (1.0, 0.5, 0.5), 0.2)
    mid = edge_midpoints(mesh.coords, mesh.edges)
    near_axis = np.linalg.norm(mid[:, 1:] - 0.5, axis=1) < 0.1
    assert mask[near_axis].all()


def test_halfspace_splits(mesh):
    mask = mark_halfspace(mesh, (0.5, 0, 0), (1, 0, 0))
    mid = edge_midpoints(mesh.coords, mesh.edges)
    assert np.array_equal(mask, mid[:, 0] >= 0.5)


def test_validation(mesh):
    with pytest.raises(ValueError):
        mark_sphere(mesh, (0, 0, 0), -1.0)
    with pytest.raises(ValueError):
        mark_shell(mesh, (0, 0, 0), 0.3, 0.0)
    with pytest.raises(ValueError):
        mark_cylinder(mesh, (0, 0, 0), (0, 0, 0), 0.1)
    with pytest.raises(ValueError):
        mark_halfspace(mesh, (0, 0, 0), (0, 0, 0))


def test_geometric_refinement_end_to_end(mesh):
    am = AdaptiveMesh(mesh)
    marking = am.mark(edge_mask=mark_sphere(mesh, (0.25, 0.25, 0.25), 0.3))
    res = am.refine(marking)
    am.mesh.check()
    # refinement concentrated in the marked corner
    cent = am.mesh.coords[am.mesh.elems].mean(axis=1)
    near = np.linalg.norm(cent - 0.25, axis=1) < 0.3
    far = np.linalg.norm(cent - np.array([0.75, 0.75, 0.75]), axis=1) < 0.3
    assert near.sum() > far.sum()
    assert 1.0 < res.growth_factor < 8.0
