"""The pattern/upgrade tables encode exactly the paper's three subdivision
types and the smallest-valid-superset upgrade rule."""

import numpy as np
import pytest

from repro.adapt import (
    NUM_CHILDREN,
    PAT_1TO2,
    PAT_1TO4,
    PAT_1TO8,
    PAT_NONE,
    UPGRADE,
    classify,
    is_valid,
    pattern_bits,
    upgrade,
)
from repro.mesh.topology import FACE_EDGE_MASKS, FACE_EDGES


def popcount(x):
    return bin(x).count("1")


def test_valid_patterns_enumerated():
    valid = [p for p in range(64) if is_valid(np.array([p]))[0]]
    # empty + 6 single-edge + 4 face + full
    assert len(valid) == 12
    assert 0 in valid and 63 in valid
    assert sum(1 for p in valid if popcount(p) == 1) == 6
    assert sorted(p for p in valid if popcount(p) == 3) == sorted(
        int(m) for m in FACE_EDGE_MASKS
    )


def test_upgrade_is_superset_and_idempotent():
    for p in range(64):
        up = int(UPGRADE[p])
        assert up & p == p, f"upgrade must keep marked edges ({p} -> {up})"
        assert int(UPGRADE[up]) == up, "upgrade must be idempotent"


def test_upgrade_is_minimal():
    """No valid pattern strictly between p and upgrade(p)."""
    valid = {p for p in range(64) if int(UPGRADE[p]) == p}
    for p in range(64):
        up = int(UPGRADE[p])
        for q in valid:
            if q & p == p and popcount(q) < popcount(up):
                pytest.fail(f"pattern {p:06b}: {q:06b} smaller than {up:06b}")


def test_upgraded_faces_never_have_two_marked_edges():
    """The conformity argument: every face of a valid pattern has 0, 1, or 3
    marked edges — never 2 — so shared faces triangulate consistently."""
    for p in range(64):
        up = int(UPGRADE[p])
        for f in range(4):
            k = sum(1 for e in FACE_EDGES[f] if up >> int(e) & 1)
            assert k in (0, 1, 3), f"pattern {p:06b} -> {up:06b}, face {f}: {k}"


def test_classification_and_child_counts():
    assert classify(np.array([0]))[0] == PAT_NONE
    assert classify(np.array([1 << 3]))[0] == PAT_1TO2
    assert classify(np.array([int(FACE_EDGE_MASKS[2])]))[0] == PAT_1TO4
    assert classify(np.array([63]))[0] == PAT_1TO8
    # invalid patterns classify as their upgrade
    assert classify(np.array([0b000011]))[0] == PAT_1TO4  # edges 01,02 -> face
    assert classify(np.array([0b100001]))[0] == PAT_1TO8  # opposite edges
    assert NUM_CHILDREN[0] == 1
    assert NUM_CHILDREN[1 << 4] == 2
    assert NUM_CHILDREN[int(FACE_EDGE_MASKS[0])] == 4
    assert NUM_CHILDREN[63] == 8


def test_two_edges_lie_in_at_most_one_face():
    """Uniqueness of the 1:4 upgrade target."""
    for e1 in range(6):
        for e2 in range(e1 + 1, 6):
            p = (1 << e1) | (1 << e2)
            faces = [f for f in range(4) if p & ~int(FACE_EDGE_MASKS[f]) == 0]
            assert len(faces) <= 1


def test_pattern_bits_roundtrip():
    pats = np.arange(64)
    bits = pattern_bits(pats)
    back = (bits * (1 << np.arange(6))).sum(axis=1)
    assert np.array_equal(back, pats)


def test_upgrade_vector_matches_scalar():
    pats = np.arange(64)
    up = upgrade(pats)
    assert np.array_equal(up, UPGRADE[pats])
