"""Subdivision correctness: child counts, volume conservation, conformity,
provenance, and solution interpolation."""

import numpy as np
import pytest

from repro.adapt import NUM_CHILDREN, propagate_markings, subdivide
from repro.mesh import box_mesh, single_tet, two_tets, tet_volumes


def refine_mask(mesh, mask):
    marking = propagate_markings(mesh, mask)
    return subdivide(mesh, marking, solution=None), marking


def mask_for_edges(mesh, local_ids):
    mask = np.zeros(mesh.nedges, dtype=bool)
    mask[local_ids] = True
    return mask


def test_1to2_single_tet():
    m = single_tet()
    res, marking = refine_mask(m, mask_for_edges(m, [0]))
    assert res.mesh.ne == 2
    assert res.mesh.nv == 5
    assert res.child_count.tolist() == [2]
    assert res.parent.tolist() == [0, 0]
    assert res.growth_factor == 2.0
    res.mesh.check()
    assert res.mesh.total_volume() == pytest.approx(m.total_volume())


def test_1to4_single_tet():
    m = single_tet()
    # edges 0,1,3 form face (0,1,2)
    res, _ = refine_mask(m, mask_for_edges(m, [0, 1, 3]))
    assert res.mesh.ne == 4
    assert res.mesh.nv == 7
    res.mesh.check()
    assert res.mesh.total_volume() == pytest.approx(m.total_volume())


def test_1to8_single_tet():
    m = single_tet()
    res, _ = refine_mask(m, np.ones(m.nedges, dtype=bool))
    assert res.mesh.ne == 8
    assert res.mesh.nv == 10
    res.mesh.check()
    assert res.mesh.total_volume() == pytest.approx(m.total_volume())
    # all children have positive volume (check() asserts it too)
    assert np.all(tet_volumes(res.mesh.coords, res.mesh.elems) > 0)


def test_all_diagonal_choices_conserve_volume():
    """Force each of the three octahedron diagonals by stretching the tet."""
    for stretch_axis in range(3):
        coords = np.array(
            [[0.0, 0, 0], [1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]]
        )
        coords[:, stretch_axis] *= 3.0
        from repro.mesh import TetMesh

        m = TetMesh.from_elems(coords, np.array([[0, 1, 2, 3]]))
        res, _ = refine_mask(m, np.ones(m.nedges, dtype=bool))
        assert res.mesh.ne == 8
        res.mesh.check()
        assert res.mesh.total_volume() == pytest.approx(m.total_volume())


def test_mixed_patterns_box():
    m = box_mesh(2, 2, 2)
    rng = np.random.default_rng(7)
    mask = rng.random(m.nedges) < 0.25
    res, marking = refine_mask(m, mask)
    res.mesh.check()
    assert res.mesh.total_volume() == pytest.approx(m.total_volume())
    assert np.array_equal(res.child_count, NUM_CHILDREN[marking.patterns])
    assert res.mesh.ne == res.child_count.sum()


def test_conformity_no_hanging_nodes():
    """Boundary faces of the refined box must lie on the box surface:
    a hanging node would orphan an interior face into the boundary list."""
    m = box_mesh(2, 2, 2)
    rng = np.random.default_rng(3)
    mask = rng.random(m.nedges) < 0.3
    res, _ = refine_mask(m, mask)
    centroids = res.mesh.coords[res.mesh.bnd_faces].mean(axis=1)
    on_surface = np.zeros(len(centroids), dtype=bool)
    for ax in range(3):
        on_surface |= np.isclose(centroids[:, ax], 0.0)
        on_surface |= np.isclose(centroids[:, ax], 1.0)
    assert on_surface.all()


def test_children_grouped_by_parent():
    m = two_tets()
    res, _ = refine_mask(m, np.ones(m.nedges, dtype=bool))
    assert np.all(np.diff(res.parent) >= 0)


def test_edge_provenance():
    m = single_tet()
    res, marking = refine_mask(m, mask_for_edges(m, [0]))
    new = res.mesh
    # bisected edge 0 = (0,1), midpoint vertex 4
    assert res.midpoint_of[0] == 4
    c0, c1 = res.edge_children[0]
    assert sorted(new.edges[c0].tolist()) == [0, 4]
    assert sorted(new.edges[c1].tolist()) == [1, 4]
    # unbisected edges survive with matching vertex pairs
    for e in range(1, 6):
        s = res.edge_survivor[e]
        assert s >= 0
        assert np.array_equal(new.edges[s], m.edges[e])
    assert res.edge_survivor[0] == -1
    assert np.all(res.edge_children[1:] == -1)


def test_solution_interpolation():
    m = single_tet()
    sol = m.coords[:, 0:1] * 2.0 + 1.0  # linear in x
    marking = propagate_markings(m, mask_for_edges(m, [0]))
    res = subdivide(m, marking, solution=sol)
    # linear field must be reproduced exactly at midpoints
    expect = res.mesh.coords[:, 0:1] * 2.0 + 1.0
    assert np.allclose(res.solution, expect)


def test_solution_shape_check():
    m = single_tet()
    marking = propagate_markings(m, mask_for_edges(m, [0]))
    with pytest.raises(ValueError, match="solution"):
        subdivide(m, marking, solution=np.zeros((3, 1)))


def test_invalid_patterns_rejected():
    from repro.adapt import MarkingResult

    m = single_tet()
    mask = mask_for_edges(m, [0, 1])  # not a valid pattern
    bad = MarkingResult(edge_marked=mask, patterns=np.array([0b000011]), iterations=1)
    with pytest.raises(ValueError, match="valid"):
        subdivide(m, bad)


def test_subdivision_work_charged_per_rank():
    from repro.adapt.refine import SUBDIV_WORK_PER_CHILD
    from repro.parallel import CostLedger, MachineModel

    m = two_tets()
    marking = propagate_markings(m, np.ones(m.nedges, dtype=bool))
    ledger = CostLedger(2, MachineModel(t_setup=0, t_word=0, t_work=1.0))
    subdivide(m, marking, part=np.array([0, 1]), ledger=ledger)
    # both ranks create 8 children, each priced at the per-child work rate
    expect = 8.0 * SUBDIV_WORK_PER_CHILD
    assert ledger.clocks.tolist() == [expect, expect]
