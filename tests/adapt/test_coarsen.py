"""Coarsening: sibling rule, reverse order, re-refinement for validity."""

import numpy as np

from repro.adapt import AdaptiveMesh
from repro.mesh import box_mesh, single_tet


def test_coarsen_initial_mesh_is_noop():
    am = AdaptiveMesh(single_tet())
    report = am.coarsen(np.ones(am.mesh.nedges, dtype=bool))
    assert not report.changed
    assert report.elements_removed == 0


def test_full_coarsen_undoes_refinement():
    am = AdaptiveMesh(single_tet())
    am.refine(am.mark(edge_mask=np.ones(6, dtype=bool)))
    assert am.mesh.ne == 8
    report = am.coarsen(np.ones(am.mesh.nedges, dtype=bool))
    assert report.changed
    assert am.mesh.ne == 1
    assert am.wcomp().tolist() == [1]
    assert am.wremap().tolist() == [1]
    am.mesh.check()


def test_sibling_rule_blocks_partial_targets():
    """Targeting only one half of a bisected edge must not coarsen it."""
    am = AdaptiveMesh(single_tet())
    marking = am.mark(edge_mask=np.array([True, False, False, False, False, False]))
    res = am.refine(marking)
    c0, c1 = res.edge_children[0]
    mask = np.zeros(am.mesh.nedges, dtype=bool)
    mask[c0] = True  # only one sibling targeted
    report = am.coarsen(mask)
    assert not report.changed
    assert am.mesh.ne == 2


def test_sibling_rule_allows_full_pairs():
    am = AdaptiveMesh(single_tet())
    marking = am.mark(edge_mask=np.array([True, False, False, False, False, False]))
    res = am.refine(marking)
    c0, c1 = res.edge_children[0]
    mask = np.zeros(am.mesh.nedges, dtype=bool)
    mask[[c0, c1]] = True
    report = am.coarsen(mask)
    assert report.changed
    assert report.n_undone == 1
    assert am.mesh.ne == 1


def test_partial_coarsen_keeps_valid_mesh():
    m = box_mesh(2, 2, 2)
    am = AdaptiveMesh(m)
    rng = np.random.default_rng(11)
    am.refine(am.mark(edge_mask=rng.random(m.nedges) < 0.3))
    ne_refined = am.mesh.ne
    # target a random half of the current edges
    mask = rng.random(am.mesh.nedges) < 0.5
    report = am.coarsen(mask)
    am.mesh.check()
    assert am.mesh.total_volume() == np.prod([1.0, 1.0, 1.0])
    if report.changed:
        assert am.mesh.ne <= ne_refined
        # forest consistent with the new mesh
        assert am.forest.root_of_elem.shape == (am.mesh.ne,)
        assert am.wcomp().sum() == am.mesh.ne


def test_coarsen_beyond_initial_mesh_stops():
    """Peel both levels, then a third coarsen is a no-op."""
    am = AdaptiveMesh(single_tet())
    am.refine(am.mark(edge_mask=np.ones(am.mesh.nedges, dtype=bool)))
    am.refine(am.mark(edge_mask=np.ones(am.mesh.nedges, dtype=bool)))
    assert am.mesh.ne == 64
    assert am.coarsen(np.ones(am.mesh.nedges, dtype=bool)).changed
    assert am.mesh.ne == 8
    assert am.coarsen(np.ones(am.mesh.nedges, dtype=bool)).changed
    assert am.mesh.ne == 1
    assert not am.coarsen(np.ones(am.mesh.nedges, dtype=bool)).changed


def test_coarsen_then_refine_roundtrip_weights():
    m = box_mesh(2, 2, 2)
    am = AdaptiveMesh(m)
    rng = np.random.default_rng(2)
    mask = rng.random(m.nedges) < 0.2
    am.refine(am.mark(edge_mask=mask))
    wc1 = am.wcomp().copy()
    am.coarsen(np.ones(am.mesh.nedges, dtype=bool))
    assert am.mesh.ne == m.ne
    am.refine(am.mark(edge_mask=mask))
    assert np.array_equal(am.wcomp(), wc1)


def test_connectivity_propagation_can_resurrect():
    """Undoing one bisection of a 1:8 element re-propagates: the adjusted
    5-edge pattern upgrades back to 1:8, so nothing changes."""
    am = AdaptiveMesh(single_tet())
    res = am.refine(am.mark(edge_mask=np.ones(6, dtype=bool)))
    c0, c1 = res.edge_children[0]
    mask = np.zeros(am.mesh.nedges, dtype=bool)
    mask[[c0, c1]] = True  # siblings of parent edge 0 only
    report = am.coarsen(mask)
    assert not report.changed  # propagation restored the full pattern
    assert report.n_candidates == 1
    assert am.mesh.ne == 8
