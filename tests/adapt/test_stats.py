"""Adaption statistics: subdivision-type histograms, amplification, quality."""

import numpy as np
import pytest

from repro.adapt import AdaptiveMesh, propagate_markings, subdivide
from repro.adapt.stats import marking_stats, quality_change
from repro.mesh import box_mesh, single_tet


def test_stats_single_1to2():
    m = single_tet()
    mask = np.zeros(m.nedges, dtype=bool)
    mask[0] = True
    st = marking_stats(propagate_markings(m, mask), seed_mask=mask)
    assert st.n_1to2 == 1
    assert st.n_1to4 == st.n_1to8 == st.n_unchanged == 0
    assert st.anisotropic_fraction == 1.0
    assert st.amplification == 1.0
    assert st.predicted_children == 2
    assert st.predicted_growth == pytest.approx(2.0)


def test_stats_full_isotropic():
    m = single_tet()
    st = marking_stats(propagate_markings(m, np.ones(m.nedges, dtype=bool)))
    assert st.n_1to8 == 1
    assert st.anisotropic_fraction == 0.0
    assert st.predicted_growth == pytest.approx(8.0)


def test_mixed_marking_has_anisotropic_types():
    """Random partial markings must exercise the anisotropic 1:2/1:4 types
    (the 3D_TAG feature the paper highlights)."""
    m = box_mesh(3, 3, 3)
    rng = np.random.default_rng(0)
    mask = rng.random(m.nedges) < 0.1
    st = marking_stats(propagate_markings(m, mask), seed_mask=mask)
    assert st.n_1to2 > 0
    assert st.n_1to4 > 0
    assert st.amplification >= 1.0
    assert st.n_unchanged + st.n_1to2 + st.n_1to4 + st.n_1to8 == m.ne
    assert "1:2" in st.summary()


def test_predicted_growth_matches_actual():
    m = box_mesh(2, 2, 2)
    rng = np.random.default_rng(4)
    mask = rng.random(m.nedges) < 0.2
    marking = propagate_markings(m, mask)
    st = marking_stats(marking)
    res = subdivide(m, marking)
    assert st.predicted_children == res.mesh.ne
    assert st.predicted_growth == pytest.approx(res.growth_factor)


def test_quality_change_reports_finite():
    m = box_mesh(2, 2, 2)
    am = AdaptiveMesh(m)
    rng = np.random.default_rng(1)
    am.refine(am.mark(edge_mask=rng.random(m.nedges) < 0.3))
    qc = quality_change(m, am.mesh)
    assert all(np.isfinite(v) for v in qc.values())
    assert qc["worst_after"] >= qc["mean_after"]
    # bisection can degrade quality, but not unboundedly at one level
    assert qc["worst_after"] < 20 * qc["worst_before"]
