"""Similarity matrix construction and TotalV/MaxV statistics."""

import numpy as np
import pytest

from repro.core import remap_stats, similarity_matrix
from repro.parallel import CostLedger, MachineModel


def test_similarity_basic():
    old = np.array([0, 0, 1, 1])
    new = np.array([0, 1, 1, 0])
    w = np.array([10, 20, 30, 40])
    S = similarity_matrix(old, new, w, nproc=2)
    assert S.tolist() == [[10, 20], [40, 30]]
    assert S.sum() == w.sum()


def test_similarity_f2():
    old = np.array([0, 0, 1, 1])
    new = np.array([0, 1, 2, 3])
    w = np.ones(4, dtype=np.int64)
    S = similarity_matrix(old, new, w, nproc=2, npart=4)
    assert S.shape == (2, 4)
    assert S.tolist() == [[1, 1, 0, 0], [0, 0, 1, 1]]


def test_similarity_validation():
    with pytest.raises(ValueError, match="align"):
        similarity_matrix(np.zeros(3, int), np.zeros(4, int), np.zeros(3, int), 2)
    with pytest.raises(ValueError, match="multiple"):
        similarity_matrix(np.zeros(4, int), np.zeros(4, int), np.ones(4, int), 2, 3)
    with pytest.raises(ValueError, match="out of range"):
        similarity_matrix(np.array([5]), np.array([0]), np.array([1]), 2)


def test_remap_stats_identity_mapping():
    S = np.diag([5, 7, 9]).astype(np.int64)
    st = remap_stats(S, np.array([0, 1, 2]))
    assert st.objective == 21
    assert st.c_total == 0
    assert st.n_total == 0
    assert st.c_max == 0
    assert st.sent.tolist() == [0, 0, 0]


def test_remap_stats_full_rotation():
    S = np.diag([5, 7, 9]).astype(np.int64)
    # rotate: partition j -> processor (j+1) % 3; everything moves
    st = remap_stats(S, np.array([1, 2, 0]))
    assert st.objective == 0
    assert st.c_total == 21
    assert st.n_total == 3
    assert st.sent.tolist() == [5, 7, 9]
    assert st.received.tolist() == [9, 5, 7]
    assert st.max_sent == 9
    # cost per proc: max(sent, recv) = (9, 7, 9); procs 0 and 2 tie at 9
    assert st.c_max == 9
    assert st.bottleneck in (0, 2)
    assert st.n_max == 2  # one set out, one set in


def test_remap_stats_alpha_beta():
    S = np.array([[0, 10], [10, 0]])
    st = remap_stats(S, np.array([0, 1]), alpha=1.0, beta=3.0)
    # everything moves both ways; recv weighted 3x
    assert st.c_max == 30


def test_remap_stats_rejects_uneven_assignment():
    S = np.zeros((2, 2), dtype=np.int64)
    with pytest.raises(ValueError, match="same number"):
        remap_stats(S, np.array([0, 0]))


def test_charge_gather_scatter():
    from repro.core import charge_gather_scatter

    led = CostLedger(4, MachineModel(t_setup=1.0, t_word=0.0, t_work=0.0))
    charge_gather_scatter(led, npart=4)
    # 3 rows in + 3 mappings out, plus barrier rounds
    assert led.total_messages == 6
    assert led.elapsed > 0
