"""Full-system integration: the Euler solver driving the Fig.-1 cycle.

This is the paper's actual use case — "mesh adaption based on actual flow
solutions" — run end to end: solve, build the indicator from the solution,
adapt, balance, solve again on the refined mesh.
"""

import numpy as np
import pytest

from repro.core import AdaptionHistory, CostModel, LoadBalancedAdaptiveSolver
from repro.mesh import box_mesh
from repro.parallel import MachineModel
from repro.solver import EulerSolver, density_indicator, spherical_blast_field

CHEAP = MachineModel(t_setup=1e-5, t_word=1e-7, t_work=1e-6)


@pytest.mark.parametrize("order", [1, 2])
def test_solve_adapt_solve_cycle(order):
    mesh = box_mesh(3, 3, 3)
    q0 = spherical_blast_field(mesh.coords, center=(0.3, 0.3, 0.3), radius=0.2)
    solver = LoadBalancedAdaptiveSolver(
        mesh, 4, solution=q0, machine=CHEAP,
        cost_model=CostModel(machine=CHEAP), imbalance_threshold=1.05,
    )
    hist = AdaptionHistory()

    for step in range(2):
        cur = solver.adaptive.mesh
        flow = EulerSolver(cur, solver.adaptive.solution, order=order)
        flow.run(4, cfl=0.3)
        solver.adaptive.solution = flow.q
        err = density_indicator(cur, flow.q)
        hist.record(solver.adapt_step(edge_error=err, refine_frac=0.1))
        # the interpolated solution on the refined mesh is a valid state
        q = solver.adaptive.solution
        assert q.shape == (solver.adaptive.mesh.nv, 5)
        assert np.all(np.isfinite(q))
        assert np.all(q[:, 0] > 0)

    assert solver.adaptive.mesh.ne > mesh.ne
    assert solver.solver_imbalance() < 1.6
    assert len(hist) == 2
    solver.adaptive.mesh.check()
    # refinement followed the blast: elements near the feature are smaller
    vols = solver.adaptive.mesh.volumes()
    cent = solver.adaptive.mesh.coords[solver.adaptive.mesh.elems].mean(axis=1)
    near = np.linalg.norm(cent - 0.3, axis=1) < 0.25
    far = np.linalg.norm(cent - 0.75, axis=1) < 0.25
    assert vols[near].mean() < vols[far].mean()


def test_refined_mesh_supports_further_solving():
    """The solver must run stably on the adapted (non-uniform) mesh."""
    mesh = box_mesh(3, 3, 3)
    q0 = spherical_blast_field(mesh.coords, center=(0.5, 0.5, 0.5), radius=0.25)
    solver = LoadBalancedAdaptiveSolver(
        mesh, 2, solution=q0, machine=CHEAP,
        cost_model=CostModel(machine=CHEAP),
    )
    cur = solver.adaptive.mesh
    err = density_indicator(cur, solver.adaptive.solution)
    solver.adapt_step(edge_error=err, refine_frac=0.15)

    flow = EulerSolver(solver.adaptive.mesh, solver.adaptive.solution)
    flow.run(5, cfl=0.3)
    assert np.all(np.isfinite(flow.q))
    assert np.all(flow.q[:, 0] > 0)
