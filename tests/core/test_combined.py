"""Combined TotalV+MaxV objective (paper future work)."""

import numpy as np
import pytest

from repro.core.combined import combined_cost, combined_reassign
from repro.core.metrics import remap_stats
from repro.core.reassign import optimal_bmcm, optimal_mwbg


def random_S(n, seed, hi=50):
    rng = np.random.default_rng(seed)
    return rng.integers(0, hi, size=(n, n)).astype(np.int64)


def test_lambda_zero_matches_totalv_optimum():
    for seed in range(5):
        S = random_S(5, seed)
        m = combined_reassign(S, lam=0.0)
        opt = optimal_mwbg(S)
        assert remap_stats(S, m).c_total == remap_stats(S, opt).c_total


def test_lambda_one_matches_maxv_optimum():
    for seed in range(5):
        S = random_S(5, seed)
        m = combined_reassign(S, lam=1.0)
        opt = optimal_bmcm(S)
        assert remap_stats(S, m).c_max == remap_stats(S, opt).c_max


@pytest.mark.parametrize("lam", [0.25, 0.5, 0.75])
def test_combined_no_worse_than_endpoints(lam):
    for seed in range(6):
        S = random_S(6, seed)
        m = combined_reassign(S, lam=lam)
        j = combined_cost(S, m, lam)
        for endpoint in (optimal_mwbg(S), optimal_bmcm(S)):
            assert j <= combined_cost(S, endpoint, lam) + 1e-9


def test_combined_beats_brute_sometimes_matches():
    """On small instances, the local search finds the global optimum of J
    most of the time; verify against enumeration."""
    from itertools import permutations

    hits = 0
    for seed in range(8):
        S = random_S(4, seed)
        m = combined_reassign(S, lam=0.5)
        j = combined_cost(S, m, 0.5)
        best = min(
            combined_cost(S, np.array(p), 0.5)
            for p in permutations(range(4))
        )
        assert j >= best - 1e-9
        if abs(j - best) < 1e-9:
            hits += 1
    assert hits >= 6  # local search is near-exact at this size


def test_lambda_validation():
    with pytest.raises(ValueError):
        combined_reassign(random_S(3, 0), lam=1.5)


def test_valid_permutation():
    S = random_S(7, 3)
    m = combined_reassign(S, lam=0.4)
    assert sorted(m.tolist()) == list(range(7))
