"""Dual graph: constant topology, adaption-driven weights."""

import numpy as np
import pytest

from repro.adapt import AdaptiveMesh
from repro.core import DualGraph
from repro.mesh import box_mesh, two_tets


def test_dual_of_two_tets():
    dg = DualGraph(two_tets())
    assert dg.n == 2
    assert dg.graph.nedges == 1
    assert dg.wcomp.tolist() == [1, 1]


def test_dual_edges_are_face_neighbours():
    m = box_mesh(2, 2, 2)
    dg = DualGraph(m)
    assert dg.n == m.ne
    # interior faces = dual edges
    assert dg.graph.nedges == m.dual_pairs.shape[0]


def test_topology_constant_under_adaption():
    """The paper's key §4.1 property: adaption changes weights only."""
    m = box_mesh(2, 2, 2)
    am = AdaptiveMesh(m)
    dg = DualGraph(m)
    ptr_before = dg.graph.ptr.copy()
    adj_before = dg.graph.adj.copy()
    rng = np.random.default_rng(0)
    am.refine(am.mark(edge_mask=rng.random(m.nedges) < 0.3))
    dg.update_from(am)
    assert np.array_equal(dg.graph.ptr, ptr_before)
    assert np.array_equal(dg.graph.adj, adj_before)
    assert dg.n == m.ne  # still the *initial* element count
    assert dg.wcomp.sum() == am.mesh.ne  # leaves cover the adapted mesh
    assert np.all(dg.wremap >= dg.wcomp)


def test_predicted_update():
    m = box_mesh(2, 2, 2)
    am = AdaptiveMesh(m)
    dg = DualGraph(m)
    marking = am.mark(edge_mask=np.ones(m.nedges, dtype=bool))
    dg.update_predicted(am, marking)
    assert np.all(dg.wcomp == 8)  # everything will go 1:8
    am.refine(marking)
    assert np.array_equal(dg.wcomp, am.wcomp())


def test_weight_validation():
    dg = DualGraph(two_tets())
    with pytest.raises(ValueError, match="shape"):
        dg.update_weights(np.ones(3, int), np.ones(3, int))
    with pytest.raises(ValueError, match="wcomp"):
        dg.update_weights(np.array([0, 1]), np.array([1, 1]))
    with pytest.raises(ValueError, match="wcomp"):
        dg.update_weights(np.array([2, 2]), np.array([1, 1]))


def test_weighted_graphs():
    dg = DualGraph(two_tets())
    dg.update_weights(np.array([3, 5]), np.array([4, 9]))
    assert dg.comp_graph().vwgt.tolist() == [3, 5]
    assert dg.remap_graph().vwgt.tolist() == [4, 9]


def test_centroids():
    m = box_mesh(1, 1, 1)
    dg = DualGraph(m)
    c = dg.element_centroids()
    assert c.shape == (m.ne, 3)
    assert np.all((c > 0) & (c < 1))
