"""Cost model algebra and remap execution on the virtual machine."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    build_move_matrix,
    execute_remap,
    load_imbalance,
    needs_repartition,
    remap_stats,
)
from repro.parallel import MachineModel


def test_load_imbalance_balanced():
    w = np.ones(8, dtype=np.int64)
    p = np.arange(8) % 4
    assert load_imbalance(w, p, 4) == pytest.approx(1.0)
    assert not needs_repartition(w, p, 4, threshold=1.1)


def test_load_imbalance_skewed():
    w = np.array([8, 1, 1, 1])
    p = np.array([0, 1, 2, 3])
    # max 8 vs avg 11/4
    assert load_imbalance(w, p, 4) == pytest.approx(8 / (11 / 4))
    assert needs_repartition(w, p, 4)


def test_needs_repartition_threshold_validation():
    with pytest.raises(ValueError):
        needs_repartition(np.ones(2), np.zeros(2, int), 2, threshold=0.5)


class TestCostModel:
    def make(self, metric="totalv"):
        m = MachineModel(t_setup=1e-4, t_word=1e-6, t_work=1e-6)
        return CostModel(machine=m, t_iter=1e-4, n_adapt=10, storage_words=10,
                         t_child=1e-5, metric=metric)

    def test_redistribution_cost_formula(self):
        cm = self.make()
        S = np.array([[0, 100], [100, 0]])
        st = remap_stats(S, np.array([0, 1]))  # move everything
        # M*C*Tlat + N*Tsetup = 10*200*1e-6 + 2*1e-4
        assert cm.redistribution_cost(st) == pytest.approx(0.002 + 0.0002)

    def test_maxv_cost_uses_bottleneck(self):
        cm = self.make(metric="maxv")
        S = np.array([[0, 100], [100, 0]])
        st = remap_stats(S, np.array([0, 1]))
        # Cmax = 100, Nmax = 2
        assert cm.redistribution_cost(st) == pytest.approx(
            10 * 100 * 1e-6 + 2 * 1e-4
        )

    def test_decide_accepts_large_gain(self):
        cm = self.make()
        w = np.array([10, 10, 1, 1])
        old = np.array([0, 0, 1, 1])  # loads 20 / 2
        new = np.array([0, 1, 0, 1])  # loads 11 / 11
        S = np.array([[15, 5], [1, 1]])
        st = remap_stats(S, np.array([0, 1]))
        d = cm.decide(w, old, new, 2, st)
        assert d.w_max_old == 20 and d.w_max_new == 11
        assert d.gain > 0
        assert d.accept  # gain ~ 10*1e-4*9 = 9e-3 >> cost

    def test_decide_rejects_tiny_gain(self):
        cm = self.make()
        w = np.ones(4, dtype=np.int64)
        old = np.array([0, 0, 1, 1])
        new = np.array([1, 1, 0, 0])  # same balance, pure movement
        S = np.array([[0, 2000], [2000, 0]])
        st = remap_stats(S, np.array([0, 1]))
        d = cm.decide(w, old, new, 2, st)
        assert d.gain == pytest.approx(0.0)
        assert not d.accept

    def test_invalid_metric(self):
        with pytest.raises(ValueError, match="metric"):
            CostModel(metric="bogus")


class TestRemapExecution:
    def test_move_matrix(self):
        old = np.array([0, 0, 1, 1])
        new = np.array([1, 0, 1, 0])
        w = np.array([3, 4, 5, 6])
        mv = build_move_matrix(old, new, w, 2)
        assert mv.tolist() == [[0, 3], [6, 0]]

    def test_execute_conserves_and_times(self):
        old = np.array([0, 0, 1, 1, 2, 2])
        new = np.array([1, 0, 2, 1, 0, 2])
        w = np.array([2, 2, 3, 3, 4, 4])
        m = MachineModel(t_setup=1e-3, t_word=1e-5, t_work=1e-6)
        ex = execute_remap(old, new, w, 3, storage_words=8, machine=m)
        assert ex.elements_moved == 2 + 3 + 4
        assert ex.messages == 3
        assert ex.words_moved == 9 * 8
        assert ex.time_seconds > 0
        assert np.array_equal(ex.new_owner, new)

    def test_no_movement_is_cheap(self):
        old = np.array([0, 1])
        ex = execute_remap(old, old, np.array([5, 5]), 2)
        assert ex.elements_moved == 0
        assert ex.messages == 0

    def test_remap_before_cheaper_than_after(self):
        """Moving pre-subdivision trees must beat moving post-subdivision
        ones — the heart of §4.6."""
        rng = np.random.default_rng(0)
        n = 200
        old = rng.integers(0, 4, n)
        new = rng.integers(0, 4, n)
        w_small = np.ones(n, dtype=np.int64)  # before: 1 node per tree
        w_big = rng.integers(2, 9, n)  # after: children included
        t_before = execute_remap(old, new, w_small, 4).time_seconds
        t_after = execute_remap(old, new, w_big, 4).time_seconds
        assert t_before < t_after
