"""Processor reassignment: optimal MWBG, heuristic MWBG, optimal BMCM."""

import numpy as np
import pytest

from repro.core import (
    brute_force_maxv,
    brute_force_totalv,
    heuristic_mwbg,
    objective_value,
    optimal_bmcm,
    optimal_mwbg,
    remap_stats,
)


def random_S(nproc, npart, seed, density=0.6, hi=100):
    rng = np.random.default_rng(seed)
    S = rng.integers(0, hi, size=(nproc, npart))
    S[rng.random((nproc, npart)) > density] = 0
    return S.astype(np.int64)


def assert_valid_assignment(proc_of_part, nproc, F):
    counts = np.bincount(proc_of_part, minlength=nproc)
    assert np.all(counts == F), f"each processor must get F={F} partitions"


class TestOptimalMWBG:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        S = random_S(5, 5, seed)
        m = optimal_mwbg(S)
        assert_valid_assignment(m, 5, 1)
        assert objective_value(S, m) == brute_force_totalv(S)

    def test_diagonal_matrix_maps_identity(self):
        S = np.diag([10, 20, 30, 40])
        assert optimal_mwbg(S).tolist() == [0, 1, 2, 3]

    def test_F2_duplication(self):
        # 2 processors, 4 partitions; optimal keeps the two heavy entries
        S = np.array([[9, 9, 0, 0], [0, 0, 9, 9]])
        m = optimal_mwbg(S, F=2)
        assert_valid_assignment(m, 2, 2)
        assert objective_value(S, m) == 36

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="partitions"):
            optimal_mwbg(np.zeros((3, 4)), F=1)
        with pytest.raises(ValueError, match="non-negative"):
            optimal_mwbg(np.array([[-1, 0], [0, 1]]))


class TestHeuristicMWBG:
    @pytest.mark.parametrize("seed", range(10))
    def test_theorem1_half_of_optimal(self, seed):
        """Theorem 1: heuristic objective > optimal/2."""
        S = random_S(6, 6, seed)
        h = heuristic_mwbg(S)
        assert_valid_assignment(h, 6, 1)
        opt = brute_force_totalv(S)
        assert 2 * objective_value(S, h) >= opt

    def test_greedy_order(self):
        """Largest entry is always taken first."""
        S = np.array([[1, 50], [2, 3]])
        h = heuristic_mwbg(S)
        assert h[1] == 0  # partition 1 -> processor 0 via the 50
        assert h[0] == 1
        assert objective_value(S, h) == 52

    def test_zero_rows_and_columns(self):
        S = np.zeros((3, 3), dtype=np.int64)
        h = heuristic_mwbg(S)
        assert_valid_assignment(h, 3, 1)

    def test_F2(self):
        S = np.array([[5, 4, 0, 0], [0, 0, 5, 4]])
        h = heuristic_mwbg(S, F=2)
        assert_valid_assignment(h, 2, 2)
        assert objective_value(S, h) == 18

    def test_deterministic(self):
        S = random_S(8, 8, 3)
        assert np.array_equal(heuristic_mwbg(S), heuristic_mwbg(S))


class TestOptimalBMCM:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_bottleneck(self, seed):
        S = random_S(5, 5, seed)
        m = optimal_bmcm(S)
        assert_valid_assignment(m, 5, 1)
        stats = remap_stats(S, m)
        assert stats.c_max == brute_force_maxv(S)

    def test_alpha_beta_scaling(self):
        S = random_S(4, 4, 0)
        m = optimal_bmcm(S, alpha=2.0, beta=0.5)
        stats_cost = _maxv_cost(S, m, 2.0, 0.5)
        assert stats_cost == brute_force_maxv(S, alpha=2.0, beta=0.5)

    def test_identity_when_diagonal_heavy(self):
        S = np.full((4, 4), 1, dtype=np.int64) + np.diag([100, 100, 100, 100])
        assert optimal_bmcm(S).tolist() == [0, 1, 2, 3]


def _maxv_cost(S, proc_of_part, alpha, beta):
    row = S.sum(axis=1)
    col = S.sum(axis=0)
    return max(
        max(alpha * (row[proc_of_part[j]] - S[proc_of_part[j], j]),
            beta * (col[j] - S[proc_of_part[j], j]))
        for j in range(S.shape[1])
    )


def test_paper_qualitative_ordering():
    """Optimal MWBG retains at least as much as the heuristic; BMCM's
    bottleneck is at most either MWBG's (mirrors Table 2's relationships)."""
    for seed in range(5):
        S = random_S(6, 6, seed, density=0.8)
        opt = optimal_mwbg(S)
        heu = heuristic_mwbg(S)
        bmc = optimal_bmcm(S)
        assert objective_value(S, opt) >= objective_value(S, heu)
        assert remap_stats(S, bmc).c_max <= remap_stats(S, opt).c_max
        assert remap_stats(S, bmc).c_max <= remap_stats(S, heu).c_max
