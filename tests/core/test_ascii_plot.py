"""ASCII chart rendering."""

from repro.experiments.ascii_plot import ascii_chart, sparkline


def test_sparkline_monotone():
    s = sparkline([1, 2, 3, 4, 5])
    assert len(s) == 5
    assert s[0] == "▁" and s[-1] == "█"
    assert s == "".join(sorted(s))


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    assert sparkline([3, 3, 3]) == "▁▁▁"


def test_sparkline_log_scale():
    lin = sparkline([1, 10, 100, 1000])
    log = sparkline([1, 10, 100, 1000], log=True)
    # log scale spaces the decades evenly
    assert log == "▁▃▅█" or log[0] == "▁"
    assert lin[0] == lin[1]  # 1 and 10 collapse on a linear axis to 1000


def test_ascii_chart_structure():
    series = {
        "after": {1: 1.0, 2: 1.8, 4: 3.0, 8: 4.5},
        "before": {1: 1.0, 2: 1.9, 4: 3.6, 8: 7.0},
    }
    chart = ascii_chart(series, height=6, width=30, title="speedup")
    lines = chart.splitlines()
    assert lines[0] == "speedup"
    assert len(lines) == 6 + 4  # grid + axis + xlabel + legend + title
    assert "o=after" in chart and "x=before" in chart
    assert "P = 1 2 4 8" in chart
    # both markers appear in the grid
    body = "\n".join(lines[1:-3])
    assert "o" in body and "x" in body


def test_ascii_chart_log_axis():
    chart = ascii_chart({"t": {2: 0.01, 64: 1.0}}, log_y=True, height=4)
    assert "1" in chart  # decoded top label back to linear
    assert chart.count("t") >= 1


def test_ascii_chart_empty():
    assert ascii_chart({}) == ""
