"""Property-based verification of Theorem 1, its corollary, and BMCM
optimality over random similarity matrices."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    brute_force_maxv,
    brute_force_totalv,
    heuristic_mwbg,
    objective_value,
    optimal_bmcm,
    optimal_mwbg,
    remap_stats,
)


@st.composite
def similarity_matrices(draw, max_p=6, max_w=200):
    p = draw(st.integers(2, max_p))
    rows = draw(
        st.lists(
            st.lists(st.integers(0, max_w), min_size=p, max_size=p),
            min_size=p,
            max_size=p,
        )
    )
    return np.array(rows, dtype=np.int64)


@given(S=similarity_matrices())
@settings(max_examples=60, deadline=None)
def test_theorem1_heuristic_at_least_half_optimal(S):
    heu = objective_value(S, heuristic_mwbg(S))
    opt = brute_force_totalv(S)
    assert 2 * heu >= opt


@given(S=similarity_matrices())
@settings(max_examples=60, deadline=None)
def test_corollary_movement_at_most_twice_optimal(S):
    """Data movement cost ΣΣS − F under the heuristic is ≤ 2× optimal's."""
    total = int(S.sum())
    heu_moved = total - objective_value(S, heuristic_mwbg(S))
    opt_moved = total - objective_value(S, optimal_mwbg(S))
    assert heu_moved <= 2 * opt_moved


@given(S=similarity_matrices(max_p=5))
@settings(max_examples=40, deadline=None)
def test_optimal_mwbg_matches_enumeration(S):
    assert objective_value(S, optimal_mwbg(S)) == brute_force_totalv(S)


@given(S=similarity_matrices(max_p=5))
@settings(max_examples=40, deadline=None)
def test_optimal_bmcm_matches_enumeration(S):
    m = optimal_bmcm(S)
    assert remap_stats(S, m).c_max == brute_force_maxv(S)


@given(S=similarity_matrices())
@settings(max_examples=40, deadline=None)
def test_assignments_are_permutations(S):
    p = S.shape[0]
    for method in (optimal_mwbg, heuristic_mwbg, optimal_bmcm):
        m = method(S)
        assert sorted(m.tolist()) == list(range(p))
