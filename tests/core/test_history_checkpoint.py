"""Adaption history accounting and checkpoint/restart."""

import numpy as np
import pytest

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.history import AdaptionHistory
from repro.mesh import box_mesh, edge_midpoints
from repro.parallel import MachineModel

CHEAP = MachineModel(t_setup=1e-5, t_word=1e-7, t_work=1e-6)


def corner_error(mesh):
    mid = edge_midpoints(mesh.coords, mesh.edges)
    return 1.0 / (0.05 + np.linalg.norm(mid, axis=1))


def run_steps(solver, n=2):
    hist = AdaptionHistory()
    for _ in range(n):
        err = corner_error(solver.adaptive.mesh)
        hist.record(solver.adapt_step(edge_error=err, refine_frac=0.12))
    return hist


class TestHistory:
    def test_accumulates(self):
        s = LoadBalancedAdaptiveSolver(
            box_mesh(3, 3, 3), 4, machine=CHEAP,
            cost_model=CostModel(machine=CHEAP),
        )
        hist = run_steps(s, 2)
        assert len(hist) == 2
        assert hist.total_adaption_time > 0
        assert hist.accepted_steps + hist.rejected_steps <= 2
        if hist.accepted_steps:
            assert hist.total_elements_moved > 0
            assert hist.total_remap_time > 0
        traj = hist.imbalance_trajectory()
        assert len(traj) == 2
        assert all(b >= 1.0 and a >= 1.0 for b, a in traj)

    def test_rendering(self):
        s = LoadBalancedAdaptiveSolver(
            box_mesh(2, 2, 2), 2, machine=CHEAP,
            cost_model=CostModel(machine=CHEAP),
        )
        hist = run_steps(s, 1)
        table = hist.anatomy_table()
        assert "mark" in table and "remap" in table
        assert len(table.splitlines()) == 2
        assert "steps" in hist.summary()

    def test_empty_summary(self):
        assert "no adaption steps" in AdaptionHistory().summary()


class TestCheckpoint:
    def test_roundtrip_resumes(self, tmp_path):
        s = LoadBalancedAdaptiveSolver(
            box_mesh(3, 3, 3), 4, machine=CHEAP,
            cost_model=CostModel(machine=CHEAP), seed=1,
        )
        run_steps(s, 1)
        ne_before = s.adaptive.mesh.ne
        part_before = s.part.copy()

        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, s)
        s2 = load_checkpoint(
            path, machine=CHEAP, cost_model=CostModel(machine=CHEAP)
        )
        assert s2.adaptive.mesh.ne == ne_before
        assert s2.nproc == 4
        # ownership restored exactly (per current element)
        assert np.array_equal(s2.elem_owner(), s.elem_owner())
        del part_before

        # the restored solver can keep adapting
        rep = s2.adapt_step(
            edge_error=corner_error(s2.adaptive.mesh), refine_frac=0.1
        )
        assert s2.adaptive.mesh.ne > ne_before
        assert rep.growth_factor > 1.0

    def test_solution_preserved(self, tmp_path):
        m = box_mesh(2, 2, 2)
        sol = np.arange(m.nv * 5, dtype=float).reshape(m.nv, 5)
        s = LoadBalancedAdaptiveSolver(m, 2, solution=sol, machine=CHEAP)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, s)
        s2 = load_checkpoint(path, machine=CHEAP)
        assert np.array_equal(s2.adaptive.solution, sol)

    def test_version_check(self, tmp_path):
        m = box_mesh(1, 1, 1)
        path = str(tmp_path / "bad.npz")
        np.savez(path, format_version=np.int64(9), coords=m.coords,
                 elems=m.elems, nproc=np.int64(2), F=np.int64(1),
                 elem_owner=np.zeros(m.ne, np.int64),
                 wcomp=np.ones(m.ne, np.int64), wremap=np.ones(m.ne, np.int64),
                 root_of_elem=np.arange(m.ne))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)
