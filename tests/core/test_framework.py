"""Integration tests of the full Fig.-1 cycle."""

import numpy as np
import pytest

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.mesh import box_mesh, edge_midpoints
from repro.parallel import MachineModel

CHEAP_MACHINE = MachineModel(t_setup=1e-5, t_word=1e-7, t_work=1e-6)


def corner_error(mesh):
    """Error indicator concentrated near the origin corner."""
    mid = edge_midpoints(mesh.coords, mesh.edges)
    return 1.0 / (0.05 + np.linalg.norm(mid, axis=1))


def make_solver(nproc=4, **kw):
    m = box_mesh(3, 3, 3)
    return LoadBalancedAdaptiveSolver(
        m, nproc, machine=CHEAP_MACHINE,
        cost_model=CostModel(machine=CHEAP_MACHINE), **kw
    )


def test_constructor_validation():
    m = box_mesh(1, 1, 1)
    with pytest.raises(ValueError, match="nproc"):
        LoadBalancedAdaptiveSolver(m, 0)
    with pytest.raises(ValueError, match="reassigner"):
        LoadBalancedAdaptiveSolver(m, 2, reassigner="nope")
    with pytest.raises(ValueError, match="remap_when"):
        LoadBalancedAdaptiveSolver(m, 2, remap_when="sometimes")
    with pytest.raises(ValueError, match="F = 1"):
        LoadBalancedAdaptiveSolver(m, 2, reassigner="optimal_bmcm", F=2)


def test_initial_partition_balanced():
    s = make_solver(4)
    assert s.solver_imbalance() <= 1.15
    assert np.bincount(s.part, minlength=4).min() > 0


def test_localized_refinement_triggers_rebalance():
    s = make_solver(4)
    err = corner_error(s.adaptive.mesh)
    report = s.adapt_step(edge_error=err, refine_frac=0.15)
    assert report.repartition_triggered
    assert report.accepted
    assert report.imbalance_after < report.imbalance_before
    assert s.solver_imbalance() <= 1.3
    # ownership still covers every initial element exactly once
    assert s.part.shape == (s.adaptive.initial_mesh.ne,)
    assert s.part.min() >= 0 and s.part.max() < 4


def test_uniform_refinement_skips_balancing():
    """Uniform 1:8 refinement multiplies every weight by 8 — balance is
    preserved, so the evaluation step must skip the load balancer."""
    s = make_solver(4)
    report = s.adapt_step(edge_mask=np.ones(s.adaptive.mesh.nedges, dtype=bool))
    assert not report.repartition_triggered
    assert report.remap_time == 0.0
    assert report.growth_factor == pytest.approx(8.0)


def test_single_proc_never_balances():
    s = make_solver(1)
    err = corner_error(s.adaptive.mesh)
    report = s.adapt_step(edge_error=err, refine_frac=0.2)
    assert not report.repartition_triggered
    assert report.adaption_time > 0


def test_remap_before_moves_less_than_after():
    """§4.6: remapping before subdivision moves the un-grown mesh."""
    err = None
    moved = {}
    for when in ("before", "after"):
        s = make_solver(4, remap_when=when, seed=1)
        err = corner_error(s.adaptive.mesh)
        rep = s.adapt_step(edge_error=err, refine_frac=0.2)
        assert rep.accepted, f"remap_when={when} should accept"
        moved[when] = rep.remap.elements_moved
    assert moved["before"] < moved["after"]


def test_remap_before_balances_subdivision():
    err = None
    subdiv = {}
    for when in ("before", "after"):
        s = make_solver(4, remap_when=when, seed=1)
        err = corner_error(s.adaptive.mesh)
        rep = s.adapt_step(edge_error=err, refine_frac=0.2)
        subdiv[when] = rep.subdivision_time
    assert subdiv["before"] < subdiv["after"]


@pytest.mark.parametrize(
    "method", ["heuristic_mwbg", "optimal_mwbg", "optimal_bmcm", "combined"]
)
def test_all_reassigners_run(method):
    s = make_solver(4, reassigner=method)
    err = corner_error(s.adaptive.mesh)
    rep = s.adapt_step(edge_error=err, refine_frac=0.15)
    assert rep.repartition_triggered
    assert rep.stats is not None
    assert rep.reassign_time >= 0


def test_F2_partitions_per_processor():
    s = make_solver(2, F=2)
    err = corner_error(s.adaptive.mesh)
    rep = s.adapt_step(edge_error=err, refine_frac=0.2)
    if rep.repartition_triggered and rep.accepted:
        assert s.part.max() < 2  # partitions folded back onto processors


def test_multiple_adaption_steps():
    s = make_solver(4)
    for _ in range(3):
        err = corner_error(s.adaptive.mesh)
        s.adapt_step(edge_error=err, refine_frac=0.1)
        s.adaptive.mesh.check()
    assert s.adaptive.forest.depth == 3
    assert s.solver_imbalance() < 2.0


def test_report_times_populated():
    s = make_solver(4)
    err = corner_error(s.adaptive.mesh)
    rep = s.adapt_step(edge_error=err, refine_frac=0.15)
    assert rep.marking_time > 0
    assert rep.subdivision_time > 0
    assert rep.adaption_time == rep.marking_time + rep.subdivision_time
    if rep.accepted:
        assert rep.partition_time > 0
        assert rep.remap_time > 0
        assert rep.total_time >= rep.adaption_time
        # §4.3's "minuscule" gather/scatter claim: dwarfed by the remap
        assert 0 < rep.gather_scatter_time < rep.remap_time


def test_rejection_leaves_partition_unchanged():
    """With an absurdly expensive machine the gain can't pay for the move."""
    expensive = MachineModel(t_setup=10.0, t_word=1.0, t_work=1e-6)
    m = box_mesh(3, 3, 3)
    s = LoadBalancedAdaptiveSolver(
        m, 4, machine=expensive,
        cost_model=CostModel(machine=expensive, t_iter=1e-9, n_adapt=1),
    )
    before = s.part.copy()
    err = corner_error(s.adaptive.mesh)
    rep = s.adapt_step(edge_error=err, refine_frac=0.15)
    assert rep.repartition_triggered
    assert not rep.accepted
    assert np.array_equal(s.part, before)
