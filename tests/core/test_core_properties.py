"""Property-based invariants of the load-balancing core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_move_matrix,
    execute_remap,
    heuristic_mwbg,
    optimal_mwbg,
    remap_stats,
    similarity_matrix,
)
from repro.parallel import IDEAL


@st.composite
def ownership_instance(draw):
    n = draw(st.integers(4, 120))
    p = draw(st.integers(2, 8))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    old = rng.integers(0, p, n).astype(np.int64)
    new = rng.integers(0, p, n).astype(np.int64)
    w = rng.integers(1, 9, n).astype(np.int64)
    return old, new, w, p


@given(inst=ownership_instance())
@settings(max_examples=30, deadline=None)
def test_similarity_matrix_conserves_weight(inst):
    old, new, w, p = inst
    S = similarity_matrix(old, new, w, p)
    assert int(S.sum()) == int(w.sum())
    # row i sums to the weight currently on processor i
    assert np.array_equal(
        S.sum(axis=1), np.bincount(old, weights=w, minlength=p).astype(np.int64)
    )
    # column j sums to new partition j's weight
    assert np.array_equal(
        S.sum(axis=0), np.bincount(new, weights=w, minlength=p).astype(np.int64)
    )


@given(inst=ownership_instance())
@settings(max_examples=25, deadline=None)
def test_remap_conservation_and_stats_consistency(inst):
    old, new, w, p = inst
    mv = build_move_matrix(old, new, w, p)
    # conservation: weight leaving i + staying = weight owned by i
    for i in range(p):
        stays = int(w[(old == i) & (new == i)].sum())
        assert stays + int(mv[i].sum()) == int(w[old == i].sum())
    # the identity assignment's stats describe the same movement
    S = similarity_matrix(old, new, w, p)
    st_id = remap_stats(S, np.arange(p))
    assert st_id.c_total == int(mv.sum())
    assert np.array_equal(st_id.sent, mv.sum(axis=1))
    assert np.array_equal(st_id.received, mv.sum(axis=0))
    # execute_remap reports exactly the same total
    ex = execute_remap(old, new, w, p, machine=IDEAL)
    assert ex.elements_moved == st_id.c_total


@given(inst=ownership_instance())
@settings(max_examples=25, deadline=None)
def test_reassignment_never_increases_movement(inst):
    """Any MWBG assignment must retain at least as much as the identity
    (the identity is one feasible assignment)."""
    old, new, w, p = inst
    S = similarity_matrix(old, new, w, p)
    identity = remap_stats(S, np.arange(p))
    for method in (optimal_mwbg, heuristic_mwbg):
        st_m = remap_stats(S, method(S))
        if method is optimal_mwbg:
            assert st_m.c_total <= identity.c_total
        else:
            # Theorem 1 corollary bound relative to the optimum
            opt_moved = remap_stats(S, optimal_mwbg(S)).c_total
            assert st_m.c_total <= 2 * opt_moved + 1  # integer slack
