"""Unit tests for connectivity derivation."""

import numpy as np
import pytest

from repro.mesh import single_tet, two_tets
from repro.mesh.build import build_edges, build_faces, csr_from_pairs, invert_to_csr


def test_single_tet_counts():
    m = single_tet()
    assert m.nv == 4
    assert m.ne == 1
    assert m.nedges == 6
    assert m.nbnd == 4
    assert m.dual_pairs.shape == (0, 2)


def test_two_tets_counts():
    m = two_tets()
    assert m.ne == 2
    assert m.nedges == 9  # 6 + 6 - 3 shared on the common face
    assert m.nbnd == 6  # 8 faces total, 2 glued into 1 interior face
    assert m.dual_pairs.tolist() == [[0, 1]]


def test_build_edges_deterministic_order():
    elems = np.array([[3, 1, 0, 2]])
    edges, elem2edge = build_edges(elems, 4)
    # lexicographic over (lo, hi)
    assert edges.tolist() == [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]]
    # local edge order of element (3,1,0,2): pairs (3,1),(3,0),(3,2),(1,0),(1,2),(0,2)
    assert elem2edge.tolist() == [[4, 2, 5, 0, 3, 1]]


def test_build_faces_nonmanifold_rejected():
    # three tets all sharing the face (0,1,2)
    elems = np.array([[0, 1, 2, 3], [0, 1, 2, 4], [0, 1, 2, 5]])
    with pytest.raises(ValueError, match="non-manifold"):
        build_faces(elems, 6)


def test_csr_from_pairs_groups_and_orders():
    ptr, dat = csr_from_pairs(
        rows=np.array([1, 0, 1, 2, 0]), vals=np.array([9, 5, 3, 7, 1]), nrows=3
    )
    assert ptr.tolist() == [0, 2, 4, 5]
    assert dat.tolist() == [1, 5, 3, 9, 7]


def test_invert_to_csr_roundtrip():
    mapping = np.array([[0, 2], [2, 1], [0, 1]])
    ptr, dat = invert_to_csr(mapping, 3)
    # value v -> rows where it appears
    groups = {v: sorted(dat[ptr[v] : ptr[v + 1]].tolist()) for v in range(3)}
    assert groups == {0: [0, 2], 1: [1, 2], 2: [0, 1]}
