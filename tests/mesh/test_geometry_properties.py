"""Property-based tests for mesh geometry and generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import aspect_ratios, box_mesh, edge_lengths, edge_midpoints


@given(
    nx=st.integers(1, 4),
    ny=st.integers(1, 4),
    nz=st.integers(1, 4),
    sx=st.floats(0.2, 5.0),
    sy=st.floats(0.2, 5.0),
    sz=st.floats(0.2, 5.0),
)
@settings(max_examples=25, deadline=None)
def test_box_mesh_volume_and_validity(nx, ny, nz, sx, sy, sz):
    m = box_mesh(nx, ny, nz, bounds=((0, sx), (0, sy), (0, sz)))
    vols = m.volumes()
    assert np.all(vols > 0)
    assert np.isclose(vols.sum(), sx * sy * sz, rtol=1e-10)
    # Euler characteristic of a tetrahedralised ball
    nfaces = (4 * m.ne + m.nbnd) // 2
    assert m.nv - m.nedges + nfaces - m.ne == 1


@given(nx=st.integers(1, 3), ny=st.integers(1, 3), nz=st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_edge_midpoints_between_endpoints(nx, ny, nz):
    m = box_mesh(nx, ny, nz)
    mid = edge_midpoints(m.coords, m.edges)
    lo = np.minimum(m.coords[m.edges[:, 0]], m.coords[m.edges[:, 1]])
    hi = np.maximum(m.coords[m.edges[:, 0]], m.coords[m.edges[:, 1]])
    assert np.all(mid >= lo - 1e-12) and np.all(mid <= hi + 1e-12)
    assert np.all(edge_lengths(m.coords, m.edges) > 0)


@given(n=st.integers(1, 3))
@settings(max_examples=10, deadline=None)
def test_kuhn_tets_have_bounded_aspect(n):
    """Kuhn subdivision of a cube gives a fixed, finite element quality."""
    m = box_mesh(n, n, n)
    ar = aspect_ratios(m.coords, m.elems)
    assert np.all(np.isfinite(ar))
    assert ar.max() < 10.0
