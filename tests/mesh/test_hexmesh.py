"""Hexahedral meshes and the element-type-agnostic load balancer."""

import numpy as np
import pytest

from repro.mesh.hexmesh import HEX_EDGES, HEX_FACES, HexMesh, hex_box_mesh


def test_single_hex_counts():
    m = hex_box_mesh(1, 1, 1)
    assert m.nv == 8
    assert m.ne == 1
    assert m.nedges == 12
    assert m.bnd_faces.shape == (6, 4)
    assert m.dual_pairs.shape == (0, 2)


def test_box_counts_and_volume():
    m = hex_box_mesh(3, 2, 2, bounds=((0, 3), (0, 2), (0, 1)))
    assert m.ne == 12
    assert m.total_volume() == pytest.approx(6.0)
    # interior faces = dual edges of a 3x2x2 structured grid
    expected_dual = 2 * 2 * 2 + 3 * 1 * 2 + 3 * 2 * 1
    assert m.dual_pairs.shape[0] == expected_dual


def test_local_tables_consistent():
    # every local edge appears in exactly 2 local faces
    for e, (a, b) in enumerate(HEX_EDGES):
        n = sum(
            1
            for f in HEX_FACES
            if {int(a), int(b)} <= set(int(x) for x in f)
        )
        assert n == 2, (e, n)


def test_input_validation():
    with pytest.raises(ValueError, match="elems"):
        HexMesh.from_elems(np.zeros((8, 3)), np.zeros((1, 4), dtype=int))
    with pytest.raises(ValueError, match="out of range"):
        HexMesh.from_elems(np.zeros((4, 3)), np.arange(8)[None, :])


def test_load_balancer_runs_on_hexes():
    """The paper's §2 claim: the load balancing procedure is independent of
    the element type.  Dual graph -> partition -> adapted weights ->
    repartition -> similarity -> reassignment -> remap, all on hexes."""
    from repro.core.dualgraph import DualGraph
    from repro.core.metrics import remap_stats
    from repro.core.reassign import heuristic_mwbg
    from repro.core.remap import execute_remap
    from repro.core.similarity import similarity_matrix
    from repro.partition import imbalance, multilevel_kway, repartition

    mesh = hex_box_mesh(6, 6, 6)
    dual = DualGraph(mesh)
    assert dual.n == mesh.ne
    old = multilevel_kway(dual.comp_graph(), 8, seed=0)
    assert imbalance(dual.comp_graph(), old, 8) <= 1.1

    # synthetic adaption: one corner region gets 8x the work
    cent = mesh.element_centroids()
    heavy = np.linalg.norm(cent - cent.min(axis=0), axis=1) < 0.4
    wcomp = np.where(heavy, 8, 1).astype(np.int64)
    wremap = wcomp + 1
    dual.update_weights(wcomp, wremap)

    new = repartition(dual.comp_graph(), 8, old, seed=0)
    assert imbalance(dual.comp_graph(), new, 8) <= 1.15

    S = similarity_matrix(old, new, wremap, 8)
    assignment = heuristic_mwbg(S)
    stats = remap_stats(S, assignment)
    ex = execute_remap(old, assignment[new], wremap, 8)
    assert ex.elements_moved == stats.c_total
    assert ex.time_seconds >= 0.0


def test_rcb_on_hex_centroids():
    from repro.partition import rcb_partition

    m = hex_box_mesh(4, 4, 4)
    part = rcb_partition(m.element_centroids(), np.ones(m.ne), 8)
    assert np.bincount(part, minlength=8).tolist() == [8] * 8
