"""Mesh persistence round trips and VTK export."""

import numpy as np
import pytest

from repro.mesh import box_mesh, single_tet
from repro.mesh.io import load_mesh, save_mesh, write_vtk


def test_save_load_roundtrip(tmp_path):
    m = box_mesh(2, 3, 2)
    path = str(tmp_path / "mesh.npz")
    save_mesh(path, m)
    m2, sol = load_mesh(path)
    assert sol is None
    assert np.array_equal(m2.coords, m.coords)
    assert np.array_equal(m2.elems, m.elems)
    assert np.array_equal(m2.edges, m.edges)  # connectivity re-derived
    m2.check()


def test_save_load_with_solution(tmp_path):
    m = single_tet()
    sol = np.arange(4 * 5, dtype=float).reshape(4, 5)
    path = str(tmp_path / "s.npz")
    save_mesh(path, m, solution=sol)
    _m2, sol2 = load_mesh(path)
    assert np.array_equal(sol2, sol)


def test_solution_shape_validated(tmp_path):
    m = single_tet()
    with pytest.raises(ValueError, match="solution"):
        save_mesh(str(tmp_path / "x.npz"), m, solution=np.zeros((3, 1)))


def test_version_check(tmp_path):
    m = single_tet()
    path = str(tmp_path / "v.npz")
    np.savez(path, format_version=np.int64(99), coords=m.coords, elems=m.elems)
    with pytest.raises(ValueError, match="version"):
        load_mesh(path)


def test_vtk_export(tmp_path):
    m = box_mesh(1, 1, 1)
    path = str(tmp_path / "out.vtk")
    write_vtk(
        path,
        m,
        point_data={"rho": np.ones(m.nv)},
        cell_data={"part": np.arange(m.ne, dtype=float)},
    )
    text = open(path).read()
    assert text.startswith("# vtk DataFile Version 3.0")
    assert f"POINTS {m.nv} double" in text
    assert f"CELLS {m.ne} {5 * m.ne}" in text
    assert "SCALARS rho double 1" in text
    assert "SCALARS part double 1" in text
    assert text.count("\n10") >= m.ne - 1  # VTK_TETRA cell types


def test_vtk_field_shape_checks(tmp_path):
    m = single_tet()
    with pytest.raises(ValueError, match="point field"):
        write_vtk(str(tmp_path / "a.vtk"), m, point_data={"x": np.zeros(2)})
    with pytest.raises(ValueError, match="cell field"):
        write_vtk(str(tmp_path / "b.vtk"), m, cell_data={"x": np.zeros(2)})
