"""TetMesh construction, invariants, and generators."""

import numpy as np
import pytest

from repro.mesh import TetMesh, box_mesh, rotor_domain_mesh, single_tet, tet_volumes


def test_box_mesh_counts():
    m = box_mesh(2, 3, 4)
    assert m.nv == 3 * 4 * 5
    assert m.ne == 6 * 2 * 3 * 4
    m.check()


def test_box_mesh_fills_volume():
    m = box_mesh(3, 2, 2, bounds=((0, 2), (0, 1), (0, 1)))
    assert m.total_volume() == pytest.approx(2.0)


def test_box_mesh_conforming():
    """Every interior face is shared by exactly 2 elements — already enforced
    by build_faces; additionally Euler-consistency for a 3-ball:
    V - E + F - T = 1 for a simply-connected tetrahedralised ball."""
    m = box_mesh(2, 2, 2)
    nfaces = (4 * m.ne + m.nbnd) // 2
    assert m.nv - m.nedges + nfaces - m.ne == 1


def test_orientation_fixed():
    coords = np.array(
        [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
    )
    elems = np.array([[0, 2, 1, 3]])  # negatively oriented
    m = TetMesh.from_elems(coords, elems)
    assert tet_volumes(m.coords, m.elems)[0] > 0


def test_rejects_bad_shapes():
    with pytest.raises(ValueError, match="coords"):
        TetMesh.from_elems(np.zeros((4, 2)), np.array([[0, 1, 2, 3]]))
    with pytest.raises(ValueError, match="elems"):
        TetMesh.from_elems(np.zeros((4, 3)), np.array([[0, 1, 2]]))
    with pytest.raises(ValueError, match="out of range"):
        TetMesh.from_elems(np.zeros((4, 3)), np.array([[0, 1, 2, 7]]))


def test_edge_and_vertex_adjacency():
    m = single_tet()
    for e in range(m.nedges):
        assert m.edge_elems(e).tolist() == [0]
    for v in range(4):
        assert len(m.vertex_edges(v)) == 3  # each vertex touches 3 edges


def test_sizes_dict_matches_table1_columns():
    m = single_tet()
    assert m.sizes() == {"vertices": 4, "elements": 1, "edges": 6, "bdy_faces": 4}


def test_rotor_domain_mesh_blade_inside():
    mesh, blade = rotor_domain_mesh(resolution=3)
    mesh.check()
    lo = mesh.coords.min(axis=0)
    hi = mesh.coords.max(axis=0)
    for pt in (blade.start, blade.end):
        assert np.all(np.asarray(pt) >= lo) and np.all(np.asarray(pt) <= hi)
    # some vertices must be near the blade (feature region non-empty)
    d = blade.distance(mesh.coords)
    assert (d < blade.radius * 3).any()


def test_blade_distance_endpoints():
    from repro.mesh import BladeSpec

    blade = BladeSpec(start=(0, 0, 0), end=(1, 0, 0), radius=0.1)
    pts = np.array([[0.5, 0.0, 0.0], [0.5, 2.0, 0.0], [-1.0, 0.0, 0.0]])
    assert blade.distance(pts) == pytest.approx([0.0, 2.0, 1.0])
