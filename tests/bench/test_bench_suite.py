"""The benchmark suite: registry, schema validation, baseline comparison."""

import copy

import pytest

from repro.bench import (
    BENCHES,
    QUICK_BENCHES,
    SchemaError,
    compare_runs,
    merge_results,
    run_suite,
    validate_results,
)


@pytest.fixture(scope="module")
def doc():
    return run_suite(("table1", "ext_vm_vs_ledger"), resolution=3, profile="quick")


def test_registry_is_consistent():
    assert set(QUICK_BENCHES) <= set(BENCHES)
    for name, bench in BENCHES.items():
        assert bench.name == name
        assert bench.description
        assert callable(bench.fn)


def test_run_suite_produces_valid_document(doc):
    stats = validate_results(doc)
    assert stats == {"runs": 1, "benches": 2}
    run = doc["runs"]["quick"]
    assert run["resolution"] == 3
    for rec in run["benches"].values():
        assert rec["wall_seconds"] > 0
    # the VM-vs-ledger bench reports its two virtual clocks as extras
    extra = run["benches"]["ext_vm_vs_ledger"]["extra"]
    assert extra["ledger_virtual_seconds"] > 0
    assert extra["vm_virtual_seconds"] > 0


def test_run_suite_rejects_unknown_bench():
    with pytest.raises(KeyError, match="unknown benches"):
        run_suite(("nope",), resolution=3)


def test_schema_rejects_malformed_documents(doc):
    for mutate in (
        lambda d: d.update(schema="other/v1"),
        lambda d: d["suite"].pop("numpy"),
        lambda d: d["runs"].update(weird={"resolution": 3, "benches": {}}),
        lambda d: d["runs"]["quick"].update(resolution=0),
        lambda d: d["runs"]["quick"]["benches"]["table1"].update(wall_seconds=0),
        lambda d: d["runs"]["quick"]["benches"]["table1"].update(bogus=1),
        lambda d: d["runs"]["quick"]["benches"]["table1"].update(
            reference_wall_seconds=1.0
        ),  # requires speedup_vs_reference alongside
    ):
        bad = copy.deepcopy(doc)
        mutate(bad)
        with pytest.raises(SchemaError):
            validate_results(bad)


def test_merge_keeps_other_profiles(doc):
    other = copy.deepcopy(doc)
    other["runs"] = {"full": {"resolution": 5, "benches": doc["runs"]["quick"]["benches"]}}
    merged = merge_results(other, doc)
    assert set(merged["runs"]) == {"full", "quick"}
    assert merged["runs"]["full"]["resolution"] == 5
    assert merge_results(None, doc) is doc


def test_compare_flags_wall_regression_and_virtual_drift(doc):
    assert compare_runs(doc, doc, "quick") == []
    # no matching profile in the baseline -> nothing to compare
    base = copy.deepcopy(doc)
    base["runs"]["full"] = base["runs"].pop("quick")
    assert compare_runs(doc, base, "quick") == []

    slow = copy.deepcopy(doc)
    rec = slow["runs"]["quick"]["benches"]["table1"]
    rec["wall_seconds"] = doc["runs"]["quick"]["benches"]["table1"]["wall_seconds"] * 2
    failures = compare_runs(slow, doc, "quick", max_regress=1.15, abs_slack=0.0)
    assert len(failures) == 1 and "wall regression" in failures[0]
    assert compare_runs(slow, doc, "quick", max_regress=2.5, abs_slack=0.0) == []
    # absolute slack absorbs timer noise on sub-second benches
    assert compare_runs(slow, doc, "quick", max_regress=1.15, abs_slack=10.0) == []

    drift = copy.deepcopy(doc)
    vps = drift["runs"]["quick"]["benches"]["ext_vm_vs_ledger"][
        "virtual_phase_seconds"
    ]
    if vps:
        key = next(iter(vps))
        vps[key] += 1.0
    else:
        vps["marking"] = 1.0
    failures = compare_runs(drift, doc, "quick")
    assert len(failures) == 1 and "virtual phase seconds changed" in failures[0]

    mismatched = copy.deepcopy(doc)
    mismatched["runs"]["quick"]["resolution"] = 4
    failures = compare_runs(mismatched, doc, "quick")
    assert len(failures) == 1 and "resolution mismatch" in failures[0]
