"""Periodic control volumes across opposite domain faces (paper §2)."""

import numpy as np
import pytest

from repro.mesh import box_mesh
from repro.solver import EulerSolver, spherical_blast_field, uniform_flow
from repro.solver.periodic import box_periodic_pairs, validate_pairs


def test_box_pairs_matched():
    m = box_mesh(3, 3, 3)
    pairs = box_periodic_pairs(m, axis=0)
    assert pairs.shape == (16, 2)  # 4x4 vertices per face
    # matched points agree in the transverse coordinates
    assert np.allclose(m.coords[pairs[:, 0], 1:], m.coords[pairs[:, 1], 1:])
    assert np.allclose(m.coords[pairs[:, 0], 0], 0.0)
    assert np.allclose(m.coords[pairs[:, 1], 0], 1.0)


def test_axis_validation():
    m = box_mesh(2, 2, 2)
    with pytest.raises(ValueError, match="axis"):
        box_periodic_pairs(m, axis=5)


def test_validate_pairs_rejects_duplicates():
    m = box_mesh(2, 2, 2)
    with pytest.raises(ValueError, match="at most one"):
        validate_pairs(m, np.array([[0, 1], [1, 2]]))
    with pytest.raises(ValueError, match="out of range"):
        validate_pairs(m, np.array([[0, 10_000]]))


def test_periodic_pair_states_stay_identical():
    m = box_mesh(3, 3, 3)
    pairs = box_periodic_pairs(m, axis=0)
    q = spherical_blast_field(m.coords, center=(0.2, 0.5, 0.5), radius=0.2)
    s = EulerSolver(m, q, periodic_pairs=pairs)
    s.run(8, cfl=0.3)
    assert np.allclose(s.q[pairs[:, 0]], s.q[pairs[:, 1]])
    assert np.all(np.isfinite(s.q))
    assert np.all(s.q[:, 0] > 0)


def test_periodic_uniform_flow_steady():
    m = box_mesh(3, 3, 3)
    pairs = box_periodic_pairs(m, axis=0)
    s = EulerSolver(m, uniform_flow(m.coords, vel=(0.3, 0, 0)),
                    periodic_pairs=pairs)
    q0 = s.q.copy()
    s.run(5)
    assert np.allclose(s.q, q0, atol=1e-11)


def test_feature_wraps_through_seam():
    """A blast near the x=0 face must influence the x=1 face through the
    periodic seam (the paper's 'information from opposite sides')."""
    m = box_mesh(4, 4, 4)
    q = spherical_blast_field(m.coords, center=(0.05, 0.5, 0.5), radius=0.15)
    pairs = box_periodic_pairs(m, axis=0)
    on_hi = np.flatnonzero(np.isclose(m.coords[:, 0], 1.0))

    s_per = EulerSolver(m, q.copy(), periodic_pairs=pairs)
    s_per.run(6, cfl=0.3)
    s_wall = EulerSolver(m, q.copy())
    s_wall.run(6, cfl=0.3)

    # with periodicity the high face feels the blast; with frozen walls
    # the high-face states cannot change at all
    assert np.allclose(s_wall.q[on_hi], q[on_hi])
    moved = np.abs(s_per.q[on_hi] - q[on_hi]).max()
    assert moved > 1e-8
