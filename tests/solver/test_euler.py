"""Euler solver: dual-mesh geometry, conservation, free-stream preservation,
stability, and feature development."""

import numpy as np
import pytest

from repro.mesh import box_mesh, rotor_domain_mesh
from repro.solver import (
    EulerSolver,
    dual_volumes,
    edge_normals,
    rotor_acoustics_field,
    spherical_blast_field,
    uniform_flow,
)


def test_dual_volumes_tile_the_domain():
    m = box_mesh(3, 3, 3)
    dv = dual_volumes(m)
    assert dv.sum() == pytest.approx(m.total_volume())
    assert np.all(dv > 0)


def test_edge_normals_close_at_interior_vertices():
    """Median-dual closure: Σ_j n_ij = 0 for interior vertices — the
    discrete free-stream-preservation condition."""
    m = box_mesh(3, 3, 3)
    n = edge_normals(m)
    acc = np.zeros((m.nv, 3))
    np.add.at(acc, m.edges[:, 0], n)
    np.subtract.at(acc, m.edges[:, 1], n)
    interior = np.ones(m.nv, dtype=bool)
    interior[np.unique(m.bnd_faces)] = False
    assert interior.any()
    assert np.allclose(acc[interior], 0.0, atol=1e-13)


def test_uniform_flow_is_steady():
    m = box_mesh(3, 3, 3)
    s = EulerSolver(m, uniform_flow(m.coords, vel=(0.4, 0.2, -0.1)))
    q0 = s.q.copy()
    s.run(5)
    assert np.allclose(s.q, q0, atol=1e-12)


def test_interior_conservation():
    """With frozen boundaries, interior mass change equals the flux through
    edges touching the boundary — pure interior exchange cancels exactly."""
    mesh, blade = rotor_domain_mesh(resolution=3)
    s = EulerSolver(mesh, rotor_acoustics_field(mesh.coords, blade))
    res = s.residual()
    # residual is an exact redistribution: summed over ALL vertices it
    # telescopes to zero (each edge adds +f to one end, -f to the other)
    assert np.allclose(res.sum(axis=0), 0.0, atol=1e-9)


def test_blast_wave_runs_stably():
    m = box_mesh(4, 4, 4)
    q = spherical_blast_field(m.coords, center=(0.5, 0.5, 0.5), radius=0.2)
    s = EulerSolver(m, q)
    for _ in range(10):
        dt = s.step(cfl=0.4)
        assert dt > 0
    rho = s.q[:, 0]
    assert np.all(rho > 0)
    assert np.all(np.isfinite(s.q))


def test_blast_wave_spreads():
    m = box_mesh(4, 4, 4)
    q = spherical_blast_field(m.coords, center=(0.5, 0.5, 0.5), radius=0.2)
    s = EulerSolver(m, q)
    r = np.linalg.norm(m.coords - 0.5, axis=1)
    shell = (r > 0.3) & (r < 0.45)
    p_before = s.q[shell, 4].mean()
    s.run(15, cfl=0.4)
    p_after = s.q[shell, 4].mean()
    assert p_after > p_before  # energy is moving outward


def test_state_shape_validation():
    m = box_mesh(1, 1, 1)
    with pytest.raises(ValueError, match="state"):
        EulerSolver(m, np.zeros((3, 5)))


def test_work_model_edge_dominated():
    m = box_mesh(2, 2, 2)
    s = EulerSolver(m, uniform_flow(m.coords))
    assert s.work_per_iteration() > 8.0 * m.nedges
