"""Piecewise-linear reconstruction: gradient exactness, limiter bounds,
and second-order solver behaviour."""

import numpy as np
import pytest

from repro.mesh import box_mesh
from repro.solver import EulerSolver, spherical_blast_field, uniform_flow
from repro.solver.reconstruct import (
    limit_barth_jespersen,
    lsq_gradients,
    muscl_edge_states,
)


def test_lsq_gradients_exact_for_linear_fields():
    m = box_mesh(3, 3, 3)
    coeffs = np.array([[2.0, -1.0, 0.5], [0.0, 3.0, 1.0]])  # two components
    q = m.coords @ coeffs.T + np.array([1.0, -2.0])
    g = lsq_gradients(m, q)
    for c in range(2):
        assert np.allclose(g[:, c, :], coeffs[c], atol=1e-9)


def test_lsq_gradients_zero_for_constant():
    m = box_mesh(2, 2, 2)
    g = lsq_gradients(m, np.full((m.nv, 1), 7.0))
    assert np.allclose(g, 0.0, atol=1e-12)


def test_limiter_is_one_for_smooth_linear():
    m = box_mesh(3, 3, 3)
    q = (m.coords @ np.array([1.0, 2.0, 3.0]))[:, None]
    g = lsq_gradients(m, q)
    psi = limit_barth_jespersen(m, q, g)
    # a linear field's extrapolations sit exactly on the envelope
    assert np.all(psi >= 1.0 - 1e-9)


def test_limiter_clips_at_extrema():
    m = box_mesh(3, 3, 3)
    q = np.zeros((m.nv, 1))
    peak = np.argmin(np.linalg.norm(m.coords - 0.5, axis=1))
    q[peak] = 1.0  # isolated spike: its own gradient must be limited
    g = lsq_gradients(m, q)
    psi = limit_barth_jespersen(m, q, g)
    assert np.all((psi >= 0.0) & (psi <= 1.0))
    assert psi[peak, 0] < 1.0


def test_muscl_states_within_envelope():
    m = box_mesh(3, 3, 3)
    rng = np.random.default_rng(0)
    q = rng.random((m.nv, 2))
    g = lsq_gradients(m, q)
    psi = limit_barth_jespersen(m, q, g)
    qL, qR = muscl_edge_states(m, q, g, psi)
    lo, hi = q.min(axis=0), q.max(axis=0)
    eps = 1e-9
    assert np.all(qL >= lo - eps) and np.all(qL <= hi + eps)
    assert np.all(qR >= lo - eps) and np.all(qR <= hi + eps)


def test_second_order_preserves_uniform_flow():
    m = box_mesh(3, 3, 3)
    s = EulerSolver(m, uniform_flow(m.coords, vel=(0.3, 0.1, 0.0)), order=2)
    q0 = s.q.copy()
    s.run(5)
    assert np.allclose(s.q, q0, atol=1e-11)


def test_second_order_less_dissipative():
    """The blast's density peak must survive better at order 2."""
    m = box_mesh(4, 4, 4)
    q0 = spherical_blast_field(m.coords, center=(0.5, 0.5, 0.5), radius=0.25)
    results = {}
    for order in (1, 2):
        s = EulerSolver(m, q0.copy(), order=order)
        s.run(8, cfl=0.3)
        results[order] = s.q[:, 0].max()
    assert results[2] > results[1]


def test_second_order_stable_and_positive():
    m = box_mesh(4, 4, 4)
    q0 = spherical_blast_field(m.coords, center=(0.5, 0.5, 0.5), radius=0.2)
    s = EulerSolver(m, q0, order=2)
    s.run(10, cfl=0.3)
    assert np.all(np.isfinite(s.q))
    assert np.all(s.q[:, 0] > 0)


def test_order_validation():
    m = box_mesh(1, 1, 1)
    with pytest.raises(ValueError, match="order"):
        EulerSolver(m, uniform_flow(m.coords), order=3)
