"""Conservative/primitive conversions and wave speeds."""

import numpy as np
import pytest

from repro.solver import (
    GAMMA,
    conservative,
    max_wave_speed,
    pressure,
    primitive,
    sound_speed,
)


def test_roundtrip():
    rho = np.array([1.0, 2.5])
    vel = np.array([[0.3, -0.1, 0.2], [0.0, 1.0, 0.0]])
    p = np.array([1.0, 3.0])
    q = conservative(rho, vel, p)
    r2, v2, p2 = primitive(q)
    assert np.allclose(r2, rho)
    assert np.allclose(v2, vel)
    assert np.allclose(p2, p)


def test_still_gas_sound_speed():
    q = conservative(np.array([1.0]), np.zeros((1, 3)), np.array([1.0]))
    assert sound_speed(q)[0] == pytest.approx(np.sqrt(GAMMA))
    assert max_wave_speed(q)[0] == pytest.approx(np.sqrt(GAMMA))


def test_energy_definition():
    q = conservative(np.array([2.0]), np.array([[3.0, 0, 0]]), np.array([5.0]))
    # E = p/(gamma-1) + rho v^2/2 = 12.5 + 9
    assert q[0, 4] == pytest.approx(5.0 / 0.4 + 0.5 * 2.0 * 9.0)
    assert pressure(q)[0] == pytest.approx(5.0)


def test_positivity_enforced():
    with pytest.raises(ValueError):
        conservative(np.array([-1.0]), np.zeros((1, 3)), np.array([1.0]))
    with pytest.raises(ValueError):
        conservative(np.array([1.0]), np.zeros((1, 3)), np.array([0.0]))
