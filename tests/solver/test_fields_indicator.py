"""Synthetic fields and the edge error indicator."""

import numpy as np
import pytest

from repro.adapt import target_by_fraction
from repro.mesh import box_mesh, edge_midpoints, rotor_domain_mesh
from repro.solver import (
    density_indicator,
    edge_error_indicator,
    mach_indicator,
    primitive,
    rotor_acoustics_field,
    spherical_blast_field,
    uniform_flow,
)


def test_uniform_field_zero_indicator():
    m = box_mesh(2, 2, 2)
    q = uniform_flow(m.coords)
    assert np.allclose(density_indicator(m, q), 0.0)
    assert np.allclose(mach_indicator(m, q), 0.0)


def test_rotor_field_concentrates_error_near_blade():
    mesh, blade = rotor_domain_mesh(resolution=5)
    q = rotor_acoustics_field(mesh.coords, blade)
    err = density_indicator(mesh, q)
    mask = target_by_fraction(err, 0.05)
    mid = edge_midpoints(mesh.coords, mesh.edges)
    d = blade.distance(mid)
    # targeted edges (blade layer + acoustic front) sit markedly closer to
    # the blade than the average edge
    assert d[mask].mean() < 0.75 * d.mean()


def test_rotor_field_valid_state():
    mesh, blade = rotor_domain_mesh(resolution=3)
    q = rotor_acoustics_field(mesh.coords, blade, tip_mach=0.9)
    rho, vel, p = primitive(q)
    assert np.all(rho > 0) and np.all(p > 0)
    assert np.linalg.norm(vel, axis=1).max() <= 0.9 + 1e-9


def test_blast_field_radial_structure():
    m = box_mesh(4, 4, 4)  # (0.5, 0.5, 0.5) is a grid vertex
    q = spherical_blast_field(m.coords, center=(0.5, 0.5, 0.5), radius=0.25)
    rho = q[:, 0]
    r = np.linalg.norm(m.coords - 0.5, axis=1)
    assert rho[r < 0.15].mean() > rho[r > 0.6].mean()


def test_indicator_length_scaling():
    m = box_mesh(2, 2, 2)
    qty = m.coords[:, 0] ** 2
    raw = edge_error_indicator(m, qty, length_scaled=False)
    scaled = edge_error_indicator(m, qty, length_scaled=True)
    assert raw.shape == (m.nedges,)
    assert not np.allclose(raw, scaled)


def test_indicator_shape_check():
    m = box_mesh(1, 1, 1)
    with pytest.raises(ValueError):
        edge_error_indicator(m, np.zeros(3))
