"""HLLC flux and SSP Runge–Kutta integrators."""

import numpy as np
import pytest

from repro.mesh import box_mesh
from repro.solver import EulerSolver, spherical_blast_field, uniform_flow
from repro.solver.fluxes import hllc_flux, physical_flux, rusanov_flux
from repro.solver.state import conservative


def _edge_setup(n_edges, seed=0):
    rng = np.random.default_rng(seed)
    rho = 0.5 + rng.random(n_edges)
    vel = rng.normal(scale=0.3, size=(n_edges, 3))
    p = 0.5 + rng.random(n_edges)
    q = conservative(rho, vel, p)
    n = rng.normal(size=(n_edges, 3))
    return q, n


class TestFluxFunctions:
    def test_consistency_equal_states(self):
        """F(q, q, n) must reduce to the physical flux."""
        q, n = _edge_setup(50)
        phys = physical_flux(q, n)
        assert np.allclose(rusanov_flux(q, q, n), phys, atol=1e-12)
        assert np.allclose(hllc_flux(q, q, n), phys, atol=1e-9)

    def test_hllc_resolves_stationary_contact(self):
        """A stationary contact (equal p, zero normal velocity, jumped rho)
        must produce zero HLLC flux — Rusanov smears it."""
        n_edges = 10
        n = np.tile(np.array([1.0, 0.0, 0.0]), (n_edges, 1))
        qL = conservative(np.full(n_edges, 1.0), np.zeros((n_edges, 3)),
                          np.full(n_edges, 1.0))
        qR = conservative(np.full(n_edges, 3.0), np.zeros((n_edges, 3)),
                          np.full(n_edges, 1.0))
        f_hllc = hllc_flux(qL, qR, n)
        f_rus = rusanov_flux(qL, qR, n)
        # exact contact preservation: only the pressure term remains, and
        # zero mass/energy transfer across the interface
        assert np.allclose(f_hllc, physical_flux(qL, n), atol=1e-10)
        assert np.allclose(f_hllc[:, 0], 0.0, atol=1e-10)
        assert np.allclose(f_hllc[:, 4], 0.0, atol=1e-10)
        # Rusanov smears the contact with a nonzero mass flux
        assert np.abs(f_rus[:, 0]).max() > 0.1

    def test_rotational_invariance_of_rusanov(self):
        """Scaling the interface area scales the flux linearly."""
        q, n = _edge_setup(20, seed=1)
        qL, qR = q, np.roll(q, 1, axis=0)
        f1 = rusanov_flux(qL, qR, n)
        f2 = rusanov_flux(qL, qR, 2.0 * n)
        assert np.allclose(f2, 2.0 * f1)


class TestTimeSchemes:
    @pytest.mark.parametrize("scheme", ["euler", "rk2", "rk3"])
    @pytest.mark.parametrize("flux", ["rusanov", "hllc"])
    def test_uniform_flow_steady(self, scheme, flux):
        m = box_mesh(2, 2, 2)
        s = EulerSolver(m, uniform_flow(m.coords, vel=(0.4, -0.1, 0.2)),
                        flux=flux, time_scheme=scheme)
        q0 = s.q.copy()
        s.run(3)
        assert np.allclose(s.q, q0, atol=1e-10)

    @pytest.mark.parametrize("scheme", ["rk2", "rk3"])
    def test_rk_stable_on_blast(self, scheme):
        m = box_mesh(3, 3, 3)
        q = spherical_blast_field(m.coords, center=(0.5, 0.5, 0.5), radius=0.2)
        s = EulerSolver(m, q, time_scheme=scheme, flux="hllc")
        s.run(8, cfl=0.5)
        assert np.all(np.isfinite(s.q))
        assert np.all(s.q[:, 0] > 0)

    def test_hllc_less_dissipative_than_rusanov(self):
        m = box_mesh(4, 4, 4)
        q0 = spherical_blast_field(m.coords, center=(0.5, 0.5, 0.5), radius=0.25)
        peaks = {}
        for flux in ("rusanov", "hllc"):
            s = EulerSolver(m, q0.copy(), flux=flux)
            s.run(8, cfl=0.3)
            peaks[flux] = s.q[:, 0].max()
        assert peaks["hllc"] >= peaks["rusanov"]

    def test_option_validation(self):
        m = box_mesh(1, 1, 1)
        with pytest.raises(ValueError, match="flux"):
            EulerSolver(m, uniform_flow(m.coords), flux="roe")
        with pytest.raises(ValueError, match="time_scheme"):
            EulerSolver(m, uniform_flow(m.coords), time_scheme="rk9")
