"""Finalization gather and element migration."""

import numpy as np
import pytest

from repro.dist import decompose, finalize, migrate
from repro.mesh import box_mesh, tet_volumes, two_tets
from repro.partition import Graph, multilevel_kway


def canonical(mesh):
    """Order-independent signature of a mesh: sorted element coordinate
    multisets."""
    pts = np.sort(
        mesh.coords[np.sort(mesh.elems, axis=1)].reshape(mesh.ne, -1), axis=1
    )
    order = np.lexsort(pts.T)
    return pts[order]


class TestFinalize:
    def test_roundtrip_two_tets(self):
        m = two_tets()
        locals_ = decompose(m, np.array([0, 1]), 2)
        res = finalize(locals_)
        assert res.mesh.ne == m.ne
        assert res.mesh.nv == m.nv
        assert np.allclose(canonical(res.mesh), canonical(m))
        assert res.gather_seconds > 0

    @pytest.mark.parametrize("nproc", [2, 3, 5])
    def test_roundtrip_box(self, nproc):
        m = box_mesh(3, 3, 3)
        g = Graph.from_pairs(m.dual_pairs, m.ne)
        part = multilevel_kway(g, nproc, seed=1)
        res = finalize(decompose(m, part, nproc))
        assert res.mesh.ne == m.ne
        assert res.mesh.nv == m.nv
        assert res.mesh.nedges == m.nedges
        assert res.mesh.nbnd == m.nbnd
        assert np.allclose(canonical(res.mesh), canonical(m))
        # volume conserved exactly
        assert res.mesh.total_volume() == pytest.approx(m.total_volume())
        # new global numbering is a bijection
        for new_ids in res.vert_new_global:
            assert np.all(new_ids >= 0)
        all_owned = np.concatenate(
            [ids for ids in res.vert_new_global]
        )
        assert set(all_owned.tolist()) == set(range(m.nv))

    def test_gather_cost_grows_with_ranks(self):
        m = box_mesh(3, 3, 3)
        g = Graph.from_pairs(m.dual_pairs, m.ne)
        t = {}
        for p in (2, 8):
            part = multilevel_kway(g, p, seed=0)
            t[p] = finalize(decompose(m, part, p)).gather_seconds
        # more senders -> more messages into the host
        assert t[8] > 0 and t[2] > 0


class TestMigrate:
    def test_matches_fresh_decomposition(self):
        m = box_mesh(3, 3, 3)
        g = Graph.from_pairs(m.dual_pairs, m.ne)
        old = multilevel_kway(g, 4, seed=0)
        new = multilevel_kway(g, 4, seed=7)
        locals_ = decompose(m, old, 4)
        res = migrate(m, locals_, new)
        fresh = decompose(m, new, 4)
        assert res.elements_moved == int((old != new).sum())
        for a, b in zip(res.locals, fresh):
            assert np.array_equal(a.elem_l2g, b.elem_l2g)
            assert np.array_equal(a.vert_l2g, b.vert_l2g)
            assert np.array_equal(a.vert_spl_dat, b.vert_spl_dat)
            a.check(m)

    def test_noop_migration(self):
        m = two_tets()
        part = np.array([0, 1])
        locals_ = decompose(m, part, 2)
        res = migrate(m, locals_, part)
        assert res.elements_moved == 0
        assert res.messages == 0

    def test_more_movement_costs_more(self):
        m = box_mesh(3, 3, 3)
        g = Graph.from_pairs(m.dual_pairs, m.ne)
        old = multilevel_kway(g, 4, seed=0)
        locals_ = decompose(m, old, 4)
        # small perturbation vs full permutation of partitions
        small = old.copy()
        small[:10] = (small[:10] + 1) % 4
        rolled = (old + 1) % 4
        t_small = migrate(m, locals_, small).seconds
        t_big = migrate(m, locals_, rolled).seconds
        assert t_small < t_big

    def test_validation(self):
        m = two_tets()
        locals_ = decompose(m, np.array([0, 1]), 2)
        with pytest.raises(ValueError, match="shape"):
            migrate(m, locals_, np.array([0]))
