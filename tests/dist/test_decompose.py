"""Initialization phase: decomposition and SPL consistency."""

import numpy as np
import pytest

from repro.dist import decompose
from repro.mesh import box_mesh, two_tets
from repro.partition import Graph, multilevel_kway


def test_two_tets_two_ranks():
    m = two_tets()
    locals_ = decompose(m, np.array([0, 1]), 2)
    assert len(locals_) == 2
    for lm in locals_:
        assert lm.ne == 1
        assert lm.nv == 4
        lm.check(m)
    # the shared face (1,2,3): 3 shared vertices, 3 shared edges per side
    for lm in locals_:
        assert lm.vert_shared.sum() == 3
        assert lm.edge_shared.sum() == 3
        for v in np.flatnonzero(lm.vert_shared):
            assert lm.vertex_spl(v).tolist() == [1 - lm.rank]


def test_partition_of_box_covers_everything():
    m = box_mesh(3, 3, 3)
    g = Graph.from_pairs(m.dual_pairs, m.ne)
    part = multilevel_kway(g, 4, seed=0)
    locals_ = decompose(m, part, 4)
    assert sum(lm.ne for lm in locals_) == m.ne
    # every global element appears exactly once
    all_elems = np.concatenate([lm.elem_l2g for lm in locals_])
    assert np.array_equal(np.sort(all_elems), np.arange(m.ne))
    # every global vertex/edge appears on at least one rank
    assert set(np.concatenate([lm.vert_l2g for lm in locals_])) == set(range(m.nv))
    assert set(np.concatenate([lm.edge_l2g for lm in locals_])) == set(
        range(m.nedges)
    )
    for lm in locals_:
        lm.check(m)


def test_spl_symmetry():
    """If rank a lists rank b for a shared vertex, b lists a for the same
    global vertex."""
    m = box_mesh(2, 2, 2)
    part = np.arange(m.ne) % 3
    locals_ = decompose(m, part, 3)
    spl_by_global: dict[int, dict[int, list]] = {}
    for lm in locals_:
        for lv in np.flatnonzero(lm.vert_shared):
            g = int(lm.vert_l2g[lv])
            spl_by_global.setdefault(g, {})[lm.rank] = sorted(
                lm.vertex_spl(lv).tolist()
            )
    for g, per_rank_spl in spl_by_global.items():
        ranks = sorted(per_rank_spl)
        for r, spl in per_rank_spl.items():
            assert spl == [x for x in ranks if x != r], (g, r)


def test_shared_fraction_reasonable():
    m = box_mesh(4, 4, 4)
    g = Graph.from_pairs(m.dual_pairs, m.ne)
    part = multilevel_kway(g, 4, seed=0)
    locals_ = decompose(m, part, 4)
    # a good partition keeps the shared fraction modest (paper: the extra
    # parallel storage was < 10%; our meshes are smaller so allow more)
    for lm in locals_:
        assert lm.shared_fraction() < 0.5
    # random partitions share much more — the locality penalty is visible
    rng = np.random.default_rng(0)
    scattered = decompose(m, rng.integers(0, 4, m.ne), 4)
    assert (
        sum(lm.shared_fraction() for lm in scattered)
        > sum(lm.shared_fraction() for lm in locals_)
    )


def test_input_validation():
    m = two_tets()
    with pytest.raises(ValueError, match="shape"):
        decompose(m, np.array([0]), 2)
    with pytest.raises(ValueError, match="labels"):
        decompose(m, np.array([0, 5]), 2)


def test_empty_rank_allowed():
    m = two_tets()
    locals_ = decompose(m, np.array([0, 0]), 2)
    assert locals_[0].ne == 2
    assert locals_[1].ne == 0
    assert locals_[0].shared_fraction() == 0.0
