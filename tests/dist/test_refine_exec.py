"""Distributed subdivision merges to exactly the global refinement."""

import numpy as np
import pytest

from repro.adapt import propagate_markings, subdivide
from repro.dist import decompose
from repro.dist.refine_exec import canonical_signature, parallel_refine
from repro.mesh import box_mesh, two_tets
from repro.parallel import IDEAL
from repro.partition import Graph, multilevel_kway


@pytest.mark.parametrize("nproc", [1, 2, 4])
@pytest.mark.parametrize("seed,frac", [(0, 0.15), (1, 0.4)])
def test_merged_equals_global_subdivision(nproc, seed, frac):
    m = box_mesh(3, 3, 3)
    g = Graph.from_pairs(m.dual_pairs, m.ne)
    part = multilevel_kway(g, nproc, seed=0)
    locals_ = decompose(m, part, nproc)
    rng = np.random.default_rng(seed)
    marking = propagate_markings(m, rng.random(m.nedges) < frac)

    par = parallel_refine(m, locals_, marking, machine=IDEAL)
    glob = subdivide(m, marking)

    assert par.total_children == glob.mesh.ne
    assert np.allclose(par.merged_signature(), canonical_signature(glob.mesh))


def test_shared_edge_midpoints_coincide():
    """Both ranks bisecting a shared edge create the *same* midpoint
    coordinates — the inherited-SPL identification is geometrically
    consistent."""
    m = two_tets()
    locals_ = decompose(m, np.array([0, 1]), 2)
    marking = propagate_markings(m, np.ones(m.nedges, dtype=bool))
    par = parallel_refine(m, locals_, marking, machine=IDEAL)
    # each rank produced 8 children of its own element
    assert [lm.ne for lm in par.local_meshes] == [8, 8]
    # midpoints of the 3 shared-face edges appear in both local meshes
    coords0 = {tuple(np.round(c, 12)) for c in par.local_meshes[0].coords}
    coords1 = {tuple(np.round(c, 12)) for c in par.local_meshes[1].coords}
    shared_face = [(1, 2), (1, 3), (2, 3)]
    for a, b in shared_face:
        mid = tuple(np.round(0.5 * (m.coords[a] + m.coords[b]), 12))
        assert mid in coords0 and mid in coords1


def test_face_crossing_messages_counted():
    m = box_mesh(2, 2, 2)
    part = np.arange(m.ne) % 2
    locals_ = decompose(m, part, 2)
    marking = propagate_markings(m, np.ones(m.nedges, dtype=bool))
    par = parallel_refine(m, locals_, marking)
    assert par.messages > 0
    assert par.time_seconds > 0


def test_rejects_non_fixpoint_marking():
    from repro.adapt import MarkingResult

    m = two_tets()
    locals_ = decompose(m, np.array([0, 1]), 2)
    mask = np.zeros(m.nedges, dtype=bool)
    mask[[0, 1]] = True  # not propagated
    bad = MarkingResult(edge_marked=mask, patterns=np.zeros(2, np.int64),
                        iterations=0)
    with pytest.raises(ValueError, match="fixpoint"):
        parallel_refine(m, locals_, bad)


def test_subdivision_time_reflects_imbalance():
    """A rank owning the whole refinement region pays the subdivision time
    alone — the effect the remap-before-subdivision strategy removes."""
    m = box_mesh(3, 3, 3)
    cent = m.coords[m.elems].mean(axis=1)
    part = (cent[:, 0] > 0.5).astype(np.int64)  # split at x = 0.5
    locals_ = decompose(m, part, 2)
    # refine only the x < 0.5 half
    mid_x = 0.5 * (m.coords[m.edges[:, 0], 0] + m.coords[m.edges[:, 1], 0])
    marking = propagate_markings(m, mid_x < 0.45)
    t_skewed = parallel_refine(m, locals_, marking).time_seconds

    # balanced split of the same refinement region (y direction)
    part2 = (cent[:, 1] > 0.5).astype(np.int64)
    locals2 = decompose(m, part2, 2)
    t_balanced = parallel_refine(m, locals2, marking).time_seconds
    assert t_balanced < t_skewed