"""Distributed marking propagation equals the serial fixpoint."""

import numpy as np
import pytest

from repro.adapt import is_valid, propagate_markings
from repro.adapt.marking import element_patterns
from repro.dist import decompose
from repro.dist.exec_phase import parallel_mark
from repro.mesh import box_mesh, two_tets
from repro.parallel import IDEAL
from repro.partition import Graph, multilevel_kway


@pytest.mark.parametrize("nproc", [1, 2, 3, 4, 6])
@pytest.mark.parametrize("seed,frac", [(0, 0.1), (1, 0.25), (2, 0.5)])
def test_matches_serial_fixpoint(nproc, seed, frac):
    m = box_mesh(3, 3, 3)
    g = Graph.from_pairs(m.dual_pairs, m.ne)
    part = multilevel_kway(g, nproc, seed=0)
    locals_ = decompose(m, part, nproc)
    rng = np.random.default_rng(seed)
    marks = rng.random(m.nedges) < frac

    serial = propagate_markings(m, marks)
    par = parallel_mark(m, locals_, marks, machine=IDEAL)
    assert np.array_equal(par.edge_marked, serial.edge_marked)
    assert is_valid(element_patterns(m, par.edge_marked)).all()
    assert par.iterations >= 1


def test_cross_partition_propagation():
    """Marking that must bounce between partitions to stabilise."""
    m = two_tets()
    locals_ = decompose(m, np.array([0, 1]), 2)

    def eid(a, b):
        return int(
            np.flatnonzero(
                (m.edges[:, 0] == min(a, b)) & (m.edges[:, 1] == max(a, b))
            )[0]
        )

    # two edges of the shared face: completion of the face pattern happens
    # on both ranks and must stay consistent
    marks = np.zeros(m.nedges, dtype=bool)
    marks[eid(1, 2)] = True
    marks[eid(1, 3)] = True
    serial = propagate_markings(m, marks)
    par = parallel_mark(m, locals_, marks, machine=IDEAL)
    assert np.array_equal(par.edge_marked, serial.edge_marked)
    assert par.edge_marked[eid(2, 3)]


def test_empty_marks_converge_in_one_round():
    m = box_mesh(2, 2, 2)
    part = np.arange(m.ne) % 2
    locals_ = decompose(m, part, 2)
    par = parallel_mark(m, locals_, np.zeros(m.nedges, dtype=bool), machine=IDEAL)
    assert par.edge_marked.sum() == 0
    assert par.iterations == 1


def test_exchange_traffic_accounted():
    m = box_mesh(3, 3, 3)
    part = np.arange(m.ne) % 4
    locals_ = decompose(m, part, 4)
    rng = np.random.default_rng(3)
    marks = rng.random(m.nedges) < 0.2
    par = parallel_mark(m, locals_, marks)
    assert par.messages > 0
    assert par.words > 0
    assert par.time_seconds > 0


def test_shape_validation():
    m = two_tets()
    locals_ = decompose(m, np.array([0, 1]), 2)
    with pytest.raises(ValueError, match="global edges"):
        parallel_mark(m, locals_, np.zeros(3, dtype=bool))
