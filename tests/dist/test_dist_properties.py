"""Property-based tests for the distributed-mesh layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt import propagate_markings
from repro.dist import decompose, finalize, parallel_mark
from repro.dist.refine_exec import canonical_signature, parallel_refine
from repro.mesh import box_mesh
from repro.parallel import IDEAL


@st.composite
def mesh_and_partition(draw):
    n = draw(st.integers(1, 3))
    m = box_mesh(n, n, n)
    nproc = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 1000))
    rng = np.random.default_rng(seed)
    part = rng.integers(0, nproc, m.ne).astype(np.int64)
    return m, part, nproc, seed


@given(data=mesh_and_partition())
@settings(max_examples=20, deadline=None)
def test_decompose_finalize_roundtrip(data):
    m, part, nproc, _seed = data
    locals_ = decompose(m, part, nproc)
    # element conservation
    assert sum(lm.ne for lm in locals_) == m.ne
    res = finalize(locals_)
    assert res.mesh.ne == m.ne
    assert res.mesh.nv == m.nv
    assert np.allclose(
        canonical_signature(res.mesh), canonical_signature(m)
    )
    assert res.mesh.total_volume() == pytest.approx(m.total_volume())


@given(data=mesh_and_partition(), frac=st.floats(0.0, 0.6))
@settings(max_examples=15, deadline=None)
def test_parallel_mark_always_matches_serial(data, frac):
    m, part, nproc, seed = data
    locals_ = decompose(m, part, nproc)
    rng = np.random.default_rng(seed + 1)
    marks = rng.random(m.nedges) < frac
    serial = propagate_markings(m, marks)
    par = parallel_mark(m, locals_, marks, machine=IDEAL)
    assert np.array_equal(par.edge_marked, serial.edge_marked)


@given(data=mesh_and_partition(), frac=st.floats(0.05, 0.5))
@settings(max_examples=10, deadline=None)
def test_parallel_refine_always_merges_to_global(data, frac):
    from repro.adapt import subdivide

    m, part, nproc, seed = data
    locals_ = decompose(m, part, nproc)
    rng = np.random.default_rng(seed + 2)
    marking = propagate_markings(m, rng.random(m.nedges) < frac)
    par = parallel_refine(m, locals_, marking, machine=IDEAL)
    glob = subdivide(m, marking)
    assert par.total_children == glob.mesh.ne
    assert np.allclose(par.merged_signature(), canonical_signature(glob.mesh))
