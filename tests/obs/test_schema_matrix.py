"""Schema compatibility matrix: every reader handles every version.

One minimal hand-written trace per supported schema version (v1-v5),
pushed through every consumer we ship: ``read_jsonl``,
``validate_jsonl``, ``render_ascii``, ``render_html``, and the causal
``analyze`` entry point.  Old files must keep working forever; this is
the test that enforces it.
"""

import json

import pytest

from repro.obs.causal import analyze
from repro.obs.export import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    read_jsonl,
    validate_jsonl,
)
from repro.obs.report import render_ascii, render_html

_SPAN = {"type": "span", "index": 0, "parent": None, "depth": 0,
         "name": "cycle", "rank": None, "v_start": 0.0, "v_end": 2.0,
         "wall_start": 0.0, "wall_end": 2.0, "attrs": {"cycle": 0}}
_EVENT = {"type": "event", "name": "tick", "v_time": 1.0, "rank": 0,
          "span": 0, "attrs": {}}
_COUNTER = {"type": "counter", "name": "messages", "value": 3}
_GAUGE = {"type": "gauge", "name": "imbalance", "value": 1.25}
_METRIC = {"type": "metric", "name": "repro.lb.imbalance", "kind": "gauge",
           "value": 1.25, "labels": {"strategy": "uf"}, "cycle": 0,
           "rank": None, "v_time": 1.0}
_VM_RUN = {"type": "event", "name": "vm.run", "v_time": 1.0, "rank": None,
           "span": 0, "attrs": {"run": 0, "base": 0.0, "nranks": 2,
                                "makespan": 1.0}}
_NODE_SEND = {"type": "node", "run": 0, "id": 0, "rank": 0, "kind": "send",
              "t_start": 0.0, "t_end": 0.5, "wait": 0.0, "msg": 0}
_NODE_RECV = {"type": "node", "run": 0, "id": 1, "rank": 1, "kind": "recv",
              "t_start": 0.5, "t_end": 1.0, "wait": 0.25, "msg": 0}
_MSG = {"type": "msg", "run": 0, "id": 0, "src": 0, "dst": 1, "tag": 7,
        "nwords": 16, "send_node": 0, "recv_node": 1}
_CLOCK = {"type": "clock", "run": 0, "rank": 0, "offset": 0.001,
          "skew": 0.0002}
_RESOURCE = {"type": "resource", "rank": 0, "t": 0.5,
             "rss_bytes": 1048576, "cpu_seconds": 0.25,
             "gc_collections": 4}


def _meta(schema, **counts):
    base = {"type": "meta", "schema": schema, "spans": 0, "events": 0,
            "counters": 0, "gauges": 0}
    if schema != "repro.obs/v1":
        base["metrics"] = 0
    if schema not in ("repro.obs/v1", "repro.obs/v2"):
        base["nodes"] = 0
        base["msgs"] = 0
    if schema in ("repro.obs/v4", "repro.obs/v5"):
        base["clocks"] = 0
    if schema == "repro.obs/v5":
        base["resources"] = 0
    base.update(counts)
    return base


def _records(schema):
    """A minimal trace exercising every record type ``schema`` allows."""
    version = int(schema.rsplit("v", 1)[1])
    records = [_SPAN, _EVENT, _COUNTER, _GAUGE]
    counts = {"spans": 1, "events": 1, "counters": 1, "gauges": 1}
    if version >= 2:
        records.append(_METRIC)
        counts["metrics"] = 1
    if version >= 3:
        records += [_VM_RUN, _NODE_SEND, _NODE_RECV, _MSG]
        counts["events"] = 2
        counts["nodes"] = 2
        counts["msgs"] = 1
    if version >= 4:
        records.append(_CLOCK)
        counts["clocks"] = 1
    if version >= 5:
        records.append(_RESOURCE)
        counts["resources"] = 1
    return [_meta(schema, **counts)] + records


def _write(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


@pytest.fixture(params=SUPPORTED_SCHEMAS)
def versioned_trace(request, tmp_path):
    return request.param, _write(
        tmp_path / "trace.jsonl", _records(request.param)
    )


def test_matrix_covers_every_supported_schema():
    assert SUPPORTED_SCHEMAS[-1] == SCHEMA_VERSION
    assert len(SUPPORTED_SCHEMAS) == 5


def test_validate_handles_every_version(versioned_trace):
    schema, path = versioned_trace
    version = int(schema.rsplit("v", 1)[1])
    summary = validate_jsonl(path)
    assert summary["spans"] == 1 and summary["counters"] == 1
    assert summary["events"] == (2 if version >= 3 else 1)
    assert summary["metrics"] == (1 if version >= 2 else 0)
    assert summary["nodes"] == (2 if version >= 3 else 0)
    assert summary["clocks"] == (1 if version >= 4 else 0)
    assert summary["resources"] == (1 if version >= 5 else 0)


def test_read_handles_every_version(versioned_trace):
    schema, path = versioned_trace
    version = int(schema.rsplit("v", 1)[1])
    tr = read_jsonl(path)
    assert [s.name for s in tr.spans] == ["cycle"]
    assert tr.counters == {"messages": 3}
    if version >= 2:
        assert tr.metrics.get("repro.lb.imbalance", {"strategy": "uf"},
                              cycle=0) == 1.25
    if version >= 3:
        assert len(tr.causal_nodes) == 2 and len(tr.causal_msgs) == 1
    if version >= 4:
        assert tr.clock_records[0].offset == pytest.approx(0.001)
    if version >= 5:
        (sample,) = tr.resource_samples
        assert sample.rank == 0 and sample.rss_bytes == 1048576


def test_reports_render_every_version(versioned_trace):
    schema, path = versioned_trace
    tr = read_jsonl(path)
    ascii_out = render_ascii(tr, source=str(path))
    html_out = render_html(tr)
    assert "cycle" in ascii_out
    assert html_out.lstrip().startswith("<!DOCTYPE html>")
    if schema == SCHEMA_VERSION:
        assert "Resource usage (per process)" in ascii_out


def test_causal_analyze_every_version(versioned_trace):
    schema, path = versioned_trace
    version = int(schema.rsplit("v", 1)[1])
    analysis = analyze(read_jsonl(path))
    if version >= 3:
        assert analysis.runs
    else:
        assert not analysis.runs


def test_future_schema_rejected(tmp_path):
    from repro.obs.export import SchemaError

    path = _write(tmp_path / "future.jsonl",
                  [_meta("repro.obs/v99")])
    with pytest.raises(SchemaError, match="unsupported schema"):
        validate_jsonl(path)
