"""Unit tests for per-rank wall-clock recording and clock alignment."""

import threading
import time

import pytest

from repro.obs import Tracer
from repro.obs.causal import critical_path, runs_from_tracer, verify_makespans
from repro.obs.wallclock import (
    RECV,
    SEND,
    WORK,
    ClockRecord,
    WallRecorder,
    estimate_offset,
    format_clock_skew,
    merge_streams,
    record_measured_run,
    serve_clock_probes,
)


def test_clock_record_rejects_negative_skew():
    ClockRecord(run=0, rank=0, offset=-1.5, skew=0.0)  # offsets may be <0
    with pytest.raises(ValueError, match="negative clock skew"):
        ClockRecord(run=0, rank=0, offset=0.0, skew=-1e-9)


def test_recorder_tiles_the_rank_interval():
    rec = WallRecorder()
    rec.start(10.0)
    rec.note_op(SEND, 10.5, 10.7)          # gap [10.0, 10.5] becomes work
    rec.note_op(RECV, 10.7, 11.0, wait=0.2)  # adjacent: no synthetic gap
    rec.finish(11.4)                        # trailing work [11.0, 11.4]
    cols = rec.columns()
    assert cols["t0"] == 10.0
    assert cols["kinds"] == [WORK, SEND, RECV, WORK]
    assert cols["starts"] == [10.0, 10.5, 10.7, 11.0]
    assert cols["ends"] == [10.5, 10.7, 11.0, 11.4]
    assert cols["waits"] == [0.0, 0.0, 0.2, 0.0]
    # nodes tile [t0, t_end] with no gaps or overlaps
    assert cols["starts"][0] == cols["t0"]
    for prev_end, start in zip(cols["ends"], cols["starts"][1:]):
        assert prev_end == start


def test_recorder_finish_without_trailing_gap_adds_nothing():
    rec = WallRecorder()
    rec.start(0.0)
    rec.note_op(SEND, 0.0, 1.0)
    rec.finish(1.0)
    assert rec.columns()["kinds"] == [SEND]


def test_recorder_send_and_spill_bookkeeping():
    rec = WallRecorder()
    rec.start(0.0)
    rec.note_send(7, 2, 5, 64, 0.1, 0.2)
    rec.note_spill(0.15, 7)
    cols = rec.columns()
    assert cols["sends"] == [(7, 2, 5, 64)]
    assert cols["spills"] == [(0.15, 7)]
    assert cols["kinds"] == [WORK, SEND]
    assert cols["msgs"] == [-1, 7]


def test_handshake_over_a_pipe():
    import multiprocessing as mp

    parent, child = mp.Pipe()
    server = threading.Thread(target=serve_clock_probes, args=(child,))
    server.start()
    offset, skew = estimate_offset(parent)
    server.join()
    parent.close()
    child.close()
    assert skew > 0.0
    # same process, same clock: the offset must fall within its own bound
    assert abs(offset) <= skew


def test_handshake_detects_a_shifted_peer_clock():
    class SkewedConn:
        """Fake pipe endpoint whose peer clock runs ``delta`` ahead."""

        def __init__(self, delta):
            self.delta = delta
            self._pending = False

        def send(self, _):
            self._pending = True

        def poll(self, timeout=None):
            return self._pending

        def recv(self):
            self._pending = False
            return time.perf_counter() + self.delta

    offset, skew = estimate_offset(SkewedConn(3.0))
    assert offset == pytest.approx(3.0, abs=max(skew, 1e-3))


def test_handshake_times_out_without_a_peer():
    import multiprocessing as mp

    parent, child = mp.Pipe()
    try:
        with pytest.raises(RuntimeError, match="timed out"):
            estimate_offset(parent, timeout=0.05)
        with pytest.raises(RuntimeError, match="timed out"):
            serve_clock_probes(child, timeout=0.05)
    finally:
        parent.close()
        child.close()


def _two_rank_streams(shift=0.0):
    """Rank 0 sends one message; rank 1 receives it after a wait.

    ``shift`` moves rank 1's clock forward; the matching offset entry
    must cancel it exactly.
    """
    r0 = WallRecorder()
    r0.start(100.0)
    r0.note_send(0, 1, 5, 64, 100.001, 100.002)
    r0.finish(100.003)
    r1 = WallRecorder()
    r1.start(100.0 + shift)
    r1.note_op(RECV, 100.001 + shift, 100.004 + shift, wait=0.002, msg=0)
    r1.finish(100.005 + shift)
    return {0: r0.columns(), 1: r1.columns()}, {0: 0.0, 1: shift}


def test_merge_streams_builds_an_aligned_causal_run():
    streams, offsets = _two_rank_streams()
    merged = merge_streams(streams, offsets)
    assert merged.makespan == pytest.approx(0.005)
    assert merged.rank_makespan == pytest.approx(0.005)
    assert merged.start_spread == 0.0
    assert merged.epoch == pytest.approx(100.0)
    [msg] = merged.msgs
    assert (msg.src, msg.dst, msg.tag, msg.nwords) == (0, 1, 5, 64)
    assert msg.recv_node is not None
    # every DAG edge must go low id -> high id (consumer invariant)
    assert msg.send_node < msg.recv_node
    by_rank = {}
    for node in merged.nodes:
        if node.rank in by_rank:
            assert by_rank[node.rank] < node.id
        by_rank[node.rank] = node.id
    # nodes still tile each rank's interval after alignment
    recv = next(n for n in merged.nodes if n.kind == "recv")
    assert recv.wait == pytest.approx(0.002)
    assert recv.t_start == pytest.approx(0.001)


def test_merge_streams_cancels_clock_offset():
    plain = merge_streams(*_two_rank_streams())
    shifted = merge_streams(*_two_rank_streams(shift=5.0))
    assert shifted.makespan == pytest.approx(plain.makespan)
    assert shifted.start_spread == pytest.approx(0.0)
    for a, b in zip(plain.nodes, shifted.nodes):
        assert (a.rank, a.kind, a.id) == (b.rank, b.kind, b.id)
        assert a.t_start == pytest.approx(b.t_start)
        assert a.t_end == pytest.approx(b.t_end)


def test_merge_streams_clamps_bogus_waits():
    streams, offsets = _two_rank_streams()
    streams[1]["waits"] = [1e9] * len(streams[1]["waits"])
    merged = merge_streams(streams, offsets)
    for node in merged.nodes:
        assert 0.0 <= node.wait <= (node.t_end - node.t_start) + 1e-12


def test_merge_streams_aligns_spills():
    streams, offsets = _two_rank_streams(shift=2.0)
    streams[1]["spills"] = [(102.0035, 0)]
    merged = merge_streams(streams, offsets)
    [(t, rank, mid)] = merged.spills
    assert (rank, mid) == (1, 0)
    assert t == pytest.approx(0.0035)


def _recorded_tracer():
    tracer = Tracer()
    streams, offsets = _two_rank_streams()
    with tracer.phase("exchange", kind="compute"):
        nodes, msgs = record_measured_run(
            tracer, streams, offsets, {0: 0.0, 1: 1e-6},
            nranks=2, backend="multiprocessing",
            waited=[0.0, 0.002], msgs_sent=[1, 0], msgs_recv=[0, 1],
            words_sent=[64, 0], words_recv=[0, 64],
        )
    return tracer, nodes, msgs


def test_record_measured_run_writes_the_trace():
    tracer, nodes, msgs = _recorded_tracer()
    assert tracer.causal_nodes == nodes
    assert tracer.causal_msgs == msgs
    [run] = runs_from_tracer(tracer, clock="wall")
    assert run.clock == "wall"
    assert run.phase == "exchange"
    assert run.nranks == 2
    assert run.rank_makespan == pytest.approx(0.005)
    assert run.skew >= 2e-6  # 2 x worst handshake skew, plus slack
    assert runs_from_tracer(tracer) == []  # never visible as virtual
    assert [(c.rank, c.skew) for c in tracer.clock_records] == \
        [(0, 0.0), (1, 1e-6)]
    path = critical_path(run)
    assert path.length == run.makespan
    verify_makespans(tracer)
    # per-rank mirrors carry the clock="wall" label
    sent = tracer.metrics.per_rank(
        "repro.vm.messages_sent", labels={"clock": "wall"}
    )
    assert sent == {0: 1.0, 1: 0.0}
    assert tracer.metrics.per_rank("repro.vm.messages_sent", labels={}) == {}


def test_format_clock_skew_renders_one_row_per_run():
    tracer, _, _ = _recorded_tracer()
    text = format_clock_skew(tracer)
    assert "clock alignment per measured run" in text
    assert "exchange" in text
    assert "multiproc" in text
    assert format_clock_skew(Tracer()) == ""
