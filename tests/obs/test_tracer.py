"""Unit tests for the span tracer: nesting, clocks, counters, ambience."""

import pytest

from repro.obs import (
    Tracer,
    current_tracer,
    maybe_phase,
    phase_virtual_times,
    use_tracer,
)


def make_tracer():
    """Tracer with a deterministic wall clock (one tick per call)."""
    ticks = iter(range(10_000))
    return Tracer(wall_clock=lambda: float(next(ticks)))


def test_span_nesting_parent_depth_indices():
    tr = make_tracer()
    with tr.phase("outer") as outer:
        with tr.phase("inner") as inner:
            with tr.phase("leaf") as leaf:
                pass
        with tr.phase("inner2") as inner2:
            pass
    assert outer.parent is None and outer.depth == 0 and outer.index == 0
    assert inner.parent == 0 and inner.depth == 1
    assert leaf.parent == inner.index and leaf.depth == 2
    assert inner2.parent == 0 and inner2.depth == 1
    assert [s.index for s in tr.spans] == [0, 1, 2, 3]
    assert all(not s.open for s in tr.spans)


def test_virtual_clock_advances_only_on_charge():
    tr = make_tracer()
    with tr.phase("a") as a:
        tr.advance(2.0)
        with tr.phase("b") as b:
            tr.advance(3.0)
        tr.advance(1.0)
    assert a.v_start == 0.0 and a.v_end == 6.0
    assert b.v_start == 2.0 and b.v_end == 5.0
    assert a.v_duration == pytest.approx(6.0)
    assert b.v_duration == pytest.approx(3.0)
    assert tr.virtual_now == pytest.approx(6.0)


def test_wall_clock_independent_of_virtual():
    tr = make_tracer()
    with tr.phase("a") as a:
        pass  # no virtual charge at all
    assert a.v_duration == 0.0
    assert a.wall_duration > 0.0  # ticks advanced


def test_negative_advance_rejected():
    tr = make_tracer()
    with pytest.raises(ValueError, match="advance"):
        tr.advance(-1.0)


def test_child_durations_bounded_by_parent():
    tr = make_tracer()
    with tr.phase("p"):
        tr.advance(1.0)
        with tr.phase("c1"):
            tr.advance(2.0)
        with tr.phase("c2"):
            tr.advance(0.5)
    p = tr.find("p")[0]
    kids = [s for s in tr.spans if s.parent == p.index]
    assert sum(k.v_duration for k in kids) <= p.v_duration


def test_events_counters_gauges():
    tr = make_tracer()
    with tr.phase("run") as run:
        tr.advance(1.5)
        ev = tr.event("tick", rank=3, detail=[1, 2])
        tr.count("things")
        tr.count("things", 4)
        tr.gauge("level", 0.25)
        tr.gauge("level", 0.75)
    assert ev.v_time == pytest.approx(1.5)
    assert ev.span == run.index and ev.rank == 3
    assert tr.counters == {"things": 5}
    assert tr.gauges == {"level": 0.75}


def test_event_with_explicit_time():
    tr = make_tracer()
    ev = tr.event("later", v_time=9.0)
    assert ev.v_time == 9.0 and ev.span is None


def test_phase_virtual_times_sums_by_name():
    tr = make_tracer()
    for seconds in (1.0, 2.0):
        with tr.phase("work"):
            tr.advance(seconds)
    with tr.phase("idle"):
        pass
    sums = phase_virtual_times(tr.spans)
    assert sums == {"work": pytest.approx(3.0), "idle": 0.0}
    assert tr.phase_virtual("work") == pytest.approx(3.0)


def test_ambient_tracer_install_and_reset():
    assert current_tracer() is None
    tr = Tracer()
    with use_tracer(tr) as installed:
        assert installed is tr
        assert current_tracer() is tr
    assert current_tracer() is None


def test_maybe_phase_none_is_noop():
    with maybe_phase(None, "anything") as sp:
        assert sp is None


def test_maybe_phase_records_with_tracer():
    tr = make_tracer()
    with maybe_phase(tr, "real", rank=1, key="v") as sp:
        assert sp is not None
    assert tr.spans[0].name == "real"
    assert tr.spans[0].rank == 1
    assert tr.spans[0].attrs == {"key": "v"}
