"""Run-history store: records, trace summarization, regression analytics."""

import json

import pytest

from repro.obs.resource import record_resource_samples
from repro.obs.runs import (
    DEFAULT_THRESHOLD,
    RUNS_SCHEMA,
    Regression,
    RunRecord,
    RunStore,
    compare_records,
    find_regressions,
    format_compare,
    format_record,
    format_regressions,
    format_runs_list,
    hash_config,
    index_bench_results,
    index_trace,
    summarize_trace,
)
from repro.obs.export import export_jsonl
from repro.obs.tracer import Tracer


# --- RunStore ----------------------------------------------------------------


def test_store_add_get_roundtrip(tmp_path):
    store = RunStore(str(tmp_path / "runs"))
    rec = store.add(
        kind="trace", label="step/r4",
        metrics={"makespan": 1.5, "skipme": "text", "flag": True},
        config={"resolution": 4}, source="a.jsonl", backends=["shm"],
    )
    assert len(store) == 1
    back = store.get(rec.id)
    assert back.baseline_key == ("trace", "step/r4", hash_config(
        {"resolution": 4}))
    # non-numeric and boolean metric values are dropped on ingest
    assert back.metrics == {"makespan": 1.5}
    assert back.backends == ["shm"]


def test_store_get_by_unique_prefix(tmp_path):
    store = RunStore(str(tmp_path))
    a = store.add(kind="trace", label="x", metrics={}, run_id="20260101-aaaa")
    store.add(kind="trace", label="x", metrics={}, run_id="20260101-bbbb")
    assert store.get("20260101-a").id == a.id
    with pytest.raises(KeyError, match="ambiguous"):
        store.get("20260101")
    with pytest.raises(KeyError, match="no run"):
        store.get("19990101")


def test_store_records_skip_foreign_files(tmp_path):
    store = RunStore(str(tmp_path))
    store.add(kind="bench", label="b", metrics={}, run_id="r1")
    (tmp_path / "junk.json").write_text("{not json")
    (tmp_path / "other.json").write_text(json.dumps({"schema": "other/v9"}))
    recs = store.records()
    assert [r.id for r in recs] == ["r1"]


def test_record_schema_guard():
    with pytest.raises(ValueError, match="unsupported run-record schema"):
        RunRecord.from_json({"schema": "repro.runs/v999", "id": "x"})
    doc = RunRecord(id="x", created="now", kind="trace", label="l").to_json()
    assert doc["schema"] == RUNS_SCHEMA
    assert RunRecord.from_json(doc).id == "x"


def test_hash_config_is_order_stable():
    assert hash_config({"a": 1, "b": 2}) == hash_config({"b": 2, "a": 1})
    assert hash_config({"a": 1}) != hash_config({"a": 2})
    assert hash_config(None) == hash_config({})


# --- trace summarization -----------------------------------------------------


def _traced_run():
    tr = Tracer()
    with tr.phase("cycle", cycle=tr.begin_cycle()):
        with tr.phase("exec"):
            tr.advance(2.0)
        with tr.phase("partition"):
            tr.advance(0.5)
    record_resource_samples(
        tr,
        {"times": [0.0, 0.1], "rss": [100.0, 200.0], "cpu": [0.0, 0.3],
         "gcs": [0, 2]},
        rank=None, backend="host",
    )
    return tr


def test_summarize_trace_headline_metrics(tmp_path):
    metrics, backends = summarize_trace(_traced_run())
    assert metrics["virtual_seconds"] == pytest.approx(2.5)
    assert metrics["phase.exec.virtual_seconds"] == pytest.approx(2.0)
    assert metrics["phase.partition.virtual_seconds"] == pytest.approx(0.5)
    assert metrics["peak_rss_bytes"] == 200.0
    assert metrics["resource_samples"] == 2
    assert backends == []  # no measured backend ran


def test_summarize_trace_accepts_path(tmp_path):
    path = tmp_path / "t.jsonl"
    export_jsonl(_traced_run(), path)
    metrics, _ = summarize_trace(str(path))
    assert metrics["virtual_seconds"] == pytest.approx(2.5)


def test_index_trace_stores_summary(tmp_path):
    path = tmp_path / "t.jsonl"
    export_jsonl(_traced_run(), path)
    store = RunStore(str(tmp_path / "runs"))
    rec = index_trace(store, str(path), label="step/r4",
                      config={"resolution": 4},
                      extra_metrics={"speedup": 3.0})
    back = store.get(rec.id)
    assert back.kind == "trace" and back.label == "step/r4"
    assert back.source == str(path)
    assert back.metrics["virtual_seconds"] == pytest.approx(2.5)
    assert back.metrics["speedup"] == 3.0


def test_index_bench_results_one_record_per_bench(tmp_path):
    store = RunStore(str(tmp_path))
    doc = {
        "suite": {"machine_model": "default", "seed": 42},
        "runs": {
            "quick": {
                "resolution": 4,
                "benches": {
                    "fig6": {
                        "wall_seconds": 1.25,
                        "virtual_phase_seconds": {"exec": 2.0, "remap": 0.5},
                        "metrics": {"imbalance_after": 1.1},
                        "critical_path": {"makespan": 2.25},
                    },
                    "table1": {"wall_seconds": 0.75},
                },
            },
            "full": {"resolution": 6, "benches": {"fig6": {
                "wall_seconds": 9.0}}},
        },
    }
    recs = index_bench_results(store, doc, profile="quick")
    assert sorted(r.label for r in recs) == ["quick/fig6", "quick/table1"]
    fig6 = next(r for r in recs if r.label == "quick/fig6")
    assert fig6.kind == "bench"
    assert fig6.metrics["wall_seconds"] == 1.25
    assert fig6.metrics["virtual_seconds"] == pytest.approx(2.5)
    assert fig6.metrics["phase.exec.virtual_seconds"] == 2.0
    assert fig6.metrics["makespan"] == 2.25
    assert fig6.metrics["imbalance_after"] == 1.1
    assert fig6.config["profile"] == "quick"


# --- analytics ---------------------------------------------------------------


def _rec(run_id, makespan, label="step/r4", created="2026-01-01T00:00:00Z",
         **extra):
    return RunRecord(
        id=run_id, created=created, kind="trace", label=label,
        config={"resolution": 4},
        metrics={"makespan": makespan, **extra},
    )


def test_compare_records_deltas():
    a = _rec("a", 2.0, wall_seconds=1.0)
    b = _rec("b", 3.0, peak_rss_bytes=100.0)
    rows = {r[0]: r for r in compare_records(a, b)}
    assert rows["makespan"] == ("makespan", 2.0, 3.0, 1.0, 50.0)
    assert rows["wall_seconds"][2] is None  # missing on B
    assert rows["peak_rss_bytes"][1] is None  # missing on A


def test_regress_flags_synthetic_slowdown():
    # acceptance criterion: a synthetically slowed run must be flagged
    # against the rolling baseline of its prior matching runs
    history = [_rec(f"r{i}", 1.0 + 0.01 * i,
                    created=f"2026-01-0{i + 1}T00:00:00Z")
               for i in range(5)]
    slowed = _rec("cand", 2.0, created="2026-01-06T00:00:00Z")
    flags, pool = find_regressions(history, slowed)
    assert pool == 5
    (flag,) = flags
    assert flag.metric == "makespan"
    assert flag.factor == pytest.approx(2.0 / 1.02)
    assert flag.window == 5


def test_regress_clean_run_passes():
    history = [_rec(f"r{i}", 1.0, created=f"2026-01-0{i + 1}T00:00:00Z")
               for i in range(3)]
    cand = _rec("cand", 1.05, created="2026-01-05T00:00:00Z")
    flags, pool = find_regressions(history, cand)
    assert pool == 3 and flags == []


def test_regress_needs_matching_baseline_key():
    history = [_rec("r0", 1.0, label="step/r8")]
    cand = _rec("cand", 99.0)  # label step/r4: different baseline series
    flags, pool = find_regressions(history, cand)
    assert (flags, pool) == ([], 0)


def test_regress_window_takes_most_recent():
    history = [_rec(f"r{i}", 10.0 if i < 5 else 1.0,
                    created=f"2026-01-{i + 1:02d}T00:00:00Z")
               for i in range(10)]
    cand = _rec("cand", 1.5, created="2026-02-01T00:00:00Z")
    flags, pool = find_regressions(history, cand, window=5)
    # baseline is the recent five 1.0s, not the stale 10.0s
    assert pool == 5
    assert flags and flags[0].baseline == 1.0


def test_regress_higher_is_better_inverted():
    history = [_rec(f"r{i}", 1.0, speedup=4.0,
                    created=f"2026-01-0{i + 1}T00:00:00Z")
               for i in range(3)]
    cand = _rec("cand", 1.0, speedup=2.0, created="2026-01-05T00:00:00Z")
    flags, _pool = find_regressions(history, cand)
    (flag,) = flags
    assert flag.metric == "speedup"
    assert flag.factor == pytest.approx(2.0)  # baseline/candidate


def test_regress_abs_slack_tolerates_tiny_costs():
    history = [_rec("r0", 1.0, tiny_cost=0.0)]
    cand = _rec("cand", 1.0, tiny_cost=1e-12,
                created="2026-01-02T00:00:00Z")
    flags, _ = find_regressions(history, cand, abs_slack=1e-9)
    assert flags == []


# --- formatting --------------------------------------------------------------


def test_format_runs_list():
    out = format_runs_list([_rec("r0", 1.5)])
    assert "step/r4" in out and "1 run(s)" in out
    assert "no runs stored" in format_runs_list([])


def test_format_record_and_compare():
    a, b = _rec("a", 2.0), _rec("b", 3.0)
    assert "makespan" in format_record(a)
    out = format_compare(a, b)
    assert "comparing a (A) vs b (B):" in out and "+50.0%" in out


def test_format_regressions_messages():
    cand = _rec("cand", 2.0)
    flag = Regression(metric="makespan", candidate=2.0, baseline=1.0,
                      factor=2.0, window=5)
    flagged = format_regressions(cand, [flag], pool=5,
                                 threshold=DEFAULT_THRESHOLD)
    assert "REGRESSION makespan" in flagged and "2.00x worse" in flagged
    clean = format_regressions(cand, [], pool=5, threshold=DEFAULT_THRESHOLD)
    assert "OK: no metric regressed" in clean
    empty = format_regressions(cand, [], pool=0, threshold=DEFAULT_THRESHOLD)
    assert "no matching prior runs" in empty
