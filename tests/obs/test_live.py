"""Live telemetry: hub folding, side channel, dashboard, status files."""

import io
import json

from repro.obs.live import (
    LiveChannel,
    LiveDisplay,
    TelemetryHub,
    current_live,
    default_status_dir,
    load_status,
    newest_status,
    publish_status,
    render_dashboard,
    use_live,
)
from repro.obs.tracer import Tracer


# --- TelemetryHub ------------------------------------------------------------


def test_hub_phase_frames_fold_into_stack_and_history():
    hub = TelemetryHub(title="t")
    hub.publish("phase_begin", name="cycle")
    hub.publish("phase_begin", name="exec")
    assert hub.snapshot()["phase_stack"] == ["cycle", "exec"]
    hub.publish("phase_end", name="exec", v_seconds=1.5, wall_seconds=0.1)
    snap = hub.snapshot()
    assert snap["phase_stack"] == ["cycle"]
    assert snap["phases_done"] == [["exec", 1.5, 0.1]]


def test_hub_cycle_run_status_dropped():
    hub = TelemetryHub()
    hub.publish("cycle", cycle=3)
    hub.publish("run")
    hub.publish("run")
    hub.publish("dropped", count=5)
    hub.publish("status", status="failed")
    snap = hub.snapshot()
    assert snap["cycle"] == 3 and snap["runs"] == 2
    assert snap["frames_dropped"] == 5 and snap["status"] == "failed"


def test_hub_rank_time_busy_fraction():
    hub = TelemetryHub()
    hub.publish("rank_time", name="repro.vm.rank_busy_seconds",
                values=(3.0, 1.0))
    hub.publish("rank_time", name="repro.vm.rank_idle_seconds",
                values=(1.0, 3.0))
    ranks = hub.snapshot()["ranks"]
    assert ranks["0"] == {"busy": 3.0, "total": 4.0}
    assert ranks["1"] == {"busy": 1.0, "total": 4.0}


def test_hub_progress_and_resource_frames():
    hub = TelemetryHub()
    hub.publish("progress", rank=2, elapsed=1.0, msgs=10, words=640,
                waited=0.25)
    hub.publish("resource", rank=None, rss_bytes=2048.0, cpu_seconds=0.5,
                gc_collections=7)
    hub.publish("resource", rank=1, rss_bytes=1024.0, cpu_seconds=0.1,
                gc_collections=2)
    snap = hub.snapshot()
    assert snap["ranks"]["2"]["msgs"] == 10
    assert snap["resources"]["host"]["rss_bytes"] == 2048.0
    assert snap["resources"]["1"]["gc_collections"] == 2


def test_hub_ring_buffer_is_bounded():
    hub = TelemetryHub(capacity=8)
    for i in range(20):
        hub.publish("cycle", cycle=i)
    frames = hub.frames()
    assert len(frames) == 8
    assert frames[-1][2] == {"cycle": 19}


def test_hub_snapshot_is_json_serialisable_copy():
    hub = TelemetryHub()
    hub.publish("progress", rank=0, msgs=1)
    snap = hub.snapshot()
    json.dumps(snap)  # must not raise
    snap["ranks"]["0"]["msgs"] = 99
    assert hub.snapshot()["ranks"]["0"]["msgs"] == 1


# --- ambient hub -------------------------------------------------------------


def test_use_live_installs_and_restores():
    assert current_live() is None
    hub = TelemetryHub()
    with use_live(hub) as installed:
        assert installed is hub and current_live() is hub
    assert current_live() is None


def test_tracer_publishes_into_ambient_hub():
    hub = TelemetryHub()
    with use_live(hub):
        tr = Tracer()
        with tr.phase("cycle", cycle=tr.begin_cycle()):
            with tr.phase("exec"):
                tr.advance(2.0)
    kinds = [k for _, k, _ in hub.frames()]
    assert "phase_begin" in kinds and "phase_end" in kinds
    assert "cycle" in kinds
    done = [name for name, _v, _w in hub.snapshot()["phases_done"]]
    assert done == ["exec", "cycle"]


def test_tracer_without_hub_publishes_nothing():
    hub = TelemetryHub()
    tr = Tracer()  # constructed outside use_live: no ambient hub
    with tr.phase("exec"):
        pass
    assert not hub.frames()


# --- LiveChannel -------------------------------------------------------------


def test_channel_emit_and_drain():
    hub = TelemetryHub()
    ch = LiveChannel()
    try:
        ch.emit_progress(0, 1.0, 5, 320, 0.5)
        ch.emit_resource(1, 0.2, 4096.0, 0.1, 3)
        import time

        deadline = time.time() + 5.0
        drained = 0
        while drained < 2 and time.time() < deadline:
            drained += ch.drain(hub)  # feeder thread may lag put_nowait
        assert drained == 2
        snap = hub.snapshot()
        assert snap["ranks"]["0"]["words"] == 320
        assert snap["resources"]["1"]["rss_bytes"] == 4096.0
    finally:
        ch.close()


def test_channel_drops_on_full_queue_without_blocking():
    hub = TelemetryHub()
    ch = LiveChannel(maxsize=1)
    try:
        for _ in range(200):
            ch.emit_progress(0, 0.0, 0, 0, 0.0)
        assert ch.dropped > 0  # full queue dropped frames instead of blocking
        import time

        deadline = time.time() + 5.0
        drained = 0
        while not drained and time.time() < deadline:
            drained = ch.drain(hub)  # feeder thread may lag put_nowait
        assert drained >= 1
    finally:
        ch.close()


# --- render_dashboard --------------------------------------------------------


def _full_snapshot():
    hub = TelemetryHub(title="repro step r6 P4 shm")
    hub.publish("cycle", cycle=2)
    hub.publish("phase_begin", name="partition")
    hub.publish("phase_end", name="partition", v_seconds=0.25,
                wall_seconds=0.01)
    hub.publish("phase_begin", name="exec")
    hub.publish("run")
    hub.publish("rank_time", name="repro.vm.rank_busy_seconds",
                values=(1.0, 3.0))
    hub.publish("rank_time", name="repro.vm.rank_idle_seconds",
                values=(3.0, 1.0))
    hub.publish("resource", rank=None, rss_bytes=64 << 20, cpu_seconds=1.5,
                gc_collections=12)
    hub.publish("resource", rank=0, rss_bytes=32 << 20, cpu_seconds=0.5,
                gc_collections=3)
    return hub.snapshot()


def test_render_dashboard_sections():
    text = render_dashboard(_full_snapshot())
    assert "repro step r6 P4 shm  [running]" in text
    assert "cycle 2 | phase: exec" in text
    assert "recent phases: partition 0.250s" in text
    assert "vm/backend runs: 1" in text
    assert "per-rank busy/idle:" in text
    assert "busy  25.0%" in text and "busy  75.0%" in text
    assert "resources (rss / cpu / gc):" in text
    assert "host" in text and "64.0MiB" in text


def test_render_dashboard_empty_snapshot():
    text = render_dashboard(TelemetryHub().snapshot())
    assert "repro live" in text
    assert "cycle - | phase: -" in text
    assert "per-rank" not in text  # no rank section without rank data


def test_render_dashboard_caps_rank_rows():
    hub = TelemetryHub()
    hub.publish("rank_time", name="repro.vm.rank_busy_seconds",
                values=tuple(1.0 for _ in range(20)))
    text = render_dashboard(hub.snapshot(), max_ranks=4)
    assert "... and 16 more ranks" in text
    assert text.count("\n  r") == 4


# --- status files ------------------------------------------------------------


def test_publish_load_newest_status(tmp_path):
    sdir = tmp_path / "live"
    a = str(sdir / "a.json")
    b = str(sdir / "b.json")
    publish_status({"title": "a", "elapsed": 1.0}, a)
    publish_status({"title": "b", "elapsed": 2.0}, b)
    import os

    os.utime(a, (1, 1))  # force a to look older
    assert load_status(a)["title"] == "a"
    assert load_status(str(sdir / "missing.json")) is None
    assert newest_status(str(sdir)) == b
    assert newest_status(str(tmp_path / "nope")) is None
    assert not [p for p in sdir.iterdir() if p.suffix != ".json"]  # no tmp left


def test_default_status_dir_honours_runs_root(tmp_path):
    assert default_status_dir(str(tmp_path)) == str(tmp_path / "live")


# --- LiveDisplay -------------------------------------------------------------


def test_live_display_off_tty_plain_snapshots(tmp_path):
    hub = TelemetryHub(title="display test")
    status = str(tmp_path / "status.json")
    stream = io.StringIO()
    with LiveDisplay(hub, stream=stream, interval=60.0, status_path=status):
        hub.publish("cycle", cycle=1)
        assert load_status(status) is not None  # published while running
    out = stream.getvalue()
    assert "display test" in out
    assert "[done]" in out  # final frame after stop
    assert load_status(status) is None  # unlinked on stop


def test_live_display_marks_failed_on_exception(tmp_path):
    hub = TelemetryHub()
    stream = io.StringIO()
    try:
        with LiveDisplay(hub, stream=stream, interval=60.0):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert "[failed]" in stream.getvalue()


def test_live_display_drains_channel_each_tick():
    hub = TelemetryHub()
    ch = LiveChannel()
    try:
        ch.emit_progress(3, 0.5, 2, 64, 0.0)
        stream = io.StringIO()
        display = LiveDisplay(hub, stream=stream, interval=60.0, channel=ch)
        display.start()
        import time

        deadline = time.time() + 5.0
        while "3" not in str(hub.snapshot()["ranks"]) \
                and time.time() < deadline:
            display._render_once()
            time.sleep(0.01)
        display.stop()
        assert hub.snapshot()["ranks"]["3"]["words"] == 64
        assert "r3" in stream.getvalue()
    finally:
        ch.close()
