"""CLI surface of the live/run-history layer: ``repro watch`` / ``repro runs``.

Drives ``repro.__main__.main`` in-process (no subprocesses) against
temporary stores and status dirs, pinning exit codes and the headline
lines scripts grep for.
"""

import pytest

from repro.__main__ import main
from repro.obs.export import export_jsonl
from repro.obs.live import publish_status
from repro.obs.resource import record_resource_samples
from repro.obs.runs import RunStore
from repro.obs.tracer import Tracer


@pytest.fixture(autouse=True)
def _isolated_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    return tmp_path


def _trace_file(tmp_path, name="t.jsonl", seconds=2.0):
    # deterministic wall clock: host-wall noise on these micro-traces
    # would otherwise trip the regress gate on wall_seconds
    ticks = iter(range(1000))
    tr = Tracer(wall_clock=lambda: float(next(ticks)))
    with tr.phase("cycle", cycle=tr.begin_cycle()):
        with tr.phase("exec"):
            tr.advance(seconds)
    record_resource_samples(
        tr, {"times": [0.0], "rss": [1.0], "cpu": [0.0], "gcs": [0]}
    )
    path = tmp_path / name
    export_jsonl(tr, path)
    return str(path)


def test_runs_list_empty_store(capsys):
    assert main(["runs", "list"]) == 0
    assert "no runs stored" in capsys.readouterr().out


def test_runs_index_show_compare(tmp_path, capsys):
    a = _trace_file(tmp_path, "a.jsonl", seconds=2.0)
    b = _trace_file(tmp_path, "b.jsonl", seconds=3.0)
    assert main(["runs", "index", a, "--label", "demo"]) == 0
    assert main(["runs", "index", b, "--label", "demo"]) == 0
    store = RunStore()
    id_a, id_b = store.ids()
    assert main(["runs", "show", id_a]) == 0
    out = capsys.readouterr().out
    assert "label:    demo" in out and "virtual_seconds" in out
    assert main(["runs", "compare", id_a, id_b]) == 0
    assert "virtual_seconds" in capsys.readouterr().out


def test_runs_index_missing_trace_errors(capsys):
    assert main(["runs", "index", "/nonexistent/trace.jsonl"]) == 2
    assert "no such trace file" in capsys.readouterr().err


def test_runs_unknown_id_errors(tmp_path, capsys):
    assert main(["runs", "show", "zzz"]) == 2
    assert "no run 'zzz'" in capsys.readouterr().err


def test_runs_regress_flags_slowed_run(tmp_path, capsys):
    # acceptance criterion end to end: a synthetically slowed trace is
    # flagged by `repro runs regress` against the stored baseline
    for i in range(3):
        path = _trace_file(tmp_path, f"base{i}.jsonl", seconds=1.0)
        assert main(["runs", "index", path, "--label", "series"]) == 0
    slowed = _trace_file(tmp_path, "slow.jsonl", seconds=2.0)
    assert main(["runs", "index", slowed, "--label", "series"]) == 0
    slowed_id = capsys.readouterr().out.rsplit(
        "indexed run ", 1)[1].split()[0]
    assert main(["runs", "regress", slowed_id]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "virtual_seconds" in out
    # a clean baseline run itself passes
    clean = next(r for r in RunStore().records()
                 if r.metrics["virtual_seconds"] < 1.5)
    assert main(["runs", "regress", clean.id]) == 0
    assert "OK: no metric regressed" in capsys.readouterr().out


def test_runs_regress_empty_store_errors(capsys):
    assert main(["runs", "regress"]) == 2
    assert "no runs stored" in capsys.readouterr().err


def test_watch_once_no_live_run(tmp_path, capsys):
    assert main(["watch", "--once"]) == 1
    assert "no live run found" in capsys.readouterr().err


def test_watch_once_renders_published_status(tmp_path, capsys):
    status = str(tmp_path / "runs" / "live" / "s.json")
    publish_status(
        {"title": "watched run", "status": "running", "elapsed": 1.0,
         "cycle": 2, "phase_stack": ["exec"]},
        status,
    )
    assert main(["watch", "--once"]) == 0
    out = capsys.readouterr().out
    assert "watched run  [running]" in out
    assert "cycle 2 | phase: exec" in out
    # an explicit path wins over directory discovery
    assert main(["watch", status, "--once"]) == 0
