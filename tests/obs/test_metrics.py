"""Labelled metrics registry: kinds, keying, collisions, queries."""

import pytest

from repro.obs import KINDS, MetricsRegistry, Tracer


# --- kinds -------------------------------------------------------------------


def test_counter_accumulates_under_same_key():
    reg = MetricsRegistry()
    reg.counter("repro.vm.words_sent", 10, rank=0)
    reg.counter("repro.vm.words_sent", 5, rank=0)
    assert reg.get("repro.vm.words_sent", rank=0) == 15.0


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("repro.partition.imbalance", 1.30, cycle=0)
    reg.gauge("repro.partition.imbalance", 1.05, cycle=0)
    assert reg.get("repro.partition.imbalance", cycle=0) == 1.05


def test_histogram_appends_every_observation():
    reg = MetricsRegistry()
    reg.histogram("repro.solver.residual_norm", 0.5, cycle=0)
    reg.histogram("repro.solver.residual_norm", 0.25, cycle=0)
    reg.histogram("repro.solver.residual_norm", [0.125, 0.0625], cycle=0)
    assert reg.get("repro.solver.residual_norm",
                   cycle=0) == [0.5, 0.25, 0.125, 0.0625]


def test_distinct_keys_do_not_merge():
    reg = MetricsRegistry()
    reg.gauge("q", 1.0, labels={"when": "before"}, cycle=0)
    reg.gauge("q", 2.0, labels={"when": "after"}, cycle=0)
    reg.gauge("q", 3.0, labels={"when": "before"}, cycle=1)
    assert len(reg) == 3
    assert reg.get("q", {"when": "before"}, cycle=0) == 1.0
    assert reg.get("q", {"when": "after"}, cycle=0) == 2.0
    assert reg.get("q", {"when": "before"}, cycle=1) == 3.0
    assert reg.get("q", {"when": "before"}, cycle=2) is None


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("n", 1)
    with pytest.raises(ValueError, match="is a counter"):
        reg.gauge("n", 2.0)


def test_unknown_kind_raises():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="unknown metric kind"):
        reg.record("n", 1.0, kind="sampler")
    assert KINDS == ("counter", "gauge", "histogram")


# --- collision warnings (the silent-merge hazard) ----------------------------


def test_label_keyset_mismatch_warns_once():
    reg = MetricsRegistry()
    reg.gauge("q", 1.0, labels={"when": "before"})
    with pytest.warns(RuntimeWarning, match="label keys"):
        reg.gauge("q", 2.0, labels={"phase": "remap"})
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second offence must stay silent
        reg.gauge("q", 3.0, labels={"phase": "remap"})


def test_legacy_name_collision_warns_both_orders():
    reg = MetricsRegistry()
    reg.note_legacy("messages")
    with pytest.warns(RuntimeWarning, match="legacy"):
        reg.counter("messages", 1)

    reg2 = MetricsRegistry()
    reg2.counter("words", 1)
    with pytest.warns(RuntimeWarning, match="legacy"):
        reg2.note_legacy("words")


def test_tracer_flat_counter_collides_with_metric():
    tr = Tracer()
    tr.metric("vm.messages", 1, kind="counter")
    with pytest.warns(RuntimeWarning, match="legacy"):
        tr.count("vm.messages", 3)


# --- queries -----------------------------------------------------------------


def sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    for cycle, (before, after) in enumerate([(1.3, 1.05), (1.2, 1.02)]):
        reg.gauge("imb", before, labels={"when": "before"}, cycle=cycle)
        reg.gauge("imb", after, labels={"when": "after"}, cycle=cycle)
    for cycle in (0, 1):
        for rank, words in ((0, 100), (1, 50)):
            reg.counter("words", words, cycle=cycle, rank=rank)
    return reg


def test_series_is_per_cycle_and_sorted():
    reg = sample_registry()
    assert reg.series("imb", {"when": "before"}) == {0: 1.3, 1: 1.2}
    assert reg.series("imb", {"when": "after"}) == {0: 1.05, 1: 1.02}
    assert reg.series("words", rank=1) == {0: 50.0, 1: 50.0}


def test_per_rank_sums_over_cycles():
    reg = sample_registry()
    assert reg.per_rank("words") == {0: 200.0, 1: 100.0}
    assert reg.per_rank("words", cycle=1) == {0: 100.0, 1: 50.0}


def test_total_and_max_value():
    reg = sample_registry()
    assert reg.total("words") == 300.0
    assert reg.max_value("imb", {"when": "before"}) == 1.3
    assert reg.max_value("absent") is None
    assert reg.total("absent") == 0.0


def test_names_ranks_cycles():
    reg = sample_registry()
    assert reg.names() == ["imb", "words"]
    assert reg.ranks() == [0, 1]
    assert reg.ranks("imb") == []
    assert reg.cycles() == [0, 1]


# --- tracer integration ------------------------------------------------------


def test_tracer_metric_defaults_to_current_cycle_and_vclock():
    tr = Tracer()
    assert tr.begin_cycle() == 0
    tr.advance(2.5)
    s = tr.metric("repro.partition.imbalance", 1.1, when="before")
    assert s.cycle == 0 and s.v_time == 2.5
    assert s.labels_dict == {"when": "before"}
    assert tr.begin_cycle() == 1
    s2 = tr.metric("repro.partition.imbalance", 1.2, when="before")
    assert s2.cycle == 1
    # explicit cycle overrides the ambient one
    s3 = tr.metric("repro.partition.imbalance", 1.3, cycle=7, when="before")
    assert s3.cycle == 7


def test_registry_truthiness():
    reg = MetricsRegistry()
    assert not reg and len(reg) == 0
    reg.gauge("x", 1.0)
    assert reg and len(reg) == 1
