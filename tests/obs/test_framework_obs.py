"""Framework integration: span anatomy, unit-mixing regressions, counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.core.reassign import reassignment_time
from repro.mesh import box_mesh, edge_midpoints
from repro.obs import Tracer, phase_virtual_times, use_tracer
from repro.parallel import MachineModel

CHEAP_MACHINE = MachineModel(t_setup=1e-5, t_word=1e-7, t_work=1e-6)

LEAF_PHASES = ("marking", "repartition", "gather_scatter", "reassign",
               "remap", "subdivision")


def corner_error(mesh):
    mid = edge_midpoints(mesh.coords, mesh.edges)
    return 1.0 / (0.05 + np.linalg.norm(mid, axis=1))


def make_solver(nproc=4, **kw):
    m = box_mesh(3, 3, 3)
    return LoadBalancedAdaptiveSolver(
        m, nproc, machine=CHEAP_MACHINE,
        cost_model=CostModel(machine=CHEAP_MACHINE), **kw
    )


def run_one(nproc=4, refine_frac=0.15, **kw):
    s = make_solver(nproc, **kw)
    return s, s.adapt_step(edge_error=corner_error(s.adaptive.mesh),
                           refine_frac=refine_frac)


# --- span anatomy ------------------------------------------------------------


def test_step_records_span_tree():
    _, rep = run_one()
    assert rep.accepted
    root = rep.spans[0]
    assert root.name == "adapt_step" and root.parent is None
    names = {s.name for s in rep.spans}
    assert {"marking", "balance", "evaluate", "repartition", "gather_scatter",
            "reassign", "decide", "remap", "subdivision"} <= names
    # balance children hang off the balance span
    balance = next(s for s in rep.spans if s.name == "balance")
    remap = next(s for s in rep.spans if s.name == "remap")
    assert remap.parent == balance.index
    assert balance.depth == remap.depth - 1


def test_phase_times_match_report_fields():
    _, rep = run_one()
    phases = rep.phase_times()
    assert phases["marking"] == pytest.approx(rep.marking_time)
    assert phases["subdivision"] == pytest.approx(rep.subdivision_time)
    assert phases["repartition"] == pytest.approx(rep.partition_time)
    assert phases["gather_scatter"] == pytest.approx(rep.gather_scatter_time)
    assert phases["reassign"] == pytest.approx(rep.reassign_time)
    assert phases["remap"] == pytest.approx(rep.remap_time)


def test_explicit_tracer_receives_step_spans_and_counters():
    tr = Tracer()
    s = make_solver(4, tracer=tr)
    rep = s.adapt_step(edge_error=corner_error(s.adaptive.mesh),
                       refine_frac=0.15)
    assert rep.spans and rep.spans[0] in tr.spans
    assert tr.counters["edges_marked"] > 0
    assert tr.counters["repartitions_triggered"] == 1
    if rep.accepted:
        assert tr.counters["repartitions_accepted"] == 1
        assert tr.counters["elements_moved"] == rep.remap.elements_moved
        # the remap's VM schedule is mirrored as point events
        kinds = {e.name for e in tr.events}
        assert {"vm.send", "vm.recv"} <= kinds


def test_ambient_tracer_used_when_none_passed():
    tr = Tracer()
    with use_tracer(tr):
        _, rep = run_one()
    assert rep.spans[0] in tr.spans


def test_consecutive_steps_share_one_virtual_timeline():
    tr = Tracer()
    s = make_solver(4, tracer=tr)
    for _ in range(2):
        s.adapt_step(edge_error=corner_error(s.adaptive.mesh),
                     refine_frac=0.1)
    roots = [sp for sp in tr.spans if sp.name == "adapt_step"]
    assert len(roots) == 2
    assert roots[1].v_start == pytest.approx(roots[0].v_end)


# --- regression: no wall-clock/virtual-time mixing ---------------------------


def test_reassign_time_is_modelled_not_wall_clock():
    """Two identical runs must report bit-identical reassignment time —
    impossible if the field still held host ``perf_counter`` deltas."""
    _, rep_a = run_one(seed=0)
    _, rep_b = run_one(seed=0)
    assert rep_a.repartition_triggered
    assert rep_a.reassign_time == rep_b.reassign_time
    assert rep_a.total_time == rep_b.total_time
    # and the value is exactly what the §4.4 model prices
    gs = next(s for s in rep_a.spans if s.name == "gather_scatter")
    expected = reassignment_time(gs.attrs["entries"], 4, CHEAP_MACHINE)
    assert rep_a.reassign_time == pytest.approx(expected)


def test_measured_wall_time_kept_in_separate_field():
    _, rep = run_one()
    assert rep.repartition_triggered
    assert rep.reassign_wall_seconds > 0.0
    # the wall measurement must not be a component of the virtual total
    components = (rep.marking_time + rep.subdivision_time
                  + rep.partition_time + rep.gather_scatter_time
                  + rep.reassign_time + rep.remap_time)
    assert rep.total_time == pytest.approx(components)


def test_total_time_includes_gather_scatter():
    _, rep = run_one()
    assert rep.accepted
    assert rep.gather_scatter_time > 0.0
    without = (rep.adaption_time + rep.partition_time + rep.reassign_time
               + rep.remap_time)
    assert rep.total_time == pytest.approx(without + rep.gather_scatter_time)


def test_skipped_balance_reports_zero_balance_phases():
    s = make_solver(4)
    rep = s.adapt_step(edge_mask=np.ones(s.adaptive.mesh.nedges, dtype=bool))
    assert not rep.repartition_triggered
    assert rep.reassign_time == 0.0
    assert rep.reassign_wall_seconds == 0.0
    assert rep.total_time == pytest.approx(rep.adaption_time)


# --- property: spans are the authoritative anatomy ---------------------------


@given(
    nproc=st.sampled_from([1, 2, 4, 6]),
    refine_frac=st.floats(0.05, 0.4),
    remap_when=st.sampled_from(["before", "after"]),
    seed=st.integers(0, 5),
)
@settings(max_examples=12, deadline=None)
def test_leaf_span_durations_sum_to_total_time(
    nproc, refine_frac, remap_when, seed
):
    s = make_solver(nproc, remap_when=remap_when, seed=seed)
    rep = s.adapt_step(edge_error=corner_error(s.adaptive.mesh),
                       refine_frac=refine_frac)
    phases = phase_virtual_times(rep.spans)
    leaf_sum = sum(phases.get(name, 0.0) for name in LEAF_PHASES)
    assert leaf_sum == pytest.approx(rep.total_time, rel=1e-12, abs=1e-15)
    root = rep.spans[0]
    assert root.v_duration == pytest.approx(rep.total_time, rel=1e-12,
                                            abs=1e-15)
    # wall clocks are plausible too: no span runs backwards, and the root
    # covers the sum of its direct children
    for sp in rep.spans:
        assert sp.wall_end >= sp.wall_start
    child_wall = sum(
        sp.wall_duration for sp in rep.spans if sp.parent == root.index
    )
    assert child_wall <= root.wall_duration + 1e-9
