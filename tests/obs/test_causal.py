"""Unit tests for the causal-DAG analysis (:mod:`repro.obs.causal`)."""

import pytest

from repro.obs import (
    Tracer,
    analyze,
    critical_path,
    diff,
    format_critical_path,
    format_diff,
    rank_stats,
    run_from_result,
    runs_from_tracer,
    verify_makespans,
)
from repro.obs.causal import chain_of, format_chain, node_slack
from repro.parallel import SP2_1997, VirtualMachine
from repro.parallel.ledger import CostLedger


def pingpong(comm):
    if comm.rank == 0:
        yield from comm.compute(100)
        yield from comm.send("ping", dest=1, tag=1, nwords=10)
        _ = yield from comm.recv(source=1, tag=2)
    else:
        yield from comm.compute(10)
        _ = yield from comm.recv(source=0, tag=1)
        yield from comm.compute(50)
        yield from comm.send("pong", dest=0, tag=2, nwords=10)


def traced_pingpong(tracer=None):
    vm = VirtualMachine(2, SP2_1997, trace=tracer is None, tracer=tracer)
    return vm.run(pingpong)


def test_critical_path_length_is_makespan_bit_for_bit():
    res = traced_pingpong()
    run = run_from_result(res)
    path = critical_path(run)
    assert path.length == res.makespan  # exact float equality, not approx
    assert path.steps, "non-trivial program must have path steps"
    # the path walks backward to a source node starting at t == 0
    assert path.steps[0].node.t_start == 0.0


def test_path_steps_tile_the_makespan():
    res = traced_pingpong()
    path = critical_path(run_from_result(res))
    assert sum(s.seconds for s in path.steps) == pytest.approx(res.makespan)
    # message crossings contribute exactly zero seconds
    crossings = [s for s in path.steps if s.seconds == 0.0]
    assert crossings, "rank 1 waits on rank 0's send, so the path crosses"


def test_by_kind_splits_work_and_comm():
    res = traced_pingpong()
    path = critical_path(run_from_result(res))
    kinds = path.by_kind()
    assert set(kinds) <= {"work", "comm"}
    assert kinds["work"] > 0.0
    assert kinds["comm"] > 0.0
    assert sum(kinds.values()) == pytest.approx(res.makespan)


def test_sink_and_on_path_nodes_have_zero_slack():
    res = traced_pingpong()
    run = run_from_result(res)
    slack = node_slack(run)
    sink = max(run.nodes, key=lambda n: (n.t_end, n.id))
    assert slack[sink.id] == 0.0
    stats = rank_stats(run)
    # at least one rank is on the critical path with exactly zero slack
    assert any(st.slack == 0.0 for st in stats)
    assert all(st.slack >= 0.0 for st in stats)


def test_rank_stats_decomposition():
    res = traced_pingpong()
    run = run_from_result(res)
    stats = rank_stats(run)
    assert [st.rank for st in stats] == [0, 1]
    for st in stats:
        # work + comm + wait + tail == makespan (idle property)
        assert st.work + st.comm + st.idle == pytest.approx(run.makespan)
    # rank 0 computes 100 units, rank 1 only 60
    assert stats[0].work > stats[1].work
    # rank 1 waits for the ping while rank 0 computes
    assert stats[1].wait > 0.0
    total_on_path = sum(st.on_path for st in stats)
    assert total_on_path == pytest.approx(run.makespan)


def test_chain_of_crosses_message_edges():
    res = traced_pingpong()
    run = run_from_result(res)
    last_r0 = max((n for n in run.nodes if n.rank == 0), key=lambda n: n.id)
    chain = chain_of(run.nodes, run.msgs, last_r0, limit=10)
    assert chain[-1] is last_r0
    assert {n.rank for n in chain} == {0, 1}  # crossed to rank 1's send
    text = format_chain(chain, run.msgs)
    assert "r0:" in text and "r1:" in text and "->" in text
    assert "recv<-1(tag=2)" in text


def test_chain_respects_limit():
    res = traced_pingpong()
    run = run_from_result(res)
    start = max(run.nodes, key=lambda n: n.id)
    assert len(chain_of(run.nodes, run.msgs, start, limit=2)) == 2


def _traced_cycle() -> Tracer:
    """A tracer with one VM run under a span plus one ledger superstep."""
    tracer = Tracer()
    tracer.cycle = 0
    with tracer.phase("remap") as sp:
        res = traced_pingpong(tracer)
        tracer.advance(res.makespan)
        sp.attrs["n"] = 1
    with tracer.phase("marking"):
        ledger = CostLedger(2, SP2_1997, tracer=tracer)
        ledger.add_work_all([30.0, 10.0])
        ledger.add_message(0, 1, 20)
        ledger.barrier()
        ledger.close()
        tracer.advance(ledger.elapsed)
    return tracer


def test_runs_from_tracer_sets_base_and_phase():
    tracer = _traced_cycle()
    runs = runs_from_tracer(tracer)
    assert len(runs) == 1
    assert runs[0].phase == "remap"
    assert runs[0].base == 0.0
    assert runs[0].cycle == 0


def test_analyze_segments_cover_the_trace():
    tracer = _traced_cycle()
    analysis = analyze(tracer)
    assert analysis.makespan > 0.0
    segs = analysis.segments
    assert segs[0].t0 == 0.0
    assert segs[-1].t1 == pytest.approx(analysis.makespan)
    for a, b in zip(segs, segs[1:]):
        assert b.t0 == pytest.approx(a.t1)  # contiguous, no gaps/overlaps
    assert sum(analysis.by_phase_kind.values()) == pytest.approx(
        analysis.makespan
    )
    phases = {phase for phase, _ in analysis.by_phase_kind}
    assert "remap" in phases and "marking" in phases


def test_analyze_ranks_stragglers():
    tracer = _traced_cycle()
    analysis = analyze(tracer)
    assert 0 in analysis.stragglers
    ranked = analysis.stragglers[0]
    assert ranked == sorted(ranked, key=lambda kv: (-kv[1], kv[0]))
    assert ranked[0][1] > 0.0


def test_verify_makespans_passes_and_counts():
    assert verify_makespans(_traced_cycle()) == 1


def test_verify_makespans_detects_corruption():
    tracer = _traced_cycle()
    for ev in tracer.events:
        if ev.name == "vm.run":
            ev.attrs["makespan"] += 1e-9
    with pytest.raises(AssertionError, match="critical-path length"):
        verify_makespans(tracer)


def test_diff_of_identical_traces_is_zero():
    d = diff(analyze(_traced_cycle()), analyze(_traced_cycle()))
    assert d.delta == 0.0
    assert all(row[4] == 0.0 for row in d.rows)


def test_diff_attributes_the_delta_to_the_changed_phase():
    a = analyze(_traced_cycle())
    tracer_b = _traced_cycle()
    ledger_time = next(
        s for s in tracer_b.spans if s.name == "marking"
    ).v_duration
    b = analyze(tracer_b)
    # fake a slower marking phase in b by scaling its attribution
    b.by_phase_kind[("marking", "work")] += ledger_time
    d = diff(a, b)
    top_phase, top_kind, _, _, top_delta = d.rows[0]
    assert (top_phase, top_kind) == ("marking", "work")
    assert top_delta == pytest.approx(ledger_time)


def test_format_critical_path_mentions_everything():
    text = format_critical_path(analyze(_traced_cycle()), top=5)
    assert "makespan:" in text
    assert "by kind:" in text
    assert "critical-path attribution by (phase, kind):" in text
    assert "path segments:" in text
    assert "stragglers per cycle" in text
    assert "remap" in text and "marking" in text


def test_format_diff_uses_labels():
    d = diff(analyze(_traced_cycle()), analyze(_traced_cycle()))
    text = format_diff(d, label_a="greedy", label_b="mwbg", top=3)
    assert "makespan greedy:" in text
    assert "mwbg:" in text
    assert "delta" in text


def test_empty_run_has_empty_path():
    def idle(comm):
        return None
        yield  # pragma: no cover - makes this a generator function

    res = VirtualMachine(1, SP2_1997, trace=True).run(idle)
    path = critical_path(run_from_result(res))
    assert path.length == 0.0 and path.steps == []
