"""Run reports render the recorded metrics without recomputing them."""

import re

import numpy as np
import pytest

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.mesh import box_mesh, edge_midpoints
from repro.obs import Tracer, render_ascii, render_html
from repro.obs.report import _fmt
from repro.parallel import CostLedger, MachineModel
from repro.partition import quality as pq

CHEAP = MachineModel(t_setup=1e-5, t_word=1e-7, t_work=1e-6)
NPROC = 4
REFINE_FRAC = 0.15


def corner_error(mesh):
    mid = edge_midpoints(mesh.coords, mesh.edges)
    return 1.0 / (0.05 + np.linalg.norm(mid, axis=1))


def make_solver(**kw):
    return LoadBalancedAdaptiveSolver(
        box_mesh(3, 3, 3), NPROC, machine=CHEAP,
        cost_model=CostModel(machine=CHEAP), **kw
    )


@pytest.fixture(scope="module")
def traced_step():
    tracer = Tracer()
    solver = make_solver(tracer=tracer)
    report = solver.adapt_step(
        edge_error=corner_error(solver.adaptive.mesh),
        refine_frac=REFINE_FRAC,
    )
    assert report.accepted  # the workload must exercise the whole cycle
    return solver, report, tracer


def test_partition_quality_metrics_match_direct_computation(traced_step):
    """The dashboard's 'before' quality row is exactly what
    repro.partition.quality reports on the pre-balance graph."""
    _, _, tracer = traced_step
    # replicate the pre-balance state on an identical twin solver: same
    # deterministic mesh, marking, and predicted weights
    twin = make_solver()
    part0 = twin.part.copy()
    marking = twin.adaptive.mark(
        edge_error=corner_error(twin.adaptive.mesh),
        refine_frac=REFINE_FRAC,
        part=twin.elem_owner(),
        ledger=CostLedger(NPROC, CHEAP),
    )
    wcomp_pred, _ = twin.adaptive.predicted_weights(marking)
    graph = twin.dual.graph.with_vwgt(np.asarray(wcomp_pred, dtype=np.int64))

    reg = tracer.metrics
    assert reg.get("repro.partition.imbalance", {"when": "before"},
                   cycle=0) == pq.imbalance(graph, part0, NPROC)
    assert reg.get("repro.partition.edgecut", {"when": "before"},
                   cycle=0) == float(pq.edgecut(graph, part0))


def test_phase_seconds_metrics_equal_report_exactly(traced_step):
    _, report, tracer = traced_step
    reg = tracer.metrics
    for phase, seconds in report.phase_times().items():
        assert reg.get("repro.cycle.phase_seconds", {"phase": phase},
                       cycle=0) == seconds  # exact: no virtual drift allowed
    assert reg.get("repro.cycle.total_seconds", cycle=0) == report.total_time
    assert reg.get("repro.cycle.imbalance", {"when": "before"},
                   cycle=0) == report.imbalance_before
    assert reg.get("repro.cycle.imbalance", {"when": "after"},
                   cycle=0) == report.imbalance_after


def test_remap_and_reassign_metrics_match_execution(traced_step):
    _, report, tracer = traced_step
    reg = tracer.metrics
    assert reg.get("repro.remap.elements_moved",
                   cycle=0) == report.remap.elements_moved
    assert reg.get("repro.remap.words_moved",
                   cycle=0) == report.remap.words_moved
    assert reg.get("repro.remap.messages", cycle=0) == report.remap.messages
    # both reassignment methods are recorded, Table-1 style
    for metric in ("repro.reassign.total_v", "repro.reassign.max_v",
                   "repro.reassign.max_sr"):
        for method in ("greedy", "mwbg"):
            value = reg.get(metric, {"method": method}, cycle=0)
            assert value is not None and value >= 0
    # the active reassigner's TotalV is the decision's stats
    assert reg.get("repro.reassign.total_v", {"method": "greedy"},
                   cycle=0) == report.stats.c_total


def test_ascii_report_renders_the_recorded_values(traced_step):
    _, report, tracer = traced_step
    text = render_ascii(tracer, source="test")
    for heading in ("Balance quality per cycle",
                    "Reassignment cost (TotalV / MaxV / MaxSR)",
                    "Remap traffic per cycle", "Cycle anatomy",
                    "Per-rank traffic (virtual machine, summed over cycles)",
                    "Per-rank traffic (cost ledger, summed over cycles)"):
        assert heading in text
    # the single cycle appears as a table row
    assert re.search(r"^\s*0\b", text, re.MULTILINE)
    reg = tracer.metrics
    # formatted metric values appear verbatim — rendered, not recomputed
    for value in (
        reg.get("repro.partition.imbalance", {"when": "after"}, cycle=0),
        reg.get("repro.reassign.total_v", {"method": "mwbg"}, cycle=0),
        report.remap.elements_moved,
    ):
        assert _fmt(value) in text


def test_html_report_is_self_contained_and_complete(traced_step):
    _, report, tracer = traced_step
    html = render_html(tracer, title="test report", source="test")
    assert html.startswith("<!DOCTYPE html>") and html.rstrip().endswith(
        "</html>"
    )
    assert "<svg" in html and "viz-root" in html
    assert "test report" in html
    # no external assets: everything inline
    assert "http://" not in html and "https://" not in html
    assert 'src="' not in html and "@import" not in html
    # per-rank traffic and the recorded values are present
    assert _fmt(report.remap.elements_moved) in html
    for rank in range(NPROC):
        assert f"rank {rank}" in html
