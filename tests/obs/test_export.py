"""Exporter round-trips and schema validation."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    SchemaError,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    read_jsonl,
    validate_jsonl,
)


def sample_tracer() -> Tracer:
    ticks = iter(range(1000))
    tr = Tracer(wall_clock=lambda: float(next(ticks)))
    with tr.phase("step", nproc=4):
        with tr.phase("marking") as sp:
            tr.advance(0.25)
            sp.attrs["edges"] = 7
        with tr.phase("remap", rank=None):
            tr.event("vm.send", rank=0, detail=[1, 5, 16])
            tr.advance(0.5)
    tr.count("messages", 3)
    tr.gauge("imbalance", 1.08)
    return tr


def metric_tracer() -> Tracer:
    tr = sample_tracer()
    tr.begin_cycle()
    tr.metric("repro.partition.imbalance", 1.12, when="before")
    tr.metric("repro.partition.imbalance", 1.03, when="after")
    tr.metric("repro.vm.words_sent", 128, kind="counter", rank=0)
    tr.metric("repro.vm.words_sent", 64, kind="counter", rank=1)
    tr.metric("repro.solver.residual_norm", 0.5, kind="histogram")
    tr.metric("repro.solver.residual_norm", 0.25, kind="histogram")
    return tr


def test_jsonl_roundtrip(tmp_path):
    tr = sample_tracer()
    path = tmp_path / "trace.jsonl"
    n = export_jsonl(tr, path)
    assert n == 1 + len(tr.spans) + len(tr.events) + 2

    back = read_jsonl(path)
    assert len(back.spans) == len(tr.spans)
    for a, b in zip(tr.spans, back.spans):
        assert (a.name, a.index, a.parent, a.depth, a.rank) == (
            b.name, b.index, b.parent, b.depth, b.rank
        )
        assert a.v_start == b.v_start and a.v_end == b.v_end
        assert a.wall_start == b.wall_start and a.wall_end == b.wall_end
        assert a.attrs == b.attrs
    assert [e.name for e in back.events] == [e.name for e in tr.events]
    assert back.counters == tr.counters
    assert back.gauges == tr.gauges
    assert back.virtual_now == pytest.approx(tr.virtual_now)


def test_validate_accepts_fresh_export(tmp_path):
    path = tmp_path / "trace.jsonl"
    export_jsonl(sample_tracer(), path)
    summary = validate_jsonl(path)
    assert summary == {"spans": 3, "events": 1, "counters": 1, "gauges": 1,
                       "metrics": 0, "nodes": 0, "msgs": 0, "clocks": 0,
                       "resources": 0}


def test_metric_roundtrip(tmp_path):
    tr = metric_tracer()
    path = tmp_path / "trace.jsonl"
    export_jsonl(tr, path)
    assert validate_jsonl(path)["metrics"] == len(tr.metrics)

    back = read_jsonl(path)
    assert back.metrics.samples() == tr.metrics.samples()
    # counters keep their per-rank keys, histograms their full value lists
    assert back.metrics.per_rank("repro.vm.words_sent") == {0: 128.0, 1: 64.0}
    assert back.metrics.get("repro.solver.residual_norm",
                            cycle=0) == [0.5, 0.25]
    # the cycle counter resumes after the last recorded cycle
    assert back.begin_cycle() == 1


def test_v1_files_still_accepted(tmp_path):
    path = tmp_path / "v1.jsonl"
    meta = {"type": "meta", "schema": "repro.obs/v1", "spans": 0,
            "events": 0, "counters": 1, "gauges": 0}
    counter = {"type": "counter", "name": "messages", "value": 3}
    path.write_text(json.dumps(meta) + "\n" + json.dumps(counter) + "\n")
    assert "repro.obs/v1" in SUPPORTED_SCHEMAS
    summary = validate_jsonl(path)
    assert summary["counters"] == 1 and summary["metrics"] == 0
    assert read_jsonl(path).counters == {"messages": 3}


def test_metric_record_rejected_in_v1_file(tmp_path):
    path = tmp_path / "v1.jsonl"
    meta = {"type": "meta", "schema": "repro.obs/v1", "spans": 0,
            "events": 0, "counters": 0, "gauges": 0}
    metric = {"type": "metric", "name": "x", "kind": "gauge", "value": 1.0,
              "labels": {}, "cycle": None, "rank": None, "v_time": 0.0}
    path.write_text(json.dumps(meta) + "\n" + json.dumps(metric) + "\n")
    with pytest.raises(SchemaError, match="metric records require"):
        validate_jsonl(path)


def _meta(schema=SCHEMA_VERSION, **counts) -> dict:
    base = {"type": "meta", "schema": schema, "spans": 0,
            "events": 0, "counters": 0, "gauges": 0, "metrics": 0,
            "nodes": 0, "msgs": 0, "clocks": 0, "resources": 0}
    if schema == "repro.obs/v2":
        del base["nodes"], base["msgs"]
    if schema in ("repro.obs/v2", "repro.obs/v3"):
        del base["clocks"]
    if schema in ("repro.obs/v2", "repro.obs/v3", "repro.obs/v4"):
        del base["resources"]
    base.update(counts)
    return base


_v2_meta = _meta  # historical name used below


@pytest.mark.parametrize("bad, match", [
    ({"kind": "sampler"}, "not in"),
    ({"value": "high"}, "must be a number"),
    ({"kind": "histogram", "value": 3.0}, "list of numbers"),
    ({"labels": {"method": 2}}, "str to str"),
    ({"cycle": 1.5}, "int or null"),
])
def test_validate_rejects_bad_metric(tmp_path, bad, match):
    rec = {"type": "metric", "name": "x", "kind": "gauge", "value": 1.0,
           "labels": {}, "cycle": None, "rank": None, "v_time": 0.0}
    rec.update(bad)
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps(_v2_meta(metrics=1)) + "\n"
                    + json.dumps(rec) + "\n")
    with pytest.raises(SchemaError, match=match):
        validate_jsonl(path)


def test_validate_rejects_v2_meta_without_metric_count(tmp_path):
    meta = _v2_meta()
    del meta["metrics"]
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps(meta) + "\n")
    with pytest.raises(SchemaError, match="metrics"):
        validate_jsonl(path)


def test_open_spans_are_skipped(tmp_path):
    tr = Tracer()
    cm = tr.phase("never-closed")
    cm.__enter__()
    path = tmp_path / "trace.jsonl"
    export_jsonl(tr, path)
    assert validate_jsonl(path)["spans"] == 0


def test_validate_rejects_missing_meta(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"type": "counter", "name": "x", "value": 1}) + "\n")
    with pytest.raises(SchemaError, match="meta"):
        validate_jsonl(path)


def test_validate_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        validate_jsonl(path)


def test_validate_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "meta"\n')
    with pytest.raises(SchemaError, match="invalid JSON"):
        validate_jsonl(path)


def test_validate_rejects_wrong_schema_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    meta = {"type": "meta", "schema": "repro.obs/v0", "spans": 0,
            "events": 0, "counters": 0, "gauges": 0}
    path.write_text(json.dumps(meta) + "\n")
    with pytest.raises(SchemaError, match="schema"):
        validate_jsonl(path)


def test_validate_rejects_count_mismatch(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps(_meta(spans=2)) + "\n")
    with pytest.raises(SchemaError, match="declares 2 spans"):
        validate_jsonl(path)


def test_validate_rejects_backwards_span(tmp_path):
    path = tmp_path / "bad.jsonl"
    span = {"type": "span", "index": 0, "parent": None, "depth": 0,
            "name": "x", "rank": None, "v_start": 5.0, "v_end": 1.0,
            "wall_start": 0.0, "wall_end": 1.0, "attrs": {}}
    path.write_text(json.dumps(_meta(spans=1)) + "\n" + json.dumps(span) + "\n")
    with pytest.raises(SchemaError, match="ends before it starts"):
        validate_jsonl(path)


def test_validate_rejects_dangling_parent(tmp_path):
    path = tmp_path / "bad.jsonl"
    span = {"type": "span", "index": 3, "parent": 99, "depth": 1,
            "name": "x", "rank": None, "v_start": 0.0, "v_end": 1.0,
            "wall_start": 0.0, "wall_end": 1.0, "attrs": {}}
    path.write_text(json.dumps(_meta(spans=1)) + "\n" + json.dumps(span) + "\n")
    with pytest.raises(SchemaError, match="parent 99"):
        validate_jsonl(path)


def test_validate_rejects_missing_field(tmp_path):
    path = tmp_path / "bad.jsonl"
    event = {"type": "event", "v_time": 0.0, "attrs": {}}  # no name
    path.write_text(json.dumps(_meta(events=1)) + "\n"
                    + json.dumps(event) + "\n")
    with pytest.raises(SchemaError, match="missing 'name'"):
        validate_jsonl(path)


def causal_tracer() -> Tracer:
    """Tracer holding one traced two-rank VM run (ping + reply)."""
    from repro.parallel import VirtualMachine

    def prog(comm):
        if comm.rank == 0:
            yield from comm.compute(100)
            yield from comm.send("ping", dest=1, tag=1, nwords=8)
            _ = yield from comm.recv(source=1, tag=2)
        else:
            _ = yield from comm.recv(source=0, tag=1)
            yield from comm.send("pong", dest=0, tag=2, nwords=8)

    tr = sample_tracer()
    with tr.phase("remap"):
        res = VirtualMachine(2, tracer=tr).run(prog)
        tr.advance(res.makespan)
    return tr


def test_causal_roundtrip(tmp_path):
    tr = causal_tracer()
    assert tr.causal_nodes and tr.causal_msgs
    path = tmp_path / "trace.jsonl"
    export_jsonl(tr, path)
    summary = validate_jsonl(path)
    assert summary["nodes"] == len(tr.causal_nodes)
    assert summary["msgs"] == len(tr.causal_msgs)

    back = read_jsonl(path)
    assert back.causal_nodes == tr.causal_nodes
    assert back.causal_msgs == tr.causal_msgs
    # the run counter resumes after the last recorded run
    assert back.next_causal_run() == tr._next_run


def test_v2_files_still_accepted(tmp_path):
    path = tmp_path / "v2.jsonl"
    meta = _meta(schema="repro.obs/v2", metrics=1)
    metric = {"type": "metric", "name": "x", "kind": "gauge", "value": 1.0,
              "labels": {}, "cycle": None, "rank": None, "v_time": 0.0}
    path.write_text(json.dumps(meta) + "\n" + json.dumps(metric) + "\n")
    assert "repro.obs/v2" in SUPPORTED_SCHEMAS
    summary = validate_jsonl(path)
    assert summary["metrics"] == 1 and summary["nodes"] == 0
    assert len(read_jsonl(path).metrics) == 1


@pytest.mark.parametrize("rec", [
    {"type": "node", "run": 0, "id": 0, "rank": 0, "kind": "work",
     "t_start": 0.0, "t_end": 1.0, "wait": 0.0, "msg": None},
    {"type": "msg", "run": 0, "id": 0, "src": 0, "dst": 1, "tag": 0,
     "nwords": 4, "send_node": 0, "recv_node": None},
])
def test_causal_records_rejected_in_v2_file(tmp_path, rec):
    path = tmp_path / "v2.jsonl"
    meta = _meta(schema="repro.obs/v2")
    path.write_text(json.dumps(meta) + "\n" + json.dumps(rec) + "\n")
    with pytest.raises(SchemaError, match="require schema"):
        validate_jsonl(path)


@pytest.mark.parametrize("bad, match", [
    ({"kind": "think"}, "not in"),
    ({"t_end": -1.0}, "ends before it starts"),
    ({"wait": -0.5}, "negative node wait"),
    ({"msg": 1.5}, "int or null"),
])
def test_validate_rejects_bad_node(tmp_path, bad, match):
    rec = {"type": "node", "run": 0, "id": 0, "rank": 0, "kind": "work",
           "t_start": 0.0, "t_end": 1.0, "wait": 0.0, "msg": None}
    rec.update(bad)
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps(_meta(nodes=1)) + "\n"
                    + json.dumps(rec) + "\n")
    with pytest.raises(SchemaError, match=match):
        validate_jsonl(path)


def test_validate_rejects_v3_meta_without_causal_counts(tmp_path):
    meta = _meta()
    del meta["nodes"]
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps(meta) + "\n")
    with pytest.raises(SchemaError, match="nodes"):
        validate_jsonl(path)


def test_chrome_trace_flow_events(tmp_path):
    tr = causal_tracer()
    path = tmp_path / "trace.json"
    export_chrome_trace(tr, path)
    events = json.loads(path.read_text())["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    # one flow pair per *delivered* message, ids matching pairwise
    delivered = [m for m in tr.causal_msgs if m.recv_node is not None]
    assert len(starts) == len(finishes) == len(delivered)
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    by_id = {e["id"]: e for e in starts}
    for fin in finishes:
        start = by_id[fin["id"]]
        assert fin["bp"] == "e"
        assert start["tid"] != fin["tid"]  # crosses rank threads
        assert start["ts"] <= fin["ts"]
    # causal nodes render as vm-category slices on rank threads
    vm_slices = [e for e in events
                 if e["ph"] == "X" and e.get("cat") == "vm"]
    assert len(vm_slices) == len(tr.causal_nodes)
    assert all(s["tid"] >= 1 for s in vm_slices)


def test_chrome_flow_events_survive_jsonl_round_trip(tmp_path):
    """Virtual causal records keep their flow pairs through JSONL."""
    tr = causal_tracer()
    jsonl = tmp_path / "trace.jsonl"
    export_jsonl(tr, jsonl)
    back = read_jsonl(jsonl)
    path = tmp_path / "trace.json"
    export_chrome_trace(back, path)
    events = json.loads(path.read_text())["traceEvents"]
    starts = {e["id"]: e for e in events if e["ph"] == "s"}
    finishes = {e["id"]: e for e in events if e["ph"] == "f"}
    delivered = [m for m in tr.causal_msgs if m.recv_node is not None]
    assert len(starts) == len(finishes) == len(delivered) == 2
    assert set(starts) == set(finishes)
    nodes = {n.id: n for n in tr.causal_nodes}
    for msg, fid in zip(sorted(delivered, key=lambda m: m.id),
                        sorted(starts)):
        s, f = starts[fid], finishes[fid]
        # virtual flows stay on the modelled-timeline process (pid 0)
        # and bind the sender's rank thread to the receiver's
        assert s["pid"] == f["pid"] == 0
        assert s["tid"] == nodes[msg.send_node].rank + 1
        assert f["tid"] == nodes[msg.recv_node].rank + 1
        assert s["ts"] <= f["ts"]
        assert s["args"]["nwords"] == msg.nwords == f["args"]["nwords"]


def test_chrome_trace_structure(tmp_path):
    tr = sample_tracer()
    path = tmp_path / "trace.json"
    n = export_chrome_trace(tr, path)
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    counters = [e for e in events if e["ph"] == "C"]
    metas = [e for e in events if e["ph"] == "M"]
    assert n == len(slices) + len(instants) + len(counters)
    assert {s["name"] for s in slices} == {"step", "marking", "remap"}
    # timestamps are on the virtual clock in microseconds
    marking = next(s for s in slices if s["name"] == "marking")
    assert marking["dur"] == pytest.approx(0.25e6)
    assert marking["args"]["edges"] == 7
    # the ranked instant lands on the rank's virtual thread
    assert instants[0]["tid"] == 1  # rank 0 -> tid 1
    # thread names declared for framework + every rank seen
    names = {m["args"]["name"] for m in metas if m["name"] == "thread_name"}
    assert {"framework", "rank 0"} <= names
    assert counters[0]["name"] == "messages"
