"""Exporter round-trips and schema validation."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    SchemaError,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    read_jsonl,
    validate_jsonl,
)


def sample_tracer() -> Tracer:
    ticks = iter(range(1000))
    tr = Tracer(wall_clock=lambda: float(next(ticks)))
    with tr.phase("step", nproc=4):
        with tr.phase("marking") as sp:
            tr.advance(0.25)
            sp.attrs["edges"] = 7
        with tr.phase("remap", rank=None):
            tr.event("vm.send", rank=0, detail=[1, 5, 16])
            tr.advance(0.5)
    tr.count("messages", 3)
    tr.gauge("imbalance", 1.08)
    return tr


def test_jsonl_roundtrip(tmp_path):
    tr = sample_tracer()
    path = tmp_path / "trace.jsonl"
    n = export_jsonl(tr, path)
    assert n == 1 + len(tr.spans) + len(tr.events) + 2

    back = read_jsonl(path)
    assert len(back.spans) == len(tr.spans)
    for a, b in zip(tr.spans, back.spans):
        assert (a.name, a.index, a.parent, a.depth, a.rank) == (
            b.name, b.index, b.parent, b.depth, b.rank
        )
        assert a.v_start == b.v_start and a.v_end == b.v_end
        assert a.wall_start == b.wall_start and a.wall_end == b.wall_end
        assert a.attrs == b.attrs
    assert [e.name for e in back.events] == [e.name for e in tr.events]
    assert back.counters == tr.counters
    assert back.gauges == tr.gauges
    assert back.virtual_now == pytest.approx(tr.virtual_now)


def test_validate_accepts_fresh_export(tmp_path):
    path = tmp_path / "trace.jsonl"
    export_jsonl(sample_tracer(), path)
    summary = validate_jsonl(path)
    assert summary == {"spans": 3, "events": 1, "counters": 1, "gauges": 1}


def test_open_spans_are_skipped(tmp_path):
    tr = Tracer()
    cm = tr.phase("never-closed")
    cm.__enter__()
    path = tmp_path / "trace.jsonl"
    export_jsonl(tr, path)
    assert validate_jsonl(path)["spans"] == 0


def test_validate_rejects_missing_meta(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"type": "counter", "name": "x", "value": 1}) + "\n")
    with pytest.raises(SchemaError, match="meta"):
        validate_jsonl(path)


def test_validate_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        validate_jsonl(path)


def test_validate_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "meta"\n')
    with pytest.raises(SchemaError, match="invalid JSON"):
        validate_jsonl(path)


def test_validate_rejects_wrong_schema_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    meta = {"type": "meta", "schema": "repro.obs/v0", "spans": 0,
            "events": 0, "counters": 0, "gauges": 0}
    path.write_text(json.dumps(meta) + "\n")
    with pytest.raises(SchemaError, match="schema"):
        validate_jsonl(path)


def test_validate_rejects_count_mismatch(tmp_path):
    path = tmp_path / "bad.jsonl"
    meta = {"type": "meta", "schema": SCHEMA_VERSION, "spans": 2,
            "events": 0, "counters": 0, "gauges": 0}
    path.write_text(json.dumps(meta) + "\n")
    with pytest.raises(SchemaError, match="declares 2 spans"):
        validate_jsonl(path)


def test_validate_rejects_backwards_span(tmp_path):
    path = tmp_path / "bad.jsonl"
    meta = {"type": "meta", "schema": SCHEMA_VERSION, "spans": 1,
            "events": 0, "counters": 0, "gauges": 0}
    span = {"type": "span", "index": 0, "parent": None, "depth": 0,
            "name": "x", "rank": None, "v_start": 5.0, "v_end": 1.0,
            "wall_start": 0.0, "wall_end": 1.0, "attrs": {}}
    path.write_text(json.dumps(meta) + "\n" + json.dumps(span) + "\n")
    with pytest.raises(SchemaError, match="ends before it starts"):
        validate_jsonl(path)


def test_validate_rejects_dangling_parent(tmp_path):
    path = tmp_path / "bad.jsonl"
    meta = {"type": "meta", "schema": SCHEMA_VERSION, "spans": 1,
            "events": 0, "counters": 0, "gauges": 0}
    span = {"type": "span", "index": 3, "parent": 99, "depth": 1,
            "name": "x", "rank": None, "v_start": 0.0, "v_end": 1.0,
            "wall_start": 0.0, "wall_end": 1.0, "attrs": {}}
    path.write_text(json.dumps(meta) + "\n" + json.dumps(span) + "\n")
    with pytest.raises(SchemaError, match="parent 99"):
        validate_jsonl(path)


def test_validate_rejects_missing_field(tmp_path):
    path = tmp_path / "bad.jsonl"
    meta = {"type": "meta", "schema": SCHEMA_VERSION, "spans": 0,
            "events": 1, "counters": 0, "gauges": 0}
    event = {"type": "event", "v_time": 0.0, "attrs": {}}  # no name
    path.write_text(json.dumps(meta) + "\n" + json.dumps(event) + "\n")
    with pytest.raises(SchemaError, match="missing 'name'"):
        validate_jsonl(path)


def test_chrome_trace_structure(tmp_path):
    tr = sample_tracer()
    path = tmp_path / "trace.json"
    n = export_chrome_trace(tr, path)
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    counters = [e for e in events if e["ph"] == "C"]
    metas = [e for e in events if e["ph"] == "M"]
    assert n == len(slices) + len(instants) + len(counters)
    assert {s["name"] for s in slices} == {"step", "marking", "remap"}
    # timestamps are on the virtual clock in microseconds
    marking = next(s for s in slices if s["name"] == "marking")
    assert marking["dur"] == pytest.approx(0.25e6)
    assert marking["args"]["edges"] == 7
    # the ranked instant lands on the rank's virtual thread
    assert instants[0]["tid"] == 1  # rank 0 -> tid 1
    # thread names declared for framework + every rank seen
    names = {m["args"]["name"] for m in metas if m["name"] == "thread_name"}
    assert {"framework", "rank 0"} <= names
    assert counters[0]["name"] == "messages"
