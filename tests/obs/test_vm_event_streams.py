"""Every scheduler op kind must reach both observability streams.

Regression for the elapse gap: ``ElapseOp`` used to record only a causal
node, so ``vm.elapse`` never appeared among the tracer's mirrored point
events and idle-polling loops were invisible to event-level tooling.
Both scheduler paths — the columnar lazy-mirroring one and the eager
reference one — must now surface every kind (work, elapse, send, recv)
as a ``vm.<kind>`` point event *and* as a causal node, with matching
counts and details.
"""

from contextlib import nullcontext

import pytest

from repro.kernels import reference_kernels
from repro.obs import Tracer
from repro.parallel import SP2_1997, VirtualMachine


def _prog(comm):
    yield from comm.compute(5)
    yield from comm.elapse(0.125 * (comm.rank + 1))
    nxt = (comm.rank + 1) % comm.size
    prev = (comm.rank - 1) % comm.size
    yield from comm.send("x", dest=nxt, tag=1, nwords=2)
    _ = yield from comm.recv(source=prev, tag=1)


@pytest.mark.parametrize("reference", [False, True])
def test_every_op_kind_in_both_streams(reference):
    tracer = Tracer()
    ctx = reference_kernels() if reference else nullcontext()
    with ctx:
        res = VirtualMachine(2, SP2_1997, trace=True, tracer=tracer).run(_prog)

    point_names = [e.name for e in tracer.events]
    causal_kinds = [n.kind for n in tracer.causal_nodes]
    for kind in ("work", "elapse", "send", "recv"):
        assert f"vm.{kind}" in point_names, (reference, kind)
        assert kind in causal_kinds, (reference, kind)
        # one mirrored point event per causal node of that kind
        assert point_names.count(f"vm.{kind}") == causal_kinds.count(kind)

    # the elapse events carry the programs' seconds, rank-tagged
    elapses = [e for e in tracer.events if e.name == "vm.elapse"]
    assert sorted((e.rank, *e.attrs["detail"]) for e in elapses) == [
        (0, 0.125), (1, 0.25),
    ]

    # and the RunResult views agree stream-for-stream
    assert [ev.kind for ev in res.trace].count("elapse") == 2
    assert [n.kind for n in res.nodes].count("elapse") == 2


def test_elapse_point_events_identical_across_paths():
    def run(reference):
        tracer = Tracer()
        ctx = reference_kernels() if reference else nullcontext()
        with ctx:
            VirtualMachine(3, SP2_1997, tracer=tracer).run(_prog)
        return [
            (e.name, e.v_time, e.rank, tuple(e.attrs.get("detail", ())))
            for e in tracer.events
        ]

    assert run(False) == run(True)
