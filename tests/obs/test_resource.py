"""Resource sampling: sampler columns, trace recording, per-rank peaks."""

import pytest

from repro.obs.export import export_jsonl, read_jsonl, validate_jsonl
from repro.obs.resource import (
    ResourceSample,
    ResourceSampler,
    record_resource_samples,
    resource_peaks,
    sample_resources,
)
from repro.obs.tracer import Tracer


def test_sample_resources_shape():
    rss, cpu, gcs = sample_resources()
    assert rss > 0  # a running interpreter has a nonzero RSS
    assert cpu >= 0.0
    assert isinstance(gcs, int) and gcs >= 0


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError, match="must be > 0"):
        ResourceSampler(interval=0.0)


def test_sampler_takes_opening_and_closing_samples():
    sampler = ResourceSampler(interval=10.0)  # loop never fires
    sampler.start()
    sampler.stop()
    rows = sampler.rows()
    assert len(rows["times"]) == 2  # one on start, one on stop
    assert rows["times"][0] <= rows["times"][1]
    assert all(len(rows[k]) == 2 for k in ("rss", "cpu", "gcs"))
    assert rows["rss"][0] > 0


def test_sampler_periodic_samples_accumulate():
    with ResourceSampler(interval=0.005) as sampler:
        import time

        time.sleep(0.05)
    assert len(sampler.times) >= 3
    assert sampler.times == sorted(sampler.times)


def test_sampler_emit_callback_streams_each_sample():
    frames = []
    sampler = ResourceSampler(
        interval=10.0, emit=lambda t, rss, cpu, gcs: frames.append((t, rss))
    )
    sampler.start()
    sampler.stop()
    assert len(frames) == 2
    assert frames[0][1] > 0


def test_sampler_emit_errors_are_swallowed():
    def boom(*a):
        raise RuntimeError("telemetry must never take the run down")

    sampler = ResourceSampler(interval=10.0, emit=boom)
    sampler.start()
    sampler.stop()
    assert len(sampler.times) == 2  # sampling survived the bad callback


def _rows():
    return {
        "times": [0.0, 0.1, 0.2],
        "rss": [100.0, 300.0, 200.0],
        "cpu": [0.0, 0.05, 0.11],
        "gcs": [10, 12, 15],
    }


def test_record_resource_samples_appends_and_mirrors_peaks():
    tr = Tracer()
    n = record_resource_samples(tr, _rows(), rank=2, backend="shm")
    assert n == 3
    assert [s.rank for s in tr.resource_samples] == [2, 2, 2]
    assert tr.resource_samples[1].rss_bytes == 300.0
    labels = {"backend": "shm"}
    assert tr.metrics.get("repro.resource.peak_rss_bytes", labels,
                          rank=2) == 300.0
    assert tr.metrics.get("repro.resource.cpu_seconds", labels,
                          rank=2) == pytest.approx(0.11)
    assert tr.metrics.get("repro.resource.gc_collections", labels,
                          rank=2) == 5.0


def test_record_resource_samples_guards():
    tr = Tracer()
    assert record_resource_samples(None, _rows()) == 0
    assert record_resource_samples(tr, {}) == 0
    assert record_resource_samples(
        tr, {"times": [], "rss": [], "cpu": [], "gcs": []}
    ) == 0
    assert not tr.resource_samples


def test_resource_samples_roundtrip_v5(tmp_path):
    tr = Tracer()
    with tr.phase("exec"):
        pass
    record_resource_samples(tr, _rows(), rank=None, backend="host")
    path = tmp_path / "trace.jsonl"
    export_jsonl(tr, path)
    assert validate_jsonl(path)["resources"] == 3
    back = read_jsonl(path)
    assert back.resource_samples == tr.resource_samples


def test_resource_peaks_per_rank():
    samples = [
        ResourceSample(rank=0, t=0.0, rss_bytes=50.0, cpu_seconds=0.1,
                       gc_collections=1),
        ResourceSample(rank=0, t=0.1, rss_bytes=80.0, cpu_seconds=0.2,
                       gc_collections=3),
        ResourceSample(rank=None, t=0.0, rss_bytes=500.0, cpu_seconds=1.0,
                       gc_collections=9),
    ]
    peaks = resource_peaks(samples)
    assert peaks[0] == {"peak_rss_bytes": 80.0, "cpu_seconds": 0.2,
                        "gc_collections": 3.0, "samples": 2}
    assert peaks[None]["peak_rss_bytes"] == 500.0
    assert peaks[None]["samples"] == 1
