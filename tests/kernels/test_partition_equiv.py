"""Optimized partitioning kernels must match the reference bit-for-bit."""

import numpy as np
import pytest

from repro.core.dualgraph import DualGraph
from repro.kernels import reference_kernels
from repro.mesh.generate import box_mesh
from repro.partition.fm_refine import (
    fm_bisection_refine,
    fm_bisection_refine_reference,
    kway_greedy_refine,
    kway_greedy_refine_reference,
)
from repro.partition.matching import (
    heavy_edge_matching,
    heavy_edge_matching_reference,
)
from repro.partition.multilevel import multilevel_kway


def _graph(seed: int, n: int = 3):
    rng = np.random.default_rng(seed)
    dual = DualGraph(box_mesh(n, n, n))
    g = dual.graph
    g.vwgt = rng.integers(1, 9, size=g.n).astype(np.int64)
    # symmetric random edge weights
    w = {}
    ew = np.empty_like(g.ewgt)
    for v in range(g.n):
        for i in range(g.ptr[v], g.ptr[v + 1]):
            u = int(g.adj[i])
            key = (min(v, u), max(v, u))
            if key not in w:
                w[key] = int(rng.integers(1, 9))
            ew[i] = w[key]
    g.ewgt = ew
    return g, rng


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_heavy_edge_matching_bit_identical(seed):
    g, _ = _graph(seed)
    opt = heavy_edge_matching(g, np.random.default_rng(seed))
    ref = heavy_edge_matching_reference(g, np.random.default_rng(seed))
    assert np.array_equal(opt, ref)
    # with labels restricting the matching
    lab = np.random.default_rng(seed + 50).integers(0, 3, size=g.n)
    opt = heavy_edge_matching(g, np.random.default_rng(seed), allowed=lab)
    ref = heavy_edge_matching_reference(
        g, np.random.default_rng(seed), allowed=lab
    )
    assert np.array_equal(opt, ref)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fm_bisection_refine_bit_identical(seed):
    g, rng = _graph(seed)
    side0 = rng.integers(0, 2, size=g.n).astype(np.int64)
    for target0 in (0.5, 0.3):
        opt = fm_bisection_refine(g, side0.copy(), target0)
        ref = fm_bisection_refine_reference(g, side0.copy(), target0)
        assert np.array_equal(opt, ref)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kway_greedy_refine_bit_identical(seed):
    g, rng = _graph(seed)
    k = 4
    part0 = rng.integers(0, k, size=g.n).astype(np.int64)
    for balance_only in (False, True):
        opt = kway_greedy_refine(g, part0.copy(), k, balance_only=balance_only)
        ref = kway_greedy_refine_reference(
            g, part0.copy(), k, balance_only=balance_only
        )
        assert np.array_equal(opt, ref)


@pytest.mark.parametrize("seed", [0, 1])
def test_multilevel_kway_bit_identical(seed):
    g, _ = _graph(seed, n=4)
    for k in (2, 5):
        opt = multilevel_kway(g, k, seed=seed)
        with reference_kernels():
            ref = multilevel_kway(g, k, seed=seed)
        assert np.array_equal(opt, ref)
