"""Optimized marking/refinement kernels must match the reference bit-for-bit."""

import numpy as np
import pytest

from repro.adapt.marking import propagate_markings, target_by_fraction
from repro.adapt.refine import subdivide
from repro.kernels import reference_kernels
from repro.mesh.generate import box_mesh
from repro.parallel.ledger import CostLedger
from repro.parallel.machine import MachineModel


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_subdivide_bit_identical(seed):
    rng = np.random.default_rng(seed)
    mesh = box_mesh(3, 3, 3)
    err = rng.uniform(size=mesh.nedges)
    frac = float(rng.uniform(0.05, 0.6))
    marking = propagate_markings(mesh, target_by_fraction(err, frac))
    sol = rng.uniform(size=(mesh.nv, 2))
    opt = subdivide(mesh, marking, solution=sol)
    with reference_kernels():
        ref = subdivide(mesh, marking, solution=sol)
    assert np.array_equal(opt.mesh.elems, ref.mesh.elems)
    assert np.array_equal(opt.mesh.coords, ref.mesh.coords)
    assert np.array_equal(opt.parent, ref.parent)
    assert np.array_equal(opt.child_count, ref.child_count)
    assert np.array_equal(opt.midpoint_of, ref.midpoint_of)
    assert np.array_equal(opt.edge_children, ref.edge_children)
    assert np.array_equal(opt.edge_survivor, ref.edge_survivor)
    assert np.array_equal(opt.solution, ref.solution)


def test_subdivide_handles_unmarked_empty_and_tiny_meshes():
    # regression: a mesh where nothing (or everything) is selected must not
    # crash the chunk assembly in either implementation
    mesh = box_mesh(1, 1, 1)
    marking = propagate_markings(mesh, np.zeros(mesh.nedges, dtype=bool))
    for force_ref in (False, True):
        with reference_kernels(force_ref):
            res = subdivide(mesh, marking)
        assert res.mesh.ne == mesh.ne
        assert np.array_equal(res.child_count, np.ones(mesh.ne, dtype=np.int64))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_propagate_markings_ledger_bit_identical(seed):
    rng = np.random.default_rng(seed)
    mesh = box_mesh(3, 3, 3)
    marked = target_by_fraction(rng.uniform(size=mesh.nedges), 0.25)
    nproc = int(rng.integers(2, 9))
    part = rng.integers(0, nproc, size=mesh.ne)

    led_opt = CostLedger(nproc, MachineModel())
    opt = propagate_markings(mesh, marked, part=part, ledger=led_opt)
    with reference_kernels():
        led_ref = CostLedger(nproc, MachineModel())
        ref = propagate_markings(mesh, marked, part=part, ledger=led_ref)

    assert np.array_equal(opt.edge_marked, ref.edge_marked)
    assert np.array_equal(opt.patterns, ref.patterns)
    assert opt.iterations == ref.iterations
    assert np.array_equal(led_opt.clocks, led_ref.clocks)
    assert led_opt.total_messages == led_ref.total_messages
    assert led_opt.total_words == led_ref.total_words
