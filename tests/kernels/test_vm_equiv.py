"""The indexed VM mailbox must reproduce the reference schedule exactly."""

import numpy as np

from repro.kernels import reference_kernels
from repro.parallel import ANY, VirtualMachine


def _mixed_traffic(comm):
    """Sends, wildcard receives, nonblocking receives, and collectives."""
    rng = np.random.default_rng(123 + comm.rank)
    out = []
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    # several tagged messages to the right neighbour, interleaved sizes
    for i in range(4):
        yield from comm.send(
            (comm.rank, i), dest=right, tag=i % 2, nwords=int(rng.integers(1, 40))
        )
    # wildcard receives pick them up in arrival order
    for _ in range(2):
        payload, src, tag = yield from comm.recv_status(ANY, ANY)
        out.append((payload, src, tag))
    # tag-selective receives drain the rest out of order
    out.append((yield from comm.recv(source=left, tag=1)))
    out.append((yield from comm.recv(source=left, tag=0)))
    # nonblocking receive completed via wait (exercises probe matching)
    req = yield from comm.irecv(source=ANY, tag=5)
    yield from comm.send("ping", dest=left, tag=5)
    out.append((yield from req.wait()))
    yield from comm.compute(float(rng.integers(1, 30)))
    # collectives stress the runtime's internal tags
    out.append((yield from comm.allreduce(comm.rank + 1)))
    out.append((yield from comm.alltoall([comm.rank * 100 + d for d in range(comm.size)])))
    return out


def _run(nranks):
    vm = VirtualMachine(nranks, trace=True)
    return vm.run(_mixed_traffic)


def test_vm_schedule_bit_identical():
    for nranks in (2, 3, 5, 8):
        opt = _run(nranks)
        with reference_kernels():
            ref = _run(nranks)
        assert opt.returns == ref.returns
        assert opt.clocks == ref.clocks
        assert opt.total_messages == ref.total_messages
        assert opt.total_words == ref.total_words
        assert opt.words_sent_per_rank == ref.words_sent_per_rank
        assert opt.trace == ref.trace
