"""Optimized solver accumulation kernels must match the reference bit-for-bit."""

import numpy as np
import pytest

from repro.kernels import reference_kernels
from repro.mesh.generate import box_mesh
from repro.solver.euler import EulerSolver, dual_volumes, edge_normals
from repro.solver.reconstruct import lsq_gradients


def _state(mesh, seed=0):
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [
            1.0 + 0.1 * rng.uniform(size=mesh.nv),
            0.2 * rng.standard_normal((mesh.nv, 3)),
            2.5 + 0.2 * rng.uniform(size=mesh.nv),
        ]
    )


def test_geometry_kernels_bit_identical():
    mesh = box_mesh(4, 3, 2)
    with reference_kernels():
        vol_ref = dual_volumes(mesh)
        n_ref = edge_normals(mesh)
    assert np.array_equal(dual_volumes(mesh), vol_ref)
    assert np.array_equal(edge_normals(mesh), n_ref)


def test_lsq_gradients_bit_identical():
    mesh = box_mesh(3, 3, 3)
    q = _state(mesh, seed=3)
    with reference_kernels():
        ref = lsq_gradients(mesh, q)
    assert np.array_equal(lsq_gradients(mesh, q), ref)


@pytest.mark.parametrize("order", [1, 2])
@pytest.mark.parametrize("flux", ["rusanov", "hllc"])
def test_solver_run_bit_identical(order, flux):
    mesh = box_mesh(3, 3, 3)
    q0 = _state(mesh)
    opt = EulerSolver(mesh, q0.copy(), order=order, flux=flux, time_scheme="rk2")
    opt.run(3)
    with reference_kernels():
        ref = EulerSolver(
            mesh, q0.copy(), order=order, flux=flux, time_scheme="rk2"
        )
        ref.run(3)
    assert np.array_equal(opt.vol, ref.vol)
    assert np.array_equal(opt.normals, ref.normals)
    assert np.array_equal(opt.q, ref.q)
    dt_opt, r_opt = opt.stable_dt(), opt.residual()
    with reference_kernels():
        dt_ref, r_ref = ref.stable_dt(), ref.residual()
    assert dt_opt == dt_ref
    assert np.array_equal(r_opt, r_ref)
