"""End-to-end: the adapt→balance cycle's virtual times are unchanged by the
optimized kernels, at more than one resolution."""

import numpy as np
import pytest

from repro.core.framework import LoadBalancedAdaptiveSolver
from repro.kernels import reference_kernels
from repro.mesh.generate import box_mesh


def _run_steps(res, nproc, force_reference):
    with reference_kernels(force_reference):
        solver = LoadBalancedAdaptiveSolver(
            box_mesh(res, res, res), nproc=nproc, seed=0
        )
        reports = []
        for step in range(2):
            rng = np.random.default_rng(1000 + step)
            err = rng.uniform(size=solver.adaptive.mesh.nedges)
            reports.append(solver.adapt_step(edge_error=err, refine_frac=0.15))
    return reports


@pytest.mark.parametrize("res,nproc", [(2, 4), (3, 8)])
def test_step_reports_bit_identical(res, nproc):
    for opt, ref in zip(
        _run_steps(res, nproc, False), _run_steps(res, nproc, True)
    ):
        assert opt.total_time == ref.total_time
        assert opt.phase_times() == ref.phase_times()
        assert opt.marking_time == ref.marking_time
        assert opt.partition_time == ref.partition_time
        assert opt.reassign_time == ref.reassign_time
        assert opt.gather_scatter_time == ref.gather_scatter_time
        assert opt.remap_time == ref.remap_time
        assert opt.subdivision_time == ref.subdivision_time
        assert opt.imbalance_before == ref.imbalance_before
        assert opt.imbalance_after == ref.imbalance_after
        assert opt.repartition_triggered == ref.repartition_triggered
        assert opt.accepted == ref.accepted
        assert opt.growth_factor == ref.growth_factor
        assert opt.mesh_sizes == ref.mesh_sizes
