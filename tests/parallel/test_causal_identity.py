"""Makespan identity: the critical path reproduces every run's makespan.

For each representative rank program, the virtual-time critical path
reconstructed from the causal record must equal ``RunResult.makespan``
*bit-for-bit* (no tolerance), and at least one rank must have exactly
zero slack — the defining properties that make the causal record a
faithful explanation of the virtual machine's schedule.
"""

import numpy as np
import pytest

from repro.obs import Tracer, critical_path, rank_stats, run_from_result
from repro.parallel import ANY, DeadlockError, SP2_1997, VirtualMachine
from repro.parallel.runtime import per_rank


def _assert_identity(res, nranks):
    run = run_from_result(res)
    path = critical_path(run)
    assert path.length == res.makespan  # exact, to the last bit
    stats = rank_stats(run, path)
    assert len(stats) == nranks
    assert any(st.slack == 0.0 for st in stats)
    assert all(st.slack >= 0.0 for st in stats)
    # per-rank intervals tile [0, clock]: work+comm+wait+tail == makespan
    for st in stats:
        assert st.work + st.comm + st.idle == pytest.approx(res.makespan)


def _run(prog, nranks, *args):
    res = VirtualMachine(nranks, SP2_1997, trace=True).run(prog, *args)
    _assert_identity(res, nranks)
    return res


def test_pingpong():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.compute(100)
            yield from comm.send("ping", dest=1, tag=1, nwords=50)
            _ = yield from comm.recv(source=1, tag=2)
        else:
            _ = yield from comm.recv(source=0, tag=1)
            yield from comm.send("pong", dest=0, tag=2, nwords=50)

    _run(prog, 2)


def test_work_and_elapse_only():
    def prog(comm):
        yield from comm.compute(10 * (comm.rank + 1))
        yield from comm.elapse(0.001)

    _run(prog, 4)


@pytest.mark.parametrize("p", [1, 2, 3, 8])
def test_collectives(p):
    def prog(comm):
        v = yield from comm.allreduce(comm.rank)
        v = yield from comm.bcast(v, root=0)
        parts = yield from comm.gather(comm.rank, root=0)
        yield from comm.barrier()
        s = yield from comm.scan(1)
        return (v, parts, s)

    res = _run(prog, p)
    assert [r[0] for r in res.returns] == [p * (p - 1) // 2] * p
    assert [r[2] for r in res.returns] == list(range(1, p + 1))


@pytest.mark.parametrize("p", [2, 5])
def test_alltoall(p):
    def prog(comm):
        return (yield from comm.alltoall([comm.rank * 10 + d
                                          for d in range(comm.size)]))

    res = _run(prog, p)
    for r in range(p):
        assert res.returns[r] == [s * 10 + r for s in range(p)]


def test_wildcard_receives():
    def prog(comm):
        if comm.rank == 0:
            got = []
            for _ in range(comm.size - 1):
                got.append((yield from comm.recv(source=ANY, tag=ANY)))
            return sorted(got)
        yield from comm.compute(5 * comm.rank)
        yield from comm.send(comm.rank, dest=0, tag=comm.rank, nwords=1)

    res = _run(prog, 4)
    assert res.returns[0] == [1, 2, 3]


def test_random_exchange_identity():
    rng = np.random.default_rng(7)
    p = 6
    dests = [[int(x) for x in rng.integers(0, p, 4)] for _ in range(p)]

    def prog(comm):
        n_in = sum(d.count(comm.rank) for d in dests)
        for dest in dests[comm.rank]:
            yield from comm.send(comm.rank, dest=dest, tag=0,
                                 nwords=int(rng.integers(1, 100)))
        for _ in range(n_in):
            _ = yield from comm.recv(tag=0)
        yield from comm.barrier()

    _run(prog, p)


def test_per_rank_arguments():
    def prog(comm, units):
        yield from comm.compute(units)
        yield from comm.barrier()

    _run(prog, 3, per_rank([10.0, 200.0, 30.0]))


def test_identity_survives_export_roundtrip(tmp_path):
    from repro.obs import export_jsonl, read_jsonl, verify_makespans

    def prog(comm):
        if comm.rank == 0:
            yield from comm.compute(40)
            yield from comm.send("x", dest=1, tag=3, nwords=25)
        else:
            _ = yield from comm.recv(source=0, tag=3)
            yield from comm.compute(15)

    tracer = Tracer()
    with tracer.phase("remap"):
        res = VirtualMachine(2, SP2_1997, tracer=tracer).run(prog)
        tracer.advance(res.makespan)
    path = tmp_path / "t.jsonl"
    export_jsonl(tracer, str(path))
    assert verify_makespans(read_jsonl(str(path))) == 1


# --- DeadlockError causal-chain diagnostics ---------------------------------


def _deadlock_prog(comm):
    if comm.rank == 0:
        yield from comm.compute(20)
        yield from comm.send("a", dest=1, tag=1, nwords=5)
        _ = yield from comm.recv(source=1, tag=2)
        _ = yield from comm.recv(source=1, tag=99)  # never sent
    else:
        _ = yield from comm.recv(source=0, tag=1)
        yield from comm.send("b", dest=0, tag=2, nwords=5)
        _ = yield from comm.recv(source=0, tag=98)  # never sent


def test_traced_deadlock_reports_causal_chains():
    with pytest.raises(DeadlockError) as e:
        VirtualMachine(2, SP2_1997, trace=True).run(_deadlock_prog)
    msg = str(e.value)
    assert "last completed causal chain per blocked rank:" in msg
    assert "rank 0:" in msg and "rank 1:" in msg
    # the chains cross the delivered message edges: both ranks appear
    assert e.value.chains.keys() == {0, 1}
    for rank, chain in e.value.chains.items():
        assert chain, f"rank {rank} completed operations before blocking"
        assert chain[-1].rank == rank
    # rank 1's last completed op (the tag=2 send) causally depends on
    # rank 0's tag=1 send, so its chain spans both ranks
    assert {n.rank for n in e.value.chains[1]} == {0, 1}


def test_untraced_deadlock_hints_at_tracing():
    with pytest.raises(DeadlockError) as e:
        VirtualMachine(2, SP2_1997).run(_deadlock_prog)
    msg = str(e.value)
    assert "run with trace=True or a tracer" in msg
    assert e.value.chains == {}
