"""Per-rank traffic metrics: VM vs cost ledger agreement, idle identity."""

import numpy as np
import pytest

from repro.core.remap import build_move_matrix, execute_remap
from repro.obs import Tracer
from repro.parallel import CostLedger, MachineModel, VirtualMachine

CHEAP = MachineModel(t_setup=1e-5, t_word=1e-7, t_work=1e-6)

NPROC = 4
STORAGE = 24
OLD = np.array([0, 0, 0, 0, 1, 1, 1, 2, 2, 3])
NEW = np.array([0, 1, 2, 3, 1, 2, 1, 2, 3, 0])
WREMAP = np.array([1, 2, 3, 1, 4, 2, 1, 5, 2, 3])


def traced_remap():
    tracer = Tracer()
    execu = execute_remap(OLD, NEW, WREMAP, NPROC, storage_words=STORAGE,
                          machine=CHEAP, tracer=tracer)
    return execu, tracer.metrics


def test_vm_traffic_agrees_with_cost_ledger_on_remap():
    """The same move matrix, charged through the VM migration program and
    through CostLedger.add_exchange, must report identical per-rank data
    traffic — the dashboard's two traffic tables may not disagree."""
    execu, vm = traced_remap()
    move = build_move_matrix(OLD, NEW, WREMAP, NPROC)

    ledger_tracer = Tracer()
    ledger = CostLedger(NPROC, CHEAP, tracer=ledger_tracer)
    ledger.add_exchange(move * STORAGE)
    led = ledger_tracer.metrics

    pairs = [
        ("repro.vm.words_sent", "repro.ledger.words_sent"),
        ("repro.vm.words_recv", "repro.ledger.words_recv"),
        ("repro.vm.messages_sent", "repro.ledger.messages_sent"),
        ("repro.vm.messages_recv", "repro.ledger.messages_recv"),
    ]
    for vm_name, led_name in pairs:
        vm_per_rank = vm.per_rank(vm_name)
        led_per_rank = led.per_rank(led_name)
        for r in range(NPROC):
            # the ledger skips all-zero ranks; the VM records every rank
            assert vm_per_rank[r] == led_per_rank.get(r, 0.0), (vm_name, r)

    # and both agree with the execution record and the ledger totals
    assert vm.total("repro.vm.words_sent") == execu.words_moved
    assert vm.total("repro.vm.messages_sent") == execu.messages
    assert ledger.total_words == execu.words_moved
    assert ledger.total_messages == execu.messages


def test_remap_metrics_match_move_matrix_per_rank():
    _, vm = traced_remap()
    move = build_move_matrix(OLD, NEW, WREMAP, NPROC)
    assert vm.per_rank("repro.vm.words_sent") == {
        r: float(move[r].sum() * STORAGE) for r in range(NPROC)
    }
    assert vm.per_rank("repro.vm.words_recv") == {
        r: float(move[:, r].sum() * STORAGE) for r in range(NPROC)
    }
    assert vm.per_rank("repro.vm.messages_sent") == {
        r: float((move[r] > 0).sum()) for r in range(NPROC)
    }


def lopsided(comm):
    # rank 0 computes for a long time before sending; every other rank
    # blocks on the receive, so ranks 1..3 accumulate idle virtual time
    if comm.rank == 0:
        yield from comm.compute(5000)
        for dest in range(1, comm.size):
            yield from comm.send("x", dest=dest, tag=0, nwords=16)
    else:
        _ = yield from comm.recv(source=0, tag=0)
    yield from comm.barrier()


def run_lopsided():
    tracer = Tracer()
    res = VirtualMachine(NPROC, CHEAP, tracer=tracer).run(lopsided)
    return res, tracer.metrics


def test_idle_is_makespan_minus_busy_per_rank():
    res, reg = run_lopsided()
    busy = reg.per_rank("repro.vm.busy_seconds")
    idle = reg.per_rank("repro.vm.idle_seconds")
    assert set(busy) == set(idle) == set(range(NPROC))
    for r in range(NPROC):
        assert busy[r] == res.busy_per_rank[r]
        assert idle[r] == res.idle_per_rank[r]
        assert idle[r] == res.makespan - busy[r]  # the identity, exactly
        assert idle[r] >= 0.0
    # the blocked ranks must actually have waited on rank 0's compute
    assert min(idle[r] for r in range(1, NPROC)) > 0.0
    assert idle[0] == pytest.approx(0.0)


def test_data_plus_sync_messages_equal_vm_message_totals():
    res, reg = run_lopsided()
    data_sent = reg.per_rank("repro.vm.messages_sent")
    sync = reg.per_rank("repro.vm.sync_messages")
    for r in range(NPROC):
        assert data_sent[r] + sync[r] == res.msgs_sent_per_rank[r]
    # barrier traffic is zero-word, so it must all land in sync_messages
    assert reg.total("repro.vm.sync_messages") > 0
    assert reg.total("repro.vm.words_sent") == res.total_words
    # every sent message was delivered: sent and received totals conserve
    assert reg.total("repro.vm.messages_recv") == reg.total(
        "repro.vm.messages_sent"
    )
    assert reg.total("repro.vm.words_recv") == reg.total(
        "repro.vm.words_sent"
    )
