"""Measured-backend tracing: real mp/shm runs exporting wall-clock traces.

Each real-process run here costs a few forks, so the tests batch their
assertions: one traced run per backend feeds schema, causal, metric, and
export checks together.
"""

import json

import numpy as np
import pytest

from repro.obs import (
    Tracer,
    analyze,
    diff,
    export_chrome_trace,
    export_jsonl,
    format_critical_path,
    read_jsonl,
    validate_jsonl,
)
from repro.obs.causal import critical_path, runs_from_tracer, verify_makespans
from repro.parallel import create_communicator
from repro.parallel.runtime import ProbeOp, RecvOp, SendOp, WorkOp


def _ring(comm, rounds, nwords=64, payload=None):
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    body = payload if payload is not None else ("tok", comm.rank)
    for i in range(rounds):
        yield WorkOp(100.0)
        yield SendOp(nxt, 5, body, nwords)
        hit = yield ProbeOp(prv, 5)
        if not hit[0]:
            got = yield RecvOp(prv, 5)
    return comm.rank


@pytest.fixture(scope="module")
def mp_trace(tmp_path_factory):
    """One traced 3-rank multiprocessing run, exported and read back."""
    tracer = Tracer()
    with tracer.phase("mp-ring", kind="compute"):
        comm = create_communicator("multiprocessing", 3, tracer=tracer)
        result = comm.run(_ring, 2)
    path = tmp_path_factory.mktemp("mp") / "mp.jsonl"
    export_jsonl(tracer, path)
    return tracer, result, path


def test_mp_run_produces_a_measured_causal_run(mp_trace):
    tracer, result, _ = mp_trace
    assert result.returns == [0, 1, 2]
    [run] = runs_from_tracer(tracer, clock="wall")
    assert run.clock == "wall"
    assert run.phase == "mp-ring"
    assert run.nranks == 3
    assert run.skew > 0.0
    # nodes tile every rank's interval; 6 messages went around the ring
    assert sum(1 for m in run.msgs if m.recv_node is not None) == 6
    assert result.nodes == run.nodes
    assert result.msgs == run.msgs
    # wall critical-path length: bit-exact vs the merged makespan, and
    # within the recorded skew bound of the measured rank makespan
    path = critical_path(run)
    assert path.length == run.makespan
    assert abs(path.length - run.rank_makespan) <= run.skew
    verify_makespans(tracer)
    # measured runs never leak into the virtual analysis
    assert runs_from_tracer(tracer) == []
    assert analyze(tracer).runs == []


def test_mp_trace_round_trips_through_jsonl(mp_trace):
    tracer, _, path = mp_trace
    head = json.loads(open(path).readline())
    assert head["schema"] == "repro.obs/v5"
    summary = validate_jsonl(path)
    assert summary["clocks"] == 3
    back = read_jsonl(path)
    verify_makespans(back)
    [run] = runs_from_tracer(back, clock="wall")
    [orig] = runs_from_tracer(tracer, clock="wall")
    assert run.makespan == orig.makespan
    assert run.rank_makespan == orig.rank_makespan
    assert run.skew == orig.skew
    assert [(c.rank, c.offset, c.skew) for c in back.clock_records] == \
        [(c.rank, c.offset, c.skew) for c in tracer.clock_records]


def test_mp_trace_renders_wall_critical_path(mp_trace):
    tracer, _, _ = mp_trace
    wall = analyze(tracer, clock="wall")
    assert wall.clock == "wall"
    assert len(wall.runs) == 1
    text = format_critical_path(wall, top=5)
    assert "wall seconds" in text
    assert "mp-ring" in text


def test_mp_wall_metrics_are_labelled(mp_trace):
    tracer, result, _ = mp_trace
    reg = tracer.metrics
    wall = {"clock": "wall"}
    assert reg.per_rank("repro.vm.messages_sent", labels=wall) == {
        r: float(v) for r, v in enumerate(result.msgs_sent_per_rank)
    }
    assert reg.per_rank("repro.vm.words_recv", labels=wall) == {
        r: float(v) for r, v in enumerate(result.words_recv_per_rank)
    }
    busy = reg.per_rank("repro.vm.busy_seconds", labels=wall)
    idle = reg.per_rank("repro.vm.idle_seconds", labels=wall)
    [run] = runs_from_tracer(tracer, clock="wall")
    for r in range(3):
        assert busy[r] + idle[r] == pytest.approx(run.makespan)
    # unlabelled (virtual) series stay empty: no cross-contamination
    assert reg.per_rank("repro.vm.messages_sent", labels={}) == {}


def test_diff_degrades_when_one_side_is_virtual_only(mp_trace):
    tracer, _, _ = mp_trace
    virt = Tracer()
    with virt.phase("mp-ring", kind="compute"):
        create_communicator("virtual", 3, tracer=virt).run(_ring, 2)
    a = analyze(virt, clock="wall")
    b = analyze(tracer, clock="wall")
    assert a.runs == [] and b.runs  # one side genuinely lacks wall runs
    d = diff(a, b)
    assert d.makespan_b > 0.0
    rows = {(phase, kind) for phase, kind, *_ in d.rows}
    assert ("mp-ring", "work") in rows


@pytest.fixture(scope="module")
def shm_trace():
    """One traced 2-rank shm run with zero-copy numpy payloads."""
    tracer = Tracer()
    payload = np.arange(2048, dtype=np.float64)
    with tracer.phase("shm-ring", kind="compute"):
        comm = create_communicator("shm", 2, tracer=tracer)
        result = comm.run(_ring, 2, nwords=2048, payload=payload)
    return tracer, result


def test_shm_run_records_transport_counters(shm_trace):
    tracer, _ = shm_trace
    reg = tracer.metrics
    zc = reg.per_rank(
        "repro.transport.msgs_zero_copy", labels={"backend": "shm"}
    )
    assert set(zc) == {0, 1}
    assert sum(zc.values()) == 4.0  # 2 rounds x 2 ranks, all zero-copy
    spills = reg.per_rank(
        "repro.transport.spills", labels={"backend": "shm"}
    )
    assert sum(spills.values()) == 0.0


def test_shm_run_records_a_wall_run_too(shm_trace):
    tracer, result = shm_trace
    [run] = runs_from_tracer(tracer, clock="wall")
    assert run.phase == "shm-ring"
    verify_makespans(tracer)
    assert result.nodes == run.nodes


def test_untraced_mp_run_keeps_the_plain_wire():
    comm = create_communicator("multiprocessing", 2)
    result = comm.run(_ring, 1)
    assert result.returns == [0, 1]
    assert result.nodes is None and result.msgs is None


def _flow_pairs(chrome_path):
    events = json.load(open(chrome_path))["traceEvents"]
    starts = {e["id"]: e for e in events if e.get("ph") == "s"}
    ends = {e["id"]: e for e in events if e.get("ph") == "f"}
    return events, starts, ends


def test_chrome_flow_events_round_trip_for_measured_runs(mp_trace, tmp_path):
    tracer, _, _ = mp_trace
    out = tmp_path / "mp_chrome.json"
    export_chrome_trace(tracer, out)
    events, starts, ends = _flow_pairs(out)
    [run] = runs_from_tracer(tracer, clock="wall")
    delivered = [m for m in run.msgs if m.recv_node is not None]
    assert len(starts) == len(delivered) == len(ends)
    assert set(starts) == set(ends)
    nodes = {n.id: n for n in run.nodes}
    by_src = sorted(starts.values(), key=lambda e: e["id"])
    for msg, s in zip(sorted(delivered, key=lambda m: m.id), by_src):
        f = ends[s["id"]]
        # measured flows live on the wall process (pid 1), bind the
        # sender's thread to the receiver's, and never run backward
        assert s["pid"] == f["pid"] == 1
        assert s["tid"] != f["tid"] or msg.src == msg.dst
        assert s["ts"] <= f["ts"]
        assert f["args"]["nwords"] == msg.nwords
        assert nodes[msg.recv_node].rank == msg.dst
    # the measured process is announced by metadata
    names = [e["args"]["name"] for e in events
             if e.get("ph") == "M" and e["name"] == "process_name"]
    assert "repro measured wall" in names


def test_recorder_overhead_is_modest():
    # Acceptance criterion: tracing the fig6 mp workload costs
    # single-digit-percent wall on multi-core hosts (the handshake runs
    # post-program, so traced ranks start work exactly when untraced
    # ones would).  The margin here is deliberately generous: on a
    # single-core CI host nothing overlaps, so the post-run probe
    # rounds and the merge serialize, and fork timeslicing adds noise.
    # The precise number is tracked by the ext_tracing_overhead bench.
    from statistics import median

    from repro.experiments.calibrate import run_exec_phase_workload
    from repro.obs import Tracer

    def total_wall(tracer):
        res = run_exec_phase_workload(3, 2, "multiprocessing",
                                      tracer=tracer)
        return sum(p.host_wall for p in res.phases)

    plain = median(total_wall(None) for _ in range(3))
    traced = median(total_wall(Tracer()) for _ in range(3))
    assert traced <= plain * 1.5 + 0.05
