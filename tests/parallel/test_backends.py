"""The communicator-backend registry and the real-process drivers."""

import importlib.util
import operator

import pytest

from repro.parallel import (
    ANY,
    IDEAL,
    VirtualMachine,
    available_backends,
    create_communicator,
    register_backend,
)
from repro.parallel.backends import _REGISTRY, record_backend_run, resolve_backend
from repro.parallel.runtime import DeadlockError, RunResult, per_rank


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "virtual" in names
        assert "multiprocessing" in names
        assert "shm" in names

    def test_mpi4py_registered_iff_importable(self):
        importable = importlib.util.find_spec("mpi4py") is not None
        assert ("mpi4py" in available_backends()) == importable

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError, match="unknown communicator backend"):
            create_communicator("nonesuch", 2)

    def test_missing_mpi4py_gets_a_hint(self):
        if "mpi4py" in available_backends():
            pytest.skip("mpi4py is importable here")
        with pytest.raises(ValueError, match="only when mpi4py is importable"):
            create_communicator("mpi4py", 2)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("virtual", lambda *a, **kw: None)

    def test_decorator_registration(self):
        try:
            @register_backend("test-decorated")
            def factory(nranks, machine, **opts):
                return ("decorated", nranks)

            assert "test-decorated" in available_backends()
            assert create_communicator("test-decorated", 3) == ("decorated", 3)
        finally:
            _REGISTRY.pop("test-decorated", None)

    def test_resolve_backend_by_name(self):
        comm = resolve_backend("virtual", 4, machine=IDEAL)
        assert comm.name == "virtual"
        assert comm.nranks == 4

    def test_resolve_backend_passes_objects_through(self):
        comm = create_communicator("virtual", 4, machine=IDEAL)
        assert resolve_backend(comm, 4) is comm

    def test_resolve_backend_checks_rank_count(self):
        comm = create_communicator("virtual", 4, machine=IDEAL)
        with pytest.raises(ValueError, match="spans 4 ranks"):
            resolve_backend(comm, 8)

    def test_resolve_backend_rejects_non_backend(self):
        with pytest.raises(TypeError, match="object with .run"):
            resolve_backend(42, 2)


def _ring_program(comm, bonus):
    """Exchange around a ring: wildcard recv + nonblocking probe loop."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    yield from comm.send(f"r{comm.rank}+{bonus}", dest=right, tag=5)
    got = yield from comm.recv(source=ANY, tag=5)
    req = yield from comm.irecv(source=left, tag=6)
    yield from comm.send(got, dest=right, tag=6)
    done, relayed = yield from req.test()
    while not done:
        yield from comm.compute(1)  # overlap work with the poll
        done, relayed = yield from req.test()
    total = yield from comm.allreduce(1, op=operator.add)
    return (got, relayed, total)


class TestVirtualBackend:
    def test_matches_raw_virtual_machine_bit_for_bit(self):
        comm = create_communicator("virtual", 5, machine=IDEAL)
        res = comm.run(_ring_program, per_rank([10 * r for r in range(5)]))
        raw = VirtualMachine(5, IDEAL).run(
            _ring_program, per_rank([10 * r for r in range(5)])
        )
        assert res.returns == raw.returns
        assert res.makespan == raw.makespan  # exact: same driver underneath
        assert res.backend == "virtual"
        assert res.wall_seconds is not None and res.wall_seconds >= 0.0


class TestMultiprocessingBackend:
    def test_ring_parity_with_virtual(self):
        p = 4
        arg = per_rank([10 * r for r in range(p)])
        vres = create_communicator("virtual", p, machine=IDEAL).run(
            _ring_program, arg
        )
        mres = create_communicator(
            "multiprocessing", p, machine=IDEAL, timeout=60.0
        ).run(_ring_program, arg)
        assert mres.returns == vres.returns
        # same program, same yields -> identical message accounting
        assert mres.total_messages == vres.total_messages
        assert mres.msgs_sent_per_rank == vres.msgs_sent_per_rank
        assert mres.backend == "multiprocessing"
        assert mres.wall_seconds is not None and mres.wall_seconds > 0.0
        assert len(mres.clocks) == p
        assert mres.makespan == max(mres.clocks)

    def test_deadlock_detection_via_timeout(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.recv(source=1, tag=9)  # never sent

        comm = create_communicator("multiprocessing", 2, timeout=1.5)
        with pytest.raises(DeadlockError, match="no matching message"):
            comm.run(prog)

    def test_rank_exception_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom on purpose")
            yield from comm.barrier()

        comm = create_communicator("multiprocessing", 2, timeout=10.0)
        with pytest.raises(RuntimeError, match="rank 1") as exc:
            comm.run(prog)
        assert "boom on purpose" in str(exc.value)

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError, match="at least one rank"):
            create_communicator("multiprocessing", 0)

    def test_rejects_negative_grace(self):
        with pytest.raises(ValueError, match="grace period must be >= 0"):
            create_communicator("multiprocessing", 2, grace=-1.0)

    def test_rank_error_tears_down_survivors_immediately(self):
        import time

        def prog(comm):
            if comm.rank == 1:
                raise ValueError("fail fast")
            # would block out the full 60s receive timeout if the parent
            # waited for it instead of terminating on the first error
            yield from comm.recv(source=1, tag=9)

        comm = create_communicator("multiprocessing", 2, timeout=60.0,
                                   grace=60.0)
        t0 = time.perf_counter()
        with pytest.raises(RuntimeError, match="rank 1"):
            comm.run(prog)
        assert time.perf_counter() - t0 < 20.0

    def test_unreported_hang_hits_the_grace_deadline(self):
        import time

        def prog(comm):
            time.sleep(30.0)  # stuck outside any receive: never reports
            yield from comm.barrier()

        comm = create_communicator("multiprocessing", 1, timeout=0.4,
                                   grace=0.4)
        t0 = time.perf_counter()
        with pytest.raises(RuntimeError, match="did not report back"):
            comm.run(prog)
        assert time.perf_counter() - t0 < 10.0


class TestRecordBackendRun:
    @staticmethod
    def _result(**kw):
        return RunResult(
            returns=[None], clocks=kw.pop("clocks"), total_messages=0,
            total_words=0, words_sent_per_rank=[0], **kw,
        )

    def test_none_tracer_is_a_no_op(self):
        res = self._result(clocks=[0.0])
        record_backend_run(None, "phase", res)  # must not raise

    def test_metrics_for_measured_and_modelled_runs(self):
        from repro.obs import Tracer

        tracer = Tracer()
        modelled = self._result(clocks=[2.5])
        measured = self._result(
            clocks=[0.5], wall_seconds=0.75, backend="multiprocessing",
        )
        record_backend_run(tracer, "mark", modelled)
        record_backend_run(tracer, "mark", measured)
        samples = [
            s for s in tracer.metrics.samples()
            if s.name == "repro.backend.makespan_seconds"
        ]
        assert {s.labels_dict["backend"] for s in samples} == {
            "virtual", "multiprocessing"
        }
        walls = [
            s for s in tracer.metrics.samples()
            if s.name == "repro.backend.wall_seconds"
        ]
        assert len(walls) == 1 and walls[0].value == 0.75
        assert walls[0].labels_dict["phase"] == "mark"
