"""Unit tests for the event-driven virtual machine runtime."""

import pytest

from repro.parallel import (
    ANY,
    IDEAL,
    DeadlockError,
    MachineModel,
    VirtualMachine,
    per_rank,
)


def test_single_rank_returns_value():
    def prog(comm):
        yield from comm.compute(10)
        return comm.rank + 100

    res = VirtualMachine(1).run(prog)
    assert res.returns == [100]
    assert res.makespan == pytest.approx(10 * VirtualMachine(1).machine.t_work)


def test_requires_generator_program():
    def not_a_gen(comm):
        return 1

    with pytest.raises(TypeError, match="generator"):
        VirtualMachine(2).run(not_a_gen)


def test_send_recv_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send({"x": 42}, dest=1, tag=7)
            return None
        data = yield from comm.recv(source=0, tag=7)
        return data["x"]

    res = VirtualMachine(2).run(prog)
    assert res.returns == [None, 42]
    assert res.total_messages == 1


def test_recv_wildcards():
    def prog(comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                payload, src, tag = yield from comm.recv_status(ANY, ANY)
                got.append((payload, src, tag))
            return sorted(got)
        yield from comm.send(comm.rank * 10, dest=0, tag=comm.rank)
        return None

    res = VirtualMachine(3).run(prog)
    assert res.returns[0] == [(10, 1, 1), (20, 2, 2)]


def test_fifo_order_per_source_and_tag():
    def prog(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(i, dest=1, tag=3)
            return None
        out = []
        for _ in range(5):
            out.append((yield from comm.recv(source=0, tag=3)))
        return out

    res = VirtualMachine(2).run(prog)
    assert res.returns[1] == [0, 1, 2, 3, 4]


def test_deadlock_detection():
    def prog(comm):
        _ = yield from comm.recv(source=(comm.rank + 1) % comm.size, tag=0)

    with pytest.raises(DeadlockError):
        VirtualMachine(2).run(prog)


def test_send_to_invalid_rank():
    def prog(comm):
        yield from comm.send(1, dest=99, tag=0)

    with pytest.raises(ValueError, match="invalid rank"):
        VirtualMachine(2).run(prog)


def test_user_tag_range_enforced():
    def prog(comm):
        yield from comm.send(1, dest=0, tag=1 << 21)

    with pytest.raises(ValueError, match="user tags"):
        VirtualMachine(1).run(prog)


def test_per_rank_arguments():
    def prog(comm, x, k=0):
        yield from comm.compute(1)
        return x + k

    res = VirtualMachine(3).run(prog, per_rank([1, 2, 3]), k=per_rank([10, 20, 30]))
    assert res.returns == [11, 22, 33]


def test_per_rank_length_must_match_nranks():
    def prog(comm, x, k=0):
        yield from comm.compute(1)
        return x + k

    with pytest.raises(ValueError, match="2 values but the machine has 3"):
        VirtualMachine(3).run(prog, per_rank([1, 2]))
    # keyword per_rank arguments are validated too, before any rank runs
    with pytest.raises(ValueError, match="4 values but the machine has 3"):
        VirtualMachine(3).run(prog, per_rank([1, 2, 3]), k=per_rank([0] * 4))


def test_clock_monotone_and_message_cost():
    m = MachineModel(t_setup=1.0, t_word=0.1, t_work=0.0)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(0.0, dest=1, tag=0, nwords=10)
        else:
            _ = yield from comm.recv(source=0, tag=0)

    res = VirtualMachine(2, m).run(prog)
    # sender: t_setup + 10*t_word = 2.0; receiver resumes at arrival >= 2.0
    assert res.clocks[0] == pytest.approx(2.0)
    assert res.clocks[1] >= 2.0
    assert res.total_words == 10


def test_receiver_waits_for_arrival():
    m = MachineModel(t_setup=1.0, t_word=0.0, t_work=1.0)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.compute(5)  # 5 seconds of work before sending
            yield from comm.send("late", dest=1, tag=0, nwords=0)
        else:
            got = yield from comm.recv(source=0, tag=0)
            return got

    res = VirtualMachine(2, m).run(prog)
    # message leaves at t=6; receiver cannot have it earlier
    assert res.clocks[1] >= 6.0
    assert res.returns[1] == "late"


def test_determinism_across_runs():
    def prog(comm):
        acc = comm.rank
        for k in range(3):
            yield from comm.send(acc, dest=(comm.rank + 1) % comm.size, tag=k)
            acc += yield from comm.recv(source=(comm.rank - 1) % comm.size, tag=k)
        return acc

    r1 = VirtualMachine(5, IDEAL).run(prog)
    r2 = VirtualMachine(5, IDEAL).run(prog)
    assert r1.returns == r2.returns
    assert r1.clocks == r2.clocks


# --- probe cost symmetry and tracing ----------------------------------------


def test_probe_charges_setup_on_miss_and_hit():
    """A probe pays t_setup whether or not a message matches (a real MPI
    iprobe walks the unexpected-message queue either way)."""
    from repro.parallel.runtime import ProbeOp

    m = MachineModel(t_setup=1.0, t_word=0.0, t_work=0.0)

    def prog(comm):
        miss, _ = yield ProbeOp(ANY, ANY)
        miss2, _ = yield ProbeOp(ANY, ANY)
        return (miss, miss2)

    res = VirtualMachine(1, m).run(prog)
    assert res.returns == [(False, False)]
    assert res.clocks[0] == pytest.approx(2.0)


def test_probe_hit_cost_matches_miss_cost():
    from repro.parallel.runtime import ElapseOp, ProbeOp

    m = MachineModel(t_setup=1.0, t_word=0.0, t_work=0.0)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send("x", dest=1, tag=3, nwords=0)
            return None
        yield ElapseOp(10.0)  # let the message arrive
        matched, status = yield ProbeOp(0, 3)
        return (matched, status[0], comm.rank * 0 + 1)

    res = VirtualMachine(2, m).run(prog)
    assert res.returns[1][:2] == (True, "x")
    # 10s elapse + exactly one t_setup for the successful probe
    assert res.clocks[1] == pytest.approx(11.0)


def test_probe_emits_trace_event():
    from repro.parallel.runtime import ElapseOp, ProbeOp

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send("x", dest=1, tag=3, nwords=0)
            return None
        matched, _ = yield ProbeOp(0, 3)  # too early: miss
        yield ElapseOp(10.0)
        matched2, _ = yield ProbeOp(0, 3)  # hit
        return (matched, matched2)

    res = VirtualMachine(2, MachineModel(), trace=True).run(prog)
    assert res.returns[1] == (False, True)
    probes = [e for e in res.trace if e.kind == "probe"]
    assert [p.detail for p in probes] == [(0, 3, False), (0, 3, True)]
    assert all(p.rank == 1 for p in probes)
    assert probes[0].time < probes[1].time


# --- deadlock diagnostics ----------------------------------------------------


def test_deadlock_reports_pending_recv_and_mailbox():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send("stray", dest=1, tag=9, nwords=0)
            _ = yield from comm.recv(source=1, tag=1)  # never satisfied
        else:
            _ = yield from comm.recv(source=0, tag=5)  # wrong tag waiting

    with pytest.raises(DeadlockError) as e:
        VirtualMachine(2).run(prog)
    msg = str(e.value)
    assert "ranks [0, 1] are blocked" in msg
    assert "rank 0: waiting on recv(source=1, tag=1); mailbox empty" in msg
    assert "rank 1: waiting on recv(source=0, tag=5)" in msg
    assert "(source=0, tag=9)×1" in msg  # the stray message is summarised
    # structured diagnostics for tooling
    assert e.value.blocked == [
        (0, (1, 1), []),
        (1, (0, 5), [(0, 9, 1)]),
    ]


def test_deadlock_formats_wildcards_and_counts():
    def prog(comm):
        if comm.rank == 0:
            for _ in range(3):
                yield from comm.send("m", dest=1, tag=7, nwords=0)
            return None
        _ = yield from comm.recv(source=ANY, tag=2)

    with pytest.raises(DeadlockError) as e:
        VirtualMachine(2).run(prog)
    msg = str(e.value)
    assert "rank 1: waiting on recv(source=ANY, tag=2)" in msg
    assert "mailbox holds 3 unmatched: (source=0, tag=7)×3" in msg
    assert e.value.blocked == [(1, (ANY, 2), [(0, 7, 3)])]
