"""Unit tests for the event-driven virtual machine runtime."""

import pytest

from repro.parallel import (
    ANY,
    IDEAL,
    DeadlockError,
    MachineModel,
    VirtualMachine,
    per_rank,
)


def test_single_rank_returns_value():
    def prog(comm):
        yield from comm.compute(10)
        return comm.rank + 100

    res = VirtualMachine(1).run(prog)
    assert res.returns == [100]
    assert res.makespan == pytest.approx(10 * VirtualMachine(1).machine.t_work)


def test_requires_generator_program():
    def not_a_gen(comm):
        return 1

    with pytest.raises(TypeError, match="generator"):
        VirtualMachine(2).run(not_a_gen)


def test_send_recv_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send({"x": 42}, dest=1, tag=7)
            return None
        data = yield from comm.recv(source=0, tag=7)
        return data["x"]

    res = VirtualMachine(2).run(prog)
    assert res.returns == [None, 42]
    assert res.total_messages == 1


def test_recv_wildcards():
    def prog(comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                payload, src, tag = yield from comm.recv_status(ANY, ANY)
                got.append((payload, src, tag))
            return sorted(got)
        yield from comm.send(comm.rank * 10, dest=0, tag=comm.rank)
        return None

    res = VirtualMachine(3).run(prog)
    assert res.returns[0] == [(10, 1, 1), (20, 2, 2)]


def test_fifo_order_per_source_and_tag():
    def prog(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(i, dest=1, tag=3)
            return None
        out = []
        for _ in range(5):
            out.append((yield from comm.recv(source=0, tag=3)))
        return out

    res = VirtualMachine(2).run(prog)
    assert res.returns[1] == [0, 1, 2, 3, 4]


def test_deadlock_detection():
    def prog(comm):
        _ = yield from comm.recv(source=(comm.rank + 1) % comm.size, tag=0)

    with pytest.raises(DeadlockError):
        VirtualMachine(2).run(prog)


def test_send_to_invalid_rank():
    def prog(comm):
        yield from comm.send(1, dest=99, tag=0)

    with pytest.raises(ValueError, match="invalid rank"):
        VirtualMachine(2).run(prog)


def test_user_tag_range_enforced():
    def prog(comm):
        yield from comm.send(1, dest=0, tag=1 << 21)

    with pytest.raises(ValueError, match="user tags"):
        VirtualMachine(1).run(prog)


def test_per_rank_arguments():
    def prog(comm, x, k=0):
        yield from comm.compute(1)
        return x + k

    res = VirtualMachine(3).run(prog, per_rank([1, 2, 3]), k=per_rank([10, 20, 30]))
    assert res.returns == [11, 22, 33]


def test_clock_monotone_and_message_cost():
    m = MachineModel(t_setup=1.0, t_word=0.1, t_work=0.0)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(0.0, dest=1, tag=0, nwords=10)
        else:
            _ = yield from comm.recv(source=0, tag=0)

    res = VirtualMachine(2, m).run(prog)
    # sender: t_setup + 10*t_word = 2.0; receiver resumes at arrival >= 2.0
    assert res.clocks[0] == pytest.approx(2.0)
    assert res.clocks[1] >= 2.0
    assert res.total_words == 10


def test_receiver_waits_for_arrival():
    m = MachineModel(t_setup=1.0, t_word=0.0, t_work=1.0)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.compute(5)  # 5 seconds of work before sending
            yield from comm.send("late", dest=1, tag=0, nwords=0)
        else:
            got = yield from comm.recv(source=0, tag=0)
            return got

    res = VirtualMachine(2, m).run(prog)
    # message leaves at t=6; receiver cannot have it earlier
    assert res.clocks[1] >= 6.0
    assert res.returns[1] == "late"


def test_determinism_across_runs():
    def prog(comm):
        acc = comm.rank
        for k in range(3):
            yield from comm.send(acc, dest=(comm.rank + 1) % comm.size, tag=k)
            acc += yield from comm.recv(source=(comm.rank - 1) % comm.size, tag=k)
        return acc

    r1 = VirtualMachine(5, IDEAL).run(prog)
    r2 = VirtualMachine(5, IDEAL).run(prog)
    assert r1.returns == r2.returns
    assert r1.clocks == r2.clocks
