"""Nonblocking operations, scans, reduce_scatter, and sub-communicators."""

import operator

import numpy as np
import pytest

from repro.parallel import ANY, IDEAL, VirtualMachine

SIZES = [1, 2, 3, 4, 7, 8]


class TestNonblocking:
    def test_isend_completes_eagerly(self):
        def prog(comm):
            if comm.rank == 0:
                req = yield from comm.isend("x", dest=1, tag=1)
                assert req.completed
                _ = yield from req.wait()
                return "sent"
            return (yield from comm.recv(source=0, tag=1))

        res = VirtualMachine(2, IDEAL).run(prog)
        assert res.returns == ["sent", "x"]

    def test_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(42, dest=1, tag=3)
                return None
            req = yield from comm.irecv(source=0, tag=3)
            assert not req.completed
            val = yield from req.wait()
            assert req.completed
            return val

        res = VirtualMachine(2, IDEAL).run(prog)
        assert res.returns[1] == 42

    def test_irecv_test_polling(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.compute(100)  # delay the send
                yield from comm.send("late", dest=1, tag=0)
                return None
            req = yield from comm.irecv(source=0, tag=0)
            done, val = yield from req.test()
            polls = 1
            while not done:
                yield from comm.compute(10)  # overlap work with waiting
                done, val = yield from req.test()
                polls += 1
            return val, polls

        res = VirtualMachine(2, IDEAL).run(prog)
        val, polls = res.returns[1]
        assert val == "late"
        assert polls > 1  # the first test must have failed

    def test_test_after_completion_is_idempotent(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1, dest=1, tag=0)
                return None
            req = yield from comm.irecv(source=0, tag=0)
            v1 = yield from req.wait()
            done, v2 = yield from req.test()
            return v1, done, v2

        res = VirtualMachine(2, IDEAL).run(prog)
        assert res.returns[1] == (1, True, 1)


class TestSendrecv:
    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_ring_shift(self, p):
        def prog(comm):
            dest = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            got = yield from comm.sendrecv(comm.rank, dest=dest, source=src)
            return got

        res = VirtualMachine(p, IDEAL).run(prog)
        assert res.returns == [(r - 1) % p for r in range(p)]


class TestScan:
    @pytest.mark.parametrize("p", SIZES)
    def test_inclusive_scan_sum(self, p):
        def prog(comm):
            return (yield from comm.scan(comm.rank + 1))

        res = VirtualMachine(p, IDEAL).run(prog)
        assert res.returns == [sum(range(1, r + 2)) for r in range(p)]

    @pytest.mark.parametrize("p", SIZES)
    def test_exclusive_scan_sum(self, p):
        def prog(comm):
            return (yield from comm.exscan(comm.rank + 1))

        res = VirtualMachine(p, IDEAL).run(prog)
        assert res.returns[0] is None
        assert res.returns[1:] == [sum(range(1, r + 1)) for r in range(1, p)]

    def test_scan_non_commutative_order(self):
        def prog(comm):
            return (yield from comm.scan([comm.rank], op=operator.add))

        res = VirtualMachine(5, IDEAL).run(prog)
        assert res.returns[4] == [0, 1, 2, 3, 4]  # strict rank order


class TestReduceScatter:
    @pytest.mark.parametrize("p", [2, 4, 5])
    def test_blocks(self, p):
        def prog(comm):
            objs = [comm.rank * 100 + d for d in range(comm.size)]
            return (yield from comm.reduce_scatter(objs))

        res = VirtualMachine(p, IDEAL).run(prog)
        for r in range(p):
            assert res.returns[r] == sum(s * 100 + r for s in range(p))

    def test_length_check(self):
        def prog(comm):
            return (yield from comm.reduce_scatter([0]))

        with pytest.raises(ValueError, match="reduce_scatter"):
            VirtualMachine(3, IDEAL).run(prog)


class TestSplit:
    def test_split_by_parity(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            total = yield from sub.allreduce(comm.rank)
            return sub.rank, sub.size, total

        res = VirtualMachine(6, IDEAL).run(prog)
        evens = [r for r in range(6) if r % 2 == 0]
        odds = [r for r in range(6) if r % 2 == 1]
        for r in range(6):
            lrank, lsize, total = res.returns[r]
            group = evens if r % 2 == 0 else odds
            assert lsize == 3
            assert lrank == group.index(r)
            assert total == sum(group)

    def test_split_key_reorders(self):
        def prog(comm):
            sub = yield from comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = VirtualMachine(4, IDEAL).run(prog)
        # key=-rank reverses the order
        assert res.returns == [3, 2, 1, 0]

    def test_subcomm_isolated_from_parent_traffic(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank // 2)
            # same user tag used on parent and sub simultaneously
            if sub.rank == 0:
                yield from sub.send("sub", dest=1, tag=5)
            peer = comm.rank ^ 1
            yield from comm.send(f"par{comm.rank}", dest=peer, tag=5)
            got_par = yield from comm.recv(source=peer, tag=5)
            got_sub = None
            if sub.rank == 1:
                got_sub = yield from sub.recv(source=0, tag=5)
            return got_par, got_sub

        res = VirtualMachine(4, IDEAL).run(prog)
        for r in range(4):
            got_par, got_sub = res.returns[r]
            assert got_par == f"par{r ^ 1}"
            if r % 2 == 1:
                assert got_sub == "sub"

    def test_two_splits_do_not_collide(self):
        def prog(comm):
            a = yield from comm.split(color=0)
            b = yield from comm.split(color=comm.rank % 2)
            ra = yield from a.allreduce(1)
            rb = yield from b.allreduce(1)
            return ra, rb

        res = VirtualMachine(4, IDEAL).run(prog)
        assert all(r == (4, 2) for r in res.returns)

    def test_subcomm_rejects_wildcard_tag(self):
        def prog(comm):
            sub = yield from comm.split(color=0)
            _ = yield from sub.recv(source=ANY, tag=ANY)

        with pytest.raises(ValueError, match="ANY"):
            VirtualMachine(2, IDEAL).run(prog)

    def test_subcomm_collectives(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            data = yield from sub.allgather(comm.rank)
            s = yield from sub.scan(1)
            return data, s

        res = VirtualMachine(6, IDEAL).run(prog)
        for r in range(6):
            data, s = res.returns[r]
            group = [x for x in range(6) if x % 2 == r % 2]
            assert data == group
            assert s == group.index(r) + 1


class TestNestedSplitIsolation:
    def test_split_of_split_cross_traffic(self):
        """A grandchild collective must not be captured by a receive on a
        sibling root-level split between the same rank pair.

        Regression: ``_map_tag`` used to re-block nested tags as
        ``_tag_base + span + (tag - _TAG_BASE)``, which lands a
        split-of-split's broadcast (split path 0 -> 0) exactly on the
        fourth root-level split's user tag 2 — so the FIFO mailbox
        delivered the grandchild's payload to the sibling's ``recv``.
        """

        def prog(comm):
            half = yield from comm.split(color=comm.rank // 2)  # split id 0
            _s1 = yield from comm.split(color=0)                # split id 1
            _s2 = yield from comm.split(color=0)                # split id 2
            d3 = yield from comm.split(color=0)                 # split id 3
            gc = yield from half.split(color=0)                 # grandchild
            out = {}
            if comm.rank == 0:
                # the grandchild broadcast's payload goes on the wire
                # first, then the sibling split's user message
                out["gc"] = yield from gc.bcast("gc-payload", root=0)
                yield from d3.send("d3-payload", dest=1, tag=2)
            elif comm.rank == 1:
                # receive the sibling message *before* entering the
                # grandchild collective: under a tag collision the FIFO
                # mailbox would hand over the broadcast payload instead
                out["d3"] = yield from d3.recv(source=0, tag=2)
                out["gc"] = yield from gc.bcast(None, root=0)
            else:
                payload = "gc-payload" if gc.rank == 0 else None
                out["gc"] = yield from gc.bcast(payload, root=0)
            return out

        res = VirtualMachine(4, IDEAL).run(prog)
        assert res.returns[1]["d3"] == "d3-payload"
        assert all(r["gc"] == "gc-payload" for r in res.returns)

    def test_nested_collectives_stay_isolated(self):
        """Same-tag collectives racing on parent, child, and grandchild
        communicators between overlapping rank sets all resolve correctly."""

        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            nested = yield from sub.split(color=sub.rank % 2)
            a = yield from nested.allreduce(comm.rank)
            b = yield from sub.allreduce(comm.rank)
            c = yield from comm.allreduce(comm.rank)
            return a, b, c

        p = 8
        res = VirtualMachine(p, IDEAL).run(prog)
        for r in range(p):
            group = [x for x in range(p) if x % 2 == r % 2]
            nested_group = group[group.index(r) % 2 :: 2]
            assert res.returns[r] == (
                sum(nested_group), sum(group), sum(range(p))
            )

    def test_map_tag_injective_over_split_family(self):
        """Wire tags of distinct split paths never overlap, and never leak
        into the parent's user or collective tag ranges."""
        from repro.parallel.machine import IDEAL as _IDEAL
        from repro.parallel.simcomm import (
            _TAG_BASE,
            _SUB_TAG_SPAN,
            Comm,
            SubComm,
        )

        root = Comm(0, 2, _IDEAL)
        family = []

        def expand(parent, path, depth):
            for sid in range(3):
                sub = SubComm(parent, [0, 1], 0, sid)
                family.append((path + (sid,), sub))
                if depth < 2:
                    expand(sub, path + (sid,), depth + 1)

        expand(root, (), 0)

        def wire(comm, tag):
            while isinstance(comm, SubComm):
                tag = comm._map_tag(tag)
                comm = comm.parent
            return tag

        probes = [0, 1, _SUB_TAG_SPAN - 1] + [_TAG_BASE + k for k in range(1, 9)]
        seen = {}
        for path, comm in family:
            for tag in probes:
                w = wire(comm, tag)
                assert w >= _TAG_BASE, (path, tag)  # never a root user tag
                assert w not in range(_TAG_BASE, _TAG_BASE + 9)  # nor collective
                key = seen.setdefault(w, (path, tag))
                assert key == (path, tag), (
                    f"wire tag {w} shared by {key} and {(path, tag)}"
                )
