"""Every collective checked against a sequential reference, then the same
suite re-run on every registered backend.

The reference results are computed host-side in plain Python from the same
per-rank payloads the rank program is handed, so the test pins *semantics*
(who gets which payload, and in which combine order), not a particular
schedule.  Reduction ops use string concatenation — associative but not
commutative — so any deviation from rank-order combining fails loudly.

The backend parameterization proves the ``virtual`` and ``multiprocessing``
backends payload-identical: one combined rank program performs every
collective in sequence and the full per-rank result dicts must compare
equal to the reference (and hence to each other) on every backend.
"""

import operator
import random

import pytest

from repro.parallel import (
    IDEAL,
    VirtualMachine,
    available_backends,
    create_communicator,
)
from repro.parallel.runtime import per_rank

SIZES = [1, 2, 3, 4, 5, 7, 8]
SEEDS = [0, 1, 2]
#: Real-process backends fork one process per rank; keep P modest there.
BACKEND_SIZES = [1, 2, 4]


def _payloads(p, rng):
    """One structured payload per rank; ``s`` carries the ordering probe."""
    return [
        {
            "rank": r,
            "n": rng.randrange(1000),
            "blob": [rng.randrange(100) for _ in range(rng.randrange(1, 5))],
            "s": f"<{r}:{rng.randrange(100)}>",
        }
        for r in range(p)
    ]


def _make_case(p, seed):
    """Inputs (host-side) and the expected per-rank result dicts."""
    rng = random.Random(97 * seed + p)
    payloads = _payloads(p, rng)
    scatter_items = [("piece", r, rng.randrange(1000)) for r in range(p)]
    a2a = [[f"{src}->{dst}:{rng.randrange(100)}" for dst in range(p)]
           for src in range(p)]
    rs = [[f"[{src}|{dst}]" for dst in range(p)] for src in range(p)]
    roots = {name: rng.randrange(p)
             for name in ("bcast", "gather", "scatter", "reduce")}
    colors = [rng.randrange(2) for _ in range(p)]

    s = [payloads[r]["s"] for r in range(p)]
    prefix = ["".join(s[: r + 1]) for r in range(p)]
    groups = {}
    for r in range(p):
        groups.setdefault(colors[r], []).append(r)
    expected = [
        {
            "bcast": payloads[roots["bcast"]],
            "gather": payloads if r == roots["gather"] else None,
            "scatter": scatter_items[r],
            "reduce": "".join(s) if r == roots["reduce"] else None,
            "allreduce": "".join(s),
            "allgather": payloads,
            "alltoall": [a2a[src][r] for src in range(p)],
            "scan": prefix[r],
            "exscan": None if r == 0 else prefix[r - 1],
            "reduce_scatter": "".join(rs[src][r] for src in range(p)),
            "barrier": "ok",
            "split": "".join(s[m] for m in groups[colors[r]]),
        }
        for r in range(p)
    ]
    args = (
        per_rank(payloads),
        per_rank(a2a),
        per_rank(rs),
        {"roots": roots, "colors": colors, "scatter_items": scatter_items},
    )
    return args, expected


def conformance_program(comm, mine, a2a_row, rs_row, shared):
    """Run every collective once; return the per-rank result dict."""
    roots = shared["roots"]
    out = {}
    out["bcast"] = yield from comm.bcast(
        mine if comm.rank == roots["bcast"] else None, root=roots["bcast"]
    )
    out["gather"] = yield from comm.gather(mine, root=roots["gather"])
    objs = shared["scatter_items"] if comm.rank == roots["scatter"] else None
    out["scatter"] = yield from comm.scatter(objs, root=roots["scatter"])
    out["reduce"] = yield from comm.reduce(
        mine["s"], op=operator.add, root=roots["reduce"]
    )
    out["allreduce"] = yield from comm.allreduce(mine["s"], op=operator.add)
    out["allgather"] = yield from comm.allgather(mine)
    out["alltoall"] = yield from comm.alltoall(a2a_row)
    out["scan"] = yield from comm.scan(mine["s"], op=operator.add)
    out["exscan"] = yield from comm.exscan(mine["s"], op=operator.add)
    out["reduce_scatter"] = yield from comm.reduce_scatter(
        rs_row, op=operator.add
    )
    yield from comm.barrier()
    out["barrier"] = "ok"
    sub = yield from comm.split(color=shared["colors"][comm.rank])
    out["split"] = yield from sub.allreduce(mine["s"], op=operator.add)
    return out


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("p", SIZES)
def test_collectives_match_sequential_reference(p, seed):
    args, expected = _make_case(p, seed)
    res = VirtualMachine(p, IDEAL).run(conformance_program, *args)
    assert res.returns == expected


@pytest.mark.parametrize("p", BACKEND_SIZES)
@pytest.mark.parametrize("backend", available_backends())
def test_backends_are_payload_identical(backend, p):
    if backend == "mpi4py":
        pytest.skip("the mpi4py backend needs an mpiexec launch")
    args, expected = _make_case(p, seed=0)
    comm = create_communicator(backend, p, machine=IDEAL, timeout=60.0)
    res = comm.run(conformance_program, *args)
    assert res.returns == expected
    assert res.backend == backend
