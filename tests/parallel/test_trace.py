"""Event tracing of virtual machine runs."""

from repro.parallel import IDEAL, TraceEvent, VirtualMachine


def prog(comm):
    yield from comm.compute(5)
    if comm.rank == 0:
        yield from comm.send("hi", dest=1, tag=4)
    else:
        _ = yield from comm.recv(source=0, tag=4)


def test_trace_disabled_by_default():
    res = VirtualMachine(2, IDEAL).run(prog)
    assert res.trace is None


def test_trace_records_ordered_events():
    res = VirtualMachine(2, IDEAL, trace=True).run(prog)
    assert res.trace is not None
    kinds = [e.kind for e in res.trace]
    assert kinds.count("work") == 2
    assert kinds.count("send") == 1
    assert kinds.count("recv") == 1
    send = next(e for e in res.trace if e.kind == "send")
    recv = next(e for e in res.trace if e.kind == "recv")
    assert send.rank == 0 and send.detail[0] == 1 and send.detail[1] == 4
    assert recv.rank == 1 and recv.detail[0] == 0
    assert recv.time >= send.time
    assert all(isinstance(e, TraceEvent) for e in res.trace)


def test_trace_times_monotone_per_rank():
    def chatty(comm):
        for k in range(3):
            yield from comm.compute(1)
            peer = comm.rank ^ 1
            yield from comm.send(k, dest=peer, tag=k)
            _ = yield from comm.recv(source=peer, tag=k)

    res = VirtualMachine(2, IDEAL, trace=True).run(chatty)
    for r in (0, 1):
        times = [e.time for e in res.trace if e.rank == r]
        assert times == sorted(times)
