"""Unit tests for the BSP cost ledger."""

import numpy as np
import pytest

from repro.parallel import CostLedger, MachineModel


@pytest.fixture
def machine():
    return MachineModel(t_setup=1.0, t_word=0.5, t_work=2.0)


def test_add_work(machine):
    led = CostLedger(4, machine)
    led.add_work(2, 10)
    assert led.clocks.tolist() == [0.0, 0.0, 20.0, 0.0]


def test_add_work_all_scalar_and_array(machine):
    led = CostLedger(3, machine)
    led.add_work_all(5)
    assert led.clocks.tolist() == [10.0, 10.0, 10.0]
    led.add_work_all([1, 2, 3])
    assert led.clocks.tolist() == [12.0, 14.0, 16.0]


def test_add_work_all_rejects_bad_shape(machine):
    led = CostLedger(3, machine)
    with pytest.raises(ValueError):
        led.add_work_all([1, 2])
    with pytest.raises(ValueError):
        led.add_work_all([-1, 0, 0])


def test_add_message_charges_both_sides(machine):
    led = CostLedger(2, machine)
    led.add_message(0, 1, 10)
    assert led.clocks[0] == pytest.approx(1.0 + 0.5 * 10)
    assert led.clocks[1] == pytest.approx(1.0)
    assert led.total_messages == 1
    assert led.total_words == 10


def test_self_message_is_free(machine):
    led = CostLedger(2, machine)
    led.add_message(1, 1, 1000)
    assert led.elapsed == 0.0
    assert led.total_messages == 0


def test_add_exchange_overlaps_send_and_recv(machine):
    led = CostLedger(2, machine)
    vol = np.array([[5, 8], [4, 9]])  # diagonal must be ignored
    led.add_exchange(vol)
    # rank 0 sends 8 words (1 msg), receives 4 (1 msg)
    assert led.clocks[0] == pytest.approx(max(1 + 8 * 0.5, 1 + 4 * 0.5))
    assert led.clocks[1] == pytest.approx(max(1 + 4 * 0.5, 1 + 8 * 0.5))
    assert led.total_words == 12


def test_exchange_shape_check(machine):
    led = CostLedger(3, machine)
    with pytest.raises(ValueError):
        led.add_exchange(np.zeros((2, 2)))


def test_barrier_synchronises(machine):
    led = CostLedger(4, machine)
    led.add_work_all([0, 1, 2, 3])
    led.barrier()
    # max clock 6.0 plus ceil(log2 4) = 2 startup rounds
    assert led.clocks.tolist() == [8.0, 8.0, 8.0, 8.0]


def test_barrier_single_rank_free(machine):
    led = CostLedger(1, machine)
    led.barrier()
    assert led.elapsed == 0.0
