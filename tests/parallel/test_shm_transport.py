"""The zero-copy shared-memory transport: slab pool, wire codec, backend."""

import numpy as np
import pytest

from repro.parallel import create_communicator
from repro.parallel.runtime import per_rank
from repro.parallel.backends.shm import (
    ShmTransport,
    SlabPool,
    reset_transport_totals,
    transport_totals,
)

SLAB = 1 << 16  # 64 KB slabs keep the test pools tiny


@pytest.fixture
def pool():
    p = SlabPool(4, SLAB)
    yield p
    p.dispose()


@pytest.fixture
def transport(pool):
    return ShmTransport(pool, min_bytes=64, alloc_wait=0.0)


class TestSlabPool:
    def test_alloc_free_cycle(self, pool):
        assert pool.free_count() == 4
        idx, reused = pool.alloc()
        assert not reused
        assert pool.free_count() == 3
        pool.free(idx)
        assert pool.free_count() == 4
        idx2, reused2 = pool.alloc()
        assert idx2 == idx  # LIFO: hottest slab first
        assert reused2

    def test_exhaustion_returns_none(self, pool):
        got = [pool.alloc() for _ in range(4)]
        assert all(g is not None for g in got)
        assert pool.alloc() is None
        pool.free_many([idx for idx, _ in got])
        assert pool.free_count() == 4

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError, match="nslabs >= 1"):
            SlabPool(0, SLAB)
        with pytest.raises(ValueError, match="slab_bytes >= 8"):
            SlabPool(4, 4)

    def test_dispose_is_idempotent(self):
        p = SlabPool(2, SLAB)
        p.dispose()
        p.dispose()  # must not raise


class TestWireCodec:
    def _roundtrip(self, transport, payload):
        return transport.decode(transport.encode(payload, nwords=1))

    def test_c_contiguous_roundtrip_is_zero_copy(self, transport):
        a = np.arange(512, dtype=np.float64)
        out = self._roundtrip(transport, a)
        np.testing.assert_array_equal(out, a)
        assert out.dtype == a.dtype
        assert transport.counters["msgs_zero_copy"] == 1
        assert transport.counters["bytes_zero_copy"] == a.nbytes

    def test_f_contiguous_order_is_preserved(self, transport):
        a = np.asfortranarray(np.arange(144, dtype=np.float64).reshape(12, 12))
        out = self._roundtrip(transport, a)
        np.testing.assert_array_equal(out, a)
        assert out.flags.f_contiguous

    def test_non_contiguous_slice_packs_compact(self, transport):
        base = np.arange(4096, dtype=np.float64).reshape(64, 64)
        a = base[::2, 1::3]
        assert not a.flags.c_contiguous
        out = self._roundtrip(transport, a)
        np.testing.assert_array_equal(out, a)
        assert out.shape == a.shape

    def test_receiver_view_is_writable(self, transport):
        a = np.arange(512, dtype=np.float64)
        out = self._roundtrip(transport, a)
        out[0] = -1.0  # ownership transferred: mutation is safe
        assert out[0] == -1.0

    def test_small_array_spills_to_pickle(self, transport):
        a = np.arange(4, dtype=np.float64)  # 32 B < min_bytes=64
        wire = transport.encode(a, nwords=4)
        assert wire[0] == 0  # pickle kind
        np.testing.assert_array_equal(transport.decode(wire), a)
        assert transport.counters["msgs_pickled"] == 1
        assert transport.counters["msgs_zero_copy"] == 0

    def test_oversized_array_spills_to_pickle(self, transport):
        a = np.zeros(2 * SLAB // 8, dtype=np.float64)  # 2 slabs worth
        wire = transport.encode(a, nwords=a.size)
        assert wire[0] == 0
        np.testing.assert_array_equal(transport.decode(wire), a)

    def test_object_dtype_spills_to_pickle(self, transport):
        a = np.array([{"k": 1}, [2, 3]] * 64, dtype=object)
        wire = transport.encode(a, nwords=1)
        assert wire[0] == 0
        out = transport.decode(wire)
        assert out[0] == {"k": 1}

    def test_exhausted_pool_spills_gracefully(self, transport):
        a = np.arange(512, dtype=np.float64)
        wires = [transport.encode(a, nwords=512) for _ in range(6)]
        kinds = [w[0] for w in wires]
        assert kinds[:4] == [1, 1, 1, 1]  # four slabs packed
        assert kinds[4:] == [0, 0]  # then pickle, never an error
        assert transport.counters["spills"] == 2
        for w in wires:
            np.testing.assert_array_equal(transport.decode(w), a)

    def test_mixed_tuple_keeps_arrays_zero_copy(self, transport):
        payload = (np.arange(512, dtype=np.float64), "meta", 7)
        wire = transport.encode(payload, nwords=515)
        assert wire[0] == 2  # shallow container kind
        out = transport.decode(wire)
        assert isinstance(out, tuple) and len(out) == 3
        np.testing.assert_array_equal(out[0], payload[0])
        assert out[1:] == ("meta", 7)
        assert transport.counters["msgs_zero_copy"] == 1

    def test_non_array_payload_pickles(self, transport):
        wire = transport.encode({"dict": [1, 2]}, nwords=8)
        assert wire[0] == 0
        assert transport.decode(wire) == {"dict": [1, 2]}
        assert transport.counters["bytes_pickled"] == 64

    def test_gc_recycles_slab_via_pending_free(self, transport):
        a = np.arange(512, dtype=np.float64)
        out = self._roundtrip(transport, a)
        assert transport.pool.free_count() == 3
        del out  # finalizer only defers the free...
        transport._drain_pending()  # ...the next transport op collects it
        assert transport.pool.free_count() == 4
        # and the recycled slab counts as reuse on its next allocation
        transport.encode(a, nwords=512)
        assert transport.counters["slab_reuse"] == 1

    def test_copy_on_pop_frees_immediately(self, pool):
        t = ShmTransport(pool, min_bytes=64, copy_on_pop=True)
        a = np.arange(512, dtype=np.float64)
        out = t.decode(t.encode(a, nwords=512))
        assert pool.free_count() == 4  # recycled at pop, no finalizer needed
        np.testing.assert_array_equal(out, a)
        out[:] = 0.0  # private copy: mutation cannot touch the pool


def _exchange_program(comm, n):
    """Rank 0 -> 1 large block; rank 1 mutates the view and echoes back."""
    if comm.rank == 0:
        a = np.arange(n, dtype=np.float64)
        yield from comm.send(a, dest=1, tag=1)
        back = yield from comm.recv(source=1, tag=2)
        return float(back.sum())
    got = yield from comm.recv(source=0, tag=1)
    got += 1.0  # in-place on the zero-copy view (ownership transferred)
    yield from comm.send(got, dest=0, tag=2)
    return float(got[0])


class TestSharedMemoryBackend:
    def test_end_to_end_exchange_and_counters(self):
        n = 4096
        comm = create_communicator("shm", 2, timeout=60.0)
        reset_transport_totals()
        res = comm.run(_exchange_program, n)
        expected = float(np.arange(n, dtype=np.float64).sum() + n)
        assert res.returns[0] == expected
        assert res.returns[1] == 1.0
        assert res.backend == "shm"
        assert res.transport["msgs_zero_copy"] == 2
        assert res.transport["bytes_zero_copy"] == 2 * n * 8
        assert res.transport["spills"] == 0
        # the parent-side tally calibrate snapshots saw the same run
        assert transport_totals()["bytes_zero_copy"] == 2 * n * 8

    def test_transport_metrics_reach_the_tracer(self):
        from repro.obs import Tracer

        tracer = Tracer()
        comm = create_communicator("shm", 2, timeout=60.0, tracer=tracer)
        comm.run(_exchange_program, 4096)
        samples = [
            s for s in tracer.metrics.samples()
            if s.name == "repro.transport.bytes_zero_copy"
        ]
        # one total plus one per rank, all labelled with the backend
        assert len(samples) == 3
        assert {s.labels_dict["backend"] for s in samples} == {"shm"}
        total = [s for s in samples if s.rank is None]
        assert total[0].value == 2 * 4096 * 8

    def test_ring_parity_with_virtual(self):
        import operator

        def prog(comm, scale):
            right = (comm.rank + 1) % comm.size
            a = np.full(600, float(comm.rank * scale))
            yield from comm.send(a, dest=right, tag=4)
            got = yield from comm.recv(tag=4)
            total = yield from comm.allreduce(float(got[0]), op=operator.add)
            return total

        args = per_rank([2 for _ in range(3)])
        vres = create_communicator("virtual", 3).run(prog, args)
        sres = create_communicator("shm", 3, timeout=60.0).run(prog, args)
        assert sres.returns == vres.returns

    def test_run_result_transport_none_for_plain_mp(self):
        def prog(comm):
            yield from comm.barrier()

        res = create_communicator("multiprocessing", 2, timeout=30.0).run(prog)
        assert res.transport is None
