"""Scheduler edge cases the extreme-scale path must get right.

The batched, columnar-recording scheduler earns its keep at 10k+ ranks,
but its invariants are easiest to violate at the margins: a single rank
(the ready heap never holds a second entry to batch against), programs
that yield nothing at all, and whole cohorts of ranks sharing one
timestamp (tie-breaks must stay deterministic, lowest rank first).  Each
case is checked bit-for-bit against the ``REPRO_REFERENCE_KERNELS``
scheduler, and a hypothesis sweep does the same for random op mixes so
the columnar record is exercised against the eager object record.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import reference_kernels
from repro.parallel import ANY, SP2_1997, VirtualMachine
from repro.parallel.runtime import per_rank


def _run_both(prog, p, *args):
    res_fast = VirtualMachine(p, SP2_1997, trace=True).run(prog, *args)
    with reference_kernels():
        res_ref = VirtualMachine(p, SP2_1997, trace=True).run(prog, *args)
    return res_fast, res_ref


def _assert_identical(a, b):
    assert a.returns == b.returns
    assert a.clocks == b.clocks  # bit-identical virtual clocks
    assert a.makespan == b.makespan
    assert a.total_messages == b.total_messages
    assert a.total_words == b.total_words
    assert a.words_sent_per_rank == b.words_sent_per_rank
    assert a.words_recv_per_rank == b.words_recv_per_rank
    assert a.msgs_sent_per_rank == b.msgs_sent_per_rank
    assert a.msgs_recv_per_rank == b.msgs_recv_per_rank
    assert a.busy_per_rank == b.busy_per_rank
    assert a.idle_per_rank == b.idle_per_rank
    assert a.nodes == b.nodes
    assert a.msgs == b.msgs
    assert a.trace == b.trace


def test_single_rank_machine():
    def prog(comm):
        yield from comm.compute(10)
        yield from comm.elapse(0.5)
        yield from comm.send("self", dest=0, tag=1, nwords=2)
        val = yield from comm.recv(source=0, tag=1)
        total = yield from comm.allreduce(3)
        return val, total

    res_fast, res_ref = _run_both(prog, 1)
    _assert_identical(res_fast, res_ref)
    assert res_fast.returns == [("self", 3)]
    assert res_fast.total_messages == 1


def test_zero_op_programs():
    def prog(comm):
        if False:
            yield  # a generator that never yields an op
        return comm.rank * 2

    res_fast, res_ref = _run_both(prog, 4)
    _assert_identical(res_fast, res_ref)
    assert res_fast.returns == [0, 2, 4, 6]
    assert res_fast.clocks == [0.0] * 4
    assert res_fast.makespan == 0.0
    assert res_fast.nodes == []


def test_zero_op_single_rank():
    def prog(comm):
        return (yield from comm.barrier())

    res_fast, res_ref = _run_both(prog, 1)
    _assert_identical(res_fast, res_ref)
    assert res_fast.makespan == 0.0


def test_simultaneously_ready_tie_break_is_lowest_rank_first():
    """All ranks share every timestamp: identical work, then a send to a
    common sink.  The node record's rank order at each tied time must be
    ascending — the heap's ``(clock, rank)`` order — on both paths."""

    def prog(comm):
        yield from comm.compute(100)  # identical -> same clock on all ranks
        if comm.rank:
            yield from comm.send(comm.rank, dest=0, tag=3, nwords=1)
        else:
            for _ in range(comm.size - 1):
                _ = yield from comm.recv(source=ANY, tag=3)

    res_fast, res_ref = _run_both(prog, 6)
    _assert_identical(res_fast, res_ref)
    work_nodes = [n for n in res_fast.nodes if n.kind == "work"]
    assert [n.rank for n in work_nodes] == list(range(6))
    # tied sends drain lowest-rank-first, so the sink receives in order
    recv_msgs = [m.src for m in res_fast.msgs]
    assert recv_msgs == sorted(recv_msgs)


def test_tie_break_determinism_across_repeats():
    def prog(comm, units):
        yield from comm.compute(units)
        yield from comm.barrier()

    runs = [
        VirtualMachine(8, SP2_1997, trace=True).run(
            prog, per_rank([7.0] * 8)
        )
        for _ in range(3)
    ]
    for other in runs[1:]:
        assert other.nodes == runs[0].nodes
        assert other.clocks == runs[0].clocks


@st.composite
def _op_scripts(draw):
    """Per-rank op scripts: work/elapse plus a consistent message plan."""
    p = draw(st.integers(2, 5))
    plan = []
    for r in range(p):
        ops = draw(
            st.lists(
                st.sampled_from(["work", "elapse", "spin"]),
                min_size=0, max_size=4,
            )
        )
        dest = draw(st.integers(0, p - 1))
        nmsg = draw(st.integers(0, 2))
        plan.append((ops, dest, nmsg))
    return p, plan


@given(_op_scripts())
@settings(max_examples=40, deadline=None)
def test_columnar_record_matches_object_record(script):
    """Hypothesis parity: the lazily materialized columnar record must be
    node-for-node, msg-for-msg, event-for-event equal to the reference
    scheduler's eagerly built object record."""
    p, plan = script

    def prog(comm):
        me = comm.rank
        ops, dest, nmsg = plan[me]
        for kind in ops:
            if kind == "work":
                yield from comm.compute(3 * (me + 1))
            elif kind == "elapse":
                yield from comm.elapse(0.001 * (me + 1))
            else:
                # tag 8 is never sent on: the probe pays its t_setup and
                # misses (a hit would consume a planned message)
                _ = yield from comm._probe(ANY, 8)
        for i in range(nmsg):
            yield from comm.send(
                np.arange(me + i + 1), dest=dest, tag=9, nwords=me + i + 1
            )
        yield from comm.barrier()
        # drain after the barrier, when every send has been posted (a
        # probe would be timing-dependent — it only sees messages that
        # have *arrived* — so the drain uses counted wildcard receives)
        expect = sum(n for _o, d, n in plan if d == me)
        for _ in range(expect):
            _ = yield from comm.recv(source=ANY, tag=9)
        yield from comm.barrier()
        return expect

    res_fast, res_ref = _run_both(prog, p)
    _assert_identical(res_fast, res_ref)
    assert sum(res_fast.returns) == sum(n for _o, _d, n in plan)
