"""Observable equivalence of the two mailbox implementations.

The :class:`~repro.parallel.runtime._IndexedMailbox` fast path bucketizes
unmatched messages by ``(source, tag)`` and inspects only bucket heads;
the :class:`~repro.parallel.runtime._ListMailbox` reference scans one
flat list.  Under the virtual machine's invariants (global ``seq`` order
on adds, per-sender monotone ``arrival``), every observable — match
existence, which message a recv/probe pops, iteration contents — must be
identical.  The whole-VM half runs the same randomized programs under
both mailbox kernels and requires bit-identical results.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import reference_kernels
from repro.parallel import ANY, SP2_1997, VirtualMachine
from repro.parallel.runtime import _IndexedMailbox, _ListMailbox, _Message


# --- data-structure parity ---------------------------------------------------


def _script(rng, n_ops, nsources=3, ntags=3):
    """A random op sequence honouring the VM's mailbox invariants."""
    clocks = [0.0] * nsources  # per-sender clock -> monotone arrivals
    ops = []
    seq = 0
    for _ in range(n_ops):
        kind = rng.choice(["add", "add", "pop", "has"])
        if kind == "add":
            src = int(rng.integers(nsources))
            clocks[src] += float(rng.integers(0, 3)) * 0.5
            seq += 1
            ops.append(("add", _Message(
                source=src,
                tag=int(rng.integers(ntags)),
                payload=seq,
                nwords=1,
                arrival=clocks[src],
                seq=seq,
            )))
        else:
            src = int(rng.integers(-1, nsources))  # -1 -> ANY
            tag = int(rng.integers(-1, ntags))
            source = ANY if src < 0 else src
            tag = ANY if tag < 0 else tag
            cap = None if rng.random() < 0.5 else float(rng.uniform(0.0, 3.0))
            ops.append((kind, source, tag, cap))
    return ops


@given(seed=st.integers(0, 2000), n_ops=st.integers(1, 60))
@settings(max_examples=60, deadline=None)
def test_mailboxes_observably_equivalent(seed, n_ops):
    rng = np.random.default_rng(seed)
    fast, ref = _IndexedMailbox(), _ListMailbox()
    for op in _script(rng, n_ops):
        if op[0] == "add":
            msg = op[1]
            fast.add(msg)
            ref.add(dataclasses.replace(msg))
        elif op[0] == "has":
            _, source, tag, _ = op
            assert fast.has_match(source, tag) == ref.has_match(source, tag)
        else:
            _, source, tag, cap = op
            a = fast.pop_match(source, tag, max_arrival=cap)
            b = ref.pop_match(source, tag, max_arrival=cap)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.seq == b.seq
                assert (a.source, a.tag, a.arrival) == (
                    b.source, b.tag, b.arrival
                )
        assert len(fast) == len(ref)
        assert sorted(m.seq for m in fast.messages()) == sorted(
            m.seq for m in ref.messages()
        )


def test_pop_match_is_globally_fifo_across_buckets():
    """min-seq wins even when a later-keyed bucket was filled first."""
    for box in (_IndexedMailbox(), _ListMailbox()):
        box.add(_Message(source=1, tag=5, payload="b", nwords=1,
                         arrival=0.0, seq=2))
        box.add(_Message(source=0, tag=7, payload="a", nwords=1,
                         arrival=0.0, seq=1))
        got = box.pop_match(ANY, ANY)
        assert got.seq == 1, type(box).__name__


def test_arrival_cap_filters_identically():
    for box in (_IndexedMailbox(), _ListMailbox()):
        box.add(_Message(source=0, tag=0, payload="x", nwords=1,
                         arrival=5.0, seq=1))
        assert box.pop_match(0, 0, max_arrival=4.0) is None
        assert box.pop_match(0, 0, max_arrival=5.0).seq == 1


def test_pop_match_with_ndarray_payloads():
    """Regression: removal must be by index, never by equality.

    ``list.remove`` would invoke the dataclass ``__eq__``, which raises
    ``The truth value of an array ... is ambiguous`` the moment two
    ndarray-payload messages have to be compared — i.e. whenever more
    than one message is queued, the common case under load.
    """
    for box in (_IndexedMailbox(), _ListMailbox()):
        for seq in (1, 2, 3):
            box.add(_Message(source=seq % 2, tag=7,
                             payload=np.arange(4) * seq, nwords=4,
                             arrival=float(seq), seq=seq))
        got = box.pop_match(ANY, 7)
        assert got.seq == 1, type(box).__name__
        np.testing.assert_array_equal(got.payload, np.arange(4))
        assert box.pop_match(ANY, ANY).seq == 2
        assert len(box) == 1


# --- whole-VM parity ---------------------------------------------------------


def _exchange_prog(p, dests, tags, sizes):
    def prog(comm):
        me = comm.rank
        # source-wildcard receives, tag-specific so barrier traffic (which
        # uses internal tags) can never race with the user messages
        inbound = {t: 0 for t in range(3)}
        for s in range(p):
            for d, t in zip(dests[s], tags[s]):
                if d == me:
                    inbound[t] += 1
        for d, t, n in zip(dests[me], tags[me], sizes[me]):
            yield from comm.send((me, t), dest=d, tag=t, nwords=n)
        got = []
        for t, count in inbound.items():
            for _ in range(count):
                got.append((yield from comm.recv(source=ANY, tag=t)))
        yield from comm.barrier()
        return sorted(got)

    return prog


def _run_both(prog, p):
    res_fast = VirtualMachine(p, SP2_1997, trace=True).run(prog)
    with reference_kernels():
        res_ref = VirtualMachine(p, SP2_1997, trace=True).run(prog)
    return res_fast, res_ref


def _assert_results_identical(a, b):
    assert a.returns == b.returns
    assert a.clocks == b.clocks  # bit-identical virtual clocks
    assert a.makespan == b.makespan
    assert a.total_messages == b.total_messages
    assert a.total_words == b.total_words
    assert a.busy_per_rank == b.busy_per_rank
    assert a.idle_per_rank == b.idle_per_rank
    assert a.nodes == b.nodes  # identical causal record, node for node
    assert a.msgs == b.msgs


@given(seed=st.integers(0, 1000), p=st.integers(2, 6))
@settings(max_examples=25, deadline=None)
def test_vm_parity_on_random_exchanges(seed, p):
    rng = np.random.default_rng(seed)
    nmsg = [int(rng.integers(0, 4)) for _ in range(p)]
    dests = [[int(x) for x in rng.integers(0, p, nmsg[r])] for r in range(p)]
    tags = [[int(x) for x in rng.integers(0, 3, nmsg[r])] for r in range(p)]
    sizes = [[int(x) for x in rng.integers(1, 200, nmsg[r])]
             for r in range(p)]
    res_fast, res_ref = _run_both(_exchange_prog(p, dests, tags, sizes), p)
    _assert_results_identical(res_fast, res_ref)


@pytest.mark.parametrize("p", [2, 4])
def test_vm_parity_on_wildcard_specificity_mix(p):
    """Receives from most-specific to least-specific match classes."""

    def prog(comm):
        if comm.rank == 0:
            for s in range(1, comm.size):
                _ = yield from comm.recv(source=s, tag=1)  # exact (s, t)
            for _ in range(1, comm.size):
                _ = yield from comm.recv(source=ANY, tag=2)  # (ANY, t)
            for _ in range(1, comm.size):
                _ = yield from comm.recv(source=ANY, tag=ANY)  # (ANY, ANY)
        else:
            yield from comm.compute(comm.rank * 7)
            for tag in (1, 2, 3):
                yield from comm.send(comm.rank, dest=0, tag=tag, nwords=4)
        yield from comm.barrier()

    res_fast, res_ref = _run_both(prog, p)
    _assert_results_identical(res_fast, res_ref)


def test_vm_parity_with_probes():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.elapse(0.01)
            yield from comm.send("late", dest=1, tag=1, nwords=8)
        else:
            req = yield from comm.irecv(source=0, tag=1)
            done, val = yield from req.test()
            polls = 1
            while not done:
                yield from comm.elapse(0.001)
                done, val = yield from req.test()
                polls += 1
            return val, polls

    res_fast, res_ref = _run_both(prog, 2)
    _assert_results_identical(res_fast, res_ref)


def test_vm_parity_with_queued_ndarray_payloads():
    """Several ndarray messages must queue in the receiver's mailbox (the
    receiver computes first, so nothing is direct-delivered) and then be
    drained through wildcard receives — the shape that used to crash the
    reference mailbox's equality-based removal."""

    def prog(comm):
        me = comm.rank
        if me == 0:
            yield from comm.compute(5000)  # let every sender's msg queue up
            total = 0.0
            for _ in range(comm.size - 1):
                data = yield from comm.recv(source=ANY, tag=4)
                total += float(data.sum())
            return total
        yield from comm.compute(me)
        yield from comm.send(np.full(3, float(me)), dest=0, tag=4, nwords=3)

    res_fast, res_ref = _run_both(prog, 5)
    _assert_results_identical(res_fast, res_ref)
    assert res_fast.returns[0] == sum(3.0 * m for m in range(1, 5))
