"""Property-based tests for the virtual machine's collective semantics."""

import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import IDEAL, VirtualMachine


@given(p=st.integers(1, 12), seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_allreduce_matches_serial_sum(p, seed):
    rng = np.random.default_rng(seed)
    vals = rng.integers(-100, 100, p).tolist()

    def prog(comm):
        return (yield from comm.allreduce(vals[comm.rank]))

    res = VirtualMachine(p, IDEAL).run(prog)
    assert res.returns == [sum(vals)] * p


@given(p=st.integers(1, 10), seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_scan_prefixes(p, seed):
    rng = np.random.default_rng(seed)
    vals = rng.integers(0, 50, p).tolist()

    def prog(comm):
        return (yield from comm.scan(vals[comm.rank]))

    res = VirtualMachine(p, IDEAL).run(prog)
    expect = np.cumsum(vals).tolist()
    assert res.returns == expect


@given(p=st.integers(2, 8), seed=st.integers(0, 1000), rounds=st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_random_pairwise_exchanges_never_deadlock(p, seed, rounds):
    """Arbitrary all-to-all exchange patterns complete under buffered
    sends, and every sent payload arrives exactly once."""
    rng = np.random.default_rng(seed)
    plans = [
        [
            [int(x) for x in rng.integers(0, p, rng.integers(0, 3))]
            for _ in range(p)
        ]
        for _ in range(rounds)
    ]  # plans[round][rank] = list of destinations

    def prog(comm):
        got = []
        for rnd in range(rounds):
            outgoing = plans[rnd][comm.rank]
            n_in = sum(plans[rnd][s].count(comm.rank) for s in range(p))
            for dest in outgoing:
                yield from comm.send((comm.rank, rnd), dest=dest, tag=rnd)
            for _ in range(n_in):
                got.append((yield from comm.recv(tag=rnd)))
            yield from comm.barrier()
        return sorted(got)

    res = VirtualMachine(p, IDEAL).run(prog)
    for r in range(p):
        expect = sorted(
            (s, rnd)
            for rnd in range(rounds)
            for s in range(p)
            for d in plans[rnd][s]
            if d == r
        )
        assert res.returns[r] == expect


@given(p=st.integers(2, 8), seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_alltoall_transposes(p, seed):
    rng = np.random.default_rng(seed)
    mat = rng.integers(0, 1000, (p, p))

    def prog(comm):
        return (yield from comm.alltoall(mat[comm.rank].tolist()))

    res = VirtualMachine(p, IDEAL).run(prog)
    for r in range(p):
        assert res.returns[r] == mat[:, r].tolist()


@given(
    p=st.integers(1, 8),
    op=st.sampled_from([operator.add, max, min]),
    seed=st.integers(0, 500),
)
@settings(max_examples=20, deadline=None)
def test_reduce_matches_functools(p, op, seed):
    from functools import reduce as freduce

    rng = np.random.default_rng(seed)
    vals = rng.integers(-50, 50, p).tolist()

    def prog(comm):
        return (yield from comm.reduce(vals[comm.rank], op=op, root=0))

    res = VirtualMachine(p, IDEAL).run(prog)
    assert res.returns[0] == freduce(op, vals)
