"""Measured backends feed the live side channel and the v5 resource layer.

The forked ``multiprocessing``/``shm`` ranks run a resource sampler and
stream progress/resource frames over the :class:`LiveChannel` installed
through the ambient :class:`TelemetryHub`.  These tests pin the whole
path: per-rank ``resource`` records land in the trace with backend
labels, and a hub attached to a run receives rank frames without a
tracer being involved at all.
"""

import time

import pytest

from repro.obs import Tracer, export_jsonl, validate_jsonl
from repro.obs.live import LiveChannel, TelemetryHub, use_live
from repro.obs.resource import resource_peaks
from repro.parallel import create_communicator
from repro.parallel.runtime import RecvOp, SendOp, WorkOp


def _pingpong(comm, rounds):
    other = 1 - comm.rank
    for _ in range(rounds):
        yield WorkOp(50.0)
        if comm.rank == 0:
            yield SendOp(other, 3, ("ping",), 8)
            yield RecvOp(other, 4)
        else:
            yield RecvOp(other, 3)
            yield SendOp(other, 4, ("pong",), 8)
    return comm.rank


@pytest.mark.parametrize("backend", ["multiprocessing", "shm"])
def test_traced_run_records_per_rank_resources(backend, tmp_path):
    tracer = Tracer()
    with tracer.phase(f"{backend}-pingpong", kind="compute"):
        comm = create_communicator(backend, 2, tracer=tracer)
        comm.run(_pingpong, 2)

    peaks = resource_peaks(tracer.resource_samples)
    assert set(peaks) == {0, 1}  # one sampled series per forked rank
    for rank in (0, 1):
        assert peaks[rank]["samples"] >= 2  # open + close at minimum
        assert peaks[rank]["peak_rss_bytes"] > 0
    # the peaks are mirrored as backend-labelled per-rank metrics
    labelled = {
        (s.rank, s.labels_dict.get("backend"))
        for s in tracer.metrics.samples()
        if s.name == "repro.resource.peak_rss_bytes"
    }
    assert (0, backend) in labelled and (1, backend) in labelled

    path = tmp_path / "trace.jsonl"
    export_jsonl(tracer, path)
    assert validate_jsonl(path)["resources"] == len(tracer.resource_samples)


def test_untraced_run_records_no_resources():
    comm = create_communicator("multiprocessing", 2)
    result = comm.run(_pingpong, 1)  # no tracer, no hub: plain run
    assert result.returns == [0, 1] and result.total_messages == 2


def test_live_channel_streams_rank_frames_without_tracer():
    hub = TelemetryHub()
    hub.channel = LiveChannel()
    try:
        with use_live(hub):
            comm = create_communicator("multiprocessing", 2)
            comm.run(_pingpong, 2)
        deadline = time.time() + 10.0
        while time.time() < deadline:
            hub.channel.drain(hub)
            snap = hub.snapshot()
            if len(snap["ranks"]) == 2 and len(snap["resources"]) == 2:
                break
            time.sleep(0.02)
        snap = hub.snapshot()
        # every rank streamed at least its final progress frame...
        assert set(snap["ranks"]) == {"0", "1"}
        for d in snap["ranks"].values():
            assert d["elapsed"] > 0.0 and d["msgs"] >= 2
        # ...and at least one resource frame from its sampler
        assert set(snap["resources"]) == {"0", "1"}
        for d in snap["resources"].values():
            assert d["rss_bytes"] > 0
    finally:
        hub.channel.close()


def test_live_channel_and_tracer_compose():
    hub = TelemetryHub()
    hub.channel = LiveChannel()
    tracer = Tracer()
    try:
        with use_live(hub):
            with tracer.phase("mp-live", kind="compute"):
                comm = create_communicator("multiprocessing", 2,
                                           tracer=tracer)
                comm.run(_pingpong, 1)
        assert set(resource_peaks(tracer.resource_samples)) == {0, 1}
        deadline = time.time() + 10.0
        while not hub.snapshot()["ranks"] and time.time() < deadline:
            hub.channel.drain(hub)
            time.sleep(0.02)
        assert hub.snapshot()["ranks"]  # streaming worked alongside tracing
    finally:
        hub.channel.close()
