"""One-sided communication windows on the virtual machine."""

import numpy as np
import pytest

from repro.parallel import IDEAL, SP2_1997, VirtualMachine
from repro.parallel.rma import RmaWindow


def test_put_then_get():
    """The mpi4py tutorial's canonical RMA example: rank 0 fills the
    window, everyone reads 42s back."""

    def prog(comm):
        win = yield from RmaWindow.allocate(comm, nwords=10)
        if comm.rank == 0:
            yield from win.lock(target=0)
            yield from win.put(np.full(10, 42.0), target=0)
            yield from win.unlock(target=0)
        yield from win.fence()
        yield from win.lock(target=0)
        buf = yield from win.get(target=0, count=10)
        yield from win.unlock(target=0)
        return buf

    res = VirtualMachine(4, IDEAL).run(prog)
    for buf in res.returns:
        assert np.all(buf == 42.0)


def test_accumulate_sums_all_ranks():
    def prog(comm):
        win = yield from RmaWindow.allocate(comm, nwords=4)
        yield from win.lock(target=0)
        yield from win.accumulate(np.full(4, float(comm.rank + 1)), target=0)
        yield from win.unlock(target=0)
        yield from win.fence()
        if comm.rank == 0:
            return win.local.copy()
        return None

    res = VirtualMachine(5, SP2_1997).run(prog)
    assert np.all(res.returns[0] == sum(range(1, 6)))


def test_lock_serialises_access():
    """Concurrent read-modify-write under locks must not lose updates."""

    def prog(comm):
        win = yield from RmaWindow.allocate(comm, nwords=1)
        for _ in range(3):
            yield from win.lock(target=0)
            cur = yield from win.get(target=0, count=1)
            yield from win.put(cur + 1.0, target=0)
            yield from win.unlock(target=0)
        yield from win.fence()
        if comm.rank == 0:
            return float(win.local[0])
        return None

    res = VirtualMachine(4, SP2_1997).run(prog)
    assert res.returns[0] == 12.0  # 4 ranks x 3 increments


def test_offsets_and_partial_access():
    def prog(comm):
        win = yield from RmaWindow.allocate(comm, nwords=8)
        yield from win.lock(target=0)
        yield from win.put(np.array([float(comm.rank)]), target=0,
                           offset=comm.rank)
        yield from win.unlock(target=0)
        yield from win.fence()
        yield from win.lock(target=0)
        buf = yield from win.get(target=0, count=comm.size)
        yield from win.unlock(target=0)
        return buf

    res = VirtualMachine(4, IDEAL).run(prog)
    for buf in res.returns:
        assert np.array_equal(buf, [0.0, 1.0, 2.0, 3.0])


def test_access_requires_lock():
    def prog(comm):
        win = yield from RmaWindow.allocate(comm, nwords=2)
        yield from win.put(np.zeros(2), target=0)

    with pytest.raises(RuntimeError, match="lock"):
        VirtualMachine(2, IDEAL).run(prog)


def test_range_and_target_validation():
    def prog(comm):
        win = yield from RmaWindow.allocate(comm, nwords=2)
        yield from win.lock(target=0)
        yield from win.put(np.zeros(5), target=0)

    with pytest.raises(ValueError, match="outside"):
        VirtualMachine(2, IDEAL).run(prog)

    def prog2(comm):
        win = yield from RmaWindow.allocate(comm, nwords=2)
        yield from win.lock(target=7)

    with pytest.raises(ValueError, match="target"):
        VirtualMachine(2, IDEAL).run(prog2)


def test_mismatched_sizes_rejected():
    def prog(comm):
        _ = yield from RmaWindow.allocate(comm, nwords=comm.rank + 1)

    with pytest.raises(ValueError, match="differ"):
        VirtualMachine(2, IDEAL).run(prog)


def test_unlock_not_held():
    def prog(comm):
        win = yield from RmaWindow.allocate(comm, nwords=1)
        yield from win.unlock(target=0)

    with pytest.raises(RuntimeError, match="hold"):
        VirtualMachine(2, IDEAL).run(prog)
