"""Collective operations on the virtual machine, checked against serial
reference semantics for a range of processor counts (including non powers
of two, which exercise the tree edge cases)."""

import operator

import pytest

from repro.parallel import IDEAL, VirtualMachine

SIZES = [1, 2, 3, 4, 5, 7, 8, 13, 16]


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, -1])  # -1 means "last rank"
def test_bcast(p, root):
    root = root % p

    def prog(comm):
        obj = {"v": 123} if comm.rank == root else None
        return (yield from comm.bcast(obj, root=root))

    res = VirtualMachine(p, IDEAL).run(prog)
    assert all(r == {"v": 123} for r in res.returns)


@pytest.mark.parametrize("p", SIZES)
def test_gather(p):
    def prog(comm):
        return (yield from comm.gather(comm.rank * 2, root=0))

    res = VirtualMachine(p, IDEAL).run(prog)
    assert res.returns[0] == [2 * r for r in range(p)]
    assert all(r is None for r in res.returns[1:])


@pytest.mark.parametrize("p", SIZES)
def test_scatter(p):
    def prog(comm):
        objs = [f"item{r}" for r in range(p)] if comm.rank == 0 else None
        return (yield from comm.scatter(objs, root=0))

    res = VirtualMachine(p, IDEAL).run(prog)
    assert res.returns == [f"item{r}" for r in range(p)]


def test_scatter_requires_full_list():
    def prog(comm):
        objs = [0] if comm.rank == 0 else None
        return (yield from comm.scatter(objs, root=0))

    with pytest.raises(ValueError, match="length 3"):
        VirtualMachine(3, IDEAL).run(prog)


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, -1])
def test_reduce_sum(p, root):
    root = root % p

    def prog(comm):
        return (yield from comm.reduce(comm.rank + 1, root=root))

    res = VirtualMachine(p, IDEAL).run(prog)
    expected = p * (p + 1) // 2
    assert res.returns[root] == expected
    assert all(res.returns[r] is None for r in range(p) if r != root)


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_max(p):
    def prog(comm):
        return (yield from comm.allreduce((comm.rank * 7) % 5, op=max))

    res = VirtualMachine(p, IDEAL).run(prog)
    expected = max((r * 7) % 5 for r in range(p))
    assert res.returns == [expected] * p


@pytest.mark.parametrize("p", SIZES)
def test_allgather(p):
    def prog(comm):
        return (yield from comm.allgather(comm.rank**2))

    res = VirtualMachine(p, IDEAL).run(prog)
    expected = [r**2 for r in range(p)]
    assert res.returns == [expected] * p


@pytest.mark.parametrize("p", SIZES)
def test_alltoall(p):
    def prog(comm):
        objs = [(comm.rank, d) for d in range(p)]
        return (yield from comm.alltoall(objs))

    res = VirtualMachine(p, IDEAL).run(prog)
    for r in range(p):
        assert res.returns[r] == [(s, r) for s in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_barrier_synchronises_clocks(p):
    from repro.parallel import MachineModel

    m = MachineModel(t_setup=0.01, t_word=0.0, t_work=1.0)

    def prog(comm):
        yield from comm.compute(comm.rank)  # staggered work
        yield from comm.barrier()
        return None

    res = VirtualMachine(p, m).run(prog)
    # after the barrier no clock may be earlier than the slowest pre-barrier rank
    assert min(res.clocks) >= p - 1


def test_reduce_non_commutative_deterministic():
    """Reduction order is fixed, so non-commutative ops are reproducible."""

    def prog(comm):
        return (yield from comm.reduce([comm.rank], op=operator.add, root=0))

    r1 = VirtualMachine(6, IDEAL).run(prog).returns[0]
    r2 = VirtualMachine(6, IDEAL).run(prog).returns[0]
    assert r1 == r2
    assert sorted(r1) == [0, 1, 2, 3, 4, 5]


@pytest.mark.parametrize("p", SIZES)
def test_reduce_non_commutative_rank_order_every_root(p):
    """The documented combine order is rank order ``x_0 + x_1 + ... + x_{P-1}``
    for *every* root (regression: the vrank-relabelled tree used to combine
    in rotated order when root != 0)."""
    expected = "".join(f"<{r}>" for r in range(p))
    for root in range(p):
        def prog(comm):
            return (yield from comm.reduce(
                f"<{comm.rank}>", op=operator.add, root=root
            ))

        res = VirtualMachine(p, IDEAL).run(prog)
        for r in range(p):
            assert res.returns[r] == (expected if r == root else None), (
                f"P={p} root={root} rank={r}"
            )


def test_bcast_cost_scales_logarithmically():
    from repro.parallel import MachineModel

    m = MachineModel(t_setup=1.0, t_word=0.0, t_work=0.0)

    def prog(comm):
        return (yield from comm.bcast(0 if comm.rank == 0 else None, root=0))

    t16 = VirtualMachine(16, m).run(prog).makespan
    t64 = VirtualMachine(64, m).run(prog).makespan
    # binomial tree: depth log2(P) message steps, not P
    assert t16 <= 5.0
    assert t64 <= 7.0
    assert t64 > t16
