"""Cross-backend payload identity on adversarial payloads.

Every wire — the virtual machine's in-memory handoff, the queue
backend's pickling, the shm backend's slab packing with pickle spill —
must deliver payloads bit-identical to what was sent.  The payloads
here are chosen to stress the slab codec's edges: non-contiguous
views, zero-length arrays, blocks larger than a slab, mixed-dtype
containers, and dtypes that must spill.
"""

import numpy as np
import pytest

from repro.parallel import available_backends, create_communicator

BACKENDS = [b for b in available_backends() if b != "mpi4py"]


def _adversarial_payloads():
    base = np.arange(4096, dtype=np.float64).reshape(64, 64)
    return [
        # non-contiguous strided slice (packs to a compact copy)
        base[::2, 1::3],
        # reversed view: negative strides
        np.arange(1000, dtype=np.float64)[::-1],
        # zero-length array (below min_bytes -> pickle path)
        np.empty((0,), dtype=np.float64),
        # empty with nonzero dims on other axes
        np.zeros((3, 0, 5), dtype=np.int64),
        # > 1 MB float64 block (larger than the default slab -> spill)
        np.arange(150_000, dtype=np.float64) * 0.5,
        # Fortran-ordered block
        np.asfortranarray(np.arange(900, dtype=np.float64).reshape(30, 30)),
        # mixed-dtype tuple: eligible array + small array + non-arrays
        (
            np.arange(1000, dtype=np.int32),
            np.linspace(0.0, 1.0, 500),
            b"header-bytes",
            {"elems": 17, "rank": 0},
        ),
        # list container with a float32 member
        [np.full(300, 2.5, dtype=np.float32), "tail"],
        # structured dtype (void kind -> must spill, values preserved)
        np.array([(1, 2.5), (3, 4.5)], dtype=[("a", "i8"), ("b", "f8")]),
        # non-array scalars ride the pickle path untouched
        3.25,
        None,
    ]


def _assert_identical(got, want, where):
    if isinstance(want, np.ndarray):
        assert isinstance(got, np.ndarray), where
        assert got.dtype == want.dtype, where
        assert got.shape == want.shape, where
        assert np.array_equal(got, want), where
    elif isinstance(want, (tuple, list)):
        assert type(got) is type(want) and len(got) == len(want), where
        for i, (g, w) in enumerate(zip(got, want)):
            _assert_identical(g, w, f"{where}[{i}]")
    else:
        assert got == want, where


def _echo_program(comm, payloads):
    """Rank 0 ships every payload to rank 1, which echoes each one back."""
    if comm.rank == 0:
        for i, p in enumerate(payloads):
            yield from comm.send(p, dest=1, tag=i)
        returned = []
        for i in range(len(payloads)):
            p = yield from comm.recv(source=1, tag=i)
            returned.append(p)
        return returned
    received = []
    for i in range(len(payloads)):
        p = yield from comm.recv(source=0, tag=i)
        received.append(p)
    for i, p in enumerate(received):
        yield from comm.send(p, dest=0, tag=i)
    return len(received)


@pytest.mark.parametrize("backend", BACKENDS)
def test_adversarial_payloads_survive_the_wire(backend):
    payloads = _adversarial_payloads()
    comm = create_communicator(backend, 2, timeout=60.0)
    res = comm.run(_echo_program, payloads)
    assert res.returns[1] == len(payloads)
    for i, (got, want) in enumerate(zip(res.returns[0], payloads)):
        _assert_identical(got, want, f"{backend}: payload {i} after echo")


def test_backends_agree_with_each_other():
    """The same echo run yields bit-identical payloads on every backend."""
    payloads = _adversarial_payloads()
    reference = create_communicator("virtual", 2).run(
        _echo_program, payloads
    ).returns[0]
    for backend in BACKENDS:
        if backend == "virtual":
            continue
        got = create_communicator(backend, 2, timeout=60.0).run(
            _echo_program, payloads
        ).returns[0]
        for i, (g, w) in enumerate(zip(got, reference)):
            _assert_identical(g, w, f"{backend} vs virtual: payload {i}")


def test_shm_spill_accounting_matches_payload_mix():
    """The adversarial mix must split between slabs and pickle as designed."""
    payloads = _adversarial_payloads()
    res = create_communicator("shm", 2, timeout=60.0).run(
        _echo_program, payloads
    )
    t = res.transport
    # both directions counted: every message is either zero-copy or pickled
    assert t["msgs_zero_copy"] + t["msgs_pickled"] == 2 * len(payloads)
    # the eligible arrays (slices, reversed, 1MB-, F-order, tuple members)
    # did ride the slabs...
    assert t["msgs_zero_copy"] >= 2 * 5
    # ...and the oversized block forced exactly one spill per direction
    assert t["bytes_pickled"] >= 2 * 150_000 * 8
