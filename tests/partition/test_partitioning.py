"""Multilevel partitioner quality: balance and cut on structured graphs."""

import numpy as np
import pytest

from repro.mesh import box_mesh
from repro.partition import (
    Graph,
    block_partition,
    comm_volume,
    edgecut,
    imbalance,
    loads,
    multilevel_bisect,
    multilevel_kway,
    random_partition,
    rcb_partition,
    repartition,
)


def dual_graph_of_box(nx, ny, nz, vwgt=None):
    m = box_mesh(nx, ny, nz)
    return Graph.from_pairs(m.dual_pairs, m.ne, vwgt=vwgt), m


def grid_graph(nx, ny):
    def vid(i, j):
        return i * ny + j

    pairs = []
    for i in range(nx):
        for j in range(ny):
            if i + 1 < nx:
                pairs.append((vid(i, j), vid(i + 1, j)))
            if j + 1 < ny:
                pairs.append((vid(i, j), vid(i, j + 1)))
    return Graph.from_pairs(np.array(pairs), nx * ny)


def test_bisection_balance_and_cut():
    g = grid_graph(12, 12)
    side = multilevel_bisect(g, 0.5, seed=0)
    ld = loads(g, side, 2)
    assert ld.max() / (g.total_vwgt() / 2) <= 1.06
    # a 12x12 grid bisects with cut ~12; anything < 3x that is a sane cut
    assert edgecut(g, side) <= 36


@pytest.mark.parametrize("k", [2, 3, 4, 7, 8])
def test_kway_balance(k):
    g, _ = dual_graph_of_box(4, 4, 4)
    part = multilevel_kway(g, k, seed=1)
    assert part.min() >= 0 and part.max() == k - 1
    assert imbalance(g, part, k) <= 1.12
    assert np.bincount(part, minlength=k).min() > 0


def test_kway_beats_random_cut():
    g, _ = dual_graph_of_box(4, 4, 4)
    part = multilevel_kway(g, 8, seed=0)
    rand = random_partition(g, 8, seed=0)
    assert edgecut(g, part) < 0.5 * edgecut(g, rand)


def test_k1_trivial():
    g = grid_graph(4, 4)
    part = multilevel_kway(g, 1)
    assert np.all(part == 0)
    with pytest.raises(ValueError):
        multilevel_kway(g, 0)


def test_weighted_balance():
    """Heavily skewed vertex weights must still balance (this is exactly the
    post-adaption situation: refined elements carry large Wcomp)."""
    rng = np.random.default_rng(3)
    wv = np.where(rng.random(216) < 0.2, 8, 1).astype(np.int64)
    g, _ = dual_graph_of_box(3, 3, 3, vwgt=None)
    g = g.with_vwgt(wv[: g.n])
    part = multilevel_kway(g, 4, seed=2)
    assert imbalance(g, part, 4) <= 1.15


def test_block_partition_balances_weights():
    g = grid_graph(10, 1)
    g = g.with_vwgt(np.array([1, 1, 1, 1, 6, 1, 1, 1, 1, 1]))
    part = block_partition(g, 2)
    ld = loads(g, part, 2)
    assert abs(ld[0] - ld[1]) <= 6  # can't split the heavy vertex


def test_rcb_partition_on_coordinates():
    m = box_mesh(4, 4, 4)
    cent = m.coords[m.elems].mean(axis=1)
    part = rcb_partition(cent, np.ones(m.ne), 8)
    ld = np.bincount(part, minlength=8)
    assert ld.min() > 0
    assert ld.max() / (m.ne / 8) < 1.05


def test_comm_volume_zero_for_single_part():
    g = grid_graph(5, 5)
    assert comm_volume(g, np.zeros(g.n, dtype=np.int64), 1) == 0
    part = multilevel_kway(g, 4, seed=0)
    assert comm_volume(g, part, 4) > 0


def test_determinism():
    g, _ = dual_graph_of_box(3, 3, 3)
    p1 = multilevel_kway(g, 4, seed=42)
    p2 = multilevel_kway(g, 4, seed=42)
    assert np.array_equal(p1, p2)


class TestRepartition:
    def test_balances_new_weights(self):
        g, _ = dual_graph_of_box(4, 4, 4)
        old = multilevel_kway(g, 4, seed=0)
        # adaption: elements in one corner get heavy
        wv = np.ones(g.n, dtype=np.int64)
        wv[old == 0] = 8
        g2 = g.with_vwgt(wv)
        new = repartition(g2, 4, old, seed=1)
        assert imbalance(g2, new, 4) <= 1.2
        assert imbalance(g2, new, 4) < imbalance(g2, old, 4)

    def test_stays_close_to_old_partition(self):
        """With unchanged weights, the seeded repartitioner should barely
        move anything — that is its whole point (low remap volume)."""
        g, _ = dual_graph_of_box(4, 4, 4)
        old = multilevel_kway(g, 4, seed=0)
        new = repartition(g, 4, old, seed=1)
        moved = (new != old).mean()
        assert moved < 0.05

    def test_moves_less_than_fresh_partition(self):
        g, _ = dual_graph_of_box(4, 4, 4)
        old = multilevel_kway(g, 4, seed=0)
        wv = np.ones(g.n, dtype=np.int64)
        wv[old == 2] = 6
        g2 = g.with_vwgt(wv)
        seeded = repartition(g2, 4, old, seed=1)
        fresh = multilevel_kway(g2, 4, seed=1)
        assert (seeded != old).sum() <= (fresh != old).sum()

    def test_validates_inputs(self):
        g = grid_graph(4, 4)
        with pytest.raises(ValueError, match="shape"):
            repartition(g, 2, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="labels"):
            repartition(g, 2, np.full(16, 5))

    def test_k1(self):
        g = grid_graph(3, 3)
        assert np.all(repartition(g, 1, np.zeros(9, dtype=np.int64)) == 0)
