"""Graph container construction and invariants."""

import numpy as np
import pytest

from repro.partition import Graph


def path_graph(n, vwgt=None):
    pairs = np.column_stack([np.arange(n - 1), np.arange(1, n)])
    return Graph.from_pairs(pairs, n, vwgt=vwgt)


def test_from_pairs_symmetric():
    g = path_graph(4)
    assert g.n == 4
    assert g.nedges == 3
    assert g.neighbors(0).tolist() == [1]
    assert g.neighbors(1).tolist() == [0, 2]
    assert g.neighbors(3).tolist() == [2]


def test_parallel_edges_merged():
    pairs = np.array([[0, 1], [1, 0], [0, 1]])
    g = Graph.from_pairs(pairs, 2, ewgt=np.array([2, 3, 5]))
    assert g.nedges == 1
    assert g.edge_weights(0).tolist() == [10]
    assert g.edge_weights(1).tolist() == [10]


def test_self_loops_dropped():
    g = Graph.from_pairs(np.array([[0, 0], [0, 1]]), 2)
    assert g.nedges == 1


def test_default_weights():
    g = path_graph(3)
    assert g.vwgt.tolist() == [1, 1, 1]
    assert g.total_vwgt() == 3


def test_with_vwgt():
    g = path_graph(3)
    g2 = g.with_vwgt(np.array([5, 1, 2]))
    assert g2.total_vwgt() == 8
    assert g.total_vwgt() == 3  # original untouched
    with pytest.raises(ValueError):
        g.with_vwgt(np.array([1, 2]))


def test_out_of_range_rejected():
    with pytest.raises(ValueError, match="out of range"):
        Graph.from_pairs(np.array([[0, 5]]), 3)


def test_isolated_vertices_allowed():
    g = Graph.from_pairs(np.array([[0, 1]]), 4)
    assert g.neighbors(2).size == 0
    assert g.neighbors(3).size == 0
