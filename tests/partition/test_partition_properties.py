"""Property-based tests for the partitioning stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    Graph,
    contract,
    edgecut,
    heavy_edge_matching,
    imbalance,
    multilevel_kway,
    repartition,
)


def random_connected_graph(n, extra_edges, seed, max_w=5):
    """Random spanning tree plus extra edges -> always connected."""
    rng = np.random.default_rng(seed)
    pairs = [(i, int(rng.integers(0, i))) for i in range(1, n)]
    for _ in range(extra_edges):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            pairs.append((int(a), int(b)))
    vwgt = rng.integers(1, max_w + 1, size=n).astype(np.int64)
    ewgt = rng.integers(1, max_w + 1, size=len(pairs)).astype(np.int64)
    return Graph.from_pairs(np.array(pairs), n, vwgt=vwgt, ewgt=ewgt)


@given(n=st.integers(10, 120), extra=st.integers(0, 200), seed=st.integers(0, 999))
@settings(max_examples=25, deadline=None)
def test_matching_and_contraction_invariants(n, extra, seed):
    g = random_connected_graph(n, extra, seed)
    match = heavy_edge_matching(g, np.random.default_rng(seed))
    # involution
    assert np.array_equal(match[match], np.arange(n))
    coarse, cmap = contract(g, match)
    assert coarse.total_vwgt() == g.total_vwgt()
    # cut between coarse vertices equals cut between their fine pre-images:
    # total edge weight is conserved minus weight internal to merged pairs
    fine_total = g.ewgt.sum() // 2
    internal = sum(
        int(g.edge_weights(v)[list(g.neighbors(v)).index(match[v])])
        for v in range(n)
        if match[v] > v and match[v] in g.neighbors(v)
    )
    assert coarse.ewgt.sum() // 2 == fine_total - internal


@given(
    n=st.integers(30, 150),
    extra=st.integers(20, 200),
    k=st.integers(2, 8),
    seed=st.integers(0, 99),
)
@settings(max_examples=20, deadline=None)
def test_kway_partition_is_complete_and_bounded(n, extra, k, seed):
    g = random_connected_graph(n, extra, seed)
    part = multilevel_kway(g, k, seed=seed)
    assert part.shape == (n,)
    assert part.min() >= 0 and part.max() <= k - 1
    # balance bound: within ub plus one maximal vertex of slack (an
    # indivisible heavy vertex can always force this much)
    avg = g.total_vwgt() / k
    assert imbalance(g, part, k) <= 1.1 + g.vwgt.max() / avg


@given(n=st.integers(30, 120), extra=st.integers(20, 150), seed=st.integers(0, 99))
@settings(max_examples=15, deadline=None)
def test_repartition_no_worse_balance_than_old(n, extra, seed):
    g = random_connected_graph(n, extra, seed)
    k = 4
    rng = np.random.default_rng(seed)
    old = rng.integers(0, k, size=n).astype(np.int64)
    new = repartition(g, k, old, seed=seed)
    assert new.min() >= 0 and new.max() <= k - 1
    assert imbalance(g, new, k) <= imbalance(g, old, k) + 1e-9


@given(n=st.integers(20, 80), extra=st.integers(10, 80), seed=st.integers(0, 99))
@settings(max_examples=15, deadline=None)
def test_edgecut_consistent_with_manual_count(n, extra, seed):
    g = random_connected_graph(n, extra, seed)
    part = multilevel_kway(g, 3, seed=seed)
    manual = 0
    for v in range(n):
        for u, w in zip(g.neighbors(v), g.edge_weights(v)):
            if u > v and part[u] != part[v]:
                manual += int(w)
    assert edgecut(g, part) == manual
