"""Spectral/inertial baselines and superelement agglomeration."""

import numpy as np
import pytest

from repro.mesh import box_mesh
from repro.partition import (
    Graph,
    agglomerate,
    edgecut,
    expand_partition,
    imbalance,
    inertial_bisect,
    loads,
    multilevel_kway,
    spectral_bisect,
)


def grid_graph(nx, ny):
    pairs = []
    for i in range(nx):
        for j in range(ny):
            v = i * ny + j
            if i + 1 < nx:
                pairs.append((v, (i + 1) * ny + j))
            if j + 1 < ny:
                pairs.append((v, v + 1))
    return Graph.from_pairs(np.array(pairs), nx * ny)


class TestSpectral:
    def test_path_graph_splits_in_middle(self):
        g = Graph.from_pairs(
            np.column_stack([np.arange(9), np.arange(1, 10)]), 10
        )
        side = spectral_bisect(g)
        assert edgecut(g, side) == 1  # the Fiedler split of a path
        assert loads(g, side, 2).tolist() == [5, 5]

    def test_elongated_grid_cut_near_optimal(self):
        g = grid_graph(20, 4)  # optimal bisection cut = 4
        side = spectral_bisect(g)
        assert edgecut(g, side) <= 8
        ld = loads(g, side, 2)
        assert abs(ld[0] - ld[1]) <= 4

    def test_large_graph_uses_sparse_path(self):
        g = grid_graph(12, 12)  # 144 > 64: eigsh branch
        side = spectral_bisect(g, seed=3)
        assert set(side.tolist()) == {0, 1}
        assert edgecut(g, side) <= 30

    def test_trivial_sizes(self):
        assert spectral_bisect(Graph.from_pairs(np.empty((0, 2)), 1)).tolist() == [0]


class TestInertial:
    def test_splits_along_long_axis(self):
        pts = np.column_stack(
            [np.linspace(0, 10, 50), np.zeros(50), np.zeros(50)]
        )
        side = inertial_bisect(pts, np.ones(50))
        # all of side 0 left of all of side 1 along x
        assert pts[side == 0, 0].max() < pts[side == 1, 0].min()

    def test_weighted_median(self):
        pts = np.column_stack([np.arange(4.0), np.zeros(4), np.zeros(4)])
        w = np.array([10.0, 1, 1, 1])
        side = inertial_bisect(pts, w)
        # the heavy first point balances the other three
        assert side.tolist() == [0, 1, 1, 1]

    def test_shape_check(self):
        with pytest.raises(ValueError):
            inertial_bisect(np.zeros((3, 3)), np.ones(2))


class TestAgglomerate:
    def test_shrinks_to_target(self):
        m = box_mesh(4, 4, 4)
        g = Graph.from_pairs(m.dual_pairs, m.ne)
        sg, emap = agglomerate(g, target_n=64, seed=0)
        assert sg.n <= 64 * 2  # halving per round; lands near the target
        assert sg.n < g.n
        assert emap.shape == (g.n,)
        assert emap.max() == sg.n - 1
        assert sg.total_vwgt() == g.total_vwgt()

    def test_partition_via_superelements(self):
        """§4.1's remedy: partition the agglomerated graph, expand, and
        still get a balanced element partition."""
        m = box_mesh(4, 4, 4)
        g = Graph.from_pairs(m.dual_pairs, m.ne)
        sg, emap = agglomerate(g, target_n=80, seed=1)
        superpart = multilevel_kway(sg, 4, seed=0)
        part = expand_partition(emap, superpart)
        assert part.shape == (g.n,)
        # balance within superelement granularity
        assert imbalance(g, part, 4) <= 1.0 + 2.0 * sg.vwgt.max() / (
            g.total_vwgt() / 4
        )

    def test_target_validation(self):
        g = grid_graph(3, 3)
        with pytest.raises(ValueError):
            agglomerate(g, 0)
        with pytest.raises(ValueError):
            expand_partition(np.array([5]), np.zeros(2, dtype=np.int64))

    def test_edgeless_graph_stops(self):
        g = Graph.from_pairs(np.empty((0, 2)), 8)
        sg, emap = agglomerate(g, target_n=2)
        assert sg.n == 8  # nothing to contract
        assert np.array_equal(emap, np.arange(8))
