"""Heavy-edge matching and graph contraction."""

import numpy as np

from repro.partition import Graph, contract, heavy_edge_matching


def grid_graph(nx, ny):
    def vid(i, j):
        return i * ny + j

    pairs = []
    for i in range(nx):
        for j in range(ny):
            if i + 1 < nx:
                pairs.append((vid(i, j), vid(i + 1, j)))
            if j + 1 < ny:
                pairs.append((vid(i, j), vid(i, j + 1)))
    return Graph.from_pairs(np.array(pairs), nx * ny)


def test_matching_is_valid():
    g = grid_graph(5, 5)
    match = heavy_edge_matching(g, np.random.default_rng(0))
    for v in range(g.n):
        u = match[v]
        assert match[u] == v  # symmetric
        if u != v:
            assert u in g.neighbors(v)  # matched along an edge


class _FixedOrder:
    """rng stub visiting vertices in index order (for deterministic tests)."""

    def permutation(self, n):
        return np.arange(n)


def test_matching_prefers_heavy_edges():
    # triangle with one heavy edge: 0-1 weight 10, others weight 1.
    # With vertex 0 visited first, HEM must take the weight-10 edge.
    g = Graph.from_pairs(
        np.array([[0, 1], [1, 2], [0, 2]]), 3, ewgt=np.array([10, 1, 1])
    )
    match = heavy_edge_matching(g, _FixedOrder())
    assert match[0] == 1 and match[1] == 0
    assert match[2] == 2


def test_matching_respects_allowed_labels():
    g = grid_graph(4, 4)
    labels = np.arange(16) % 2
    match = heavy_edge_matching(g, np.random.default_rng(1), allowed=labels)
    for v in range(16):
        assert labels[match[v]] == labels[v]


def test_contract_conserves_weight_and_shrinks():
    g = grid_graph(6, 6)
    match = heavy_edge_matching(g, np.random.default_rng(2))
    coarse, cmap = contract(g, match)
    assert coarse.total_vwgt() == g.total_vwgt()
    assert coarse.n < g.n
    assert cmap.shape == (g.n,)
    assert cmap.max() == coarse.n - 1
    # matched pairs land on the same coarse vertex
    for v in range(g.n):
        assert cmap[v] == cmap[match[v]]


def test_contract_merges_edge_weights():
    # square 0-1-2-3: match (0,1) and (2,3); two cut edges merge into one
    # coarse edge of weight 2
    g = Graph.from_pairs(np.array([[0, 1], [1, 2], [2, 3], [3, 0]]), 4)
    match = np.array([1, 0, 3, 2])
    coarse, cmap = contract(g, match)
    assert coarse.n == 2
    assert coarse.nedges == 1
    assert coarse.edge_weights(0).tolist() == [2]
    assert coarse.vwgt.tolist() == [2, 2]
