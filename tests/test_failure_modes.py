"""Failure injection and degenerate-input behaviour across the stack.

Every module should fail loudly and specifically on invalid input — these
tests pin the error contracts so refactors can't silently turn validation
into garbage output.
"""

import numpy as np
import pytest

from repro.adapt import AdaptiveMesh, propagate_markings
from repro.core import CostModel, LoadBalancedAdaptiveSolver, similarity_matrix
from repro.mesh import TetMesh, box_mesh, single_tet
from repro.parallel import DeadlockError, MachineModel, VirtualMachine
from repro.solver import EulerSolver, conservative, uniform_flow


class TestDegenerateMeshes:
    def test_zero_volume_element_rejected(self):
        coords = np.array(
            [[0.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0], [3.0, 0, 0]]
        )  # collinear
        m = TetMesh.from_elems(coords, np.array([[0, 1, 2, 3]]), orient=False)
        with pytest.raises(AssertionError, match="volume"):
            m.check()

    def test_duplicate_vertices_in_element(self):
        m = TetMesh.from_elems(
            np.eye(4, 3), np.array([[0, 1, 2, 2]]), orient=False
        )
        with pytest.raises(AssertionError):
            m.check()

    def test_empty_mesh_is_consistent(self):
        m = TetMesh.from_elems(np.zeros((0, 3)), np.zeros((0, 4), dtype=int))
        assert m.ne == 0 and m.nv == 0 and m.nedges == 0
        assert m.total_volume() == 0.0


class TestSolverGuards:
    def test_negative_density_input_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            conservative(np.array([-1.0]), np.zeros((1, 3)), np.array([1.0]))

    def test_extreme_cfl_still_finite_briefly(self):
        m = box_mesh(2, 2, 2)
        s = EulerSolver(m, uniform_flow(m.coords))
        dt = s.stable_dt(cfl=0.5)
        assert np.isfinite(dt) and dt > 0

    def test_mismatched_solution_rejected_by_adaptor(self):
        m = single_tet()
        with pytest.raises(ValueError, match="solution"):
            AdaptiveMesh(m, solution=np.zeros((7, 5)))


class TestLoadBalancerGuards:
    def test_similarity_total_must_be_conserved(self):
        """similarity_matrix cannot lose weight even with extreme skew."""
        n = 1000
        rng = np.random.default_rng(0)
        old = np.zeros(n, dtype=np.int64)  # everything on one processor
        new = rng.integers(0, 16, n)
        w = rng.integers(1, 100, n)
        S = similarity_matrix(old, new, w, 16)
        assert S.sum() == w.sum()
        assert (S[1:] == 0).all()  # rows of empty processors stay zero

    def test_framework_rejects_empty_processor_request(self):
        with pytest.raises(ValueError):
            LoadBalancedAdaptiveSolver(box_mesh(1, 1, 1), nproc=-1)

    def test_cost_model_rejects_nonsense_metric(self):
        with pytest.raises(ValueError):
            CostModel(metric="")


class TestVirtualMachineFailures:
    def test_mutual_recv_deadlock_reported_with_ranks(self):
        def prog(comm):
            _ = yield from comm.recv(source=(comm.rank + 1) % comm.size)

        with pytest.raises(DeadlockError) as e:
            VirtualMachine(3).run(prog)
        assert "[0, 1, 2]" in str(e.value)

    def test_partial_deadlock_other_ranks_finish(self):
        """Ranks that can finish do; only the blocked ones are reported."""

        def prog(comm):
            if comm.rank == 0:
                _ = yield from comm.recv(source=1, tag=5)  # never sent
            yield from comm.compute(1)

        with pytest.raises(DeadlockError) as e:
            VirtualMachine(3).run(prog)
        assert "[0]" in str(e.value)

    def test_exception_in_rank_program_propagates(self):
        def prog(comm):
            yield from comm.compute(1)
            raise RuntimeError("rank exploded")

        with pytest.raises(RuntimeError, match="rank exploded"):
            VirtualMachine(2).run(prog)

    def test_machine_model_validation(self):
        m = MachineModel()
        with pytest.raises(ValueError):
            m.msg_time(-1)
        with pytest.raises(ValueError):
            m.work_time(-5)


class TestMarkingRobustness:
    def test_all_edges_marked_is_stable(self):
        m = box_mesh(2, 2, 2)
        r = propagate_markings(m, np.ones(m.nedges, dtype=bool))
        assert r.iterations == 1
        assert r.edge_marked.all()

    def test_alternating_mask_converges(self):
        """A pathological scattered mask converges (propagation is
        monotone and bounded by the full mask)."""
        m = box_mesh(3, 3, 3)
        mask = np.zeros(m.nedges, dtype=bool)
        mask[::7] = True
        r = propagate_markings(m, mask)
        assert r.iterations < 30
        re = propagate_markings(m, r.edge_marked)
        assert re.iterations == 1
