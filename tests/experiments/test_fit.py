"""The machine-constant fitter behind ``repro calibrate --fit``."""

import numpy as np
import pytest

from repro.experiments.fit import (
    FittedModel,
    fit_machine_model,
    format_fits,
    phase_cost_features,
)

#: Synthetic per-phase (n_setup, n_word, n_work) feature rows — well
#: conditioned on purpose, shaped like real phase costs (few messages,
#: many words, work scaling independently).
_FEATURES = {
    "mark": np.array([40.0, 1.0e4, 2.0e5]),
    "refine": np.array([12.0, 3.0e3, 9.0e5]),
    "migrate": np.array([25.0, 8.0e4, 1.0e5]),
    "gather": np.array([3.0, 6.0e4, 4.0e4]),
}


def _measure(theta):
    return {p: float(x @ theta) for p, x in _FEATURES.items()}


class TestFitMachineModel:
    def test_round_trip_recovers_exact_constants(self):
        theta = np.array([5.0e-5, 2.5e-7, 1.0e-6])  # the SP2 constants
        fit = fit_machine_model(_FEATURES, _measure(theta), backend="synth")
        np.testing.assert_allclose(
            [fit.t_setup, fit.t_word, fit.t_work], theta, rtol=1e-9
        )
        assert fit.residual_rms < 1e-12
        assert fit.backend == "synth"
        for p in _FEATURES:
            assert fit.fitted[p] == pytest.approx(fit.measured[p])

    def test_round_trip_survives_measurement_noise(self):
        theta = np.array([1.0e-3, 5.0e-6, 2.0e-6])
        rng = np.random.default_rng(7)
        noisy = {
            p: v * (1.0 + 1e-3 * rng.standard_normal())
            for p, v in _measure(theta).items()
        }
        fit = fit_machine_model(_FEATURES, noisy)
        np.testing.assert_allclose(
            [fit.t_setup, fit.t_word, fit.t_work], theta, rtol=0.05
        )
        assert fit.residual_rms < 1e-2 * max(noisy.values())

    def test_negative_coefficients_clamp_to_zero(self):
        # times explained by words + work alone: the unconstrained LSQ
        # can push t_setup negative to soak up noise; the active-set
        # sweep must return it as exactly zero instead
        theta = np.array([0.0, 4.0e-6, 3.0e-6])
        measured = _measure(theta)
        measured["mark"] *= 0.97  # bias the phase richest in messages
        fit = fit_machine_model(_FEATURES, measured)
        assert fit.t_setup == 0.0
        assert fit.t_word > 0.0 and fit.t_work > 0.0

    def test_fewer_than_three_phases_rejected(self):
        two = {p: _FEATURES[p] for p in ("mark", "refine")}
        with pytest.raises(ValueError, match="at least 3 phases"):
            fit_machine_model(two, _measure(np.ones(3)))

    def test_as_machine_exports_the_constants(self):
        theta = np.array([5.0e-5, 2.5e-7, 1.0e-6])
        m = fit_machine_model(_FEATURES, _measure(theta)).as_machine()
        assert m.t_setup == pytest.approx(5.0e-5)
        assert m.t_word == pytest.approx(2.5e-7)
        assert m.t_work == pytest.approx(1.0e-6)


class TestPhaseCostFeatures:
    def test_features_from_virtual_runs_close_the_loop(self):
        # features extracted from the real workload, measured times
        # *generated* from known constants -> the fit must return them
        features = phase_cost_features(3, 2)
        assert set(features) == {"mark", "refine", "migrate", "gather"}
        assert all(v.shape == (3,) for v in features.values())
        assert all((v >= 0).all() for v in features.values())
        theta = np.array([5.0e-5, 2.5e-7, 1.0e-6])
        synthetic = {p: float(x @ theta) for p, x in features.items()}
        fit = fit_machine_model(features, synthetic)
        # the virtual makespan is max-of-sums, so exact recovery holds
        # only while the critical path doesn't shift; resolution 3 keeps
        # one rank dominant and the loop closes tightly
        np.testing.assert_allclose(
            [fit.t_setup, fit.t_word, fit.t_work], theta, rtol=0.2
        )
        assert fit.residual_rms <= 0.05 * max(synthetic.values())

    def test_features_are_deterministic(self):
        a = phase_cost_features(3, 2)
        b = phase_cost_features(3, 2)
        for p in a:
            np.testing.assert_array_equal(a[p], b[p])


def test_format_fits_renders_reference_and_fit():
    fit = FittedModel(
        backend="multiprocessing", t_setup=1e-3, t_word=2e-6, t_work=3e-7,
        residual_rms=1.5e-3,
        measured={"mark": 0.01}, fitted={"mark": 0.011},
    )
    out = format_fits([fit])
    assert "SP2_1997 (ref)" in out
    assert "multiprocessing" in out
    assert "measured vs fitted per phase" in out
    assert "1.000e-03" in out
