"""Unit tests for the experiment harness (cases, closed forms, report
formatting) — the sweep-level behaviour is covered by the benches."""

import numpy as np
import pytest

from repro.experiments import (
    CASE_NAMES,
    REAL_FRACTIONS,
    make_case,
    max_improvement,
)
from repro.experiments.report import format_series, format_table1


def test_case_is_deterministic():
    a = make_case(resolution=4)
    b = make_case(resolution=4)
    assert np.array_equal(a.mesh.elems, b.mesh.elems)
    assert np.array_equal(a.elem_error, b.elem_error)
    for name in CASE_NAMES:
        assert np.array_equal(a.marking_mask(name), b.marking_mask(name))


def test_marking_masks_hit_their_fractions():
    case = make_case(resolution=5)
    for name, frac in REAL_FRACTIONS.items():
        got = case.marking_mask(name).mean()
        assert got == pytest.approx(frac, abs=0.02), name


def test_marking_masks_nest():
    """More aggressive strategies are supersets of milder ones (same
    element priority order, bigger budget)."""
    case = make_case(resolution=5)
    m1 = case.marking_mask("Real_1")
    m2 = case.marking_mask("Real_2")
    m3 = case.marking_mask("Real_3")
    assert np.all(m2[m1])
    assert np.all(m3[m2])


def test_unknown_strategy_rejected():
    case = make_case(resolution=4)
    with pytest.raises(KeyError, match="Real_9"):
        case.marking_mask("Real_9")


class TestMaxImprovement:
    def test_paper_saturation_values(self):
        # paper reports 5.91 / 2.42 / 1.52
        assert max_improvement(64, 1.353) == pytest.approx(5.91, abs=5e-3)
        assert max_improvement(64, 3.310) == pytest.approx(2.42, abs=5e-3)
        assert max_improvement(64, 5.279) == pytest.approx(1.52, abs=5e-3)

    def test_saturation_onset(self):
        g = 1.353
        p_sat = 7.0 / (g - 1.0)  # ≈ 19.8 -> paper says P >= 20
        assert max_improvement(19, g) < max_improvement(20, g) == pytest.approx(
            8.0 / g
        )

    def test_boundaries(self):
        assert max_improvement(16, 1.0) == 1.0
        assert max_improvement(16, 8.0) == 1.0
        with pytest.raises(ValueError):
            max_improvement(16, 9.0)
        with pytest.raises(ValueError):
            max_improvement(0, 2.0)

    def test_monotone_in_p_until_saturation(self):
        vals = [max_improvement(p, 3.31) for p in range(1, 65)]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))


def test_format_helpers():
    t = format_table1({"X": {"vertices": 1, "elements": 2, "edges": 3,
                             "bdy_faces": 4}})
    assert "X" in t and "Vertices" in t
    s = format_series({2: 1.5, 4: 3.25}, "5.2f")
    assert "P=2: 1.50" in s and "P=4: 3.25" in s
