"""The measured-vs-modelled calibration report over the exec-phase workload."""

import numpy as np

from repro.experiments import calibrate, format_calibration, run_exec_phase_workload
from repro.experiments.calibrate import PHASES
from repro.obs import Tracer


def test_workload_runs_all_phases_on_virtual():
    res = run_exec_phase_workload(3, 2, "virtual")
    assert [p.phase for p in res.phases] == list(PHASES)
    assert res.backend == "virtual"
    assert all(p.makespan > 0 for p in res.phases)
    assert all(p.host_wall >= 0 for p in res.phases)
    assert res.final_ne > 0
    assert res.edge_marked.any()


def test_calibrate_payloads_identical_across_backends():
    tracer = Tracer()
    report = calibrate(resolution=3, nproc=2, tracer=tracer)
    assert report.payloads_identical, report.mismatches
    assert [r.backend for r in report.measured] == ["multiprocessing", "shm"]
    ref = report.reference
    for run in report.measured:
        assert np.array_equal(run.edge_marked, ref.edge_marked)
        assert np.array_equal(run.refine_signature, ref.refine_signature)
        assert run.elements_moved == ref.elements_moved
        assert run.final_ne == ref.final_ne

    # the shm run's workload traffic went through the slab transport
    shm_run = report.measured[1]
    assert shm_run.transport["msgs_zero_copy"] + shm_run.transport[
        "msgs_pickled"
    ] > 0

    # obs layer carries measured wall + modelled makespan for both backends
    backends_seen = {
        s.labels_dict["backend"]
        for s in tracer.metrics.samples()
        if s.name == "repro.backend.makespan_seconds"
    }
    assert backends_seen == {"virtual", "multiprocessing", "shm"}
    assert any(
        s.name == "repro.backend.wall_seconds"
        and s.labels_dict["backend"] == "multiprocessing"
        for s in tracer.metrics.samples()
    )

    out = format_calibration(report)
    assert "backend 'multiprocessing' vs 'virtual'" in out
    assert "backend 'shm' vs 'virtual'" in out
    assert "pickle vs zero-copy (measured host wall" in out
    assert "payloads: identical across backends" in out
    for phase in PHASES:
        assert phase in out


def test_format_reports_mismatches():
    report = calibrate(resolution=3, nproc=2, backends=())
    object.__setattr__(report, "payloads_identical", False)
    object.__setattr__(report, "mismatches", ["x: marking fixpoint differs"])
    out = format_calibration(report)
    assert "payloads: MISMATCH" in out
    assert "marking fixpoint differs" in out
