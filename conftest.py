"""Root conftest.

``src/`` is put on ``sys.path`` by ``pythonpath = ["src"]`` in
``pyproject.toml`` — the single source of truth for test path setup
(scripts use ``scripts/_bootstrap.py``).  This file only needs to exist
so pytest anchors its rootdir here when invoked from subdirectories.
"""
