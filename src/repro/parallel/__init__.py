"""Virtual message-passing machine substrate.

The paper's system ran on an IBM SP2 under MPI.  This package provides the
deterministic stand-in used throughout the reproduction:

* :class:`~repro.parallel.machine.MachineModel` — LogGP-flavoured cost model
  (message startup, per-word transfer, per-unit compute), with the
  :data:`~repro.parallel.machine.SP2_1997` preset;
* :class:`~repro.parallel.runtime.VirtualMachine` — event-driven scheduler
  for SPMD generator rank programs with an mpi4py-like
  :class:`~repro.parallel.simcomm.Comm` API;
* :class:`~repro.parallel.ledger.CostLedger` — bulk-synchronous cost
  accounting for NumPy-vectorized partition-wise phases.
"""

from .ledger import CostLedger
from .machine import IDEAL, SP2_1997, MachineModel, word_count
from .runtime import (
    ANY,
    DeadlockError,
    RunResult,
    TraceEvent,
    VirtualMachine,
    per_rank,
)
from .rma import RmaWindow
from .simcomm import Comm, Request, SubComm
from .backends import (
    available_backends,
    create_communicator,
    register_backend,
)

__all__ = [
    "ANY",
    "Comm",
    "Request",
    "RmaWindow",
    "SubComm",
    "CostLedger",
    "DeadlockError",
    "IDEAL",
    "MachineModel",
    "RunResult",
    "TraceEvent",
    "SP2_1997",
    "VirtualMachine",
    "available_backends",
    "create_communicator",
    "per_rank",
    "register_backend",
    "word_count",
]
