"""mpi4py-flavoured communicator for rank programs on the virtual machine.

All methods are generator functions: rank programs invoke them with
``yield from``, e.g.::

    def program(comm):
        data = yield from comm.bcast({"n": 10}, root=0)
        part = yield from comm.scatter(chunks if comm.rank == 0 else None, root=0)
        total = yield from comm.allreduce(len(part))
        return total

Collectives are implemented *on top of* point-to-point sends/receives using
the standard tree/dissemination algorithms, so their virtual cost scales
with :math:`\\log P` (or :math:`P` for the personalised collectives) exactly
as on a real message-passing machine.  Nonblocking operations return
:class:`Request` handles; :meth:`Comm.split` builds MPI-style
sub-communicators with isolated tag spaces.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from .machine import MachineModel, word_count
from .runtime import ANY, ElapseOp, ProbeOp, RecvOp, SendOp, WorkOp

__all__ = ["Comm", "Request", "SubComm", "ANY"]

# Tag space: user tags must stay below _TAG_BASE; collectives use offsets
# above it so user traffic can never be captured by a collective.
_TAG_BASE = 1 << 20
_TAG_BARRIER = _TAG_BASE + 1
_TAG_BCAST = _TAG_BASE + 2
_TAG_GATHER = _TAG_BASE + 3
_TAG_SCATTER = _TAG_BASE + 4
_TAG_REDUCE = _TAG_BASE + 5
_TAG_ALLGATHER = _TAG_BASE + 6
_TAG_ALLTOALL = _TAG_BASE + 7
_TAG_SCAN = _TAG_BASE + 8
# sub-communicator traffic: each split gets a deterministic block of tags
# above this base (user tags < _SUB_TAG_SPAN, collectives remapped after).
# Blocks are indexed by folding the communicator's split-id path through
# the Cantor pairing (see SubComm._map_tag), so nested splits can never
# land inside a sibling split's block.
_TAG_SUB_BASE = _TAG_BASE + 4096
_SUB_TAG_SPAN = 1024
_SUB_BLOCK = 2 * _SUB_TAG_SPAN


def _cantor(a: int, b: int) -> int:
    """Cantor pairing: injective ``(a, b) -> n`` over the naturals."""
    return (a + b) * (a + b + 1) // 2 + b


class Request:
    """Handle for a nonblocking operation.

    ``isend`` completes eagerly in the buffered-postal model, so its
    request is born complete; an ``irecv`` request resolves when waited
    (blocking) or successfully tested (non-blocking probe).
    """

    def __init__(self, comm: "Comm | None" = None,
                 source: int = ANY, tag: int = ANY, value=None, done=False):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._value = value
        self._done = done

    @property
    def completed(self) -> bool:
        return self._done

    def wait(self):
        """Block until complete; returns the payload (None for sends)."""
        if self._done:
            return self._value
        payload, _s, _t = yield self._comm._recv_op(self._source, self._tag)
        self._value = payload
        self._done = True
        return payload

    def test(self):
        """Non-blocking completion check; returns (done, payload)."""
        if self._done:
            return True, self._value
        matched, result = yield self._comm._probe_op(self._source, self._tag)
        if matched:
            payload, _s, _t = result
            self._value = payload
            self._done = True
            return True, payload
        return False, None


class Comm:
    """Communicator bound to one rank of a :class:`VirtualMachine` run."""

    def __init__(self, rank: int, size: int, machine: MachineModel):
        self.rank = rank
        self.size = size
        self.machine = machine
        self._next_split_id = 0

    # --- primitive layer (overridden by SubComm for rank/tag translation) ---

    def _send_op(self, dest: int, tag: int, obj: Any, nwords: int) -> SendOp:
        """The send as a plain op (already in the machine's rank/tag space).

        Internal call sites ``yield self._send_op(...)`` directly, so a
        (possibly nested) SubComm translation costs function calls rather
        than a stack of delegating generator frames per message.
        """
        return SendOp(dest, tag, obj, nwords)

    def _recv_op(self, source: int, tag: int) -> RecvOp:
        """The receive as a plain op (machine rank/tag space).

        Yielding it resolves to ``(payload, source, tag)`` with the source
        in *machine* rank space — call sites that need the local source
        must run it through :meth:`_local_source`.  Most internal sites
        discard the source entirely and just ``yield self._recv_op(...)``.
        """
        return RecvOp(source, tag)

    def _probe_op(self, source: int, tag: int) -> ProbeOp:
        """The probe as a plain op (machine rank/tag space); resolves to
        ``(matched, (payload, machine_source, machine_tag) | None)``."""
        return ProbeOp(source, tag)

    def _local_source(self, src: int) -> int:
        """Translate a machine-space source rank into this communicator's
        rank space (identity here; SubComm folds back through its parent)."""
        return src

    def _send(self, dest: int, tag: int, obj: Any, nwords: int):
        yield self._send_op(dest, tag, obj, nwords)

    def _recv(self, source: int, tag: int):
        """Returns (payload, source, tag) in this communicator's rank space."""
        return (yield self._recv_op(source, tag))

    def _probe(self, source: int, tag: int):
        return (yield self._probe_op(source, tag))

    # --- local time -------------------------------------------------------

    def compute(self, units: float):
        """Charge ``units`` of local computation to this rank's clock."""
        yield WorkOp(units)

    def elapse(self, seconds: float):
        """Advance this rank's clock by a raw number of seconds."""
        yield ElapseOp(seconds)

    # --- point to point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0, nwords: int | None = None):
        """Buffered send; completes after the message is on the wire."""
        self._check_tag(tag)
        yield self._send_op(
            dest, tag, obj, word_count(obj) if nwords is None else nwords
        )

    def recv(self, source: int = ANY, tag: int = ANY):
        """Blocking receive; returns the matching payload."""
        payload, _src, _tag = yield self._recv_op(source, tag)
        return payload

    def recv_status(self, source: int = ANY, tag: int = ANY):
        """Blocking receive returning ``(payload, source, tag)``."""
        return (yield from self._recv(source, tag))

    def isend(self, obj: Any, dest: int, tag: int = 0, nwords: int | None = None):
        """Nonblocking send; completes eagerly (buffered postal model)."""
        self._check_tag(tag)
        yield self._send_op(
            dest, tag, obj, word_count(obj) if nwords is None else nwords
        )
        return Request(done=True)

    def irecv(self, source: int = ANY, tag: int = ANY):
        """Nonblocking receive; resolve via ``req.wait()`` / ``req.test()``."""
        if False:  # pragma: no cover — marks this as a generator function
            yield
        return Request(self, source, tag)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int = ANY,
        sendtag: int = 0,
        recvtag: int = ANY,
        nwords: int | None = None,
    ):
        """Combined send+receive (deadlock-free under buffered sends)."""
        yield from self.send(obj, dest, tag=sendtag, nwords=nwords)
        return (yield from self.recv(source, recvtag))

    def _check_tag(self, tag: int) -> None:
        if not 0 <= tag < _TAG_BASE:
            raise ValueError(f"user tags must be in [0, {_TAG_BASE}), got {tag}")

    # --- collectives --------------------------------------------------------

    def barrier(self):
        """Dissemination barrier: ceil(log2 P) rounds of pairwise sync."""
        k = 1
        while k < self.size:
            dest = (self.rank + k) % self.size
            src = (self.rank - k) % self.size
            yield self._send_op(dest, _TAG_BARRIER, None, 0)
            yield self._recv_op(src, _TAG_BARRIER)
            k *= 2

    def bcast(self, obj: Any, root: int = 0):
        """Binomial-tree broadcast; returns the root's object on every rank.

        Standard MPICH schedule over virtual ranks ``vrank = (rank-root) % P``:
        each non-root receives from the rank that differs in its lowest set
        bit, then forwards to ranks obtained by setting each lower bit.
        """
        vrank = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if vrank & mask:
                parent = ((vrank - mask) + root) % self.size
                obj, _s, _t = yield self._recv_op(parent, _TAG_BCAST)
                break
            mask *= 2
        mask //= 2
        while mask > 0:
            child = vrank + mask
            if child < self.size:
                yield self._send_op(
                    (child + root) % self.size, _TAG_BCAST, obj, word_count(obj)
                )
            mask //= 2
        return obj

    def gather(self, obj: Any, root: int = 0):
        """Gather one object per rank to ``root`` (list there, None elsewhere)."""
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                payload, src, _t = yield self._recv_op(ANY, _TAG_GATHER)
                out[self._local_source(src)] = payload
            return out
        yield self._send_op(root, _TAG_GATHER, obj, word_count(obj))
        return None

    def scatter(self, objs: list | None, root: int = 0):
        """Scatter ``objs[r]`` from root to each rank ``r``."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"root must pass a list of length {self.size}, got "
                    f"{None if objs is None else len(objs)}"
                )
            for dst in range(self.size):
                if dst != root:
                    yield self._send_op(
                        dst, _TAG_SCATTER, objs[dst], word_count(objs[dst])
                    )
            return objs[root]
        payload, _s, _t = yield self._recv_op(root, _TAG_SCATTER)
        return payload

    def reduce(self, obj: Any, op: Callable = operator.add, root: int = 0):
        """Binomial-tree reduction to ``root``; result there, None elsewhere.

        ``op`` must be associative; the combine order is *rank* order
        (``x_0 ⊕ x_1 ⊕ … ⊕ x_{P-1}``) for every root, so runs are
        deterministic and root-independent even for non-commutative
        ``op``.  The tree is always rooted at rank 0 (whose binomial
        schedule combines contiguous rank blocks left to right); for
        ``root != 0`` the result travels one extra hop to ``root``.
        """
        acc = obj
        mask = 1
        while mask < self.size:
            if self.rank & mask:
                parent = self.rank & ~mask
                yield self._send_op(parent, _TAG_REDUCE, acc, word_count(acc))
                break
            child = self.rank | mask
            if child < self.size:
                payload, _s, _t = yield self._recv_op(child, _TAG_REDUCE)
                acc = op(acc, payload)
            mask *= 2
        if root != 0:
            if self.rank == 0:
                yield self._send_op(root, _TAG_REDUCE, acc, word_count(acc))
            elif self.rank == root:
                acc, _s, _t = yield self._recv_op(0, _TAG_REDUCE)
        return acc if self.rank == root else None

    def allreduce(self, obj: Any, op: Callable = operator.add):
        """Reduction whose result is returned on every rank.

        Identical op schedule to ``reduce(root=0)`` followed by
        ``bcast(root=0)``, fused into one generator frame: an allreduce
        per propagation round is the exec phase's convergence check, and
        at 10k+ virtual ranks the two delegate frames (creation plus a
        ``yield from`` hop per op) are pure scheduler overhead.
        """
        rank = self.rank
        size = self.size
        # reduce to rank 0, combining in rank order (see ``reduce``)
        acc = obj
        mask = 1
        while mask < size:
            if rank & mask:
                yield self._send_op(
                    rank & ~mask, _TAG_REDUCE, acc, word_count(acc)
                )
                break
            child = rank | mask
            if child < size:
                payload, _s, _t = yield self._recv_op(child, _TAG_REDUCE)
                acc = op(acc, payload)
            mask *= 2
        # binomial broadcast from rank 0 (vrank == rank; see ``bcast``)
        mask = 1
        while mask < size:
            if rank & mask:
                acc, _s, _t = yield self._recv_op(rank - mask, _TAG_BCAST)
                break
            mask *= 2
        mask //= 2
        while mask > 0:
            child = rank + mask
            if child < size:
                yield self._send_op(child, _TAG_BCAST, acc, word_count(acc))
            mask //= 2
        return acc

    def allgather(self, obj: Any):
        """Gather one object per rank, result list returned on every rank."""
        gathered = yield from self.gather(obj, root=0)
        return (yield from self.bcast(gathered, root=0))

    def alltoall(self, objs: list):
        """Personalised all-to-all: send ``objs[d]`` to rank ``d``.

        Returns the list of objects received, indexed by source rank.
        Pairwise-exchange schedule: at step ``k`` rank ``r`` sends to
        ``(r+k) % P`` and receives from ``(r-k) % P``.
        """
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs {self.size} entries, got {len(objs)}")
        out: list[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        for k in range(1, self.size):
            dest = (self.rank + k) % self.size
            src = (self.rank - k) % self.size
            yield self._send_op(
                dest, _TAG_ALLTOALL, objs[dest], word_count(objs[dest])
            )
            # the receive names its source, so the local index is just src
            payload, _got, _t = yield self._recv_op(src, _TAG_ALLTOALL)
            out[src] = payload
        return out

    def scan(self, obj: Any, op: Callable = operator.add):
        """Inclusive prefix reduction: rank r gets op(obj_0, ..., obj_r).

        Distance-doubling (Hillis–Steele) schedule: ceil(log2 P) rounds.
        ``op`` must be associative; the combine order is rank order.
        """
        acc = obj
        k = 1
        while k < self.size:
            if self.rank + k < self.size:
                yield self._send_op(self.rank + k, _TAG_SCAN, acc, word_count(acc))
            if self.rank - k >= 0:
                payload, _s, _t = yield self._recv_op(self.rank - k, _TAG_SCAN)
                acc = op(payload, acc)
            k *= 2
        return acc

    def exscan(self, obj: Any, op: Callable = operator.add):
        """Exclusive prefix reduction: rank r gets op(obj_0, ..., obj_{r-1});
        rank 0 gets None."""
        result = yield from self.scan((None, obj), _PairOp(op))
        return result[0]

    def reduce_scatter(self, objs: list, op: Callable = operator.add):
        """Reduce ``objs[i]`` elementwise across ranks; rank i gets block i."""
        if len(objs) != self.size:
            raise ValueError(
                f"reduce_scatter needs {self.size} entries, got {len(objs)}"
            )
        gathered = yield from self.alltoall(objs)
        acc = gathered[0]
        for x in gathered[1:]:
            acc = op(acc, x)
        return acc

    # --- communicator splitting ---------------------------------------------

    def split(self, color: int, key: int = 0):
        """Partition ranks into sub-communicators by ``color``
        (MPI_Comm_split semantics).

        Members of the same color receive a :class:`SubComm` whose ranks
        are ordered by ``(key, parent rank)``.  The membership exchange is
        an allgather; the split id (used for tag-space isolation) advances
        identically on every rank because split is collective.
        """
        me = (int(color), int(key), self.rank)
        members = yield from self.allgather(me)
        mine = sorted((k, r) for c, k, r in members if c == color)
        parent_ranks = [r for _k, r in mine]
        split_id = self._next_split_id
        self._next_split_id += 1
        return SubComm(self, parent_ranks, parent_ranks.index(self.rank), split_id)


class _PairOp:
    """Carry (exclusive, inclusive) prefixes through an inclusive scan.

    Combining left block (E1, I1) with right block (E2, I2): the overall
    rightmost element's exclusive prefix is I1 ⊕ E2 (just I1 when the right
    block is a single element, encoded E2 = None), and the inclusive prefix
    is I1 ⊕ I2.
    """

    def __init__(self, op: Callable):
        self.op = op

    def __call__(self, left, right):
        e1, i1 = left
        e2, i2 = right
        exclusive = i1 if e2 is None else self.op(i1, e2)
        return (exclusive, self.op(i1, i2))


class SubComm(Comm):
    """Sub-communicator produced by :meth:`Comm.split`.

    Delegates to the parent communicator with rank translation and a
    private tag block, so two sub-communicators (or a sub-communicator and
    its parent) can never intercept each other's traffic.  User tags must
    stay below 1024 inside a SubComm; ``recv`` with ``tag=ANY`` is not
    supported (the tag block cannot be expressed as a wildcard).
    """

    def __init__(self, parent: Comm, parent_ranks: list[int], rank: int,
                 split_id: int):
        super().__init__(rank, len(parent_ranks), parent.machine)
        self.parent = parent
        self.parent_ranks = list(parent_ranks)
        self._to_local = {g: l for l, g in enumerate(parent_ranks)}
        self._split_id = split_id
        self._tag_base = _TAG_SUB_BASE + _cantor(split_id, 0) * _SUB_BLOCK

    def _map_tag(self, tag: int) -> int:
        """Translate a tag into the parent communicator's tag space.

        The block index of this communicator's own traffic is
        ``cantor(split_id, 0)``; traffic arriving from a *nested*
        sub-communicator (already mapped into some block ``b`` relative to
        this communicator) is re-blocked to ``cantor(split_id, b + 1)``.
        Folding the pairing along the split path keeps every communicator's
        final block distinct unless the communicators share the whole path
        — and same-path communicators are sibling colors of the same
        collective split calls, whose rank sets are disjoint, so their
        (identically tagged) traffic can never cross-match.  Offsets within
        a block (user tags below, collective tags above ``_SUB_TAG_SPAN``)
        are preserved at every level.
        """
        if tag == ANY:
            raise ValueError("tag=ANY is not supported inside a SubComm")
        if tag >= _TAG_SUB_BASE:  # nested sub-communicator traffic
            block, off = divmod(tag - _TAG_SUB_BASE, _SUB_BLOCK)
            return (
                _TAG_SUB_BASE
                + _cantor(self._split_id, block + 1) * _SUB_BLOCK
                + off
            )
        if tag >= _TAG_BASE:  # this communicator's own collective tags
            off = tag - _TAG_BASE
            assert off < _SUB_TAG_SPAN, f"collective tag overflow: {tag}"
            return self._tag_base + _SUB_TAG_SPAN + off
        if not 0 <= tag < _SUB_TAG_SPAN:
            raise ValueError(
                f"SubComm user tags must be in [0, {_SUB_TAG_SPAN}), got {tag}"
            )
        return self._tag_base + tag

    def _check_tag(self, tag: int) -> None:
        if not 0 <= tag < _SUB_TAG_SPAN:
            raise ValueError(
                f"SubComm user tags must be in [0, {_SUB_TAG_SPAN}), got {tag}"
            )

    def _send_op(self, dest: int, tag: int, obj: Any, nwords: int) -> SendOp:
        return self.parent._send_op(
            self.parent_ranks[dest], self._map_tag(tag), obj, nwords
        )

    def _recv_op(self, source: int, tag: int) -> RecvOp:
        psrc = ANY if source == ANY else self.parent_ranks[source]
        return self.parent._recv_op(psrc, self._map_tag(tag))

    def _probe_op(self, source: int, tag: int) -> ProbeOp:
        psrc = ANY if source == ANY else self.parent_ranks[source]
        return self.parent._probe_op(psrc, self._map_tag(tag))

    def _local_source(self, src: int) -> int:
        return self._to_local[self.parent._local_source(src)]

    def _recv(self, source: int, tag: int):
        payload, src, _t = yield self._recv_op(source, tag)
        return payload, self._local_source(src), tag

    def _probe(self, source: int, tag: int):
        matched, result = yield self._probe_op(source, tag)
        if matched:
            payload, src, _t = result
            return True, (payload, self._local_source(src), tag)
        return False, None
