"""Deterministic event-driven runtime for SPMD rank programs.

A *rank program* is a generator function ``program(comm, ...)`` that yields
communication/computation operations (usually indirectly, through
``yield from comm.<op>(...)``).  The :class:`VirtualMachine` scheduler
advances per-rank virtual clocks under a :class:`~repro.parallel.machine.MachineModel`,
matches sends with receives, and reports the makespan and traffic of the run.

The model is a buffered postal model: ``send`` charges the sender the full
message time and completes immediately; ``recv`` blocks until a matching
message has arrived (arrival time = sender's clock when the send completed)
and charges the receiver a posting overhead.  Messages between a fixed
(source, dest, tag) triple are delivered in FIFO order, and scheduling
ties are broken by rank id, so runs are fully deterministic.

Two scheduler implementations produce bit-identical results (see
DESIGN.md §13): the optimized path dispatches ops through a type-keyed
table, batches same-timestamp ready ranks without re-heapifying per op,
and records the happens-before record into flat columns
(:class:`_VMRecord`), materializing :class:`~repro.obs.causal.CausalNode`
/ :class:`TraceEvent` objects lazily; the reference path
(``REPRO_REFERENCE_KERNELS=1``) steps one op per heap pop through an
``isinstance`` chain and allocates every record object eagerly.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from repro.kernels import reference_enabled

from .machine import MachineModel, SP2_1997, word_count

__all__ = ["VirtualMachine", "RunResult", "TraceEvent", "DeadlockError", "ANY"]

#: Wildcard for ``recv`` source/tag matching.
ANY = -1


class DeadlockError(RuntimeError):
    """Raised when no rank can make progress but some are still blocked.

    The message lists, per blocked rank, the pending ``recv(source, tag)``
    and a summary of the unmatched messages sitting in its mailbox; the
    same data is available programmatically as ``blocked`` —
    a list of ``(rank, (source, tag), [(source, tag, count), ...])``.

    When the run was traced (``trace=True`` or a tracer), ``chains`` maps
    each blocked rank to the longest completed causal chain ending at its
    last completed operation (a list of
    :class:`~repro.obs.causal.CausalNode`), and the message renders each
    chain so the report shows what every rank was doing — and which
    senders it depended on — when progress stopped.
    """

    def __init__(self, message: str, blocked: list | None = None,
                 chains: dict | None = None):
        super().__init__(message)
        self.blocked = blocked or []
        self.chains = chains or {}


# --- operation descriptors yielded by rank programs ------------------------


# The op descriptors are plain __slots__ classes rather than dataclasses:
# the scheduler creates one per simulated operation, and a hand-written
# __init__ constructs ~4x faster than a frozen dataclass's (no per-field
# object.__setattr__).  They are value carriers only — nothing hashes or
# compares them — so losing generated __eq__/__hash__ costs nothing.


class SendOp:
    __slots__ = ("dest", "tag", "payload", "nwords")

    def __init__(self, dest: int, tag: int, payload: Any, nwords: int):
        self.dest = dest
        self.tag = tag
        self.payload = payload
        self.nwords = nwords

    def __repr__(self):  # pragma: no cover - debug aid
        return (f"SendOp(dest={self.dest}, tag={self.tag}, "
                f"payload={self.payload!r}, nwords={self.nwords})")


class RecvOp:
    __slots__ = ("source", "tag")

    def __init__(self, source: int, tag: int):
        self.source = source
        self.tag = tag

    def __repr__(self):  # pragma: no cover - debug aid
        return f"RecvOp(source={self.source}, tag={self.tag})"


class ProbeOp:
    """Non-blocking probe: resolve immediately with (matched, message)."""

    __slots__ = ("source", "tag")

    def __init__(self, source: int, tag: int):
        self.source = source
        self.tag = tag

    def __repr__(self):  # pragma: no cover - debug aid
        return f"ProbeOp(source={self.source}, tag={self.tag})"


class WorkOp:
    __slots__ = ("units",)

    def __init__(self, units: float):
        self.units = units

    def __repr__(self):  # pragma: no cover - debug aid
        return f"WorkOp(units={self.units})"


class ElapseOp:
    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        self.seconds = seconds

    def __repr__(self):  # pragma: no cover - debug aid
        return f"ElapseOp(seconds={self.seconds})"


@dataclass(slots=True)
class _Message:
    source: int
    tag: int
    payload: Any
    nwords: int
    arrival: float
    seq: int


class _IndexedMailbox:
    """Unmatched messages bucketed by ``(source, tag)``.

    Sends append in global ``seq`` order, so each bucket is a FIFO whose
    head is its minimum-``seq`` message; a sender's clock is monotone, so
    ``arrival`` is also non-decreasing along a bucket and the head alone
    decides an arrival-time filter for the whole bucket.  Matching a recv
    or probe therefore inspects only the heads of the (few) buckets a
    wildcard can reach — never the whole mailbox.
    """

    __slots__ = ("_by_key", "_count")

    def __init__(self):
        self._by_key: dict[tuple[int, int], deque[_Message]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, msg: _Message) -> None:
        key = (msg.source, msg.tag)
        bucket = self._by_key.get(key)
        if bucket is None:  # .get over .setdefault: no deque built per add
            self._by_key[key] = bucket = deque()
        bucket.append(msg)
        self._count += 1

    def _matching_keys(self, source: int, tag: int):
        if source != ANY and tag != ANY:
            key = (source, tag)
            return (key,) if key in self._by_key else ()
        if source == ANY and tag == ANY:
            return list(self._by_key)
        if source == ANY:
            return [k for k in self._by_key if k[1] == tag]
        return [k for k in self._by_key if k[0] == source]

    def has_match(self, source: int, tag: int) -> bool:
        return bool(self._matching_keys(source, tag))

    def pop_match(
        self, source: int, tag: int, max_arrival: float | None = None
    ) -> _Message | None:
        """Remove and return the oldest (min-seq) matching message."""
        if source != ANY and tag != ANY:
            # exact match: one dict probe, its bucket head is the answer
            # (bucket FIFO == seq order; head arrival bounds the bucket)
            key = (source, tag)
            bucket = self._by_key.get(key)
            if bucket is None:
                return None
            if max_arrival is not None and bucket[0].arrival > max_arrival:
                return None
            msg = bucket.popleft()
            if not bucket:
                del self._by_key[key]
            self._count -= 1
            return msg
        # wildcard: one pass over the bucket map, filtering keys in place
        # (no key-list materialization, no second dict lookup per key)
        best_key = None
        best_seq = 0
        for key, bucket in self._by_key.items():
            if source != ANY and key[0] != source:
                continue
            if tag != ANY and key[1] != tag:
                continue
            head = bucket[0]
            if max_arrival is not None and head.arrival > max_arrival:
                continue
            if best_key is None or head.seq < best_seq:
                best_key, best_seq = key, head.seq
        if best_key is None:
            return None
        bucket = self._by_key[best_key]
        msg = bucket.popleft()
        if not bucket:
            del self._by_key[best_key]
        self._count -= 1
        return msg

    def messages(self):
        for bucket in self._by_key.values():
            yield from bucket


class _ListMailbox:
    """Reference mailbox: one list, linear scan on every recv/probe."""

    __slots__ = ("_msgs",)

    def __init__(self):
        self._msgs: list[_Message] = []

    def __len__(self) -> int:
        return len(self._msgs)

    def add(self, msg: _Message) -> None:
        self._msgs.append(msg)

    def has_match(self, source: int, tag: int) -> bool:
        return any(
            (source in (ANY, m.source)) and (tag in (ANY, m.tag))
            for m in self._msgs
        )

    def pop_match(
        self, source: int, tag: int, max_arrival: float | None = None
    ) -> _Message | None:
        # removal is by index, never by equality: ``list.remove`` would
        # invoke the dataclass ``__eq__``, which both raises on ndarray
        # payloads and can remove a different-but-equal message
        best = None
        best_i = -1
        for i, m in enumerate(self._msgs):
            if (source not in (ANY, m.source)) or (tag not in (ANY, m.tag)):
                continue
            if max_arrival is not None and m.arrival > max_arrival:
                continue
            if best is None or m.seq < best.seq:
                best, best_i = m, i
        if best is not None:
            del self._msgs[best_i]
        return best

    def messages(self):
        return iter(self._msgs)


@dataclass
class _Rank:
    """Reference-path per-rank state (the optimized path keeps the same
    quantities in parallel per-rank arrays instead)."""

    rank: int
    gen: Iterator
    clock: float = 0.0
    blocked_on: RecvOp | None = None
    done: bool = False
    retval: Any = None
    send_value: Any = None  # value to inject at the next generator step
    mailbox: _IndexedMailbox | _ListMailbox | None = None
    words_sent: int = 0
    msgs_sent: int = 0
    words_recv: int = 0
    msgs_recv: int = 0
    data_msgs_sent: int = 0  # payload-bearing sends (nwords > 0)
    data_msgs_recv: int = 0
    waited: float = 0.0  # virtual seconds blocked waiting for arrivals


class _BlockedView:
    """Duck-typed stand-in for :class:`_Rank` in deadlock reporting, built
    from the optimized path's per-rank arrays."""

    __slots__ = ("rank", "blocked_on", "mailbox")

    def __init__(self, rank, blocked_on, mailbox):
        self.rank = rank
        self.blocked_on = blocked_on
        self.mailbox = mailbox


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler event, recorded when tracing is enabled."""

    time: float
    rank: int
    kind: str  # "send" | "recv" | "work" | "probe" | "elapse"
    detail: tuple


# --- columnar recording ------------------------------------------------------

#: Type-keyed dispatch table; the value doubles as the columnar kind code
#: (the index into :data:`_CODE_KINDS`).
_OPCODES: dict[type, int] = {
    WorkOp: 0, ElapseOp: 1, SendOp: 2, RecvOp: 3, ProbeOp: 4,
}
_CODE_KINDS = ("work", "elapse", "send", "recv", "probe")
_WORK, _ELAPSE, _SEND, _RECV, _PROBE = range(5)

# The dispatch key also lives on the classes themselves: in the hot loop a
# slot-class attribute load beats a dict probe, and subclasses inherit it,
# skipping the isinstance slow path entirely.
WorkOp._code = _WORK
ElapseOp._code = _ELAPSE
SendOp._code = _SEND
RecvOp._code = _RECV
ProbeOp._code = _PROBE


class _VMRecord:
    """Columnar happens-before record of one VM run.

    The optimized scheduler appends every operation into flat typed
    columns instead of allocating a ``CausalNode`` + ``TraceEvent`` pair
    per op; the object views are materialized lazily (and memoized) only
    when :mod:`repro.obs.causal`, the exporters, or ``RunResult.nodes`` /
    ``.msgs`` / ``.trace`` ask for them.

    Layout (one row per node / message, flat Python lists — a single
    ``list.extend`` per row is ~6x cheaper than a typed ``array`` extend,
    and the end-of-run accounting converts each column to numpy once):

    * ``nd`` (stride 6) — kind code, rank, msg id (``-1`` none),
      ``t_start``, ``t_end``, ``wait``
    * ``ms_i`` (stride 6) — src, dst, tag, nwords, send node,
      recv node (``-1`` unconsumed)
    * ``aux`` — sparse ``{node id: op detail}`` for work units, elapse
      seconds, and probe ``(source, tag)`` arguments, preserving the
      exact objects the rank program yielded
    """

    __slots__ = ("nd", "ms_i", "aux", "run", "_nodes", "_msgs", "_events")

    def __init__(self):
        self.nd: list = []
        self.ms_i: list = []
        self.aux: dict[int, Any] = {}
        self.run = -1  # assigned at end of run, like eager CausalNodes
        self._nodes = None
        self._msgs = None
        self._events = None

    @property
    def nnodes(self) -> int:
        return len(self.nd) // 6

    @property
    def nmsgs(self) -> int:
        return len(self.ms_i) // 6

    def causal_nodes(self) -> list:
        """Materialize (and memoize) the ``CausalNode`` view."""
        if self._nodes is None:
            from repro.obs.causal import CausalNode

            nd, run = self.nd, self.run
            kinds = _CODE_KINDS
            out = []
            ap = out.append
            for i in range(len(nd) // 6):
                j = 6 * i
                mid = int(nd[j + 2])
                ap(CausalNode(run, i, int(nd[j + 1]), kinds[int(nd[j])],
                              nd[j + 3], nd[j + 4], nd[j + 5],
                              None if mid < 0 else mid))
            self._nodes = out
        return self._nodes

    def causal_msgs(self) -> list:
        """Materialize (and memoize) the ``CausalMsg`` view."""
        if self._msgs is None:
            from repro.obs.causal import CausalMsg

            ms_i, run = self.ms_i, self.run
            out = []
            ap = out.append
            for i in range(len(ms_i) // 6):
                j = 6 * i
                rn = ms_i[j + 5]
                ap(CausalMsg(run, i, ms_i[j], ms_i[j + 1], ms_i[j + 2],
                             ms_i[j + 3], ms_i[j + 4],
                             None if rn < 0 else rn))
            self._msgs = out
        return self._msgs

    def trace_events(self) -> list[TraceEvent]:
        """Materialize (and memoize) the ``TraceEvent`` view."""
        if self._events is None:
            nd, ms_i, aux = self.nd, self.ms_i, self.aux
            out = []
            ap = out.append
            for i in range(len(nd) // 6):
                j = 6 * i
                code = int(nd[j])
                mid = int(nd[j + 2])
                if code == _SEND:
                    k = 6 * mid
                    kind = "send"
                    detail = (ms_i[k + 1], ms_i[k + 2], ms_i[k + 3])
                elif code == _RECV:
                    k = 6 * mid
                    kind = "recv"
                    detail = (ms_i[k], ms_i[k + 2], ms_i[k + 3])
                elif code == _PROBE:
                    kind = "probe"
                    detail = (*aux[i], mid >= 0)
                else:
                    kind = "work" if code == _WORK else "elapse"
                    detail = (aux[i],)
                ap(TraceEvent(nd[j + 4], int(nd[j + 1]), kind, detail))
            self._events = out
        return self._events


class RunResult:
    """Outcome of a :meth:`VirtualMachine.run` call.

    ``trace``, ``nodes``, and ``msgs`` are materialized lazily from the
    optimized scheduler's columnar record on first access; results built
    directly (reference path, real-execution backends) store the object
    lists eagerly.  Field meanings are unchanged from the original
    dataclass form.
    """

    __slots__ = (
        "returns", "clocks", "total_messages", "total_words",
        "words_sent_per_rank", "words_recv_per_rank", "msgs_sent_per_rank",
        "msgs_recv_per_rank", "busy_per_rank", "idle_per_rank",
        "wall_seconds", "backend", "transport",
        "_trace", "_nodes", "_msgs", "_record", "_want_trace",
    )

    def __init__(self, returns, clocks, total_messages, total_words,
                 words_sent_per_rank, trace=None, words_recv_per_rank=None,
                 msgs_sent_per_rank=None, msgs_recv_per_rank=None,
                 busy_per_rank=None, idle_per_rank=None, nodes=None,
                 msgs=None, wall_seconds=None, backend="virtual",
                 record=None, want_trace=False, transport=None):
        self.returns = returns
        self.clocks = clocks
        self.total_messages = total_messages
        self.total_words = total_words
        self.words_sent_per_rank = words_sent_per_rank
        self.words_recv_per_rank = (
            [] if words_recv_per_rank is None else words_recv_per_rank
        )
        self.msgs_sent_per_rank = (
            [] if msgs_sent_per_rank is None else msgs_sent_per_rank
        )
        self.msgs_recv_per_rank = (
            [] if msgs_recv_per_rank is None else msgs_recv_per_rank
        )
        self.busy_per_rank = [] if busy_per_rank is None else busy_per_rank
        self.idle_per_rank = [] if idle_per_rank is None else idle_per_rank
        #: Host wall-clock seconds the run took end to end (set by the
        #: communicator backends; None when the run was driven directly).
        self.wall_seconds = wall_seconds
        #: Name of the communicator backend that produced this result.
        self.backend = backend
        #: Aggregated wire-transport counters (``bytes_zero_copy``,
        #: ``bytes_pickled``, ``slab_reuse``, ...) when the backend ran a
        #: shared-memory transport; None otherwise.
        self.transport = transport
        self._trace = trace
        self._nodes = nodes
        self._msgs = msgs
        self._record = record
        self._want_trace = want_trace

    @property
    def trace(self) -> list[TraceEvent] | None:
        if self._trace is None and self._want_trace and self._record is not None:
            self._trace = self._record.trace_events()
        return self._trace

    @property
    def nodes(self) -> list | None:
        """Happens-before nodes (see :mod:`repro.obs.causal`); populated
        whenever the run was traced, None otherwise."""
        if self._nodes is None and self._record is not None:
            self._nodes = self._record.causal_nodes()
        return self._nodes

    @property
    def msgs(self) -> list | None:
        if self._msgs is None and self._record is not None:
            self._msgs = self._record.causal_msgs()
        return self._msgs

    @property
    def makespan(self) -> float:
        """Completion time of the slowest rank, in this run's clock:
        modelled virtual seconds on the ``virtual`` backend, measured
        wall seconds on the real-execution backends."""
        return max(self.clocks) if self.clocks else 0.0

    def __repr__(self):  # pragma: no cover - debug aid
        return (f"RunResult(nranks={len(self.clocks)}, "
                f"makespan={self.makespan!r}, "
                f"total_messages={self.total_messages}, "
                f"total_words={self.total_words}, backend={self.backend!r})")


class VirtualMachine:
    """A virtual message-passing machine with ``nranks`` processors.

    With ``trace=True`` the scheduler records every send, receive, probe,
    work, and elapse event with its virtual timestamp (useful for
    debugging rank programs and visualising communication schedules).
    With ``tracer`` set to a :class:`repro.obs.Tracer`, the same events
    are mirrored into it as point events named ``vm.<kind>`` (offset by
    the tracer's virtual clock at the start of the run) and the run's
    message/word totals are added to the ``vm.messages`` / ``vm.words``
    counters.  Per-rank traffic is additionally recorded as labelled
    metrics: ``repro.vm.messages_sent`` / ``messages_recv`` count
    payload-bearing messages only (zero-word synchronisation messages go
    to ``repro.vm.sync_messages`` so word and message totals stay
    comparable with the cost ledger), ``repro.vm.words_sent`` /
    ``words_recv`` count 8-byte words, and ``repro.vm.busy_seconds`` /
    ``idle_seconds`` split each rank's share of the makespan into working
    and blocked-waiting virtual time.
    """

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 trace: bool = False, tracer=None):
        if nranks < 1:
            raise ValueError(f"need at least one rank, got {nranks}")
        self.nranks = nranks
        self.machine = machine
        self.trace = trace
        self.tracer = tracer

    def run(self, program: Callable, *args, **kwargs) -> RunResult:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        ``program`` must be a generator function.  Per-rank arguments can be
        passed by giving a list/tuple of length ``nranks`` wrapped in
        :func:`per_rank`.
        """
        from .simcomm import Comm

        nranks = self.nranks
        for v in (*args, *kwargs.values()):
            if isinstance(v, per_rank) and len(v.values) != nranks:
                raise ValueError(
                    f"per_rank argument carries {len(v.values)} values "
                    f"but the machine has {nranks} ranks"
                )
        gens = []
        for r in range(nranks):
            comm = Comm(r, nranks, self.machine)
            a = [x.values[r] if isinstance(x, per_rank) else x for x in args]
            kw = {
                k: (v.values[r] if isinstance(v, per_rank) else v)
                for k, v in kwargs.items()
            }
            gen = program(comm, *a, **kw)
            if not hasattr(gen, "send"):
                raise TypeError(
                    "rank program must be a generator function "
                    f"(got {type(gen).__name__} from {program!r})"
                )
            gens.append(gen)
        if reference_enabled():
            return self._run_reference(gens)
        return self._run_fast(gens)

    # --- optimized scheduler ------------------------------------------------

    def _run_fast(self, gens: list) -> RunResult:
        """Batched, table-dispatched scheduler over per-rank arrays.

        Invariants shared with the reference path (and why the results
        are bit-identical):

        * every live, runnable rank has exactly one ``(clock, rank)``
          entry in the ready heap, so after executing an op the current
          rank may keep running while ``(clock[r], r) <= ready[0]`` —
          the exact tuple order a push-then-pop would have produced
          (delivering a message never makes the receiver's clock earlier
          than the sender's, so the batch never overtakes a rank it
          just unblocked);
        * all clock arithmetic is the same float expressions, in the
          same order, as the reference scheduler;
        * node id == append order, msg id == ``seq - 1``, and a consumed
          message's ``recv_node`` is the id of the recv/probe node that
          popped it — identical to the eager record.
        """
        machine = self.machine
        nranks = self.nranks
        t_setup = machine.t_setup
        t_word = machine.t_word
        t_work = machine.t_work

        rec = _VMRecord() if (self.trace or self.tracer is not None) else None
        if rec is not None:
            nd_ext = rec.nd.extend
            msi_ext = rec.ms_i.extend
            ms_i = rec.ms_i
            aux = rec.aux
            # accounting side-channel, so the end-of-run totals never
            # have to convert the full node table to float64 inside the
            # run: flat (rank, wait) pairs for the nonzero recv waits, in
            # node order (zero waits add exactly +0.0 to a non-negative
            # sum, so skipping them is bit-identical); the integer recv
            # counters need no channel at all — a message's consumer is
            # always its ``dst`` rank, already in ``ms_i``
            wt: list = []
            wt_ext = wt.extend
        n_nodes = 0
        n_msgs = 0

        clocks = [0.0] * nranks
        waited = [0.0] * nranks
        words_sent = [0] * nranks
        msgs_sent = [0] * nranks
        words_recv = [0] * nranks
        msgs_recv = [0] * nranks
        data_sent = [0] * nranks
        data_recv = [0] * nranks
        retvals: list[Any] = [None] * nranks
        done = [False] * nranks
        blocked: list[RecvOp | None] = [None] * nranks
        send_values: list[Any] = [None] * nranks
        mailboxes = [_IndexedMailbox() for _ in range(nranks)]
        steps = [g.send for g in gens]

        heappush = heapq.heappush
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        ready: list[tuple[float, int]] = [(0.0, r) for r in range(nranks)]
        heapq.heapify(ready)
        seq = 0

        # Cyclic GC off for the duration of the loop: the scheduler's own
        # allocations are acyclic (typed columns, tuples, short-lived
        # _Messages), but at 10k+ ranks the rank generators and mailboxes
        # make every full collection an O(heap) scan, and the growing
        # record retriggers them throughout the run.  Restored on every
        # exit path, including validation errors raised from the loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while ready:
                clock, r = heappop(ready)
                if done[r]:
                    continue
                c = clocks[r]
                if clock > c:
                    c = clock
                step = steps[r]
                sv = send_values[r]
                while True:
                    try:
                        op = step(sv)
                    except StopIteration as stop:
                        done[r] = True
                        retvals[r] = stop.value
                        clocks[r] = c
                        break
                    sv = None
                    try:
                        code = op._code
                    except AttributeError:
                        code = _resolve_opcode(op)
                        if code is None:
                            raise TypeError(
                                f"rank {r} yielded unknown op {op!r}"
                            ) from None
                    if code == _SEND:
                        dest = op.dest
                        if not 0 <= dest < nranks:
                            raise ValueError(
                                f"rank {r}: send to invalid rank {dest}"
                            )
                        nwords = op.nwords
                        if nwords < 0:
                            raise ValueError(f"negative message size: {nwords}")
                        t0 = c
                        c = c + (t_setup + t_word * nwords)
                        seq += 1
                        if rec is not None:
                            # msg id == seq - 1: both advance once per send
                            nd_ext((_SEND, r, n_msgs, t0, c, 0.0))
                            msi_ext((r, dest, op.tag, nwords, n_nodes, -1))
                            n_nodes += 1
                            n_msgs += 1
                        else:
                            words_sent[r] += nwords
                            msgs_sent[r] += 1
                            if nwords > 0:
                                data_sent[r] += 1
                        clocks[r] = c
                        tag = op.tag
                        bop = blocked[dest]
                        if bop is not None and (
                            bop.source == ANY or bop.source == r
                        ) and (bop.tag == ANY or bop.tag == tag):
                            # direct delivery to the blocked receiver: a
                            # rank blocks only when no matching message
                            # exists, and every later send checks the
                            # blocked op before posting, so while a rank
                            # is blocked its mailbox never holds a match.
                            # The message skips the mailbox entirely (no
                            # _Message is even constructed — add +
                            # pop_match would round-trip one for nothing).
                            # Inlined rather than a closure: a helper
                            # capturing the loop's state would turn its
                            # hottest locals into cell variables.
                            blocked[dest] = None
                            t0d = clocks[dest]
                            cd = t0d + t_setup
                            dwait = c - cd
                            if dwait > 0.0:
                                cd = c
                            else:
                                dwait = 0.0
                            clocks[dest] = cd
                            if rec is not None:
                                mid = seq - 1
                                ms_i[6 * mid + 5] = n_nodes
                                nd_ext((_RECV, dest, mid, t0d, cd, dwait))
                                if dwait != 0.0:
                                    wt_ext((dest, dwait))
                                n_nodes += 1
                            else:
                                waited[dest] += dwait
                                words_recv[dest] += nwords
                                msgs_recv[dest] += 1
                                if nwords > 0:
                                    data_recv[dest] += 1
                            send_values[dest] = (op.payload, r, tag)
                            heappush(ready, (cd, dest))
                        else:
                            # inlined _IndexedMailbox.add: one bound-method
                            # call per send is measurable at 10k+ ranks
                            box = mailboxes[dest]
                            key = (r, tag)
                            by_key = box._by_key
                            bucket = by_key.get(key)
                            if bucket is None:
                                by_key[key] = bucket = deque()
                            bucket.append(
                                _Message(r, tag, op.payload, nwords, c, seq)
                            )
                            box._count += 1
                    elif code == _RECV:
                        # inlined _IndexedMailbox.pop_match (recv never
                        # passes an arrival cap, so that filter drops out)
                        box = mailboxes[r]
                        best = None
                        if box._count:
                            src = op.source
                            rtag = op.tag
                            by_key = box._by_key
                            if src != ANY and rtag != ANY:
                                key = (src, rtag)
                                bucket = by_key.get(key)
                            else:
                                key = None
                                bseq = 0
                                for k, b in by_key.items():
                                    if src != ANY and k[0] != src:
                                        continue
                                    if rtag != ANY and k[1] != rtag:
                                        continue
                                    head = b[0]
                                    if key is None or head.seq < bseq:
                                        key, bseq = k, head.seq
                                bucket = by_key[key] if key is not None \
                                    else None
                            if bucket is not None:
                                best = bucket.popleft()
                                if not bucket:
                                    del by_key[key]
                                box._count -= 1
                        if best is None:
                            blocked[r] = op
                            send_values[r] = None
                            clocks[r] = c
                            break  # no heap entry: woken by a matching send
                        t0 = c
                        c = t0 + t_setup
                        arr = best.arrival
                        wait = arr - c
                        if wait > 0.0:
                            c = arr
                        else:
                            wait = 0.0
                        if rec is not None:
                            mid = best.seq - 1
                            ms_i[6 * mid + 5] = n_nodes
                            nd_ext((_RECV, r, mid, t0, c, wait))
                            if wait != 0.0:
                                wt_ext((r, wait))
                            n_nodes += 1
                        else:
                            waited[r] += wait
                            nw = best.nwords
                            words_recv[r] += nw
                            msgs_recv[r] += 1
                            if nw > 0:
                                data_recv[r] += 1
                        sv = (best.payload, best.source, best.tag)
                    elif code == _WORK:
                        units = op.units
                        if units < 0:
                            raise ValueError(f"negative work: {units}")
                        t0 = c
                        c = c + t_work * units
                        if rec is not None:
                            nd_ext((_WORK, r, -1, t0, c, 0.0))
                            aux[n_nodes] = units
                            n_nodes += 1
                    elif code == _PROBE:
                        t0 = c
                        msg = mailboxes[r].pop_match(op.source, op.tag, c)
                        # the mailbox check costs t_setup, match or not
                        c = c + t_setup
                        if msg is not None:
                            if rec is None:
                                nw = msg.nwords
                                words_recv[r] += nw
                                msgs_recv[r] += 1
                                if nw > 0:
                                    data_recv[r] += 1
                            sv = (True, (msg.payload, msg.source, msg.tag))
                        else:
                            sv = (False, None)
                        if rec is not None:
                            if msg is not None:
                                mid = msg.seq - 1
                                ms_i[6 * mid + 5] = n_nodes
                            else:
                                mid = -1
                            nd_ext((_PROBE, r, mid, t0, c, 0.0))
                            aux[n_nodes] = (op.source, op.tag)
                            n_nodes += 1
                    else:  # _ELAPSE
                        secs = op.seconds
                        if secs < 0:
                            raise ValueError(f"negative elapse: {secs}")
                        t0 = c
                        c = c + secs
                        if rec is not None:
                            nd_ext((_ELAPSE, r, -1, t0, c, 0.0))
                            aux[n_nodes] = secs
                            n_nodes += 1
                    # run-to-min batching: keep running this rank while it is
                    # still the minimum of the ready order (ties go to the
                    # lowest rank id, exactly as heap tuples would).  When it
                    # falls behind, a single heappushpop (one sift, where a
                    # push + outer-loop pop would sift twice) re-files this
                    # rank and hands us the new minimum in place.
                    if ready:
                        nt, nr = ready[0]
                        if c > nt or (c == nt and r > nr):
                            clocks[r] = c
                            send_values[r] = sv
                            clock, r = heappushpop(ready, (c, r))
                            if done[r]:
                                break  # stale entry: outer loop rescans
                            c = clocks[r]
                            if clock > c:
                                c = clock
                            step = steps[r]
                            sv = send_values[r]

        finally:
            if gc_was_enabled:
                gc.enable()

        stuck = [
            _BlockedView(d, blocked[d], mailboxes[d])
            for d in range(nranks) if not done[d]
        ]
        if stuck:
            self._raise_deadlock(
                stuck,
                rec.causal_nodes() if rec is not None else None,
                rec.causal_msgs() if rec is not None else None,
            )

        if rec is not None:
            # Vectorized accounting: when recording, the loop above skips
            # the per-op counter updates entirely and every total is
            # recovered here from the message table and the small ``wt``
            # side-channel, so the full node table is never converted to
            # float64 inside the run.
            # np.bincount adds its weights in element (= node) order, the
            # same order the reference path's per-rank ``+=`` sees, so
            # the float ``waited`` sums are bit-identical (the skipped
            # zero waits would each have added exactly +0.0).
            if wt:
                wt_a = np.asarray(wt, dtype=np.float64).reshape(-1, 2)
                waited = np.bincount(
                    wt_a[:, 0].astype(np.intp), weights=wt_a[:, 1],
                    minlength=nranks,
                ).tolist()
            if n_msgs:
                ms_a = np.asarray(rec.ms_i, dtype=np.int64).reshape(-1, 6)
                src = ms_a[:, 0]
                mnw = ms_a[:, 3]
                words_sent = np.bincount(
                    src, weights=mnw, minlength=nranks
                ).astype(np.int64).tolist()
                msgs_sent = np.bincount(src, minlength=nranks).tolist()
                data_sent = np.bincount(
                    src[mnw > 0], minlength=nranks
                ).tolist()
                # consumers: a consumed message (recv node assigned) was
                # received by its ``dst`` rank; these counters are integer
                # sums, so accumulation order is irrelevant
                rmask = ms_a[:, 5] >= 0
                rr = ms_a[:, 1][rmask]
                rnw = mnw[rmask]
                words_recv = np.bincount(
                    rr, weights=rnw, minlength=nranks
                ).astype(np.int64).tolist()
                msgs_recv = np.bincount(rr, minlength=nranks).tolist()
                data_recv = np.bincount(
                    rr[rnw > 0], minlength=nranks
                ).tolist()

        makespan = max(clocks)
        busy_a = np.asarray(clocks) - np.asarray(waited)
        busy = busy_a.tolist()
        idle = (makespan - busy_a).tolist()
        total_messages = sum(msgs_sent)
        total_words = sum(words_sent)

        tracer = self.tracer
        if rec is not None:
            rec.run = tracer.next_causal_run() if tracer is not None else 0
        if tracer is not None and rec is not None:
            base = tracer.virtual_now
            tracer.event(
                "vm.run", v_time=base, run=rec.run, base=base,
                makespan=makespan, nranks=nranks,
                cycle=tracer.cycle, nodes=n_nodes, msgs=n_msgs,
            )
            tracer.add_vm_chunk(rec, base)
            tracer.count("vm.messages", total_messages)
            tracer.count("vm.words", total_words)
            mpr = tracer.metric_per_rank
            mpr("repro.vm.messages_sent", data_sent)
            mpr("repro.vm.messages_recv", data_recv)
            mpr("repro.vm.sync_messages",
                [m - d for m, d in zip(msgs_sent, data_sent)])
            mpr("repro.vm.words_sent", words_sent)
            mpr("repro.vm.words_recv", words_recv)
            mpr("repro.vm.busy_seconds", busy)
            mpr("repro.vm.idle_seconds", idle)

        return RunResult(
            returns=retvals,
            clocks=clocks,
            total_messages=total_messages,
            total_words=total_words,
            words_sent_per_rank=words_sent,
            words_recv_per_rank=words_recv,
            msgs_sent_per_rank=msgs_sent,
            msgs_recv_per_rank=msgs_recv,
            busy_per_rank=busy,
            idle_per_rank=idle,
            record=rec,
            want_trace=self.trace,
        )

    # --- reference scheduler ------------------------------------------------

    def _run_reference(self, gens: list) -> RunResult:
        """One-op-per-heap-pop scheduler with eager object records."""
        from repro.obs.causal import CausalMsg, CausalNode

        ranks = [
            _Rank(r, gen, mailbox=_ListMailbox())
            for r, gen in enumerate(gens)
        ]
        ready: list[tuple[float, int]] = [(0.0, r) for r in range(self.nranks)]
        heapq.heapify(ready)
        seq = 0
        recording = self.trace or self.tracer is not None
        events: list[TraceEvent] | None = [] if recording else None
        nodes: list | None = None
        msgs_rec: list | None = None
        if recording:
            nodes, msgs_rec = [], []

        while ready:
            clock, r = heapq.heappop(ready)
            st = ranks[r]
            if st.done:
                continue
            st.clock = max(st.clock, clock)
            try:
                op = st.gen.send(st.send_value)
            except StopIteration as stop:
                st.done = True
                st.retval = stop.value
                continue
            st.send_value = None

            if isinstance(op, WorkOp):
                t0 = st.clock
                st.clock += self.machine.work_time(op.units)
                if events is not None:
                    events.append(TraceEvent(st.clock, r, "work", (op.units,)))
                    nodes.append(CausalNode(-1, len(nodes), r, "work",
                                            t0, st.clock))
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, ElapseOp):
                if op.seconds < 0:
                    raise ValueError(f"negative elapse: {op.seconds}")
                t0 = st.clock
                st.clock += op.seconds
                if events is not None:
                    events.append(
                        TraceEvent(st.clock, r, "elapse", (op.seconds,))
                    )
                    nodes.append(CausalNode(-1, len(nodes), r, "elapse",
                                            t0, st.clock))
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, SendOp):
                if not 0 <= op.dest < self.nranks:
                    raise ValueError(f"rank {r}: send to invalid rank {op.dest}")
                t0 = st.clock
                st.clock += self.machine.msg_time(op.nwords)
                st.words_sent += op.nwords
                st.msgs_sent += 1
                if op.nwords > 0:
                    st.data_msgs_sent += 1
                seq += 1
                if events is not None:
                    events.append(
                        TraceEvent(st.clock, r, "send", (op.dest, op.tag, op.nwords))
                    )
                    # msg id == seq - 1: both advance once per send
                    nodes.append(CausalNode(-1, len(nodes), r, "send",
                                            t0, st.clock, msg=len(msgs_rec)))
                    msgs_rec.append(
                        CausalMsg(-1, len(msgs_rec), r, op.dest, op.tag,
                                  op.nwords, send_node=len(nodes) - 1)
                    )
                msg = _Message(r, op.tag, op.payload, op.nwords, st.clock, seq)
                dst = ranks[op.dest]
                dst.mailbox.add(msg)
                if dst.blocked_on is not None and self._matches(dst.blocked_on, msg):
                    self._deliver(dst, ready, events, nodes, msgs_rec)
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, ProbeOp):
                t0 = st.clock
                msg = st.mailbox.pop_match(
                    op.source, op.tag, max_arrival=st.clock
                )
                # the mailbox check costs t_setup whether or not it matches
                st.clock += self.machine.t_setup
                if msg is not None:
                    st.words_recv += msg.nwords
                    st.msgs_recv += 1
                    if msg.nwords > 0:
                        st.data_msgs_recv += 1
                    st.send_value = (True, (msg.payload, msg.source, msg.tag))
                else:
                    st.send_value = (False, None)
                if events is not None:
                    events.append(
                        TraceEvent(st.clock, r, "probe",
                                   (op.source, op.tag, msg is not None))
                    )
                    mid = None if msg is None else msg.seq - 1
                    if mid is not None:
                        msgs_rec[mid].recv_node = len(nodes)
                    nodes.append(CausalNode(-1, len(nodes), r, "probe",
                                            t0, st.clock, msg=mid))
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, RecvOp):
                st.blocked_on = op
                if st.mailbox.has_match(op.source, op.tag):
                    self._deliver(st, ready, events, nodes, msgs_rec)
                # else: stays blocked until a matching send arrives
            else:
                raise TypeError(f"rank {r} yielded unknown op {op!r}")

        stuck = [s for s in ranks if not s.done]
        if stuck:
            self._raise_deadlock(stuck, nodes, msgs_rec)

        makespan = max((s.clock for s in ranks), default=0.0)
        busy = [s.clock - s.waited for s in ranks]
        idle = [makespan - b for b in busy]

        if nodes is not None:
            run_id = (
                self.tracer.next_causal_run() if self.tracer is not None else 0
            )
            for nd in nodes:
                nd.run = run_id
            for mg in msgs_rec:
                mg.run = run_id
        if self.tracer is not None and events is not None:
            base = self.tracer.virtual_now
            self.tracer.causal_nodes.extend(nodes)
            self.tracer.causal_msgs.extend(msgs_rec)
            self.tracer.event(
                "vm.run", v_time=base, run=run_id, base=base,
                makespan=makespan, nranks=self.nranks,
                cycle=self.tracer.cycle, nodes=len(nodes), msgs=len(msgs_rec),
            )
            for ev in events:
                self.tracer.event(
                    f"vm.{ev.kind}", v_time=base + ev.time, rank=ev.rank,
                    detail=list(ev.detail),
                )
            self.tracer.count("vm.messages", sum(s.msgs_sent for s in ranks))
            self.tracer.count("vm.words", sum(s.words_sent for s in ranks))
            for s in ranks:
                m = self.tracer.metric
                m("repro.vm.messages_sent", s.data_msgs_sent,
                  kind="counter", rank=s.rank)
                m("repro.vm.messages_recv", s.data_msgs_recv,
                  kind="counter", rank=s.rank)
                m("repro.vm.sync_messages", s.msgs_sent - s.data_msgs_sent,
                  kind="counter", rank=s.rank)
                m("repro.vm.words_sent", s.words_sent,
                  kind="counter", rank=s.rank)
                m("repro.vm.words_recv", s.words_recv,
                  kind="counter", rank=s.rank)
                m("repro.vm.busy_seconds", busy[s.rank],
                  kind="counter", rank=s.rank)
                m("repro.vm.idle_seconds", idle[s.rank],
                  kind="counter", rank=s.rank)

        return RunResult(
            returns=[s.retval for s in ranks],
            clocks=[s.clock for s in ranks],
            total_messages=sum(s.msgs_sent for s in ranks),
            total_words=sum(s.words_sent for s in ranks),
            words_sent_per_rank=[s.words_sent for s in ranks],
            trace=events if self.trace else None,
            words_recv_per_rank=[s.words_recv for s in ranks],
            msgs_sent_per_rank=[s.msgs_sent for s in ranks],
            msgs_recv_per_rank=[s.msgs_recv for s in ranks],
            busy_per_rank=busy,
            idle_per_rank=idle,
            nodes=nodes,
            msgs=msgs_rec,
        )

    # --- shared helpers -----------------------------------------------------

    def _raise_deadlock(self, stuck: list, nodes: list | None,
                        msgs_rec: list | None):
        message = (
            f"ranks {[s.rank for s in stuck]} are blocked on receives "
            "that never arrive:\n" + "\n".join(_blocked_line(s) for s in stuck)
        )
        chains = None
        if nodes is not None:
            chains = _deadlock_chains(stuck, nodes, msgs_rec)
            if chains:
                message += "\nlast completed causal chain per blocked rank:"
                for rank in sorted(chains):
                    message += f"\n  rank {rank}: {chains[rank][1]}"
        else:
            message += (
                "\n(run with trace=True or a tracer to see each rank's "
                "last completed causal chain)"
            )
        raise DeadlockError(
            message,
            blocked=[_blocked_record(s) for s in stuck],
            chains={r: c for r, (c, _) in (chains or {}).items()},
        )

    @staticmethod
    def _matches(op: RecvOp, msg: _Message) -> bool:
        return (op.source in (ANY, msg.source)) and (op.tag in (ANY, msg.tag))

    def _deliver(self, st: _Rank, ready: list, events: list | None = None,
                 nodes: list | None = None, msgs_rec: list | None = None) -> None:
        """Hand the oldest matching message to a rank blocked on a recv."""
        op = st.blocked_on
        assert op is not None
        best = st.mailbox.pop_match(op.source, op.tag)
        assert best is not None, "deliver called without a matching message"
        st.blocked_on = None
        t0 = st.clock
        wait = max(0.0, best.arrival - (st.clock + self.machine.t_setup))
        st.waited += wait
        st.clock = max(st.clock + self.machine.t_setup, best.arrival)
        st.words_recv += best.nwords
        st.msgs_recv += 1
        if best.nwords > 0:
            st.data_msgs_recv += 1
        if events is not None:
            events.append(
                TraceEvent(st.clock, st.rank, "recv",
                           (best.source, best.tag, best.nwords))
            )
        if nodes is not None:
            from repro.obs.causal import CausalNode

            mid = best.seq - 1
            msgs_rec[mid].recv_node = len(nodes)
            nodes.append(CausalNode(-1, len(nodes), st.rank, "recv",
                                    t0, st.clock, wait=wait, msg=mid))
        st.send_value = (best.payload, best.source, best.tag)
        heapq.heappush(ready, (st.clock, st.rank))


def _resolve_opcode(op) -> int | None:
    """Slow-path dispatch for op subclasses: resolve by ``isinstance`` and
    memoize the concrete class into the dispatch table."""
    for base, code in ((WorkOp, _WORK), (ElapseOp, _ELAPSE), (SendOp, _SEND),
                       (RecvOp, _RECV), (ProbeOp, _PROBE)):
        if isinstance(op, base):
            _OPCODES[op.__class__] = code
            return code
    return None


def _deadlock_chains(stuck: list, nodes: list, msgs_rec: list) -> dict:
    """Per blocked rank: (causal chain to its last completed node, text)."""
    from repro.obs.causal import chain_of, format_chain

    last_by_rank: dict[int, Any] = {}
    for n in nodes:
        last_by_rank[n.rank] = n  # nodes are in creation order
    chains = {}
    for st in stuck:
        start = last_by_rank.get(st.rank)
        if start is None:
            chains[st.rank] = ([], "(no completed operations)")
            continue
        chain = chain_of(nodes, msgs_rec, start)
        chains[st.rank] = (chain, format_chain(chain, msgs_rec))
    return chains


def _fmt_match(value: int) -> str:
    return "ANY" if value == ANY else str(value)


def _mailbox_summary(st) -> list[tuple[int, int, int]]:
    """Unmatched-message census: sorted ``(source, tag, count)`` triples."""
    census: dict[tuple[int, int], int] = {}
    for m in st.mailbox.messages():
        key = (m.source, m.tag)
        census[key] = census.get(key, 0) + 1
    return [(src, tag, n) for (src, tag), n in sorted(census.items())]


def _blocked_record(st) -> tuple:
    op = st.blocked_on
    pending = (op.source, op.tag) if op is not None else None
    return (st.rank, pending, _mailbox_summary(st))


def _blocked_line(st) -> str:
    op = st.blocked_on
    pending = (
        f"recv(source={_fmt_match(op.source)}, tag={_fmt_match(op.tag)})"
        if op is not None
        else "no pending receive"
    )
    box = _mailbox_summary(st)
    if box:
        listing = ", ".join(
            f"(source={src}, tag={tag})×{n}" for src, tag, n in box
        )
        mailbox = f"mailbox holds {len(st.mailbox)} unmatched: {listing}"
    else:
        mailbox = "mailbox empty"
    return f"  rank {st.rank}: waiting on {pending}; {mailbox}"


class per_rank:
    """Wrapper marking an argument as per-rank in :meth:`VirtualMachine.run`.

    ``vm.run(prog, per_rank([a0, a1, ...]))`` passes ``a_r`` to rank ``r``.
    """

    def __init__(self, values):
        self.values = list(values)

    def __repr__(self):  # pragma: no cover - debug aid
        return f"per_rank({self.values!r})"


def make_send(dest: int, tag: int, payload: Any, nwords: int | None = None) -> SendOp:
    """Build a :class:`SendOp`, measuring the payload if no size is given."""
    return SendOp(dest, tag, payload, word_count(payload) if nwords is None else nwords)
