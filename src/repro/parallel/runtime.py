"""Deterministic event-driven runtime for SPMD rank programs.

A *rank program* is a generator function ``program(comm, ...)`` that yields
communication/computation operations (usually indirectly, through
``yield from comm.<op>(...)``).  The :class:`VirtualMachine` scheduler
advances per-rank virtual clocks under a :class:`~repro.parallel.machine.MachineModel`,
matches sends with receives, and reports the makespan and traffic of the run.

The model is a buffered postal model: ``send`` charges the sender the full
message time and completes immediately; ``recv`` blocks until a matching
message has arrived (arrival time = sender's clock when the send completed)
and charges the receiver a posting overhead.  Messages between a fixed
(source, dest, tag) triple are delivered in FIFO order, and scheduling
ties are broken by rank id, so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.kernels import reference_enabled

from .machine import MachineModel, SP2_1997, word_count

__all__ = ["VirtualMachine", "RunResult", "TraceEvent", "DeadlockError", "ANY"]

#: Wildcard for ``recv`` source/tag matching.
ANY = -1


class DeadlockError(RuntimeError):
    """Raised when no rank can make progress but some are still blocked.

    The message lists, per blocked rank, the pending ``recv(source, tag)``
    and a summary of the unmatched messages sitting in its mailbox; the
    same data is available programmatically as ``blocked`` —
    a list of ``(rank, (source, tag), [(source, tag, count), ...])``.

    When the run was traced (``trace=True`` or a tracer), ``chains`` maps
    each blocked rank to the longest completed causal chain ending at its
    last completed operation (a list of
    :class:`~repro.obs.causal.CausalNode`), and the message renders each
    chain so the report shows what every rank was doing — and which
    senders it depended on — when progress stopped.
    """

    def __init__(self, message: str, blocked: list | None = None,
                 chains: dict | None = None):
        super().__init__(message)
        self.blocked = blocked or []
        self.chains = chains or {}


# --- operation descriptors yielded by rank programs ------------------------


@dataclass(frozen=True)
class SendOp:
    dest: int
    tag: int
    payload: Any
    nwords: int


@dataclass(frozen=True)
class RecvOp:
    source: int
    tag: int


@dataclass(frozen=True)
class ProbeOp:
    """Non-blocking probe: resolve immediately with (matched, message)."""

    source: int
    tag: int


@dataclass(frozen=True)
class WorkOp:
    units: float


@dataclass(frozen=True)
class ElapseOp:
    seconds: float


@dataclass
class _Message:
    source: int
    tag: int
    payload: Any
    nwords: int
    arrival: float
    seq: int


class _IndexedMailbox:
    """Unmatched messages bucketed by ``(source, tag)``.

    Sends append in global ``seq`` order, so each bucket is a FIFO whose
    head is its minimum-``seq`` message; a sender's clock is monotone, so
    ``arrival`` is also non-decreasing along a bucket and the head alone
    decides an arrival-time filter for the whole bucket.  Matching a recv
    or probe therefore inspects only the heads of the (few) buckets a
    wildcard can reach — never the whole mailbox.
    """

    __slots__ = ("_by_key", "_count")

    def __init__(self):
        self._by_key: dict[tuple[int, int], deque[_Message]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, msg: _Message) -> None:
        self._by_key.setdefault((msg.source, msg.tag), deque()).append(msg)
        self._count += 1

    def _matching_keys(self, source: int, tag: int):
        if source != ANY and tag != ANY:
            key = (source, tag)
            return (key,) if key in self._by_key else ()
        if source == ANY and tag == ANY:
            return list(self._by_key)
        if source == ANY:
            return [k for k in self._by_key if k[1] == tag]
        return [k for k in self._by_key if k[0] == source]

    def has_match(self, source: int, tag: int) -> bool:
        return bool(self._matching_keys(source, tag))

    def pop_match(
        self, source: int, tag: int, max_arrival: float | None = None
    ) -> _Message | None:
        """Remove and return the oldest (min-seq) matching message."""
        best_key = None
        best_seq = 0
        for key in self._matching_keys(source, tag):
            head = self._by_key[key][0]
            if max_arrival is not None and head.arrival > max_arrival:
                continue
            if best_key is None or head.seq < best_seq:
                best_key, best_seq = key, head.seq
        if best_key is None:
            return None
        bucket = self._by_key[best_key]
        msg = bucket.popleft()
        if not bucket:
            del self._by_key[best_key]
        self._count -= 1
        return msg

    def messages(self):
        for bucket in self._by_key.values():
            yield from bucket


class _ListMailbox:
    """Reference mailbox: one list, linear scan on every recv/probe."""

    __slots__ = ("_msgs",)

    def __init__(self):
        self._msgs: list[_Message] = []

    def __len__(self) -> int:
        return len(self._msgs)

    def add(self, msg: _Message) -> None:
        self._msgs.append(msg)

    def has_match(self, source: int, tag: int) -> bool:
        return any(
            (source in (ANY, m.source)) and (tag in (ANY, m.tag))
            for m in self._msgs
        )

    def pop_match(
        self, source: int, tag: int, max_arrival: float | None = None
    ) -> _Message | None:
        best = None
        for m in self._msgs:
            if (source not in (ANY, m.source)) or (tag not in (ANY, m.tag)):
                continue
            if max_arrival is not None and m.arrival > max_arrival:
                continue
            if best is None or m.seq < best.seq:
                best = m
        if best is not None:
            self._msgs.remove(best)
        return best

    def messages(self):
        return iter(self._msgs)


@dataclass
class _Rank:
    rank: int
    gen: Iterator
    clock: float = 0.0
    blocked_on: RecvOp | None = None
    done: bool = False
    retval: Any = None
    send_value: Any = None  # value to inject at the next generator step
    mailbox: _IndexedMailbox | _ListMailbox = field(
        default_factory=_IndexedMailbox
    )
    words_sent: int = 0
    msgs_sent: int = 0
    words_recv: int = 0
    msgs_recv: int = 0
    data_msgs_sent: int = 0  # payload-bearing sends (nwords > 0)
    data_msgs_recv: int = 0
    waited: float = 0.0  # virtual seconds blocked waiting for arrivals


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler event, recorded when tracing is enabled."""

    time: float
    rank: int
    kind: str  # "send" | "recv" | "work" | "probe"
    detail: tuple


@dataclass(frozen=True)
class RunResult:
    """Outcome of a :meth:`VirtualMachine.run` call."""

    returns: list
    clocks: list[float]
    total_messages: int
    total_words: int
    words_sent_per_rank: list[int]
    trace: list[TraceEvent] | None = None
    words_recv_per_rank: list[int] = field(default_factory=list)
    msgs_sent_per_rank: list[int] = field(default_factory=list)
    msgs_recv_per_rank: list[int] = field(default_factory=list)
    busy_per_rank: list[float] = field(default_factory=list)
    idle_per_rank: list[float] = field(default_factory=list)
    #: Happens-before record (see :mod:`repro.obs.causal`); populated
    #: whenever the run was traced, None otherwise.
    nodes: list | None = None
    msgs: list | None = None
    #: Host wall-clock seconds the run took end to end (set by the
    #: communicator backends; None when the run was driven directly).
    wall_seconds: float | None = None
    #: Name of the communicator backend that produced this result.
    backend: str = "virtual"

    @property
    def makespan(self) -> float:
        """Completion time of the slowest rank, in this run's clock:
        modelled virtual seconds on the ``virtual`` backend, measured
        wall seconds on the real-execution backends."""
        return max(self.clocks) if self.clocks else 0.0


class VirtualMachine:
    """A virtual message-passing machine with ``nranks`` processors.

    With ``trace=True`` the scheduler records every send, receive, probe,
    and work event with its virtual timestamp (useful for debugging rank
    programs and visualising communication schedules).  With ``tracer``
    set to a :class:`repro.obs.Tracer`, the same events are mirrored into
    it as point events named ``vm.<kind>`` (offset by the tracer's virtual
    clock at the start of the run) and the run's message/word totals are
    added to the ``vm.messages`` / ``vm.words`` counters.  Per-rank traffic
    is additionally recorded as labelled metrics: ``repro.vm.messages_sent``
    / ``messages_recv`` count payload-bearing messages only (zero-word
    synchronisation messages go to ``repro.vm.sync_messages`` so word and
    message totals stay comparable with the cost ledger),
    ``repro.vm.words_sent`` / ``words_recv`` count 8-byte words, and
    ``repro.vm.busy_seconds`` / ``idle_seconds`` split each rank's share of
    the makespan into working and blocked-waiting virtual time.
    """

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 trace: bool = False, tracer=None):
        if nranks < 1:
            raise ValueError(f"need at least one rank, got {nranks}")
        self.nranks = nranks
        self.machine = machine
        self.trace = trace
        self.tracer = tracer

    def run(self, program: Callable, *args, **kwargs) -> RunResult:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        ``program`` must be a generator function.  Per-rank arguments can be
        passed by giving a list/tuple of length ``nranks`` wrapped in
        :func:`per_rank`.
        """
        from .simcomm import Comm

        mailbox_cls = _ListMailbox if reference_enabled() else _IndexedMailbox
        ranks: list[_Rank] = []
        for r in range(self.nranks):
            comm = Comm(r, self.nranks, self.machine)
            a = [x.values[r] if isinstance(x, per_rank) else x for x in args]
            kw = {
                k: (v.values[r] if isinstance(v, per_rank) else v)
                for k, v in kwargs.items()
            }
            gen = program(comm, *a, **kw)
            if not hasattr(gen, "send"):
                raise TypeError(
                    "rank program must be a generator function "
                    f"(got {type(gen).__name__} from {program!r})"
                )
            ranks.append(_Rank(r, gen, mailbox=mailbox_cls()))

        ready: list[tuple[float, int]] = [(0.0, r) for r in range(self.nranks)]
        heapq.heapify(ready)
        seq = 0
        recording = self.trace or self.tracer is not None
        events: list[TraceEvent] | None = [] if recording else None
        nodes: list | None = None
        msgs_rec: list | None = None
        if recording:
            from repro.obs.causal import CausalMsg, CausalNode

            nodes, msgs_rec = [], []

        while ready:
            clock, r = heapq.heappop(ready)
            st = ranks[r]
            if st.done:
                continue
            st.clock = max(st.clock, clock)
            try:
                op = st.gen.send(st.send_value)
            except StopIteration as stop:
                st.done = True
                st.retval = stop.value
                continue
            st.send_value = None

            if isinstance(op, WorkOp):
                t0 = st.clock
                st.clock += self.machine.work_time(op.units)
                if events is not None:
                    events.append(TraceEvent(st.clock, r, "work", (op.units,)))
                    nodes.append(CausalNode(-1, len(nodes), r, "work",
                                            t0, st.clock))
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, ElapseOp):
                if op.seconds < 0:
                    raise ValueError(f"negative elapse: {op.seconds}")
                t0 = st.clock
                st.clock += op.seconds
                if nodes is not None:
                    nodes.append(CausalNode(-1, len(nodes), r, "elapse",
                                            t0, st.clock))
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, SendOp):
                if not 0 <= op.dest < self.nranks:
                    raise ValueError(f"rank {r}: send to invalid rank {op.dest}")
                t0 = st.clock
                st.clock += self.machine.msg_time(op.nwords)
                st.words_sent += op.nwords
                st.msgs_sent += 1
                if op.nwords > 0:
                    st.data_msgs_sent += 1
                seq += 1
                if events is not None:
                    events.append(
                        TraceEvent(st.clock, r, "send", (op.dest, op.tag, op.nwords))
                    )
                    # msg id == seq - 1: both advance once per send
                    nodes.append(CausalNode(-1, len(nodes), r, "send",
                                            t0, st.clock, msg=len(msgs_rec)))
                    msgs_rec.append(
                        CausalMsg(-1, len(msgs_rec), r, op.dest, op.tag,
                                  op.nwords, send_node=len(nodes) - 1)
                    )
                msg = _Message(r, op.tag, op.payload, op.nwords, st.clock, seq)
                dst = ranks[op.dest]
                dst.mailbox.add(msg)
                if dst.blocked_on is not None and self._matches(dst.blocked_on, msg):
                    self._deliver(dst, ready, events, nodes, msgs_rec)
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, ProbeOp):
                t0 = st.clock
                msg = st.mailbox.pop_match(
                    op.source, op.tag, max_arrival=st.clock
                )
                # the mailbox check costs t_setup whether or not it matches
                st.clock += self.machine.t_setup
                if msg is not None:
                    st.words_recv += msg.nwords
                    st.msgs_recv += 1
                    if msg.nwords > 0:
                        st.data_msgs_recv += 1
                    st.send_value = (True, (msg.payload, msg.source, msg.tag))
                else:
                    st.send_value = (False, None)
                if events is not None:
                    events.append(
                        TraceEvent(st.clock, r, "probe",
                                   (op.source, op.tag, msg is not None))
                    )
                    mid = None if msg is None else msg.seq - 1
                    if mid is not None:
                        msgs_rec[mid].recv_node = len(nodes)
                    nodes.append(CausalNode(-1, len(nodes), r, "probe",
                                            t0, st.clock, msg=mid))
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, RecvOp):
                st.blocked_on = op
                if st.mailbox.has_match(op.source, op.tag):
                    self._deliver(st, ready, events, nodes, msgs_rec)
                # else: stays blocked until a matching send arrives
            else:
                raise TypeError(f"rank {r} yielded unknown op {op!r}")

        stuck = [s for s in ranks if not s.done]
        if stuck:
            message = (
                f"ranks {[s.rank for s in stuck]} are blocked on receives "
                "that never arrive:\n" + "\n".join(_blocked_line(s) for s in stuck)
            )
            chains = None
            if nodes is not None:
                chains = _deadlock_chains(stuck, nodes, msgs_rec)
                if chains:
                    message += "\nlast completed causal chain per blocked rank:"
                    for rank in sorted(chains):
                        message += f"\n  rank {rank}: {chains[rank][1]}"
            else:
                message += (
                    "\n(run with trace=True or a tracer to see each rank's "
                    "last completed causal chain)"
                )
            raise DeadlockError(
                message,
                blocked=[_blocked_record(s) for s in stuck],
                chains={r: c for r, (c, _) in (chains or {}).items()},
            )

        makespan = max((s.clock for s in ranks), default=0.0)
        busy = [s.clock - s.waited for s in ranks]
        idle = [makespan - b for b in busy]

        if nodes is not None:
            run_id = (
                self.tracer.next_causal_run() if self.tracer is not None else 0
            )
            for nd in nodes:
                nd.run = run_id
            for mg in msgs_rec:
                mg.run = run_id
        if self.tracer is not None and events is not None:
            base = self.tracer.virtual_now
            self.tracer.causal_nodes.extend(nodes)
            self.tracer.causal_msgs.extend(msgs_rec)
            self.tracer.event(
                "vm.run", v_time=base, run=run_id, base=base,
                makespan=makespan, nranks=self.nranks,
                cycle=self.tracer.cycle, nodes=len(nodes), msgs=len(msgs_rec),
            )
            for ev in events:
                self.tracer.event(
                    f"vm.{ev.kind}", v_time=base + ev.time, rank=ev.rank,
                    detail=list(ev.detail),
                )
            self.tracer.count("vm.messages", sum(s.msgs_sent for s in ranks))
            self.tracer.count("vm.words", sum(s.words_sent for s in ranks))
            for s in ranks:
                m = self.tracer.metric
                m("repro.vm.messages_sent", s.data_msgs_sent,
                  kind="counter", rank=s.rank)
                m("repro.vm.messages_recv", s.data_msgs_recv,
                  kind="counter", rank=s.rank)
                m("repro.vm.sync_messages", s.msgs_sent - s.data_msgs_sent,
                  kind="counter", rank=s.rank)
                m("repro.vm.words_sent", s.words_sent,
                  kind="counter", rank=s.rank)
                m("repro.vm.words_recv", s.words_recv,
                  kind="counter", rank=s.rank)
                m("repro.vm.busy_seconds", busy[s.rank],
                  kind="counter", rank=s.rank)
                m("repro.vm.idle_seconds", idle[s.rank],
                  kind="counter", rank=s.rank)

        return RunResult(
            returns=[s.retval for s in ranks],
            clocks=[s.clock for s in ranks],
            total_messages=sum(s.msgs_sent for s in ranks),
            total_words=sum(s.words_sent for s in ranks),
            words_sent_per_rank=[s.words_sent for s in ranks],
            trace=events if self.trace else None,
            words_recv_per_rank=[s.words_recv for s in ranks],
            msgs_sent_per_rank=[s.msgs_sent for s in ranks],
            msgs_recv_per_rank=[s.msgs_recv for s in ranks],
            busy_per_rank=busy,
            idle_per_rank=idle,
            nodes=nodes,
            msgs=msgs_rec,
        )

    @staticmethod
    def _matches(op: RecvOp, msg: _Message) -> bool:
        return (op.source in (ANY, msg.source)) and (op.tag in (ANY, msg.tag))

    def _deliver(self, st: _Rank, ready: list, events: list | None = None,
                 nodes: list | None = None, msgs_rec: list | None = None) -> None:
        """Hand the oldest matching message to a rank blocked on a recv."""
        op = st.blocked_on
        assert op is not None
        best = st.mailbox.pop_match(op.source, op.tag)
        assert best is not None, "deliver called without a matching message"
        st.blocked_on = None
        t0 = st.clock
        wait = max(0.0, best.arrival - (st.clock + self.machine.t_setup))
        st.waited += wait
        st.clock = max(st.clock + self.machine.t_setup, best.arrival)
        st.words_recv += best.nwords
        st.msgs_recv += 1
        if best.nwords > 0:
            st.data_msgs_recv += 1
        if events is not None:
            events.append(
                TraceEvent(st.clock, st.rank, "recv",
                           (best.source, best.tag, best.nwords))
            )
        if nodes is not None:
            from repro.obs.causal import CausalNode

            mid = best.seq - 1
            msgs_rec[mid].recv_node = len(nodes)
            nodes.append(CausalNode(-1, len(nodes), st.rank, "recv",
                                    t0, st.clock, wait=wait, msg=mid))
        st.send_value = (best.payload, best.source, best.tag)
        heapq.heappush(ready, (st.clock, st.rank))


def _deadlock_chains(stuck: list[_Rank], nodes: list, msgs_rec: list) -> dict:
    """Per blocked rank: (causal chain to its last completed node, text)."""
    from repro.obs.causal import chain_of, format_chain

    last_by_rank: dict[int, Any] = {}
    for n in nodes:
        last_by_rank[n.rank] = n  # nodes are in creation order
    chains = {}
    for st in stuck:
        start = last_by_rank.get(st.rank)
        if start is None:
            chains[st.rank] = ([], "(no completed operations)")
            continue
        chain = chain_of(nodes, msgs_rec, start)
        chains[st.rank] = (chain, format_chain(chain, msgs_rec))
    return chains


def _fmt_match(value: int) -> str:
    return "ANY" if value == ANY else str(value)


def _mailbox_summary(st: _Rank) -> list[tuple[int, int, int]]:
    """Unmatched-message census: sorted ``(source, tag, count)`` triples."""
    census: dict[tuple[int, int], int] = {}
    for m in st.mailbox.messages():
        key = (m.source, m.tag)
        census[key] = census.get(key, 0) + 1
    return [(src, tag, n) for (src, tag), n in sorted(census.items())]


def _blocked_record(st: _Rank) -> tuple:
    op = st.blocked_on
    pending = (op.source, op.tag) if op is not None else None
    return (st.rank, pending, _mailbox_summary(st))


def _blocked_line(st: _Rank) -> str:
    op = st.blocked_on
    pending = (
        f"recv(source={_fmt_match(op.source)}, tag={_fmt_match(op.tag)})"
        if op is not None
        else "no pending receive"
    )
    box = _mailbox_summary(st)
    if box:
        listing = ", ".join(
            f"(source={src}, tag={tag})×{n}" for src, tag, n in box
        )
        mailbox = f"mailbox holds {len(st.mailbox)} unmatched: {listing}"
    else:
        mailbox = "mailbox empty"
    return f"  rank {st.rank}: waiting on {pending}; {mailbox}"


class per_rank:
    """Wrapper marking an argument as per-rank in :meth:`VirtualMachine.run`.

    ``vm.run(prog, per_rank([a0, a1, ...]))`` passes ``a_r`` to rank ``r``.
    """

    def __init__(self, values):
        self.values = list(values)

    def __repr__(self):  # pragma: no cover - debug aid
        return f"per_rank({self.values!r})"


def make_send(dest: int, tag: int, payload: Any, nwords: int | None = None) -> SendOp:
    """Build a :class:`SendOp`, measuring the payload if no size is given."""
    return SendOp(dest, tag, payload, word_count(payload) if nwords is None else nwords)
