"""Deterministic event-driven runtime for SPMD rank programs.

A *rank program* is a generator function ``program(comm, ...)`` that yields
communication/computation operations (usually indirectly, through
``yield from comm.<op>(...)``).  The :class:`VirtualMachine` scheduler
advances per-rank virtual clocks under a :class:`~repro.parallel.machine.MachineModel`,
matches sends with receives, and reports the makespan and traffic of the run.

The model is a buffered postal model: ``send`` charges the sender the full
message time and completes immediately; ``recv`` blocks until a matching
message has arrived (arrival time = sender's clock when the send completed)
and charges the receiver a posting overhead.  Messages between a fixed
(source, dest, tag) triple are delivered in FIFO order, and scheduling
ties are broken by rank id, so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .machine import MachineModel, SP2_1997, word_count

__all__ = ["VirtualMachine", "RunResult", "TraceEvent", "DeadlockError", "ANY"]

#: Wildcard for ``recv`` source/tag matching.
ANY = -1


class DeadlockError(RuntimeError):
    """Raised when no rank can make progress but some are still blocked."""


# --- operation descriptors yielded by rank programs ------------------------


@dataclass(frozen=True)
class SendOp:
    dest: int
    tag: int
    payload: Any
    nwords: int


@dataclass(frozen=True)
class RecvOp:
    source: int
    tag: int


@dataclass(frozen=True)
class ProbeOp:
    """Non-blocking probe: resolve immediately with (matched, message)."""

    source: int
    tag: int


@dataclass(frozen=True)
class WorkOp:
    units: float


@dataclass(frozen=True)
class ElapseOp:
    seconds: float


@dataclass
class _Message:
    source: int
    tag: int
    payload: Any
    nwords: int
    arrival: float
    seq: int


@dataclass
class _Rank:
    rank: int
    gen: Iterator
    clock: float = 0.0
    blocked_on: RecvOp | None = None
    done: bool = False
    retval: Any = None
    send_value: Any = None  # value to inject at the next generator step
    mailbox: list[_Message] = field(default_factory=list)
    words_sent: int = 0
    msgs_sent: int = 0


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler event, recorded when tracing is enabled."""

    time: float
    rank: int
    kind: str  # "send" | "recv" | "work"
    detail: tuple


@dataclass(frozen=True)
class RunResult:
    """Outcome of a :meth:`VirtualMachine.run` call."""

    returns: list
    clocks: list[float]
    total_messages: int
    total_words: int
    words_sent_per_rank: list[int]
    trace: list[TraceEvent] | None = None

    @property
    def makespan(self) -> float:
        """Virtual wall-clock time of the run (slowest rank)."""
        return max(self.clocks) if self.clocks else 0.0


class VirtualMachine:
    """A virtual message-passing machine with ``nranks`` processors.

    With ``trace=True`` the scheduler records every send, receive, and
    work event with its virtual timestamp (useful for debugging rank
    programs and visualising communication schedules).
    """

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 trace: bool = False):
        if nranks < 1:
            raise ValueError(f"need at least one rank, got {nranks}")
        self.nranks = nranks
        self.machine = machine
        self.trace = trace

    def run(self, program: Callable, *args, **kwargs) -> RunResult:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        ``program`` must be a generator function.  Per-rank arguments can be
        passed by giving a list/tuple of length ``nranks`` wrapped in
        :func:`per_rank`.
        """
        from .simcomm import Comm

        ranks: list[_Rank] = []
        for r in range(self.nranks):
            comm = Comm(r, self.nranks, self.machine)
            a = [x.values[r] if isinstance(x, per_rank) else x for x in args]
            kw = {
                k: (v.values[r] if isinstance(v, per_rank) else v)
                for k, v in kwargs.items()
            }
            gen = program(comm, *a, **kw)
            if not hasattr(gen, "send"):
                raise TypeError(
                    "rank program must be a generator function "
                    f"(got {type(gen).__name__} from {program!r})"
                )
            ranks.append(_Rank(r, gen))

        ready: list[tuple[float, int]] = [(0.0, r) for r in range(self.nranks)]
        heapq.heapify(ready)
        seq = 0
        events: list[TraceEvent] | None = [] if self.trace else None

        while ready:
            clock, r = heapq.heappop(ready)
            st = ranks[r]
            if st.done:
                continue
            st.clock = max(st.clock, clock)
            try:
                op = st.gen.send(st.send_value)
            except StopIteration as stop:
                st.done = True
                st.retval = stop.value
                continue
            st.send_value = None

            if isinstance(op, WorkOp):
                st.clock += self.machine.work_time(op.units)
                if events is not None:
                    events.append(TraceEvent(st.clock, r, "work", (op.units,)))
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, ElapseOp):
                if op.seconds < 0:
                    raise ValueError(f"negative elapse: {op.seconds}")
                st.clock += op.seconds
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, SendOp):
                if not 0 <= op.dest < self.nranks:
                    raise ValueError(f"rank {r}: send to invalid rank {op.dest}")
                st.clock += self.machine.msg_time(op.nwords)
                st.words_sent += op.nwords
                st.msgs_sent += 1
                seq += 1
                if events is not None:
                    events.append(
                        TraceEvent(st.clock, r, "send", (op.dest, op.tag, op.nwords))
                    )
                msg = _Message(r, op.tag, op.payload, op.nwords, st.clock, seq)
                dst = ranks[op.dest]
                dst.mailbox.append(msg)
                if dst.blocked_on is not None and self._matches(dst.blocked_on, msg):
                    self._deliver(dst, ready, events)
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, ProbeOp):
                ready_msgs = [
                    m
                    for m in st.mailbox
                    if self._matches(RecvOp(op.source, op.tag), m)
                    and m.arrival <= st.clock
                ]
                if ready_msgs:
                    msg = min(ready_msgs, key=lambda m: m.seq)
                    st.mailbox.remove(msg)
                    st.clock += self.machine.t_setup
                    st.send_value = (True, (msg.payload, msg.source, msg.tag))
                else:
                    st.send_value = (False, None)
                heapq.heappush(ready, (st.clock, r))
            elif isinstance(op, RecvOp):
                st.blocked_on = op
                if any(self._matches(op, m) for m in st.mailbox):
                    self._deliver(st, ready, events)
                # else: stays blocked until a matching send arrives
            else:
                raise TypeError(f"rank {r} yielded unknown op {op!r}")

        blocked = [s.rank for s in ranks if not s.done]
        if blocked:
            raise DeadlockError(
                f"ranks {blocked} are blocked on receives that never arrive"
            )

        return RunResult(
            returns=[s.retval for s in ranks],
            clocks=[s.clock for s in ranks],
            total_messages=sum(s.msgs_sent for s in ranks),
            total_words=sum(s.words_sent for s in ranks),
            words_sent_per_rank=[s.words_sent for s in ranks],
            trace=events,
        )

    @staticmethod
    def _matches(op: RecvOp, msg: _Message) -> bool:
        return (op.source in (ANY, msg.source)) and (op.tag in (ANY, msg.tag))

    def _deliver(self, st: _Rank, ready: list,
                 events: list | None = None) -> None:
        """Hand the oldest matching message to a rank blocked on a recv."""
        op = st.blocked_on
        assert op is not None
        best = min(
            (m for m in st.mailbox if self._matches(op, m)), key=lambda m: m.seq
        )
        st.mailbox.remove(best)
        st.blocked_on = None
        st.clock = max(st.clock + self.machine.t_setup, best.arrival)
        if events is not None:
            events.append(
                TraceEvent(st.clock, st.rank, "recv",
                           (best.source, best.tag, best.nwords))
            )
        st.send_value = (best.payload, best.source, best.tag)
        heapq.heappush(ready, (st.clock, st.rank))


class per_rank:
    """Wrapper marking an argument as per-rank in :meth:`VirtualMachine.run`.

    ``vm.run(prog, per_rank([a0, a1, ...]))`` passes ``a_r`` to rank ``r``.
    """

    def __init__(self, values):
        self.values = list(values)

    def __repr__(self):  # pragma: no cover - debug aid
        return f"per_rank({self.values!r})"


def make_send(dest: int, tag: int, payload: Any, nwords: int | None = None) -> SendOp:
    """Build a :class:`SendOp`, measuring the payload if no size is given."""
    return SendOp(dest, tag, payload, word_count(payload) if nwords is None else nwords)
