"""Machine performance models for the virtual parallel machine.

The paper reports all of its evaluation quantities (speedup, remapping
seconds, repartitioning seconds) as wall-clock times measured on a 1997-era
IBM SP2.  We do not have an SP2; instead every "parallel" phase in this
library runs on a deterministic virtual machine whose clock advances
according to the :class:`MachineModel` below.  The model is a LogGP-flavoured
abstraction:

* each message costs ``t_setup`` (software startup: header preparation,
  buffer loading — the paper's :math:`T_{setup}`) plus ``t_word`` per 8-byte
  word transferred (the paper's remote-memory latency :math:`T_{lat}`, a
  per-word memory-to-memory copy cost),
* computation is charged explicitly by the algorithms in abstract *work
  units* converted through ``t_work``.

``SP2_1997`` is calibrated so that the headline magnitudes of the paper's
Section 5 (sub-second repartitioning, remapping around a second on 64
processors for a ~60k element mesh) come out in the right ballpark; the
*shape* of every curve is produced by the algorithms, not the constants.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

__all__ = ["MachineModel", "SP2_1997", "IDEAL", "word_count"]


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated message-passing machine.

    Parameters
    ----------
    t_setup:
        Seconds of per-message startup overhead (:math:`T_{setup}`).
    t_word:
        Seconds to move one 8-byte word between processors
        (:math:`T_{lat}` in the paper's remapping cost model).
    t_work:
        Seconds per abstract unit of local computation.  Algorithms charge
        work in units roughly equal to "one element visit".
    alpha, beta:
        Machine-specific scale factors for the ``MaxV`` metric
        (:math:`\\alpha\\times` elements sent, :math:`\\beta\\times`
        elements received); the paper uses :math:`\\alpha=\\beta=1`.
    """

    t_setup: float = 5.0e-5
    t_word: float = 2.5e-7
    t_work: float = 1.0e-6
    alpha: float = 1.0
    beta: float = 1.0

    def msg_time(self, nwords: int) -> float:
        """Time to transfer a single message of ``nwords`` 8-byte words."""
        if nwords < 0:
            raise ValueError(f"negative message size: {nwords}")
        return self.t_setup + self.t_word * nwords

    def work_time(self, units: float) -> float:
        """Time to execute ``units`` of local computation."""
        if units < 0:
            raise ValueError(f"negative work: {units}")
        return self.t_work * units


#: Constants loosely calibrated to the paper's IBM SP2 measurements.
SP2_1997 = MachineModel(t_setup=5.0e-5, t_word=2.5e-7, t_work=1.0e-6)

#: Zero-cost communication; useful for isolating algorithmic load balance.
IDEAL = MachineModel(t_setup=0.0, t_word=0.0, t_work=1.0e-6)


def word_count(obj) -> int:
    """Estimate the size of ``obj`` in 8-byte words for the timing model.

    NumPy arrays are measured exactly from their buffer size; other Python
    objects are measured via their pickle length, which is deterministic for
    the dataclass/tuple/dict payloads used inside this library.
    """
    if obj is None:
        return 0
    # scalars first: collective hops size their accumulator on every hop,
    # so this is the hottest case by far
    if isinstance(obj, (int, float, bool)):
        return 1
    if isinstance(obj, np.ndarray):
        return max(1, obj.nbytes // 8)
    if isinstance(obj, (tuple, list)) and all(
        isinstance(x, (int, float, bool)) for x in obj
    ):
        return max(1, len(obj))
    return max(1, len(pickle.dumps(obj, protocol=4)) // 8)
