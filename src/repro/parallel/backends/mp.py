"""One-process-per-rank backend over ``multiprocessing`` queues.

Each rank runs in its own forked OS process and drives the *same*
generator rank program the virtual machine runs: ``SendOp`` puts the
payload on the destination rank's inbound queue, ``RecvOp`` / ``ProbeOp``
drain the queue into a local :class:`~repro.parallel.runtime._IndexedMailbox`
whose ``(source, tag)`` matching — including ``ANY`` wildcards and
per-(source, tag) FIFO order — is exactly the virtual machine's.
``WorkOp`` / ``ElapseOp`` cost nothing here: the *real* Python work the
program performs between yields is what the measured clocks capture.

The ``fork`` start method is required (and requested explicitly): rank
programs are closures over mesh data, which fork inherits by memory image
instead of pickling.  Message payloads do cross process boundaries and
must pickle — true of every payload type this library sends.

Clocks in the returned :class:`~repro.parallel.runtime.RunResult` are
measured host wall seconds per rank; ``waited`` time (blocked on an empty
queue) is separated out so busy/idle splits stay meaningful.

With a tracer attached the backend also records the run's *measured*
causal trace (:mod:`repro.obs.wallclock`): each rank keeps a columnar
:class:`~repro.obs.wallclock.WallRecorder` of its sends/recvs/probes and
the work gaps between them on its own ``perf_counter``, the parent
estimates every child's clock offset with an NTP-style pipe handshake run
*after* the program (so tracing never delays the start of work — offsets
are constants of the monotonic clocks), and the streams then merge
into ``CausalNode``/``CausalMsg`` lists under a ``vm.run`` marker with
``clock="wall"`` — so ``repro critical-path``, ``repro report`` and
``repro diff`` work on measured runs exactly as on modelled ones.  A traced
run also starts a :class:`~repro.obs.resource.ResourceSampler` in every
rank process; the sampled RSS/CPU/GC columns ship back with the result and
land in the trace as ``resource`` records plus per-rank
``repro.resource.*`` metrics (schema v5).  When a live telemetry hub is
installed (:func:`repro.obs.live.use_live`, i.e. ``repro step --live``),
ranks additionally stream progress and resource frames over the hub's
:class:`~repro.obs.live.LiveChannel` — a bounded queue written with
``put_nowait`` that drops on overflow, so the dashboard can never stall
the measured clock path.  Scheduling
is the OS's, so arrival *interleaving* across sources is nondeterministic
— programs whose results depend only on mailbox matching semantics (all
of this library's) produce payload-identical results to ``virtual``,
which the conformance suite pins.
"""

from __future__ import annotations

import time
import traceback

from ..machine import SP2_1997, MachineModel
from ..runtime import (
    ANY,
    DeadlockError,
    ElapseOp,
    ProbeOp,
    RecvOp,
    RunResult,
    SendOp,
    WorkOp,
    _IndexedMailbox,
    _Message,
    per_rank,
)

__all__ = ["MultiprocessingBackend"]

#: Default seconds a rank may block on one receive before the run is
#: declared deadlocked (real transports cannot scan a global wait graph).
DEFAULT_TIMEOUT = 60.0

#: Default extra seconds (beyond ``timeout``) the parent waits for rank
#: processes to report back before declaring them hung.
DEFAULT_GRACE = 30.0

#: Transport counter keys surfaced into the metrics registry.
_TRANSPORT_METRIC_KEYS = (
    "bytes_zero_copy", "bytes_pickled", "msgs_zero_copy", "msgs_pickled",
    "slab_reuse", "spills",
)


class MultiprocessingBackend:
    """Run rank programs on real cores, one forked process per rank."""

    name = "multiprocessing"
    #: Payloads are reproducible; clocks and cross-source arrival order
    #: are not (they are measured, not modelled).
    deterministic = False
    measured = True

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 timeout: float = DEFAULT_TIMEOUT,
                 grace: float = DEFAULT_GRACE, tracer=None,
                 resource_interval: float | None = None, **_ignored):
        if nranks < 1:
            raise ValueError(f"need at least one rank, got {nranks}")
        if grace < 0:
            raise ValueError(f"grace period must be >= 0, got {grace}")
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the multiprocessing backend needs the 'fork' start method "
                "(rank programs are closures and cannot be pickled)"
            )
        self.nranks = nranks
        self.machine = machine
        self.timeout = timeout
        self.grace = float(grace)
        self.tracer = tracer  # wall metrics only; no causal record
        #: Seconds between per-rank resource samples (None = library
        #: default); sampling runs whenever a tracer or live hub is on.
        self.resource_interval = resource_interval

    def _make_transport(self, ctx):
        """Hook for subclasses: build the per-run wire transport (parent
        side, before forking).  None means payloads pickle through the
        queues unchanged."""
        return None

    def run(self, program, *args, **kwargs) -> RunResult:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        Accepts :class:`~repro.parallel.runtime.per_rank` wrappers exactly
        like :meth:`VirtualMachine.run`.  Raises
        :class:`~repro.parallel.runtime.DeadlockError` when any rank's
        receive times out, and ``RuntimeError`` when a rank process dies.
        """
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        transport = self._make_transport(ctx)
        inboxes = [ctx.Queue() for _ in range(self.nranks)]
        result_q = ctx.Queue()

        # Measured tracing: one clock-handshake pipe per rank.  The
        # handshake runs after each child's program finishes, so tracing
        # never delays the start of work — the merge aligns the streams
        # from the estimated offsets alone, and the recorded start
        # spread (boot stagger) widens the skew bound honestly.
        recording = self.tracer is not None
        pipes = [ctx.Pipe() for _ in range(self.nranks)] if recording else []

        # Live telemetry: ranks stream frames over the ambient hub's side
        # channel (fork-inherited bounded queue; see repro.obs.live).
        # Resource sampling runs whenever anyone will consume it — the
        # tracer (v5 resource records) or a live dashboard.
        from ...obs.live import current_live

        hub = current_live()
        channel = hub.channel if hub is not None else None
        res_interval = None
        if recording or channel is not None:
            from ...obs.resource import DEFAULT_INTERVAL

            res_interval = self.resource_interval or DEFAULT_INTERVAL

        procs = []
        t0 = time.perf_counter()
        for r in range(self.nranks):
            a = [x.values[r] if isinstance(x, per_rank) else x for x in args]
            kw = {
                k: (v.values[r] if isinstance(v, per_rank) else v)
                for k, v in kwargs.items()
            }
            sync = pipes[r][1] if recording else None
            p = ctx.Process(
                target=_rank_worker,
                args=(r, self.nranks, self.machine, program, a, kw,
                      inboxes, result_q, self.timeout, transport, sync,
                      channel, res_interval),
                daemon=True,
            )
            p.start()
            procs.append(p)

        offsets: dict[int, float] = {}
        skews: dict[int, float] = {}
        if recording:
            from ...obs.wallclock import estimate_offsets

            try:
                for r in range(self.nranks):
                    pipes[r][1].close()  # child's end, in the parent
                offsets, skews = estimate_offsets(
                    {r: pipes[r][0] for r in range(self.nranks)},
                    timeout=self.timeout,
                )
            except Exception:
                # A rank died (or hung) before its handshake.  Abandon the
                # measured trace; the normal collection loop below will
                # surface the rank's real failure.
                recording = False
            finally:
                for parent_end, child_end in pipes:
                    parent_end.close()
                    child_end.close()

        results: dict[int, tuple] = {}
        deadline = time.perf_counter() + self.timeout + self.grace
        try:
            while len(results) < self.nranks:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise RuntimeError(
                        f"{self.name} backend: ranks "
                        f"{sorted(set(range(self.nranks)) - set(results))} "
                        f"did not report back within timeout + grace "
                        f"({self.timeout:g}s + {self.grace:g}s)"
                    )
                try:
                    record = result_q.get(timeout=min(remaining, 1.0))
                except Exception:
                    dead = [r for r, p in enumerate(procs)
                            if not p.is_alive() and r not in results]
                    if dead:
                        raise RuntimeError(
                            f"{self.name} backend: rank processes {dead} "
                            "died without reporting a result"
                        ) from None
                    continue
                if record[0] == "error":
                    # first rank failure: take the survivors down *now*
                    # rather than letting them block out their own
                    # receive timeouts (the finally would get there, but
                    # only after any queue teardown in between)
                    for p in procs:
                        if p.is_alive():
                            p.terminate()
                    _rank, kind, text = record[1], record[2], record[3]
                    if kind == "deadlock":
                        raise DeadlockError(text)
                    raise RuntimeError(
                        f"rank {_rank} failed on the {self.name} "
                        f"backend:\n{text}"
                    )
                results[record[1]] = record[2:]
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5.0)
            for q in inboxes:
                q.close()
                q.cancel_join_thread()
            if transport is not None:
                transport.dispose()
        wall = time.perf_counter() - t0

        returns, clocks, waited = [], [], []
        words_s, msgs_s, words_r, msgs_r = [], [], [], []
        transport_per_rank: list[dict] = []
        streams: dict[int, dict] = {}
        res_rows: dict[int, dict] = {}
        for r in range(self.nranks):
            retval, stats = results[r]
            returns.append(retval)
            clocks.append(stats["wall"])
            waited.append(stats["waited"])
            words_s.append(stats["words_sent"])
            msgs_s.append(stats["msgs_sent"])
            words_r.append(stats["words_recv"])
            msgs_r.append(stats["msgs_recv"])
            transport_per_rank.append(stats.get("transport", {}))
            if "rec" in stats:
                streams[r] = stats["rec"]
            if "res" in stats:
                res_rows[r] = stats["res"]
        makespan = max(clocks) if clocks else 0.0
        busy = [c - w for c, w in zip(clocks, waited)]
        idle = [makespan - b for b in busy]
        transport_totals = None
        if transport is not None:
            transport_totals = {}
            for d in transport_per_rank:
                for k, v in d.items():
                    transport_totals[k] = transport_totals.get(k, 0) + v
            transport.note_run_totals(transport_totals)
        if self.tracer is not None:
            from ...obs.resource import record_resource_samples

            for r in range(self.nranks):
                self.tracer.metric(
                    "repro.backend.rank_wall_seconds", clocks[r],
                    kind="counter", rank=r, backend=self.name,
                )
                record_resource_samples(
                    self.tracer, res_rows.get(r), rank=r, backend=self.name,
                )
            if transport_totals is not None:
                for key in _TRANSPORT_METRIC_KEYS:
                    self.tracer.metric(
                        f"repro.transport.{key}",
                        transport_totals.get(key, 0),
                        kind="counter", backend=self.name,
                    )
                    for r in range(self.nranks):
                        self.tracer.metric(
                            f"repro.transport.{key}",
                            transport_per_rank[r].get(key, 0),
                            kind="counter", rank=r, backend=self.name,
                        )
        merged_nodes = merged_msgs = None
        if recording and len(streams) == self.nranks:
            merged_nodes, merged_msgs = self._record_measured_run(
                streams, offsets, skews, waited, msgs_s, msgs_r,
                words_s, words_r,
            )
        return RunResult(
            returns=returns,
            clocks=clocks,
            total_messages=sum(msgs_s),
            total_words=sum(words_s),
            words_sent_per_rank=words_s,
            words_recv_per_rank=words_r,
            msgs_sent_per_rank=msgs_s,
            msgs_recv_per_rank=msgs_r,
            busy_per_rank=busy,
            idle_per_rank=idle,
            wall_seconds=wall,
            backend=self.name,
            transport=transport_totals,
            nodes=merged_nodes,
            msgs=merged_msgs,
        )

    def _record_measured_run(self, streams, offsets, skews, waited,
                             msgs_s, msgs_r, words_s, words_r):
        """Merge per-rank wall-clock streams into the tracer's causal record.

        Returns the merged ``(nodes, msgs)`` lists (shared with the
        tracer) so the :class:`RunResult` can carry them too.
        """
        from ...obs.wallclock import record_measured_run

        return record_measured_run(
            self.tracer, streams, offsets, skews,
            nranks=self.nranks, backend=self.name,
            waited=waited, msgs_sent=msgs_s, msgs_recv=msgs_r,
            words_sent=words_s, words_recv=words_r,
        )


def _rank_worker(rank, size, machine, program, args, kwargs,
                 inboxes, result_q, timeout, transport=None, sync=None,
                 channel=None, res_interval=None):
    """Child-process entry: drive one rank's generator over the queues."""
    try:
        retval, stats = _drive(rank, size, machine, program, args, kwargs,
                               inboxes, timeout, transport, sync,
                               channel, res_interval)
        result_q.put(("ok", rank, retval, stats))
    except _RecvTimeout as exc:
        result_q.put(("error", rank, "deadlock", str(exc)))
    except BaseException:
        result_q.put(("error", rank, "exception", traceback.format_exc()))


class _RecvTimeout(RuntimeError):
    pass


#: Seconds between live progress frames a rank streams over the channel.
_PROGRESS_INTERVAL = 0.1


def _drive(rank, size, machine, program, args, kwargs, inboxes, timeout,
           transport=None, sync=None, channel=None, res_interval=None):
    from ..simcomm import Comm

    comm = Comm(rank, size, machine)
    gen = program(comm, *args, **kwargs)
    if not hasattr(gen, "send"):
        raise TypeError(
            "rank program must be a generator function "
            f"(got {type(gen).__name__} from {program!r})"
        )
    import queue as _queue

    mailbox = _IndexedMailbox()
    inbox = inboxes[rank]
    seq = 0
    waited = 0.0
    words_sent = msgs_sent = words_recv = msgs_recv = 0
    if transport is not None:
        # map shared pages into this rank before the clock starts
        transport.warmup()
    rec = None
    if sync is not None:
        # Measured tracing: start recording immediately — the clock
        # handshake runs *after* the program (offsets are constants of
        # the monotonic perf_counter streams), so a traced rank starts
        # work exactly when an untraced one would.
        from ...obs.wallclock import WallRecorder

        rec = WallRecorder()
    sampler = None
    if res_interval is not None:
        # Resource telemetry: a daemon thread sampling this process's
        # RSS/CPU/GC off the hot path; the emit callback streams each
        # sample to the live dashboard (drop-on-full, never blocks).
        from ...obs.resource import ResourceSampler

        emit = None
        if channel is not None:
            def emit(t, rss, cpu, gcs, _c=channel, _r=rank):
                _c.emit_resource(_r, t, rss, cpu, gcs)
        sampler = ResourceSampler(res_interval, rank=rank, emit=emit).start()
    #: local mailbox seq -> global message id (recording runs only)
    mid_by_seq: dict[int, int] = {}
    next_prog = 0.0
    t0 = time.perf_counter()
    if rec is not None:
        rec.start(t0)

    def drain_nonblocking():
        nonlocal seq
        while True:
            try:
                src, tag, payload, nwords, mid = inbox.get_nowait()
            except _queue.Empty:
                return
            seq += 1
            if rec is not None:
                mid_by_seq[seq] = mid
            mailbox.add(_Message(src, tag, payload, nwords, 0.0, seq))

    value = None
    while True:
        try:
            op = gen.send(value)
        except StopIteration as stop:
            retval = stop.value
            break
        value = None
        if channel is not None:
            now = time.perf_counter()
            if now >= next_prog:
                next_prog = now + _PROGRESS_INTERVAL
                channel.emit_progress(rank, now - t0, msgs_sent,
                                      words_sent, waited)
        if isinstance(op, SendOp):
            if not 0 <= op.dest < size:
                raise ValueError(f"rank {rank}: send to invalid rank {op.dest}")
            if rec is None:
                wire = (
                    op.payload if transport is None
                    else transport.encode(op.payload, op.nwords)
                )
                inboxes[op.dest].put((rank, op.tag, wire, op.nwords, -1))
            else:
                ts = time.perf_counter()
                mid = msgs_sent * size + rank  # globally unique msg id
                if transport is None:
                    wire = op.payload
                else:
                    spills0 = transport.counters.get("spills", 0)
                    wire = transport.encode(op.payload, op.nwords)
                    if transport.counters.get("spills", 0) > spills0:
                        rec.note_spill(ts, mid)
                inboxes[op.dest].put((rank, op.tag, wire, op.nwords, mid))
                rec.note_send(mid, op.dest, op.tag, op.nwords,
                              ts, time.perf_counter())
            words_sent += op.nwords
            msgs_sent += 1
        elif isinstance(op, RecvOp):
            ts = time.perf_counter() if rec is not None else 0.0
            this_wait = 0.0
            drain_nonblocking()
            msg = mailbox.pop_match(op.source, op.tag)
            give_up = time.perf_counter() + timeout
            while msg is None:
                budget = give_up - time.perf_counter()
                if budget <= 0:
                    raise _RecvTimeout(_timeout_text(rank, op, mailbox, timeout))
                w0 = time.perf_counter()
                try:
                    src, tag, payload, nwords, mid = inbox.get(
                        timeout=min(budget, 1.0)
                    )
                except _queue.Empty:
                    waited += time.perf_counter() - w0
                    this_wait += time.perf_counter() - w0
                    continue
                waited += time.perf_counter() - w0
                this_wait += time.perf_counter() - w0
                give_up = time.perf_counter() + timeout  # progress: rearm
                seq += 1
                if rec is not None:
                    mid_by_seq[seq] = mid
                mailbox.add(_Message(src, tag, payload, nwords, 0.0, seq))
                msg = mailbox.pop_match(op.source, op.tag)
            words_recv += msg.nwords
            msgs_recv += 1
            payload = (
                msg.payload if transport is None
                else transport.decode(msg.payload)
            )
            value = (payload, msg.source, msg.tag)
            if rec is not None:
                rec.note_op(2, ts, time.perf_counter(), this_wait,
                            mid_by_seq.pop(msg.seq, -1))  # 2 = RECV
        elif isinstance(op, ProbeOp):
            ts = time.perf_counter() if rec is not None else 0.0
            drain_nonblocking()
            msg = mailbox.pop_match(op.source, op.tag)
            if msg is not None:
                words_recv += msg.nwords
                msgs_recv += 1
                payload = (
                    msg.payload if transport is None
                    else transport.decode(msg.payload)
                )
                value = (True, (payload, msg.source, msg.tag))
            else:
                value = (False, None)
            if rec is not None:
                mid = -1 if msg is None else mid_by_seq.pop(msg.seq, -1)
                rec.note_op(3, ts, time.perf_counter(), 0.0, mid)  # 3 = PROBE
        elif isinstance(op, (WorkOp, ElapseOp)):
            # modelled time only; the measured clock runs on its own
            pass
        else:
            raise TypeError(f"rank {rank} yielded unknown op {op!r}")

    t_end = time.perf_counter()
    if channel is not None:
        channel.emit_progress(rank, t_end - t0, msgs_sent,
                              words_sent, waited)
    stats = {
        "wall": t_end - t0,
        "waited": waited,
        "words_sent": words_sent,
        "msgs_sent": msgs_sent,
        "words_recv": words_recv,
        "msgs_recv": msgs_recv,
    }
    if transport is not None:
        stats["transport"] = dict(transport.counters)
    if sampler is not None:
        sampler.stop()
        if rec is not None:  # only a traced run has somewhere to put rows
            stats["res"] = sampler.rows()
    if rec is not None:
        rec.finish(t_end)
        stats["rec"] = rec.columns()
        # Post-run clock handshake: answer the parent's probes (already
        # sitting in the pipe) off the measured clock, then hand back
        # the columns.  A rank that died above never reaches this; its
        # process exit EOFs the pipe and the parent abandons recording.
        from ...obs.wallclock import serve_clock_probes

        serve_clock_probes(sync, timeout=timeout)
        sync.close()
    return retval, stats


def _fmt(v):
    return "ANY" if v == ANY else str(v)


def _timeout_text(rank, op, mailbox, timeout):
    census: dict[tuple[int, int], int] = {}
    for m in mailbox.messages():
        census[(m.source, m.tag)] = census.get((m.source, m.tag), 0) + 1
    listing = ", ".join(
        f"(source={s}, tag={t})×{n}" for (s, t), n in sorted(census.items())
    ) or "empty"
    return (
        f"rank {rank}: recv(source={_fmt(op.source)}, tag={_fmt(op.tag)}) "
        f"got no matching message within {timeout:.0f}s "
        f"(likely deadlock); unmatched mailbox: {listing}"
    )
