"""mpi4py backend: run rank programs as real MPI processes.

Registered only when :mod:`mpi4py` is importable.  Unlike the other
backends, this one is SPMD at the process level: the *whole script* runs
once per rank under ``mpiexec``, and :meth:`MPIBackend.run` drives only
the local rank's generator, then allgathers returns and stats so every
process receives the same complete :class:`RunResult`::

    mpiexec -n 4 python my_workload.py     # which calls
    comm = create_communicator("mpi4py", 4)
    result = comm.run(program, per_rank(args))

Matching semantics: MPI tag values are bounded (the standard only
guarantees 15 bits of usable tag), while this library's communicator
layer uses wide tag integers for sub-communicator isolation.  All
traffic therefore travels on one wire tag with the logical ``(source,
tag)`` carried in the payload, and matching happens client-side in the
same indexed mailbox the virtual machine uses — wildcard and FIFO
semantics are identical by construction.
"""

from __future__ import annotations

import time

from ..machine import SP2_1997, MachineModel
from ..runtime import (
    ElapseOp,
    ProbeOp,
    RecvOp,
    RunResult,
    SendOp,
    WorkOp,
    _IndexedMailbox,
    _Message,
    per_rank,
)

__all__ = ["MPIBackend"]

#: The single wire tag every logical message travels on.
_WIRE_TAG = 7


class MPIBackend:
    """Drive rank programs over mpi4py point-to-point messaging."""

    name = "mpi4py"
    deterministic = False
    measured = True

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 mpi_comm=None, tracer=None, **_ignored):
        from mpi4py import MPI

        self._MPI = MPI
        self.mpi_comm = MPI.COMM_WORLD if mpi_comm is None else mpi_comm
        if self.mpi_comm.size != nranks:
            raise ValueError(
                f"launched with {self.mpi_comm.size} MPI ranks but the "
                f"workload needs {nranks} (use mpiexec -n {nranks})"
            )
        self.nranks = nranks
        self.machine = machine
        self.tracer = tracer

    def run(self, program, *args, **kwargs) -> RunResult:
        """Run the local rank's program; collective over ``mpi_comm``."""
        from ..simcomm import Comm

        MPI = self._MPI
        mpi = self.mpi_comm
        rank, size = mpi.rank, self.nranks
        a = [x.values[rank] if isinstance(x, per_rank) else x for x in args]
        kw = {
            k: (v.values[rank] if isinstance(v, per_rank) else v)
            for k, v in kwargs.items()
        }
        comm = Comm(rank, size, self.machine)
        gen = program(comm, *a, **kw)
        if not hasattr(gen, "send"):
            raise TypeError(
                "rank program must be a generator function "
                f"(got {type(gen).__name__} from {program!r})"
            )

        mailbox = _IndexedMailbox()
        seq = 0
        waited = 0.0
        words_sent = msgs_sent = words_recv = msgs_recv = 0
        t0 = time.perf_counter()

        def drain_nonblocking():
            nonlocal seq
            while mpi.iprobe(source=MPI.ANY_SOURCE, tag=_WIRE_TAG):
                src, tag, payload, nwords = mpi.recv(
                    source=MPI.ANY_SOURCE, tag=_WIRE_TAG
                )
                seq += 1
                mailbox.add(_Message(src, tag, payload, nwords, 0.0, seq))

        value = None
        while True:
            try:
                op = gen.send(value)
            except StopIteration as stop:
                retval = stop.value
                break
            value = None
            if isinstance(op, SendOp):
                mpi.send((rank, op.tag, op.payload, op.nwords),
                         dest=op.dest, tag=_WIRE_TAG)
                words_sent += op.nwords
                msgs_sent += 1
            elif isinstance(op, RecvOp):
                drain_nonblocking()
                msg = mailbox.pop_match(op.source, op.tag)
                while msg is None:
                    w0 = time.perf_counter()
                    src, tag, payload, nwords = mpi.recv(
                        source=MPI.ANY_SOURCE, tag=_WIRE_TAG
                    )
                    waited += time.perf_counter() - w0
                    seq += 1
                    mailbox.add(_Message(src, tag, payload, nwords, 0.0, seq))
                    msg = mailbox.pop_match(op.source, op.tag)
                words_recv += msg.nwords
                msgs_recv += 1
                value = (msg.payload, msg.source, msg.tag)
            elif isinstance(op, ProbeOp):
                drain_nonblocking()
                msg = mailbox.pop_match(op.source, op.tag)
                if msg is not None:
                    words_recv += msg.nwords
                    msgs_recv += 1
                    value = (True, (msg.payload, msg.source, msg.tag))
                else:
                    value = (False, None)
            elif isinstance(op, (WorkOp, ElapseOp)):
                pass  # modelled time only; real clocks are measured
            else:
                raise TypeError(f"rank {rank} yielded unknown op {op!r}")
        wall = time.perf_counter() - t0

        stats = mpi.allgather(
            (retval, wall, waited, words_sent, msgs_sent,
             words_recv, msgs_recv)
        )
        returns = [s[0] for s in stats]
        clocks = [s[1] for s in stats]
        busy = [s[1] - s[2] for s in stats]
        makespan = max(clocks) if clocks else 0.0
        return RunResult(
            returns=returns,
            clocks=clocks,
            total_messages=sum(s[4] for s in stats),
            total_words=sum(s[3] for s in stats),
            words_sent_per_rank=[s[3] for s in stats],
            words_recv_per_rank=[s[5] for s in stats],
            msgs_sent_per_rank=[s[4] for s in stats],
            msgs_recv_per_rank=[s[6] for s in stats],
            busy_per_rank=busy,
            idle_per_rank=[makespan - b for b in busy],
            wall_seconds=wall,
            backend=self.name,
        )
