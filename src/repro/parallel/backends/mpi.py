"""mpi4py backend: run rank programs as real MPI processes.

Registered only when :mod:`mpi4py` is importable.  Unlike the other
backends, this one is SPMD at the process level: the *whole script* runs
once per rank under ``mpiexec``, and :meth:`MPIBackend.run` drives only
the local rank's generator, then allgathers returns and stats so every
process receives the same complete :class:`RunResult`::

    mpiexec -n 4 python my_workload.py     # which calls
    comm = create_communicator("mpi4py", 4)
    result = comm.run(program, per_rank(args))

Matching semantics: MPI tag values are bounded (the standard only
guarantees 15 bits of usable tag), while this library's communicator
layer uses wide tag integers for sub-communicator isolation.  All
traffic therefore travels on one wire tag with the logical ``(source,
tag)`` carried in the payload, and matching happens client-side in the
same indexed mailbox the virtual machine uses — wildcard and FIFO
semantics are identical by construction.
"""

from __future__ import annotations

import time

from ..machine import SP2_1997, MachineModel
from ..runtime import (
    ElapseOp,
    ProbeOp,
    RecvOp,
    RunResult,
    SendOp,
    WorkOp,
    _IndexedMailbox,
    _Message,
    per_rank,
)

__all__ = ["MPIBackend"]

#: The single wire tag every logical message travels on.
_WIRE_TAG = 7

#: Wire tag reserved for the clock-alignment handshake (measured tracing).
_SYNC_TAG = 8


class MPIBackend:
    """Drive rank programs over mpi4py point-to-point messaging."""

    name = "mpi4py"
    deterministic = False
    measured = True

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 mpi_comm=None, tracer=None, **_ignored):
        from mpi4py import MPI

        self._MPI = MPI
        self.mpi_comm = MPI.COMM_WORLD if mpi_comm is None else mpi_comm
        if self.mpi_comm.size != nranks:
            raise ValueError(
                f"launched with {self.mpi_comm.size} MPI ranks but the "
                f"workload needs {nranks} (use mpiexec -n {nranks})"
            )
        self.nranks = nranks
        self.machine = machine
        self.tracer = tracer

    def run(self, program, *args, **kwargs) -> RunResult:
        """Run the local rank's program; collective over ``mpi_comm``."""
        from ..simcomm import Comm

        MPI = self._MPI
        mpi = self.mpi_comm
        rank, size = mpi.rank, self.nranks
        a = [x.values[rank] if isinstance(x, per_rank) else x for x in args]
        kw = {
            k: (v.values[rank] if isinstance(v, per_rank) else v)
            for k, v in kwargs.items()
        }
        comm = Comm(rank, size, self.machine)
        gen = program(comm, *a, **kw)
        if not hasattr(gen, "send"):
            raise TypeError(
                "rank program must be a generator function "
                f"(got {type(gen).__name__} from {program!r})"
            )

        mailbox = _IndexedMailbox()
        seq = 0
        waited = 0.0
        words_sent = msgs_sent = words_recv = msgs_recv = 0

        # Measured tracing is collective: if *any* rank carries a tracer,
        # every rank records (the wire format and the handshake must
        # agree across the job).
        recording = bool(mpi.allreduce(self.tracer is not None, op=MPI.LOR))
        rec = None
        offsets: dict[int, float] = {}
        skews: dict[int, float] = {}
        if recording:
            from ...obs.wallclock import SYNC_ROUNDS, WallRecorder

            if rank == 0:
                offsets[0], skews[0] = 0.0, 0.0
                for peer in range(1, size):
                    best_rtt, best_off = float("inf"), 0.0
                    for _ in range(SYNC_ROUNDS):
                        t_send = time.perf_counter()
                        mpi.send(0, dest=peer, tag=_SYNC_TAG)
                        t_peer = mpi.recv(source=peer, tag=_SYNC_TAG)
                        t_recv = time.perf_counter()
                        rtt = t_recv - t_send
                        if rtt < best_rtt:
                            best_rtt = rtt
                            best_off = t_peer - (t_send + t_recv) / 2.0
                    offsets[peer], skews[peer] = best_off, best_rtt / 2.0
            else:
                for _ in range(SYNC_ROUNDS):
                    mpi.recv(source=0, tag=_SYNC_TAG)
                    mpi.send(time.perf_counter(), dest=0, tag=_SYNC_TAG)
            mpi.barrier()  # start line: recorders begin together
            rec = WallRecorder()
        mid_by_seq: dict[int, int] = {}
        t0 = time.perf_counter()
        if rec is not None:
            rec.start(t0)

        def drain_nonblocking():
            nonlocal seq
            while mpi.iprobe(source=MPI.ANY_SOURCE, tag=_WIRE_TAG):
                item = mpi.recv(source=MPI.ANY_SOURCE, tag=_WIRE_TAG)
                src, tag, payload, nwords = item[:4]
                seq += 1
                if rec is not None:
                    mid_by_seq[seq] = item[4] if len(item) > 4 else -1
                mailbox.add(_Message(src, tag, payload, nwords, 0.0, seq))

        value = None
        while True:
            try:
                op = gen.send(value)
            except StopIteration as stop:
                retval = stop.value
                break
            value = None
            if isinstance(op, SendOp):
                if rec is None:
                    mpi.send((rank, op.tag, op.payload, op.nwords),
                             dest=op.dest, tag=_WIRE_TAG)
                else:
                    ts = time.perf_counter()
                    mid = msgs_sent * size + rank  # globally unique
                    mpi.send((rank, op.tag, op.payload, op.nwords, mid),
                             dest=op.dest, tag=_WIRE_TAG)
                    rec.note_send(mid, op.dest, op.tag, op.nwords,
                                  ts, time.perf_counter())
                words_sent += op.nwords
                msgs_sent += 1
            elif isinstance(op, RecvOp):
                ts = time.perf_counter() if rec is not None else 0.0
                this_wait = 0.0
                drain_nonblocking()
                msg = mailbox.pop_match(op.source, op.tag)
                while msg is None:
                    w0 = time.perf_counter()
                    item = mpi.recv(source=MPI.ANY_SOURCE, tag=_WIRE_TAG)
                    src, tag, payload, nwords = item[:4]
                    waited += time.perf_counter() - w0
                    this_wait += time.perf_counter() - w0
                    seq += 1
                    if rec is not None:
                        mid_by_seq[seq] = item[4] if len(item) > 4 else -1
                    mailbox.add(_Message(src, tag, payload, nwords, 0.0, seq))
                    msg = mailbox.pop_match(op.source, op.tag)
                words_recv += msg.nwords
                msgs_recv += 1
                value = (msg.payload, msg.source, msg.tag)
                if rec is not None:
                    rec.note_op(2, ts, time.perf_counter(), this_wait,
                                mid_by_seq.pop(msg.seq, -1))  # 2 = RECV
            elif isinstance(op, ProbeOp):
                ts = time.perf_counter() if rec is not None else 0.0
                drain_nonblocking()
                msg = mailbox.pop_match(op.source, op.tag)
                if msg is not None:
                    words_recv += msg.nwords
                    msgs_recv += 1
                    value = (True, (msg.payload, msg.source, msg.tag))
                else:
                    value = (False, None)
                if rec is not None:
                    mid = -1 if msg is None else mid_by_seq.pop(msg.seq, -1)
                    rec.note_op(3, ts, time.perf_counter(), 0.0, mid)
            elif isinstance(op, (WorkOp, ElapseOp)):
                pass  # modelled time only; real clocks are measured
            else:
                raise TypeError(f"rank {rank} yielded unknown op {op!r}")
        t_end = time.perf_counter()
        wall = t_end - t0

        stats = mpi.allgather(
            (retval, wall, waited, words_sent, msgs_sent,
             words_recv, msgs_recv)
        )
        returns = [s[0] for s in stats]
        clocks = [s[1] for s in stats]
        busy = [s[1] - s[2] for s in stats]
        makespan = max(clocks) if clocks else 0.0
        merged_nodes = merged_msgs = None
        if recording:
            rec.finish(t_end)
            streams_all = mpi.allgather(rec.columns())
            offsets, skews = mpi.bcast((offsets, skews), root=0)
            if self.tracer is not None:
                from ...obs.wallclock import record_measured_run

                merged_nodes, merged_msgs = record_measured_run(
                    self.tracer,
                    {r: cols for r, cols in enumerate(streams_all)},
                    offsets, skews,
                    nranks=size, backend=self.name,
                    waited=[s[2] for s in stats],
                    msgs_sent=[s[4] for s in stats],
                    msgs_recv=[s[6] for s in stats],
                    words_sent=[s[3] for s in stats],
                    words_recv=[s[5] for s in stats],
                )
        return RunResult(
            returns=returns,
            clocks=clocks,
            total_messages=sum(s[4] for s in stats),
            total_words=sum(s[3] for s in stats),
            words_sent_per_rank=[s[3] for s in stats],
            words_recv_per_rank=[s[5] for s in stats],
            msgs_sent_per_rank=[s[4] for s in stats],
            msgs_recv_per_rank=[s[6] for s in stats],
            busy_per_rank=busy,
            idle_per_rank=[makespan - b for b in busy],
            wall_seconds=wall,
            backend=self.name,
            nodes=merged_nodes,
            msgs=merged_msgs,
        )
