"""Pluggable communicator backends for SPMD rank programs.

A rank program is a generator that yields
:class:`~repro.parallel.runtime.SendOp` / ``RecvOp`` / ``ProbeOp`` /
``WorkOp`` / ``ElapseOp`` descriptors (usually through the
:class:`~repro.parallel.simcomm.Comm` API).  A *backend* is a driver that
executes the same program on every rank and satisfies the yielded
operations over some transport:

``virtual``
    The deterministic :class:`~repro.parallel.runtime.VirtualMachine`:
    single-process, LogGP-modelled clocks, full causal tracing.  Every
    result is bit-reproducible.
``multiprocessing``
    One OS process per rank (``fork`` start method); sends travel over
    real ``multiprocessing`` queues with ``(source, tag)`` matching and
    wildcard semantics identical to the virtual machine's mailbox.
    Clocks are measured host wall seconds.
``shm``
    The ``multiprocessing`` driver with a zero-copy shared-memory
    transport: numpy payloads cross rank boundaries through a slab pool
    (:mod:`repro.parallel.backends.shm`) as typed wire headers instead
    of pickles; everything else spills to the queue path unchanged.
``mpi4py``
    One MPI rank per process under ``mpiexec``; registered only when
    :mod:`mpi4py` is importable.

The registry follows chainermn's ``create_communicator`` idiom: backends
are looked up by name, and :func:`available_backends` lists what the
current interpreter can actually run.

>>> comm = create_communicator("virtual", 4)
>>> result = comm.run(program, per_rank(args))

Backends accept machine/tracer keywords uniformly; keywords a backend
does not understand (e.g. a tracer on ``multiprocessing``) are accepted
and ignored where harmless so call sites can stay backend-agnostic.
"""

from __future__ import annotations

import importlib.util
from typing import Callable

from ..machine import SP2_1997, MachineModel

__all__ = [
    "available_backends",
    "create_communicator",
    "register_backend",
    "resolve_backend",
    "record_backend_run",
]

#: name -> factory(nranks, machine, **opts) returning a backend object
#: with ``run(program, *args, **kwargs) -> RunResult``.
_REGISTRY: dict[str, Callable] = {}


def register_backend(name: str, factory: Callable | None = None):
    """Register a communicator backend factory under ``name``.

    Usable directly (``register_backend("x", make_x)``) or as a class /
    function decorator (``@register_backend("x")``).
    """
    if factory is None:
        def decorator(f):
            register_backend(name, f)
            return f

        return decorator
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory
    return factory


def available_backends() -> tuple[str, ...]:
    """Names of the registered communicator backends, sorted."""
    return tuple(sorted(_REGISTRY))


def create_communicator(
    name: str = "virtual",
    nranks: int = 1,
    machine: MachineModel = SP2_1997,
    **opts,
):
    """Build the named communicator backend for ``nranks`` ranks.

    ``machine`` parameterises the modelled clock (``virtual``) and the
    work/message accounting the measured backends keep for reference.
    Additional keywords are passed to the backend factory (e.g.
    ``tracer=`` for ``virtual``, ``timeout=`` for ``multiprocessing``).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        hint = ""
        if name == "mpi4py":
            hint = " (the mpi4py backend registers only when mpi4py is importable)"
        raise ValueError(
            f"unknown communicator backend {name!r}; available: "
            f"{', '.join(available_backends())}{hint}"
        ) from None
    return factory(nranks, machine=machine, **opts)


def resolve_backend(
    backend,
    nranks: int,
    machine: MachineModel = SP2_1997,
    **opts,
):
    """Coerce a backend name or ready-made backend object to a backend.

    The dist-layer entry points accept either form; an object just needs
    a ``run`` method and is checked for a matching rank count when it
    exposes ``nranks``.
    """
    if isinstance(backend, str):
        return create_communicator(backend, nranks, machine=machine, **opts)
    if not hasattr(backend, "run"):
        raise TypeError(
            f"backend must be a name or an object with .run, got {backend!r}"
        )
    got = getattr(backend, "nranks", nranks)
    if got != nranks:
        raise ValueError(
            f"backend spans {got} ranks but the workload needs {nranks}"
        )
    return backend


def record_backend_run(tracer, phase: str, result) -> None:
    """Record one backend run's clocks into the obs layer.

    Emits labelled counters ``repro.backend.wall_seconds`` (host wall
    time of the run, when the backend measured it) and
    ``repro.backend.makespan_seconds`` (the run's own clock — modelled
    on ``virtual``, measured on the real backends), both labelled with
    the phase and backend name, so a ``repro calibrate`` report can
    compare measured wall seconds against LogGP virtual seconds for the
    same workload.
    """
    if tracer is None:
        return
    name = getattr(result, "backend", "virtual")
    tracer.metric(
        "repro.backend.makespan_seconds", result.makespan,
        kind="counter", phase=phase, backend=name,
    )
    if result.wall_seconds is not None:
        tracer.metric(
            "repro.backend.wall_seconds", result.wall_seconds,
            kind="counter", phase=phase, backend=name,
        )


# --- built-in backends -------------------------------------------------------

from .virtual import VirtualBackend  # noqa: E402

register_backend("virtual", VirtualBackend)

from .mp import MultiprocessingBackend  # noqa: E402

register_backend("multiprocessing", MultiprocessingBackend)

from .shm import SharedMemoryBackend  # noqa: E402

register_backend("shm", SharedMemoryBackend)

# mpi4py rides along only when the package exists (chainermn-style
# conditional registration: the import itself stays lazy until first use).
if importlib.util.find_spec("mpi4py") is not None:  # pragma: no cover
    from .mpi import MPIBackend

    register_backend("mpi4py", MPIBackend)
