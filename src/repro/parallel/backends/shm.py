"""Zero-copy shared-memory transport for the real-core backends.

The plain ``multiprocessing`` backend pushes every payload through a
``ctx.Queue``, which pickles it — serializing the very numpy words the
LogGP model charges ``t_word`` for.  This module replaces that wire for
array payloads with a per-run :mod:`multiprocessing.shared_memory` slab
pool:

* :class:`SlabPool` — one shared segment carved into fixed-size slabs,
  with a lock-guarded free-list stack (also in shared memory) so any
  rank process can allocate and any rank process can recycle.
* :class:`ShmTransport` — the wire codec.  A send packs an eligible
  ndarray into a slab with a plain ``memcpy`` and ships only a typed
  header (:class:`ShmRef`: dtype, shape, strides, slab offset) through
  the queue; tuples/lists are encoded shallowly so mixed payloads keep
  their array members zero-copy.  Everything else — oversized arrays
  when no slab fits, tiny arrays below ``min_bytes``, object/void
  dtypes, non-array objects, or any array when the pool is exhausted —
  *spills* to the ordinary pickle path unchanged.
* :class:`SharedMemoryBackend` — the ``shm`` communicator backend: the
  :class:`~repro.parallel.backends.mp.MultiprocessingBackend` driver
  (same forked processes, same ``(source, tag)`` mailbox matching)
  with this transport installed.

Ownership and copy-on-pop semantics
-----------------------------------
A slab has exactly one writer (the sender, before the header is
enqueued) and exactly one reader (the rank whose mailbox pop matches
the header), so popping a message *transfers ownership*: the receiver
gets a writable ndarray view directly over the slab — no copy, and
in-place mutation is safe because nobody else can alias the slab.  The
slab returns to the free list when the view (and every view derived
from it) is garbage collected, via a finalizer that defers the actual
free to the next transport operation — finalizers run inside GC, where
taking the pool lock could deadlock against an allocation already
holding it.  ``copy_on_pop=True`` instead materializes a private copy
at pop time and recycles the slab immediately, bounding slab lifetime
when programs retain received arrays indefinitely.

Counters
--------
Each rank counts ``bytes_zero_copy`` / ``msgs_zero_copy`` (packed
through slabs), ``bytes_pickled`` / ``msgs_pickled`` (spilled), and
``slab_reuse`` (allocations served by a recycled slab).  The backend
aggregates them onto ``RunResult.transport``, emits them as
``repro.transport.*`` counters into the metrics registry when a tracer
is installed, and accumulates them into a module-level tally that
``repro calibrate`` snapshots around each workload run.
"""

from __future__ import annotations

import time
import weakref
from typing import NamedTuple

import numpy as np

from ..machine import SP2_1997, MachineModel
from .mp import DEFAULT_GRACE, DEFAULT_TIMEOUT, MultiprocessingBackend

__all__ = [
    "ShmRef",
    "SlabPool",
    "ShmTransport",
    "SharedMemoryBackend",
    "reset_transport_totals",
    "transport_totals",
]

#: Slab size: holds the library's typical element blocks; larger arrays
#: spill to pickle (callers streaming bigger payloads raise
#: ``slab_bytes``).  Kept modest because pool pages are prefaulted at
#: creation and warmed per rank — cost is linear in the pool size.
DEFAULT_SLAB_BYTES = 1 << 20
#: Arrays smaller than this ride the pickle path: a slab round-trip
#: costs two lock acquisitions, which small pickles beat.
DEFAULT_MIN_BYTES = 256
#: Seconds a sender waits for a recycled slab before spilling to pickle.
#: A healthy receiver frees a slab every time it pops a message, so the
#: wait is normally one message-service time; a stuck receiver costs at
#: most this much extra latency per send before the pickle fallback.
DEFAULT_ALLOC_WAIT = 0.02

_COUNTER_KEYS = (
    "bytes_zero_copy", "bytes_pickled", "msgs_zero_copy", "msgs_pickled",
    "slab_reuse", "spills",
)

#: Module-level tally across backend runs (parent process only), so
#: ``repro calibrate`` can report which path the workload's messages
#: took without threading a tracer through every dist entry point.
_RUN_TOTALS = {k: 0 for k in _COUNTER_KEYS}


def reset_transport_totals() -> None:
    """Zero the module-level transport tally (start of a measured run)."""
    for k in _COUNTER_KEYS:
        _RUN_TOTALS[k] = 0


def transport_totals() -> dict[str, int]:
    """Snapshot of the transport counters accumulated since the last reset."""
    return dict(_RUN_TOTALS)


class ShmRef(NamedTuple):
    """Typed wire header for one packed array (crosses the queue instead
    of the array's bytes)."""

    slab: int  #: slab index (for recycling)
    offset: int  #: byte offset of the data in the pool's data segment
    dtype: str  #: ``np.dtype.str`` — reconstructs dtype incl. endianness
    shape: tuple
    strides: tuple  #: strides of the *packed* copy (C or F contiguous)
    nbytes: int


# wire kinds: the first element of every queue payload under this transport
_KIND_PICKLE = 0  #: ``(0, payload)`` — spill: payload pickles as before
_KIND_ARRAY = 1  #: ``(1, ShmRef)`` — one packed ndarray
_KIND_SEQ = 2  #: ``(2, is_tuple, [(kind, item), ...])`` — shallow container


class SlabPool:
    """Fixed-size slab allocator over one shared-memory segment.

    The free list is a LIFO stack of slab indices living in a second
    (small) shared segment, guarded by a fork-inherited lock, so every
    rank process allocates and recycles against the same state.  A
    per-slab ``used`` flag (same segment) distinguishes first use from
    reuse for the ``slab_reuse`` counter.

    Both segments are created by the parent *before* forking; children
    inherit the mappings by memory image and never close or unlink —
    :meth:`dispose` (parent, after the run) is the single cleanup point.
    """

    def __init__(self, nslabs: int, slab_bytes: int, ctx=None,
                 prefault: bool = True):
        if nslabs < 1 or slab_bytes < 8:
            raise ValueError(
                f"need nslabs >= 1 and slab_bytes >= 8, "
                f"got {nslabs} x {slab_bytes}"
            )
        import multiprocessing
        from multiprocessing import shared_memory

        if ctx is None:
            ctx = multiprocessing.get_context("fork")
        self.nslabs = nslabs
        self.slab_bytes = slab_bytes
        self._data = shared_memory.SharedMemory(
            create=True, size=nslabs * slab_bytes
        )
        if prefault:
            # Touch one byte per page so tmpfs allocates every slab page
            # *now*, in the parent, off any rank's measured clock — a
            # first-touch fault (allocate + zero) costs ~10x a plain
            # memcpy of the same page on the sender's critical path.
            pages = np.ndarray((nslabs * slab_bytes,), dtype=np.uint8,
                               buffer=self._data.buf)
            pages[::4096] = 0
            del pages
        # meta layout: [0] free-stack top, [1:1+n] stack, [1+n:1+2n] used flags
        self._meta = shared_memory.SharedMemory(
            create=True, size=(1 + 2 * nslabs) * 8
        )
        meta = np.ndarray((1 + 2 * nslabs,), dtype=np.int64,
                          buffer=self._meta.buf)
        meta[0] = nslabs
        meta[1:1 + nslabs] = np.arange(nslabs)
        meta[1 + nslabs:] = 0
        self._meta_arr = meta
        self._lock = ctx.Lock()
        self._disposed = False

    @property
    def data_buf(self) -> memoryview:
        """The data segment's buffer (valid in every inheriting process)."""
        return self._data.buf

    def alloc(self) -> tuple[int, bool] | None:
        """Pop a free slab; returns ``(index, reused)`` or None when empty."""
        with self._lock:
            m = self._meta_arr
            top = int(m[0]) - 1
            if top < 0:
                return None
            m[0] = top
            idx = int(m[1 + top])
            reused = bool(m[1 + self.nslabs + idx])
            m[1 + self.nslabs + idx] = 1
            return idx, reused

    def free(self, idx: int) -> None:
        """Push one slab back onto the free list."""
        self.free_many((idx,))

    def free_many(self, indices) -> None:
        """Recycle several slabs under a single lock acquisition."""
        with self._lock:
            m = self._meta_arr
            top = int(m[0])
            for idx in indices:
                m[1 + top] = idx
                top += 1
            m[0] = top

    def free_count(self) -> int:
        with self._lock:
            return int(self._meta_arr[0])

    def dispose(self) -> None:
        """Release and unlink both segments (parent, after children exit)."""
        if self._disposed:
            return
        self._disposed = True
        self._meta_arr = None  # drop the numpy export before mmap.close()
        for seg in (self._data, self._meta):
            try:
                seg.close()
            except BufferError:  # pragma: no cover — a live view leaked
                continue
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


class ShmTransport:
    """Wire codec installed into the ``multiprocessing`` driver.

    One instance is built parent-side per run and inherited by every
    rank process at fork, so the counters and the pending-free list are
    per-process (each child tallies its own traffic); the pool state is
    genuinely shared.
    """

    def __init__(self, pool: SlabPool, min_bytes: int = DEFAULT_MIN_BYTES,
                 copy_on_pop: bool = False,
                 alloc_wait: float = DEFAULT_ALLOC_WAIT):
        self.pool = pool
        self.min_bytes = min_bytes
        self.copy_on_pop = copy_on_pop
        self.alloc_wait = alloc_wait
        self.counters = {k: 0 for k in _COUNTER_KEYS}
        # slabs whose receiver-side views were GC'd; finalizers only
        # append (lock-free) — the actual free happens on the next
        # encode/decode, outside any GC context
        self._pending_free: list[int] = []

    # --- sender side --------------------------------------------------------

    def encode(self, payload, nwords: int):
        """Encode one payload for the wire; called at every SendOp."""
        self._drain_pending()
        c = self.counters
        if isinstance(payload, np.ndarray):
            ref = self._pack(payload)
            if ref is not None:
                c["msgs_zero_copy"] += 1
                return (_KIND_ARRAY, ref)
        elif type(payload) in (tuple, list) and any(
            isinstance(x, np.ndarray) and self._eligible(x) for x in payload
        ):
            items = []
            for x in payload:
                ref = self._pack(x) if isinstance(x, np.ndarray) else None
                if ref is not None:
                    items.append((_KIND_ARRAY, ref))
                else:
                    items.append((_KIND_PICKLE, x))
                    if isinstance(x, np.ndarray):
                        c["bytes_pickled"] += x.nbytes
            c["msgs_pickled" if all(
                k == _KIND_PICKLE for k, _ in items
            ) else "msgs_zero_copy"] += 1
            return (_KIND_SEQ, isinstance(payload, tuple), items)
        c["msgs_pickled"] += 1
        c["bytes_pickled"] += 8 * nwords
        return (_KIND_PICKLE, payload)

    def _eligible(self, arr: np.ndarray) -> bool:
        dt = arr.dtype
        return (
            not dt.hasobject
            and dt.kind != "V"
            and self.min_bytes <= arr.nbytes <= self.pool.slab_bytes
        )

    def _pack(self, arr: np.ndarray) -> ShmRef | None:
        """memcpy ``arr`` into a free slab; None means spill to pickle."""
        if not self._eligible(arr):
            return None
        got = self.pool.alloc()
        if got is None and self.alloc_wait > 0:
            # Pool exhausted: a streaming sender outrunning its receiver
            # lands here.  Waiting a bounded moment for a recycled slab
            # beats spilling — the pickle path costs several times a
            # slab round-trip at these sizes — and doubles as
            # backpressure that keeps the slab working set small.
            deadline = time.perf_counter() + self.alloc_wait
            while got is None and time.perf_counter() < deadline:
                time.sleep(2e-4)
                self._drain_pending()
                got = self.pool.alloc()
        if got is None:  # still exhausted: graceful spill
            self.counters["spills"] += 1
            return None
        idx, reused = got
        if reused:
            self.counters["slab_reuse"] += 1
        offset = idx * self.pool.slab_bytes
        # pack preserving F order when the source has it; anything
        # non-contiguous packs C-contiguous (values, shape, dtype kept)
        order = "F" if (arr.flags.f_contiguous
                        and not arr.flags.c_contiguous) else "C"
        dst = np.ndarray(arr.shape, dtype=arr.dtype,
                         buffer=self.pool.data_buf, offset=offset,
                         order=order)
        np.copyto(dst, arr)
        self.counters["bytes_zero_copy"] += arr.nbytes
        return ShmRef(idx, offset, arr.dtype.str, arr.shape, dst.strides,
                      arr.nbytes)

    def warmup(self) -> None:
        """Map the pool's pages into *this* process (off the clock).

        Linux does not copy page-table entries for shared file mappings
        across ``fork``, so each rank's first access to a slab page
        takes a minor fault even after the parent prefaulted the pool.
        The driver calls this once per rank before starting its measured
        clock.  Read-only on purpose: other ranks may already be
        streaming into slabs by the time a late-forked rank warms up.
        """
        pages = np.ndarray((self.pool.nslabs * self.pool.slab_bytes,),
                           dtype=np.uint8, buffer=self.pool.data_buf)
        int(pages[::4096].sum())  # fault every page in
        del pages

    # --- receiver side ------------------------------------------------------

    def decode(self, wire):
        """Decode one popped wire payload; called at RecvOp/ProbeOp pop."""
        self._drain_pending()
        kind = wire[0]
        if kind == _KIND_PICKLE:
            return wire[1]
        if kind == _KIND_ARRAY:
            return self._unpack(wire[1])
        _, is_tuple, items = wire
        out = [
            self._unpack(v) if k == _KIND_ARRAY else v for k, v in items
        ]
        return tuple(out) if is_tuple else out

    def _unpack(self, ref: ShmRef) -> np.ndarray:
        arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                         buffer=self.pool.data_buf, offset=ref.offset,
                         strides=ref.strides)
        if self.copy_on_pop:
            out = arr.copy()
            del arr
            self.pool.free(ref.slab)
            return out
        # ownership transfer: the receiver is the slab's only aliaser,
        # so the view is writable; recycle when the view is collected
        weakref.finalize(arr, self._pending_free.append, ref.slab)
        return arr

    def _drain_pending(self) -> None:
        if self._pending_free:
            pend, self._pending_free = self._pending_free, []
            self.pool.free_many(pend)

    # --- lifecycle ----------------------------------------------------------

    def note_run_totals(self, totals: dict) -> None:
        """Parent-side hook: fold one run's aggregated counters into the
        module tally ``repro calibrate`` snapshots."""
        for k, v in totals.items():
            if k in _RUN_TOTALS:
                _RUN_TOTALS[k] += int(v)

    def dispose(self) -> None:
        self.pool.dispose()


class SharedMemoryBackend(MultiprocessingBackend):
    """The ``shm`` backend: forked rank processes whose numpy payloads
    cross rank boundaries through the slab pool instead of pickling."""

    name = "shm"
    deterministic = False
    measured = True

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 timeout: float = DEFAULT_TIMEOUT,
                 grace: float = DEFAULT_GRACE, tracer=None,
                 nslabs: int | None = None,
                 slab_bytes: int = DEFAULT_SLAB_BYTES,
                 min_bytes: int = DEFAULT_MIN_BYTES,
                 copy_on_pop: bool = False,
                 alloc_wait: float = DEFAULT_ALLOC_WAIT, **_ignored):
        super().__init__(nranks, machine=machine, timeout=timeout,
                         grace=grace, tracer=tracer)
        # Default pool sizing: a sender that outruns its receiver holds
        # slabs in flight until the receiver's views are collected, but
        # ``alloc_wait`` backpressure caps the depth at the pool size —
        # and a *small* pool keeps the slab working set cache-warm.
        # 4 slabs/rank-pair handily covers the library's exchange
        # patterns; prefaulting (SlabPool) keeps creation cost linear in
        # this, so don't oversize.
        self.nslabs = nslabs if nslabs is not None else max(16, 4 * nranks)
        self.slab_bytes = slab_bytes
        self.min_bytes = min_bytes
        self.copy_on_pop = copy_on_pop
        self.alloc_wait = alloc_wait

    def _make_transport(self, ctx):
        pool = SlabPool(self.nslabs, self.slab_bytes, ctx=ctx)
        return ShmTransport(pool, min_bytes=self.min_bytes,
                            copy_on_pop=self.copy_on_pop,
                            alloc_wait=self.alloc_wait)
