"""The deterministic LogGP virtual machine behind the backend interface."""

from __future__ import annotations

import time

from ..machine import SP2_1997, MachineModel
from ..runtime import RunResult, VirtualMachine

__all__ = ["VirtualBackend"]


class VirtualBackend:
    """Backend adapter over :class:`~repro.parallel.runtime.VirtualMachine`.

    Clocks are modelled virtual seconds; results are bit-identical to
    driving the machine directly.  The adapter additionally stamps the
    host wall time the (single-process) run took, so calibration reports
    can show the simulator's own overhead next to real-execution
    backends.
    """

    name = "virtual"
    #: Same inputs always give the same clocks and payloads.
    deterministic = True
    #: Clocks are modelled, not measured.
    measured = False

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 trace: bool = False, tracer=None, **_ignored):
        self.nranks = nranks
        self.machine = machine
        self._vm = VirtualMachine(nranks, machine, trace=trace, tracer=tracer)

    def run(self, program, *args, **kwargs) -> RunResult:
        t0 = time.perf_counter()
        res = self._vm.run(program, *args, **kwargs)
        res.wall_seconds = time.perf_counter() - t0
        res.backend = self.name
        return res
