"""Bulk-synchronous cost accounting for vectorized partition-wise phases.

Some phases of the framework (edge-marking propagation, subdivision,
similarity-row construction) are implemented as NumPy-vectorized loops over
partitions rather than as generator rank programs.  Those phases model their
parallel execution time through a :class:`CostLedger`: per-rank virtual
clocks charged with local work and per-message transfer costs, synchronised
at superstep barriers — the BSP view of the same machine model used by
:class:`~repro.parallel.runtime.VirtualMachine`.
"""

from __future__ import annotations

import math

import numpy as np

from .machine import MachineModel, SP2_1997

__all__ = ["CostLedger"]


class CostLedger:
    """Per-rank virtual clocks for a bulk-synchronous phase.

    All ``add_*`` methods accumulate onto rank clocks; :meth:`barrier`
    synchronises every clock to the maximum plus a dissemination-barrier
    term of ``ceil(log2 P)`` message startups.

    With ``tracer`` set to a :class:`repro.obs.Tracer`, every charged
    message/word is also added to the ``ledger.messages`` /
    ``ledger.words`` counters, and per-rank traffic is recorded as
    labelled metrics (``repro.ledger.messages_sent`` / ``messages_recv``
    / ``words_sent`` / ``words_recv``), so traffic shows up in exported
    traces with the rank dimension intact.

    A traced ledger additionally emits one ``ledger.superstep`` point
    event per barrier-to-barrier superstep, carrying the per-rank
    work/comm second decomposition (ledger-local ``start``/``duration``,
    placed on the trace timeline by the event's ``v_time``) — the
    bulk-synchronous half of the causal record consumed by
    :mod:`repro.obs.causal`.  Call :meth:`close` after the last charge to
    flush the trailing (barrier-less) superstep.
    """

    def __init__(self, nranks: int, machine: MachineModel = SP2_1997,
                 tracer=None):
        if nranks < 1:
            raise ValueError(f"need at least one rank, got {nranks}")
        self.nranks = nranks
        self.machine = machine
        self.tracer = tracer
        self.clocks = np.zeros(nranks, dtype=np.float64)
        self.total_messages = 0
        self.total_words = 0
        self._sstep = 0
        self._step_t0 = 0.0
        self._step_msgs = 0
        self._work = np.zeros(nranks, dtype=np.float64)
        self._comm = np.zeros(nranks, dtype=np.float64)

    def _count_traffic(self, messages: int, words: int) -> None:
        self.total_messages += messages
        self.total_words += words
        if self.tracer is not None:
            self.tracer.count("ledger.messages", messages)
            self.tracer.count("ledger.words", words)

    def add_work(self, rank: int, units: float) -> None:
        """Charge ``units`` of computation to one rank."""
        t = self.machine.work_time(units)
        self.clocks[rank] += t
        self._work[rank] += t

    def add_work_all(self, units) -> None:
        """Charge per-rank work from a scalar or length-``nranks`` array."""
        units = np.asarray(units, dtype=np.float64)
        if units.ndim == 0:
            units = np.full(self.nranks, float(units))
        if units.shape != (self.nranks,):
            raise ValueError(
                f"expected scalar or shape ({self.nranks},), got {units.shape}"
            )
        if np.any(units < 0):
            raise ValueError("negative work units")
        dt = units * self.machine.t_work
        self.clocks += dt
        self._work += dt

    def add_message(self, src: int, dst: int, nwords: int) -> None:
        """Charge one message: full transfer at the sender, posting at the
        receiver (matching the VirtualMachine's postal model)."""
        if src == dst:
            return  # local data stays in place; no transfer cost
        t = self.machine.msg_time(nwords)
        self.clocks[src] += t
        self.clocks[dst] += self.machine.t_setup
        self._comm[src] += t
        self._comm[dst] += self.machine.t_setup
        self._step_msgs += 1
        self._count_traffic(1, nwords)
        if self.tracer is not None:
            m = self.tracer.metric
            m("repro.ledger.messages_sent", 1, kind="counter", rank=src)
            m("repro.ledger.messages_recv", 1, kind="counter", rank=dst)
            m("repro.ledger.words_sent", nwords, kind="counter", rank=src)
            m("repro.ledger.words_recv", nwords, kind="counter", rank=dst)

    def add_exchange(self, volume: np.ndarray) -> None:
        """Charge a full exchange from a ``(P, P)`` word-volume matrix.

        ``volume[i, j]`` words move from rank ``i`` to rank ``j``; each
        nonzero off-diagonal entry is one message.  Senders and receivers
        proceed concurrently, so each rank is charged the larger of its
        total send time and total receive time (plus per-message startups
        on both sides).
        """
        volume = np.asarray(volume)
        if volume.shape != (self.nranks, self.nranks):
            raise ValueError(
                f"expected ({self.nranks}, {self.nranks}) matrix, got {volume.shape}"
            )
        off = volume.copy()
        np.fill_diagonal(off, 0)
        nmsg_out = (off > 0).sum(axis=1)
        nmsg_in = (off > 0).sum(axis=0)
        send_t = nmsg_out * self.machine.t_setup + off.sum(axis=1) * self.machine.t_word
        recv_t = nmsg_in * self.machine.t_setup + off.sum(axis=0) * self.machine.t_word
        self.clocks += np.maximum(send_t, recv_t)
        self._comm += np.maximum(send_t, recv_t)
        self._step_msgs += int((off > 0).sum())
        self._count_traffic(int((off > 0).sum()), int(off.sum()))
        if self.tracer is not None:
            # bulk per-rank emission; skip_zero preserves the old
            # only-nonzero-rank sampling (words follow messages: a rank
            # with nmsg_out > 0 has words_out >= nmsg_out > 0)
            mpr = self.tracer.metric_per_rank
            mpr("repro.ledger.messages_sent", nmsg_out.tolist(),
                kind="counter", skip_zero=True)
            mpr("repro.ledger.words_sent", off.sum(axis=1).tolist(),
                kind="counter", skip_zero=True)
            mpr("repro.ledger.messages_recv", nmsg_in.tolist(),
                kind="counter", skip_zero=True)
            mpr("repro.ledger.words_recv", off.sum(axis=0).tolist(),
                kind="counter", skip_zero=True)

    def barrier(self) -> None:
        """Synchronise all ranks: max clock plus log2(P) startup rounds."""
        rounds = math.ceil(math.log2(self.nranks)) if self.nranks > 1 else 0
        sync = rounds * self.machine.t_setup
        self._emit_superstep(sync)
        self.clocks[:] = self.clocks.max() + sync

    def close(self) -> None:
        """Flush the trailing (barrier-less) superstep to the tracer.

        Call once after the last charge; further charges open a new
        superstep.  A no-op for untraced or idle ledgers.
        """
        self._emit_superstep(0.0)

    def _emit_superstep(self, sync: float) -> None:
        busy = float(self.clocks.max()) - self._step_t0
        if self.tracer is not None and (busy > 0.0 or self._step_msgs > 0):
            self.tracer.event(
                "ledger.superstep",
                step=self._sstep,
                start=self._step_t0,
                duration=busy + sync,
                work=self._work.tolist(),
                comm=self._comm.tolist(),
                sync=sync,
                messages=self._step_msgs,
                cycle=self.tracer.cycle,
            )
        self._sstep += 1
        self._step_t0 = float(self.clocks.max()) + sync
        self._step_msgs = 0
        self._work[:] = 0.0
        self._comm[:] = 0.0

    @property
    def elapsed(self) -> float:
        """Current makespan (slowest rank's clock)."""
        return float(self.clocks.max())
