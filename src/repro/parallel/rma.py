"""One-sided communication (RMA) on the virtual machine.

Mirrors the MPI-3 window model at mpi4py's level of abstraction: every
rank exposes a buffer; ``Put``/``Get``/``Accumulate`` access a *target*
rank's buffer under a lock.  In the virtual machine the passive target
does not execute code, so one-sided operations are brokered by the
scheduler itself: the window keeps the authoritative buffers, an epoch
counter serialises lock acquisition deterministically, and each operation
charges the origin rank the transfer time (the remote-memory-latency model
of the paper's :math:`T_{lat}`).

Usage inside a rank program::

    win = yield from RmaWindow.allocate(comm, nwords=10)
    yield from win.lock(target=0)
    yield from win.put(np.arange(10.0), target=0)
    got = yield from win.get(target=0, count=10)
    yield from win.unlock(target=0)
    yield from win.fence()
"""

from __future__ import annotations

import numpy as np

__all__ = ["RmaWindow"]


class _WindowState:
    """Shared (scheduler-side) state of one window allocation."""

    def __init__(self, nranks: int, nwords: int):
        self.buffers = [np.zeros(nwords) for _ in range(nranks)]
        self.locked_by: list[int | None] = [None] * nranks
        self.nwords = nwords


class RmaWindow:
    """A one-sided window bound to one rank of a VM run."""

    def __init__(self, comm, state: _WindowState):
        self._comm = comm
        self._state = state

    # --- collective lifecycle ------------------------------------------------

    @staticmethod
    def allocate(comm, nwords: int):
        """Collective window allocation (all ranks, same ``nwords``).

        Rank 0 creates the shared window state and broadcasts the handle
        (the virtual machine delivers in-process object references, which
        is precisely what shared remotely-accessible memory is here).
        """
        if nwords < 1:
            raise ValueError(f"nwords must be >= 1, got {nwords}")
        sizes = yield from comm.allgather(nwords)
        if len(set(sizes)) != 1:
            raise ValueError(f"window sizes differ across ranks: {sizes}")
        state = _WindowState(comm.size, nwords) if comm.rank == 0 else None
        state = yield from comm.bcast(state, root=0)
        return RmaWindow(comm, state)

    # --- synchronisation -----------------------------------------------------

    def lock(self, target: int):
        """Acquire the (exclusive) lock on ``target``'s window.

        Lock acquisition costs one message round-trip to the target's node
        (the passive side's memory agent), and spins — deterministically —
        while another origin holds the lock.
        """
        self._check_target(target)
        backoff = max(self._comm.machine.t_setup, 1e-9)
        while self._state.locked_by[target] is not None:
            # back off one message latency and retry; the deterministic
            # scheduler guarantees a total order of acquisitions (nonzero
            # backoff keeps virtual time advancing on ideal machines too)
            yield from self._comm.elapse(backoff)
        self._state.locked_by[target] = self._comm.rank
        yield from self._comm.elapse(self._comm.machine.msg_time(1))

    def unlock(self, target: int):
        self._check_target(target)
        if self._state.locked_by[target] != self._comm.rank:
            raise RuntimeError(
                f"rank {self._comm.rank} does not hold the lock on {target}"
            )
        self._state.locked_by[target] = None
        yield from self._comm.elapse(self._comm.machine.msg_time(1))

    def fence(self):
        """Collective synchronisation (MPI_Win_fence)."""
        yield from self._comm.barrier()

    # --- data movement ----------------------------------------------------------

    def put(self, data: np.ndarray, target: int, offset: int = 0):
        """Write ``data`` into the target buffer at ``offset``."""
        self._require_lock(target)
        data = np.asarray(data, dtype=np.float64).ravel()
        self._check_range(offset, data.shape[0])
        self._state.buffers[target][offset : offset + data.shape[0]] = data
        yield from self._comm.elapse(self._comm.machine.msg_time(data.shape[0]))

    def get(self, target: int, count: int, offset: int = 0):
        """Read ``count`` words from the target buffer at ``offset``."""
        self._require_lock(target)
        self._check_range(offset, count)
        yield from self._comm.elapse(self._comm.machine.msg_time(count))
        return self._state.buffers[target][offset : offset + count].copy()

    def accumulate(self, data: np.ndarray, target: int, offset: int = 0):
        """Element-wise += into the target buffer (MPI_Accumulate, SUM)."""
        self._require_lock(target)
        data = np.asarray(data, dtype=np.float64).ravel()
        self._check_range(offset, data.shape[0])
        self._state.buffers[target][offset : offset + data.shape[0]] += data
        yield from self._comm.elapse(self._comm.machine.msg_time(data.shape[0]))

    @property
    def local(self) -> np.ndarray:
        """This rank's own window buffer (direct access)."""
        return self._state.buffers[self._comm.rank]

    # --- checks -------------------------------------------------------------------

    def _check_target(self, target: int) -> None:
        if not 0 <= target < self._comm.size:
            raise ValueError(f"invalid target rank {target}")

    def _require_lock(self, target: int) -> None:
        self._check_target(target)
        if self._state.locked_by[target] != self._comm.rank:
            raise RuntimeError(
                f"rank {self._comm.rank} must lock target {target} before access"
            )

    def _check_range(self, offset: int, count: int) -> None:
        if offset < 0 or offset + count > self._state.nwords:
            raise ValueError(
                f"access [{offset}, {offset + count}) outside window of "
                f"{self._state.nwords} words"
            )
