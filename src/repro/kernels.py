"""Switch between optimized and reference kernel implementations.

Several hot paths (FM refinement, heavy-edge matching, the VM mailbox,
child-element assembly, solver scatter-adds) ship two implementations:
an optimized one used by default, and the straightforward *reference*
one they must match bit-for-bit.  The equivalence tests run both and
compare outputs; the benchmark suite can time the reference path with
``scripts/bench_suite.py --with-reference`` to record speedups.

Selection is ambient: the ``REPRO_REFERENCE_KERNELS`` environment
variable (any value other than empty/``0``) or the
:func:`reference_kernels` context manager, which takes precedence and
restores the previous state on exit.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

__all__ = ["reference_enabled", "reference_kernels", "scatter_add_rows"]

_FORCE: bool | None = None


def reference_enabled() -> bool:
    """True when the reference (unoptimized) kernels should run."""
    if _FORCE is not None:
        return _FORCE
    return os.environ.get("REPRO_REFERENCE_KERNELS", "0") not in ("", "0")


@contextmanager
def reference_kernels(enabled: bool = True):
    """Force reference (or optimized, with ``enabled=False``) kernels."""
    global _FORCE
    prev = _FORCE
    _FORCE = bool(enabled)
    try:
        yield
    finally:
        _FORCE = prev


def scatter_add_rows(
    index: np.ndarray, values: np.ndarray, nrows: int
) -> np.ndarray:
    """Row-wise scatter-add: ``out[index[i]] += values[i]`` from zeros.

    Equivalent to ``np.add.at`` on a zero array, but implemented as one
    ``np.bincount`` pass per trailing column.  Both accumulate strictly in
    input order, so the float additions happen in the same sequence and
    the results are bit-identical — while bincount runs at C speed where
    ``add.at``'s buffered inner loop does not.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] == 0:  # reshape(0, -1) cannot infer the -1
        return np.zeros((nrows,) + values.shape[1:], dtype=np.float64)
    out = np.empty((nrows,) + values.shape[1:], dtype=np.float64)
    flat = values.reshape(values.shape[0], -1)
    oflat = out.reshape(nrows, -1)
    for c in range(flat.shape[1]):
        oflat[:, c] = np.bincount(index, weights=flat[:, c], minlength=nrows)
    return out
