"""Hand-rolled validation of ``BENCH_results.json`` (``repro.bench/v1``).

Same idiom as the ``repro.obs/v1`` trace validator: explicit checks
raising :class:`~repro.obs.SchemaError` with a path-qualified message —
no external JSON-schema dependency.
"""

from __future__ import annotations

from repro.obs import SchemaError

__all__ = ["SCHEMA_ID", "SchemaError", "validate_results"]

SCHEMA_ID = "repro.bench/v1"

_SUITE_STR_FIELDS = ("created", "python", "numpy", "platform", "machine_model")


def _require(cond: bool, path: str, msg: str) -> None:
    if not cond:
        raise SchemaError(f"{path}: {msg}")


def _check_number(value, path: str, positive: bool = False) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        path,
        f"expected a number, got {value!r}",
    )
    if positive:
        _require(value > 0, path, f"expected > 0, got {value!r}")


def _check_scalar_map(obj, path: str, value_check) -> None:
    _require(isinstance(obj, dict), path, f"expected an object, got {type(obj).__name__}")
    for key, value in obj.items():
        _require(isinstance(key, str) and key, f"{path} key", f"bad key {key!r}")
        value_check(value, f"{path}[{key!r}]")


def _check_bench(rec, path: str) -> None:
    _require(isinstance(rec, dict), path, "expected an object")
    _check_number(rec.get("wall_seconds"), f"{path}.wall_seconds", positive=True)
    _check_scalar_map(
        rec.get("virtual_phase_seconds"),
        f"{path}.virtual_phase_seconds",
        lambda v, p: (_check_number(v, p), _require(v >= 0, p, "expected >= 0")),
    )
    _check_scalar_map(
        rec.get("counters"), f"{path}.counters", lambda v, p: _check_number(v, p)
    )
    _check_scalar_map(
        rec.get("extra"),
        f"{path}.extra",
        lambda v, p: _require(
            isinstance(v, (int, float, str, bool)), p, f"expected a scalar, got {v!r}"
        ),
    )
    ref = rec.get("reference_wall_seconds")
    if ref is not None:
        _check_number(ref, f"{path}.reference_wall_seconds", positive=True)
        _check_number(
            rec.get("speedup_vs_reference"),
            f"{path}.speedup_vs_reference",
            positive=True,
        )
    metrics = rec.get("metrics")
    if metrics is not None:
        _check_scalar_map(
            metrics, f"{path}.metrics", lambda v, p: _check_number(v, p)
        )
    critical_path = rec.get("critical_path")
    if critical_path is not None:
        _check_scalar_map(
            critical_path,
            f"{path}.critical_path",
            lambda v, p: (_check_number(v, p), _require(v >= 0, p, "expected >= 0")),
        )
    unknown = set(rec) - {
        "wall_seconds",
        "virtual_phase_seconds",
        "counters",
        "extra",
        "metrics",
        "critical_path",
        "reference_wall_seconds",
        "speedup_vs_reference",
    }
    _require(not unknown, path, f"unknown fields {sorted(unknown)}")


def validate_results(doc) -> dict:
    """Validate a ``repro.bench/v1`` results document; returns summary stats."""
    _require(isinstance(doc, dict), "$", "expected a JSON object")
    _require(
        doc.get("schema") == SCHEMA_ID,
        "$.schema",
        f"expected {SCHEMA_ID!r}, got {doc.get('schema')!r}",
    )
    suite = doc.get("suite")
    _require(isinstance(suite, dict), "$.suite", "expected an object")
    for field in _SUITE_STR_FIELDS:
        _require(
            isinstance(suite.get(field), str) and suite.get(field),
            f"$.suite.{field}",
            "expected a non-empty string",
        )
    _require(
        isinstance(suite.get("seed"), int) and not isinstance(suite.get("seed"), bool),
        "$.suite.seed",
        f"expected an int, got {suite.get('seed')!r}",
    )

    runs = doc.get("runs")
    _require(isinstance(runs, dict) and runs, "$.runs", "expected a non-empty object")
    nbenches = 0
    for profile, run in runs.items():
        path = f"$.runs[{profile!r}]"
        _require(profile in ("full", "quick"), path, "profile must be full or quick")
        _require(isinstance(run, dict), path, "expected an object")
        res = run.get("resolution")
        _require(
            isinstance(res, int) and not isinstance(res, bool) and res > 0,
            f"{path}.resolution",
            f"expected a positive int, got {res!r}",
        )
        benches = run.get("benches")
        _require(
            isinstance(benches, dict) and benches,
            f"{path}.benches",
            "expected a non-empty object",
        )
        for name, rec in benches.items():
            _check_bench(rec, f"{path}.benches[{name!r}]")
        nbenches += len(benches)
    return {"runs": len(runs), "benches": nbenches}
