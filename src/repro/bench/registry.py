"""The benchmark registry: one entry per tracked workload.

Each bench is a function of the mesh ``resolution`` that runs a complete
figure/table/extension workload (seeds pinned inside the experiment
code) and returns a small dict of JSON-scalar ``extra`` metadata.  Wall
timing, tracer installation, and sweep-cache clearing are the suite's
job (:mod:`repro.bench.suite`) — registry functions only do the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Bench", "BENCHES", "QUICK_BENCHES"]


@dataclass(frozen=True)
class Bench:
    name: str
    description: str
    fn: Callable[[int], dict]


def _bench_fig4(resolution: int) -> dict:
    from repro.experiments.figures import fig4_speedup

    data = fig4_speedup(resolution)
    return {"cases": len(data)}


def _bench_fig5(resolution: int) -> dict:
    from repro.experiments.figures import fig5_remap_times

    data = fig5_remap_times(resolution)
    return {"cases": len(data)}


def _bench_fig6(resolution: int) -> dict:
    from repro.experiments.figures import fig6_anatomy

    data = fig6_anatomy(resolution)
    # one stable scalar per phase so drift in the anatomy itself is visible
    return {
        f"real2_{phase}_p8": series[8]
        for phase, series in data["Real_2"].items()
    }


def _bench_fig7(resolution: int) -> dict:
    from repro.experiments.figures import fig7_max_improvement

    data = fig7_max_improvement(resolution)
    return {"cases": len(data)}


def _bench_fig8(resolution: int) -> dict:
    from repro.experiments.figures import fig8_actual_improvement

    data = fig8_actual_improvement(resolution)
    return {"cases": len(data)}


def _bench_table1(resolution: int) -> dict:
    from repro.experiments.sweep import case_for
    from repro.experiments.table1 import grid_sizes

    rows = grid_sizes(case_for(resolution))
    return {
        "initial_elements": rows["Initial"]["elements"],
        "real3_elements": rows["Real_3"]["elements"],
    }


def _bench_table2(resolution: int) -> dict:
    from repro.experiments.sweep import case_for
    from repro.experiments.table2 import mapper_comparison

    rows = mapper_comparison(case_for(resolution))
    return {"rows": len(rows)}


def _bench_ext_vm_vs_ledger(resolution: int) -> dict:
    from repro.adapt.marking import propagate_markings
    from repro.dist import decompose, parallel_mark
    from repro.experiments.sweep import case_for
    from repro.parallel import CostLedger, SP2_1997
    from repro.partition import Graph, multilevel_kway

    case = case_for(resolution)
    mesh = case.mesh
    g = Graph.from_pairs(mesh.dual_pairs, mesh.ne)
    part = multilevel_kway(g, 8, seed=0)
    locals_ = decompose(mesh, part, 8)
    marks = case.marking_mask("Real_2")
    ledger = CostLedger(8, SP2_1997)
    propagate_markings(mesh, marks, part=part, ledger=ledger)
    vm_result = parallel_mark(mesh, locals_, marks)
    return {
        "ledger_virtual_seconds": float(ledger.elapsed),
        "vm_virtual_seconds": float(vm_result.time_seconds),
    }


def _bench_ext_partitioners(resolution: int) -> dict:
    from repro.core.dualgraph import DualGraph
    from repro.experiments.sweep import case_for
    from repro.partition import edgecut, multilevel_kway

    dual = DualGraph(case_for(resolution).mesh)
    g = dual.comp_graph()
    part = multilevel_kway(g, 8, seed=0)
    return {"multilevel_edgecut_p8": int(edgecut(g, part))}


BENCHES: dict[str, Bench] = {
    b.name: b
    for b in (
        Bench("fig4", "Fig. 4 — adaptor speedup, remap after vs before", _bench_fig4),
        Bench("fig5", "Fig. 5 — remapping seconds, after vs before", _bench_fig5),
        Bench("fig6", "Fig. 6 — anatomy of execution time (span-derived)", _bench_fig6),
        Bench("fig7", "Fig. 7 — maximum load-balancing improvement", _bench_fig7),
        Bench("fig8", "Fig. 8 — measured solver-load improvement", _bench_fig8),
        Bench("table1", "Table 1 — grid sizes per strategy", _bench_table1),
        Bench("table2", "Table 2 — processor reassignment mappers", _bench_table2),
        Bench(
            "ext_vm_vs_ledger",
            "Extension — VM vs ledger marking-time agreement",
            _bench_ext_vm_vs_ledger,
        ),
        Bench(
            "ext_partitioners",
            "Extension — multilevel k-way partition of the dual graph",
            _bench_ext_partitioners,
        ),
    )
}

#: The CI subset: one sweep-driven bench, one adaptor bench, one VM bench.
QUICK_BENCHES = ("fig6", "table1", "ext_vm_vs_ledger")
