"""The benchmark registry: one entry per tracked workload.

Each bench is a function of the mesh ``resolution`` that runs a complete
figure/table/extension workload (seeds pinned inside the experiment
code) and returns a small dict of JSON-scalar ``extra`` metadata.  Wall
timing, tracer installation, and sweep-cache clearing are the suite's
job (:mod:`repro.bench.suite`) — registry functions only do the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Bench", "BENCHES", "QUICK_BENCHES"]


@dataclass(frozen=True)
class Bench:
    name: str
    description: str
    fn: Callable[[int], dict]


def _bench_fig4(resolution: int) -> dict:
    from repro.experiments.figures import fig4_speedup

    data = fig4_speedup(resolution)
    return {"cases": len(data)}


def _bench_fig5(resolution: int) -> dict:
    from repro.experiments.figures import fig5_remap_times

    data = fig5_remap_times(resolution)
    return {"cases": len(data)}


def _bench_fig6(resolution: int) -> dict:
    from repro.experiments.figures import fig6_anatomy

    data = fig6_anatomy(resolution)
    # one stable scalar per phase so drift in the anatomy itself is visible
    return {
        f"real2_{phase}_p8": series[8]
        for phase, series in data["Real_2"].items()
    }


def _bench_fig7(resolution: int) -> dict:
    from repro.experiments.figures import fig7_max_improvement

    data = fig7_max_improvement(resolution)
    return {"cases": len(data)}


def _bench_fig8(resolution: int) -> dict:
    from repro.experiments.figures import fig8_actual_improvement

    data = fig8_actual_improvement(resolution)
    return {"cases": len(data)}


def _bench_table1(resolution: int) -> dict:
    from repro.experiments.sweep import case_for
    from repro.experiments.table1 import grid_sizes

    rows = grid_sizes(case_for(resolution))
    return {
        "initial_elements": rows["Initial"]["elements"],
        "real3_elements": rows["Real_3"]["elements"],
    }


def _bench_table2(resolution: int) -> dict:
    from repro.experiments.sweep import case_for
    from repro.experiments.table2 import mapper_comparison

    rows = mapper_comparison(case_for(resolution))
    return {"rows": len(rows)}


def _bench_ext_vm_vs_ledger(resolution: int) -> dict:
    from repro.adapt.marking import propagate_markings
    from repro.dist import decompose, parallel_mark
    from repro.experiments.sweep import case_for
    from repro.parallel import CostLedger, SP2_1997
    from repro.partition import Graph, multilevel_kway

    case = case_for(resolution)
    mesh = case.mesh
    g = Graph.from_pairs(mesh.dual_pairs, mesh.ne)
    part = multilevel_kway(g, 8, seed=0)
    locals_ = decompose(mesh, part, 8)
    marks = case.marking_mask("Real_2")
    ledger = CostLedger(8, SP2_1997)
    propagate_markings(mesh, marks, part=part, ledger=ledger)
    vm_result = parallel_mark(mesh, locals_, marks)
    return {
        "ledger_virtual_seconds": float(ledger.elapsed),
        "vm_virtual_seconds": float(vm_result.time_seconds),
    }


def _bench_ext_weak_scaling(resolution: int) -> dict:
    """Weak-scaling sweep of the VM scheduler itself (fig6-style cycle).

    Runs :func:`repro.experiments.weak_scaling.measure_speedup` —
    scheduler scale, not mesh scale, so ``resolution`` only selects the
    rank sweep.  Each speedup point times the optimized and the
    ``REPRO_REFERENCE_KERNELS`` scheduler on the *same* traced cycle
    (fresh ambient tracer per shot, best of N shots per path), so the
    recorded ``speedup_p*`` extras are the tracked perf gate for the
    vectorized scheduler.  The quick profile keeps the reference shots
    to the 1024-rank point and times 4096 optimized-only — the slow
    reference shots dominate the bench's wall and would make the CI wall
    gate flaky on a loaded host; the full profile runs both schedulers
    at 1k/4k/16k (the 16k point is where the reference path's per-op
    object churn hurts it most).
    """
    from repro.experiments.weak_scaling import measure_point, measure_speedup

    extra: dict = {}
    if resolution < 6:
        speedup_ranks, opt_only_ranks, repeats = (1024,), (4096,), 2
    else:
        speedup_ranks, opt_only_ranks, repeats = (1024, 4096, 16384), (), 3
    for nranks in speedup_ranks:
        opt, ref, speedup = measure_speedup(nranks, repeats=repeats)
        extra[f"wall_seconds_p{nranks}"] = round(opt.wall_seconds, 4)
        extra[f"ref_wall_seconds_p{nranks}"] = round(ref.wall_seconds, 4)
        extra[f"speedup_p{nranks}"] = round(speedup, 2)
        extra[f"ops_per_second_p{nranks}"] = round(opt.ops_per_second)
        extra[f"scheduler_ops_p{nranks}"] = int(opt.ops)
    for nranks in opt_only_ranks:
        from repro.obs import Tracer, use_tracer

        best = None
        for _ in range(repeats):
            with use_tracer(Tracer()):
                pt = measure_point(nranks)
            if best is None or pt.wall_seconds < best.wall_seconds:
                best = pt
        extra[f"wall_seconds_p{nranks}"] = round(best.wall_seconds, 4)
        extra[f"ops_per_second_p{nranks}"] = round(best.ops_per_second)
        extra[f"scheduler_ops_p{nranks}"] = int(best.ops)
    return extra


def _bench_ext_transport_throughput(resolution: int) -> dict:
    """Message throughput of the real-core wires: pickle vs zero-copy.

    Streams float64 payloads between two forked rank processes through
    the ``multiprocessing`` (queue pickling) and ``shm`` (slab pool)
    backends and records MB/s plus the zero-copy speedup per payload
    size (:mod:`repro.experiments.transport`).  The recorded
    ``speedup_*`` extras are the tracked perf gate for the shm
    transport: >= 5x over pickling at the >= 1 MB points.  Wall times
    here are genuinely measured (two OS processes timeslicing), so only
    the suite's wall gate applies — there are no virtual seconds to pin.
    The quick profile keeps to the 1 MB and 4 MB points with fewer
    repeats; the full profile adds the 64 KB crossover point, where the
    slab round-trip and the pickle cost roughly tie.
    """
    from repro.experiments.transport import throughput_comparison

    if resolution < 6:
        sizes, nmsgs, repeats = ((1 << 20), (4 << 20)), 96, 2
    else:
        sizes, nmsgs, repeats = ((64 << 10), (1 << 20), (4 << 20)), 128, 3
    rows = throughput_comparison(
        payload_sizes=sizes, nmsgs=nmsgs, repeats=repeats
    )
    extra: dict = {}
    for row in rows:
        kb = row["payload_bytes"] >> 10
        tag = f"{kb >> 10}mb" if kb >= 1024 else f"{kb}kb"
        extra[f"speedup_{tag}"] = round(row["speedup"], 2)
        for name, pt in row["points"].items():
            short = "shm" if name == "shm" else "pickle"
            extra[f"{short}_mb_s_{tag}"] = round(pt.bytes_per_s / 1e6, 1)
    return extra


def _bench_ext_tracing_overhead(resolution: int) -> dict:
    """Measured-tracing recorder overhead on the fig6 mp workload.

    Runs the exec-phase pipeline on the ``multiprocessing`` backend with
    and without a tracer installed (the tracer turns on the per-rank
    ``WallRecorder``, the clock handshake, and the merge/emit tail) and
    records the median host wall of each mode plus their ratio.  The
    tracked expectation is single-digit-percent ``overhead_ratio``: the
    recorder itself is a handful of list appends per op and the clock
    handshake runs after the program, so the remaining cost is the
    post-run probe rounds and the merge — a few milliseconds per run,
    fully serialized only on single-core hosts where nothing overlaps.
    """
    from statistics import median

    from repro.experiments.calibrate import run_exec_phase_workload
    from repro.obs import Tracer

    repeats = 3 if resolution < 6 else 5

    def total_wall(tracer) -> float:
        res = run_exec_phase_workload(
            resolution, 4, "multiprocessing", tracer=tracer
        )
        return sum(p.host_wall for p in res.phases)

    plain = median(total_wall(None) for _ in range(repeats))
    traced = median(total_wall(Tracer()) for _ in range(repeats))
    return {
        "plain_wall_seconds": round(plain, 4),
        "traced_wall_seconds": round(traced, 4),
        "overhead_ratio": round(traced / plain, 3) if plain > 0 else 0.0,
    }


def _bench_ext_partitioners(resolution: int) -> dict:
    from repro.core.dualgraph import DualGraph
    from repro.experiments.sweep import case_for
    from repro.partition import edgecut, multilevel_kway

    dual = DualGraph(case_for(resolution).mesh)
    g = dual.comp_graph()
    part = multilevel_kway(g, 8, seed=0)
    return {"multilevel_edgecut_p8": int(edgecut(g, part))}


BENCHES: dict[str, Bench] = {
    b.name: b
    for b in (
        Bench("fig4", "Fig. 4 — adaptor speedup, remap after vs before", _bench_fig4),
        Bench("fig5", "Fig. 5 — remapping seconds, after vs before", _bench_fig5),
        Bench("fig6", "Fig. 6 — anatomy of execution time (span-derived)", _bench_fig6),
        Bench("fig7", "Fig. 7 — maximum load-balancing improvement", _bench_fig7),
        Bench("fig8", "Fig. 8 — measured solver-load improvement", _bench_fig8),
        Bench("table1", "Table 1 — grid sizes per strategy", _bench_table1),
        Bench("table2", "Table 2 — processor reassignment mappers", _bench_table2),
        Bench(
            "ext_vm_vs_ledger",
            "Extension — VM vs ledger marking-time agreement",
            _bench_ext_vm_vs_ledger,
        ),
        Bench(
            "ext_weak_scaling",
            "Extension — weak-scaling wall/speedup of the VM scheduler",
            _bench_ext_weak_scaling,
        ),
        Bench(
            "ext_transport_throughput",
            "Extension — real-core wire throughput, pickle vs zero-copy",
            _bench_ext_transport_throughput,
        ),
        Bench(
            "ext_tracing_overhead",
            "Extension — measured-tracing recorder overhead on the mp backend",
            _bench_ext_tracing_overhead,
        ),
        Bench(
            "ext_partitioners",
            "Extension — multilevel k-way partition of the dual graph",
            _bench_ext_partitioners,
        ),
    )
}

#: The CI subset: one sweep-driven bench, one adaptor bench, one VM bench,
#: the scheduler weak-scaling perf gate, and the transport perf gate.
QUICK_BENCHES = (
    "fig6", "table1", "ext_vm_vs_ledger", "ext_weak_scaling",
    "ext_transport_throughput",
)
