"""Run the tracked benchmarks and compare against a committed baseline.

Each bench is run *cold* (the figure sweep's memoised ``run_step`` cache
is cleared first, so every bench pays for its own adapt→balance cycles)
with an ambient :class:`repro.obs.Tracer` installed; host wall seconds
are measured around the call, and the modelled virtual seconds per phase
come from the recorded spans.  ``with_reference=True`` repeats each
bench under the reference kernels (:mod:`repro.kernels`) to record the
pre-optimization wall time — and verifies the virtual-second series is
bit-identical between the two implementations while doing so.
"""

from __future__ import annotations

import platform
import sys
import time

import numpy as np

from repro.kernels import reference_kernels
from repro.obs import Tracer, phase_virtual_times, use_tracer

from .registry import BENCHES
from .schema import SCHEMA_ID, validate_results

__all__ = [
    "BenchComparisonError",
    "compare_runs",
    "merge_results",
    "run_bench",
    "run_suite",
]


class BenchComparisonError(RuntimeError):
    """A bench regressed against the baseline (wall) or diverged (virtual)."""


def _clear_sweep_cache() -> None:
    from repro.experiments.sweep import run_step

    run_step.cache_clear()


def run_bench(name: str, resolution: int, repeats: int = 1) -> dict:
    """Run one registered bench cold; returns its results record.

    ``repeats`` > 1 reruns the bench (cold each time) and keeps the
    *minimum* wall time — the standard noise filter for a loaded host.
    The virtual results are deterministic, so they come from the first run.
    """
    from repro.experiments.sweep import case_for

    bench = BENCHES[name]
    case_for(resolution)  # mesh construction is not part of the measured cycle
    wall = float("inf")
    for _ in range(max(1, repeats)):
        _clear_sweep_cache()
        tracer = Tracer()
        t0 = time.perf_counter()
        with use_tracer(tracer):
            extra = bench.fn(resolution) or {}
        wall = min(wall, time.perf_counter() - t0)
    rec = {
        "wall_seconds": wall,
        "virtual_phase_seconds": phase_virtual_times(tracer.spans),
        "counters": dict(tracer.counters),
        "extra": extra,
    }
    metrics = _metric_summary(tracer)
    if metrics:
        rec["metrics"] = metrics
    cp = _critical_path_summary(tracer)
    if cp:
        rec["critical_path"] = cp
    return rec


def _metric_summary(tracer: Tracer) -> dict:
    """Headline labelled-metric aggregates for the results record."""
    reg = tracer.metrics
    summary = {
        "max_imbalance": reg.max_value(
            "repro.partition.imbalance", {"when": "before"}
        ),
        "final_imbalance": reg.max_value(
            "repro.partition.imbalance", {"when": "after"}
        ),
        "total_remap_volume": reg.total("repro.remap.elements_moved")
        if reg.max_value("repro.remap.elements_moved") is not None
        else None,
        "total_remap_words": reg.total("repro.remap.words_moved")
        if reg.max_value("repro.remap.words_moved") is not None
        else None,
    }
    return {k: v for k, v in summary.items() if v is not None}


def _critical_path_summary(tracer: Tracer) -> dict:
    """Makespan attribution by ``phase/kind`` from the causal record.

    Deterministic (virtual seconds only), so it rides along in the results
    record as context without participating in the wall-time gate; absent
    when the bench recorded no VM runs or ledger supersteps.
    """
    from repro.obs import analyze

    analysis = analyze(tracer)
    if not analysis.runs and not analysis.supersteps:
        return {}
    summary = {"makespan": analysis.makespan}
    for (phase, kind), sec in sorted(analysis.by_phase_kind.items()):
        summary[f"{phase}/{kind}"] = sec
    return summary


def run_suite(
    names: tuple[str, ...],
    resolution: int,
    profile: str = "full",
    with_reference: bool = False,
    repeats: int = 1,
    progress=None,
) -> dict:
    """Run ``names`` at ``resolution``; returns a ``repro.bench/v1`` doc."""
    unknown = [n for n in names if n not in BENCHES]
    if unknown:
        raise KeyError(f"unknown benches {unknown}; have {sorted(BENCHES)}")
    benches: dict[str, dict] = {}
    for name in names:
        if progress:
            progress(f"{name} ({BENCHES[name].description}) ...")
        rec = run_bench(name, resolution, repeats=repeats)
        if with_reference:
            with reference_kernels():
                ref = run_bench(name, resolution, repeats=repeats)
            if ref["virtual_phase_seconds"] != rec["virtual_phase_seconds"]:
                raise BenchComparisonError(
                    f"{name}: optimized and reference kernels disagree on "
                    f"virtual phase seconds:\n  optimized: "
                    f"{rec['virtual_phase_seconds']}\n  reference: "
                    f"{ref['virtual_phase_seconds']}"
                )
            rec["reference_wall_seconds"] = ref["wall_seconds"]
            rec["speedup_vs_reference"] = (
                ref["wall_seconds"] / rec["wall_seconds"]
            )
        benches[name] = rec
        if progress:
            line = f"{name}: {rec['wall_seconds']:.2f}s wall"
            if with_reference:
                line += (
                    f" (reference {rec['reference_wall_seconds']:.2f}s, "
                    f"{rec['speedup_vs_reference']:.2f}x)"
                )
            if "metrics" in rec:
                line += " | " + ", ".join(
                    f"{k}={v:.4g}" for k, v in rec["metrics"].items()
                )
            progress(line)
    doc = {
        "schema": SCHEMA_ID,
        "suite": {
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": f"{platform.system()}-{platform.machine()}",
            "machine_model": "SP2_1997",
            "seed": 0,
        },
        "runs": {profile: {"resolution": resolution, "benches": benches}},
    }
    validate_results(doc)
    return doc


def merge_results(existing: dict | None, doc: dict) -> dict:
    """Overlay ``doc``'s runs onto ``existing`` (suite metadata from ``doc``)."""
    if existing is None:
        return doc
    validate_results(existing)
    merged = {
        "schema": SCHEMA_ID,
        "suite": doc["suite"],
        "runs": {**existing["runs"], **doc["runs"]},
    }
    validate_results(merged)
    return merged


def compare_runs(
    doc: dict,
    baseline: dict,
    profile: str,
    max_regress: float = 1.15,
    abs_slack: float = 0.25,
) -> list[str]:
    """Compare one profile of ``doc`` against ``baseline``.

    Returns human-readable failure strings: a wall-time regression beyond
    ``max_regress``, or *any* difference in a bench's virtual-second
    phases (the modelled results must not drift with optimization work).
    ``abs_slack`` seconds of absolute headroom keep timer noise on
    sub-second benches from tripping the relative gate.  Benches absent
    from either side are skipped.
    """
    validate_results(doc)
    validate_results(baseline)
    failures: list[str] = []
    run = doc["runs"].get(profile)
    base = baseline["runs"].get(profile)
    if run is None:
        return [f"results have no {profile!r} run"]
    if base is None:
        return []  # nothing to compare against
    if run["resolution"] != base["resolution"]:
        return [
            f"resolution mismatch: results at {run['resolution']}, "
            f"baseline at {base['resolution']} — not comparable"
        ]
    for name, rec in run["benches"].items():
        ref = base["benches"].get(name)
        if ref is None:
            continue
        wall, base_wall = rec["wall_seconds"], ref["wall_seconds"]
        if wall > base_wall * max_regress + abs_slack:
            failures.append(
                f"{name}: wall regression {wall:.3f}s vs baseline "
                f"{base_wall:.3f}s ({wall / base_wall:.2f}x > "
                f"{max_regress:.2f}x allowed)"
            )
        if rec["virtual_phase_seconds"] != ref["virtual_phase_seconds"]:
            changed = sorted(
                set(rec["virtual_phase_seconds"]) ^ set(ref["virtual_phase_seconds"])
            ) or [
                k
                for k, v in rec["virtual_phase_seconds"].items()
                if ref["virtual_phase_seconds"].get(k) != v
            ]
            failures.append(
                f"{name}: virtual phase seconds changed (phases {changed}) — "
                "modelled results must match the baseline exactly"
            )
    return failures
