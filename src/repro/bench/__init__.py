"""Tracked wall/virtual benchmark suite for the adapt→balance cycle.

The suite (:mod:`repro.bench.suite`) reruns the paper's figure/table
workloads with pinned seeds at a fixed ``REPRO_BENCH_RESOLUTION``,
measuring **host wall seconds** around each bench and collecting the
**modelled virtual seconds** per phase from :mod:`repro.obs` tracer
spans.  Results are written to a schema-validated ``BENCH_results.json``
(``repro.bench/v1``, :mod:`repro.bench.schema`) so wall-time regressions
are caught against a committed baseline while the virtual-time series —
the paper's reported numbers — are pinned exactly.

``scripts/bench_suite.py`` is the CLI front end.
"""

from .registry import BENCHES, QUICK_BENCHES, Bench
from .schema import SCHEMA_ID, SchemaError, validate_results
from .suite import (
    BenchComparisonError,
    compare_runs,
    merge_results,
    run_bench,
    run_suite,
)

__all__ = [
    "BENCHES",
    "QUICK_BENCHES",
    "Bench",
    "BenchComparisonError",
    "SCHEMA_ID",
    "SchemaError",
    "compare_runs",
    "merge_results",
    "run_bench",
    "run_suite",
    "validate_results",
]
