"""Checkpoint/restart of a load-balanced adaptive computation.

The paper's finalization phase exists partly because "storing a snapshot
of a grid for future restarts could also require a global view".  This
module is that snapshot at the framework level: the current mesh,
solution, ownership, and enough refinement-forest state to resume
weighting and further refinement (coarsening history is not checkpointed —
a restart re-anchors the dual graph on the *saved* mesh, exactly as the
paper suggests re-anchoring on an adapted mesh when the initial one is
too coarse, §4.1).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.tetmesh import TetMesh

from .framework import LoadBalancedAdaptiveSolver

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT = 1


def save_checkpoint(path: str, solver: LoadBalancedAdaptiveSolver) -> None:
    """Serialise the solver's restartable state to a ``.npz`` archive."""
    am = solver.adaptive
    payload = {
        "format_version": np.int64(_FORMAT),
        "coords": am.mesh.coords,
        "elems": am.mesh.elems,
        "nproc": np.int64(solver.nproc),
        "F": np.int64(solver.F),
        "elem_owner": solver.elem_owner(),
        "wcomp": am.wcomp(),
        "wremap": am.wremap(),
        "root_of_elem": am.forest.root_of_elem,
    }
    if am.solution is not None:
        payload["solution"] = am.solution
    np.savez_compressed(path, **payload)


def load_checkpoint(
    path: str, **solver_kwargs
) -> LoadBalancedAdaptiveSolver:
    """Rebuild a solver from a checkpoint.

    The restored solver re-anchors its dual graph on the checkpointed mesh
    (each saved element becomes a fresh refinement-tree root, with the
    saved per-element ownership); further adaption proceeds normally.
    Extra keyword arguments override solver options (machine, cost model,
    reassigner, ...).
    """
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT:
            raise ValueError(
                f"unsupported checkpoint version {version} (expected {_FORMAT})"
            )
        mesh = TetMesh.from_elems(data["coords"], data["elems"], orient=False)
        solution = data["solution"] if "solution" in data else None
        nproc = int(data["nproc"])
        fF = int(data["F"])
        owner = data["elem_owner"]

    solver = LoadBalancedAdaptiveSolver(
        mesh, nproc, solution=solution, F=solver_kwargs.pop("F", fF),
        **solver_kwargs,
    )
    if owner.shape != (mesh.ne,):
        raise ValueError("checkpoint ownership does not match the mesh")
    if owner.min() < 0 or owner.max() >= nproc:
        raise ValueError("checkpoint ownership labels out of range")
    solver.part = owner.astype(np.int64)
    return solver
