"""Redistribution-cost metrics TotalV and MaxV (paper §4.4–4.5).

From the similarity matrix and a partition→processor assignment this module
derives every quantity the paper's cost model and Table 2 use:

* ``C_total`` / ``N_total`` — total elements and element *sets* (one set per
  (source, destination) processor pair) moved: the **TotalV** view, which
  "assumes that by reducing network contention and the total number of
  elements moved, the remapping time will be reduced";
* ``C_max`` / ``N_max`` — the same quantities for the bottleneck processor
  only: the **MaxV** view, which "considers data redistribution in terms of
  solving a load imbalance problem".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RemapStats", "remap_stats"]


@dataclass(frozen=True)
class RemapStats:
    """All movement quantities induced by a processor reassignment."""

    objective: int  #: retained weight  F = Σ_j S[map[j], j]
    c_total: int  #: total elements moved (Ctotal)
    n_total: int  #: total sets of elements moved (Ntotal)
    sent: np.ndarray  #: (P,) elements leaving each processor
    received: np.ndarray  #: (P,) elements arriving at each processor
    max_sent: int  #: max over processors of elements sent
    max_received: int  #: max over processors of elements received
    c_max: int  #: bottleneck processor's max(α·sent, β·recv) (Cmax)
    n_max: int  #: element sets touching the bottleneck processor (Nmax)
    bottleneck: int  #: the bottleneck processor id


def remap_stats(
    S: np.ndarray,
    proc_of_part: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> RemapStats:
    """Compute TotalV/MaxV statistics for assignment ``proc_of_part``."""
    S = np.asarray(S, dtype=np.int64)
    proc_of_part = np.asarray(proc_of_part, dtype=np.int64)
    nproc, npart = S.shape
    if proc_of_part.shape != (npart,):
        raise ValueError(f"assignment must have shape ({npart},)")
    counts = np.bincount(proc_of_part, minlength=nproc)
    if npart % nproc == 0 and not np.all(counts == npart // nproc):
        raise ValueError(
            "each processor must receive the same number of partitions "
            f"(got counts {counts.tolist()})"
        )

    # transfer[i, p]: elements moving from current processor i to new owner p
    dest = proc_of_part[np.arange(npart)]
    transfer = np.zeros((nproc, nproc), dtype=np.int64)
    np.add.at(transfer, (np.repeat(np.arange(nproc), npart),
                         np.tile(dest, nproc)), S.ravel())
    stay = np.diag(transfer).copy()
    off = transfer.copy()
    np.fill_diagonal(off, 0)

    sent = off.sum(axis=1)
    received = off.sum(axis=0)
    objective = int(S[proc_of_part, np.arange(npart)].sum())
    c_total = int(off.sum())
    n_total = int((off > 0).sum())

    per_proc_cost = np.maximum(alpha * sent, beta * received)
    b = int(np.argmax(per_proc_cost))
    c_max = int(per_proc_cost[b])
    n_max = int((off[b] > 0).sum() + (off[:, b] > 0).sum())

    assert objective == int(stay.sum()), "retained weight bookkeeping"
    assert c_total == int(S.sum()) - objective, "moved = total - retained"

    return RemapStats(
        objective=objective,
        c_total=c_total,
        n_total=n_total,
        sent=sent,
        received=received,
        max_sent=int(sent.max()) if nproc else 0,
        max_received=int(received.max()) if nproc else 0,
        c_max=c_max,
        n_max=n_max,
        bottleneck=b,
    )
