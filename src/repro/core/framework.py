"""The full load-balanced adaptive computation cycle (paper Fig. 1).

``LoadBalancedAdaptiveSolver`` wires every component together:

    flow solver → edge marking → [evaluate → repartition → reassign →
    gain/cost decision → remap] → subdivision → flow solver → …

The load balancer runs between *marking* and *subdivision* (the paper's key
§4.6 ordering, ``remap_when="before"``); setting ``remap_when="after"``
reproduces the baseline that balances only after the mesh has grown, which
Figs. 4 and 5 compare against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.adapt.adaptor import AdaptiveMesh
from repro.adapt.marking import MarkingResult
from repro.adapt.stats import marking_stats
from repro.mesh.tetmesh import TetMesh
from repro.obs import Span, Tracer, current_tracer
from repro.parallel.ledger import CostLedger
from repro.parallel.machine import MachineModel, SP2_1997
from repro.partition import quality as pq
from repro.partition.multilevel import multilevel_kway
from repro.partition.parallel_model import partition_time
from repro.partition.repartition import repartition

from .cost import CostModel, Decision
from .dualgraph import DualGraph
from .evaluate import load_imbalance, needs_repartition
from .metrics import RemapStats, remap_stats
from .reassign import (
    heuristic_mwbg,
    optimal_bmcm,
    optimal_mwbg,
    reassignment_time,
)
from .remap import RemapExecution, execute_remap
from .similarity import charge_gather_scatter, similarity_matrix

__all__ = ["LoadBalancedAdaptiveSolver", "StepReport"]

_REASSIGNERS = {
    "heuristic_mwbg": lambda S, F, a, b: heuristic_mwbg(S, F=F),
    "optimal_mwbg": lambda S, F, a, b: optimal_mwbg(S, F=F),
    "optimal_bmcm": lambda S, F, a, b: optimal_bmcm(S, alpha=a, beta=b),
    "combined": lambda S, F, a, b: _combined(S, a, b),
}


def _combined(S, alpha, beta):
    from .combined import combined_reassign

    return combined_reassign(S, lam=0.5, alpha=alpha, beta=beta)


@dataclass
class StepReport:
    """Everything one adapt/balance step produced (Fig. 6's anatomy).

    Every ``*_time`` field is **modelled virtual seconds** on the active
    :class:`~repro.parallel.machine.MachineModel` — the clock all of the
    paper's figures are plotted in.  Host wall-clock measurements carry an
    explicit ``wall`` in their name (:attr:`reassign_wall_seconds`) and
    are never mixed into :attr:`total_time`.  The phase breakdown is also
    recorded as tracer spans in :attr:`spans` (see :mod:`repro.obs`);
    their virtual durations are the authoritative per-phase anatomy and
    sum to :attr:`total_time`.
    """

    marking_time: float = 0.0
    partition_time: float = 0.0
    reassign_time: float = 0.0  #: modelled §4.4 host sort/assign time
    gather_scatter_time: float = 0.0  #: modelled S-row gather + map scatter
    remap_time: float = 0.0
    subdivision_time: float = 0.0
    reassign_wall_seconds: float = 0.0  #: host wall time actually spent solving
    imbalance_before: float = 1.0  #: predicted solver imbalance, old partition
    imbalance_after: float = 1.0  #: solver imbalance after the step
    repartition_triggered: bool = False
    accepted: bool = False
    decision: Decision | None = None
    stats: RemapStats | None = None
    remap: RemapExecution | None = None
    marking: MarkingResult | None = None
    growth_factor: float = 1.0
    mesh_sizes: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)  #: this step's span tree

    @property
    def adaption_time(self) -> float:
        """Parallel mesh-adaption time: marking + subdivision (Fig. 4)."""
        return self.marking_time + self.subdivision_time

    @property
    def total_time(self) -> float:
        """Virtual seconds of the whole step: adaption + every load-balancer
        phase (partitioning, §4.3 gather/scatter, reassignment, remapping)."""
        return (
            self.adaption_time
            + self.partition_time
            + self.gather_scatter_time
            + self.reassign_time
            + self.remap_time
        )

    def phase_times(self) -> dict[str, float]:
        """Virtual seconds per leaf phase, summed from the recorded spans."""
        from repro.obs import phase_virtual_times

        keep = ("marking", "repartition", "gather_scatter", "reassign",
                "remap", "subdivision")
        all_phases = phase_virtual_times(self.spans)
        return {k: all_phases.get(k, 0.0) for k in keep}


class LoadBalancedAdaptiveSolver:
    """Global-view dynamic load balancing for adaptive grid calculations.

    Parameters
    ----------
    mesh:
        The initial computational mesh (or an existing :class:`AdaptiveMesh`).
    nproc:
        Number of (virtual) processors.
    F:
        Partitions per processor (§4.3); 1 for all the paper's experiments.
    reassigner:
        ``"heuristic_mwbg"`` (default), ``"optimal_mwbg"``, or
        ``"optimal_bmcm"``.
    remap_when:
        ``"before"`` — move data after marking, before subdivision (§4.6);
        ``"after"`` — the baseline: subdivide first, then balance.
    imbalance_threshold:
        Predicted-imbalance level above which repartitioning is attempted.
    backend:
        Communicator backend name (or object) executing the remap's rank
        programs — see :func:`repro.parallel.create_communicator`.  On
        the default ``"virtual"`` backend the remap time is modelled
        virtual seconds (bit-identical to previous releases); on a
        real-execution backend (``"multiprocessing"``, ``"mpi4py"``) it
        is the measured wall makespan of the actual migration program.
    tracer:
        Optional :class:`repro.obs.Tracer` to record phase spans, point
        events, and counters into.  When omitted, the ambient tracer
        (:func:`repro.obs.use_tracer`) is used if one is installed, else
        each :meth:`adapt_step` records into a private step tracer; either
        way the step's spans are available on ``StepReport.spans``.
    """

    def __init__(
        self,
        mesh: TetMesh | AdaptiveMesh,
        nproc: int,
        solution: np.ndarray | None = None,
        machine: MachineModel = SP2_1997,
        cost_model: CostModel | None = None,
        reassigner: str = "heuristic_mwbg",
        F: int = 1,
        remap_when: str = "before",
        imbalance_threshold: float = 1.1,
        seed: int = 0,
        backend="virtual",
        tracer: Tracer | None = None,
    ):
        if nproc < 1:
            raise ValueError(f"nproc must be >= 1, got {nproc}")
        if F < 1:
            raise ValueError(f"F must be >= 1, got {F}")
        if reassigner not in _REASSIGNERS:
            raise ValueError(
                f"unknown reassigner {reassigner!r}; choose from "
                f"{sorted(_REASSIGNERS)}"
            )
        if reassigner in ("optimal_bmcm", "combined") and F != 1:
            raise ValueError(
                f"{reassigner} is implemented for F = 1 (as in the paper)"
            )
        if remap_when not in ("before", "after"):
            raise ValueError(f"remap_when must be 'before' or 'after', got {remap_when!r}")
        self.adaptive = mesh if isinstance(mesh, AdaptiveMesh) else AdaptiveMesh(
            mesh, solution
        )
        self.nproc = nproc
        self.F = F
        self.machine = machine
        self.cost_model = cost_model or CostModel(machine=machine)
        self.reassigner = reassigner
        self.remap_when = remap_when
        self.imbalance_threshold = imbalance_threshold
        self.seed = seed
        self.backend = backend
        self.tracer = tracer
        self.dual = DualGraph(self.adaptive.initial_mesh)
        # initial partitioning + mapping (Fig. 1's initialization box):
        # partition id f·P… maps to processor id partition // F
        init = multilevel_kway(self.dual.comp_graph(), F * nproc, seed=seed)
        self.part = (init // F).astype(np.int64)

    # --- observables ----------------------------------------------------------

    def elem_owner(self) -> np.ndarray:
        """Current processor of each *current-mesh* element."""
        return self.adaptive.elem_partition(self.part)

    def solver_imbalance(self) -> float:
        """Current flow-solver load imbalance (max over average Wcomp)."""
        return load_imbalance(self.adaptive.wcomp(), self.part, self.nproc)

    def solver_phase_time(self) -> float:
        """Modelled time of one solve phase under the current mapping."""
        loads = np.bincount(
            self.part, weights=self.adaptive.wcomp().astype(np.float64),
            minlength=self.nproc,
        )
        return self.cost_model.solver_phase_time(float(loads.max()))

    # --- the cycle ----------------------------------------------------------------

    def adapt_step(
        self,
        edge_error: np.ndarray | None = None,
        refine_frac: float | None = None,
        edge_mask: np.ndarray | None = None,
    ) -> StepReport:
        """One pass of the Fig.-1 cycle (marking, balancing, subdivision).

        The step is recorded as a span tree rooted at ``"adapt_step"``
        (returned on ``StepReport.spans``): ``marking`` and
        ``subdivision`` spans for the adaptor, and a ``balance`` span with
        ``evaluate`` / ``repartition`` / ``gather_scatter`` / ``reassign``
        / ``decide`` / ``remap`` children for the load balancer.
        """
        report = StepReport()
        tracer = self.tracer or current_tracer() or Tracer()
        first_span = len(tracer.spans)
        cycle = tracer.begin_cycle()
        with tracer.phase(
            "adapt_step",
            nproc=self.nproc,
            remap_when=self.remap_when,
            reassigner=self.reassigner,
            cycle=cycle,
        ):
            with tracer.phase("marking") as sp:
                ledger = CostLedger(self.nproc, self.machine, tracer=tracer)
                owner = self.elem_owner()
                marking = self.adaptive.mark(
                    edge_error=edge_error,
                    refine_frac=refine_frac,
                    edge_mask=edge_mask,
                    part=owner,
                    ledger=ledger,
                )
                ledger.close()
                tracer.advance(ledger.elapsed)
                edges_marked = int(np.count_nonzero(marking.edge_marked))
                sp.attrs.update(
                    edges_marked=edges_marked, iterations=marking.iterations
                )
                tracer.count("edges_marked", edges_marked)
                ms = marking_stats(marking, seed_mask=edge_mask)
                for sub, nelem in (
                    ("unchanged", ms.n_unchanged),
                    ("1to2", ms.n_1to2),
                    ("1to4", ms.n_1to4),
                    ("1to8", ms.n_1to8),
                ):
                    tracer.metric("repro.adapt.elements", nelem, subdivision=sub)
                tracer.metric("repro.adapt.marked_edges", edges_marked)
                tracer.metric(
                    "repro.adapt.propagation_iters", marking.iterations
                )
                tracer.metric("repro.adapt.elements_before", ms.n_elements)
            if edge_error is not None:
                err = np.asarray(edge_error, dtype=np.float64)
                norm = float(np.sqrt(np.mean(err * err))) if err.size else 0.0
                tracer.metric("repro.solver.indicator_norm", norm)
            report.marking = marking
            report.marking_time = ledger.elapsed

            wcomp_pred, _wremap_pred = self.adaptive.predicted_weights(marking)
            report.imbalance_before = load_imbalance(
                wcomp_pred, self.part, self.nproc
            )

            if self.remap_when == "before":
                self._balance(report, wcomp_pred, tracer)
                self._subdivide(report, marking, tracer)
            else:
                self._subdivide(report, marking, tracer)
                self._balance(report, self.adaptive.wcomp(), tracer)

            report.imbalance_after = self.solver_imbalance()
            tracer.gauge("imbalance_after", report.imbalance_after)
        report.spans = tracer.spans[first_span:]
        for phase, secs in report.phase_times().items():
            tracer.metric("repro.cycle.phase_seconds", secs, phase=phase)
        tracer.metric("repro.cycle.total_seconds", report.total_time)
        tracer.metric("repro.cycle.growth_factor", report.growth_factor)
        tracer.metric(
            "repro.cycle.imbalance", report.imbalance_before, when="before"
        )
        tracer.metric(
            "repro.cycle.imbalance", report.imbalance_after, when="after"
        )
        tracer.metric("repro.cycle.accepted", float(report.accepted))
        tracer.metric("repro.cycle.nproc", self.nproc)
        return report

    # --- internals -----------------------------------------------------------

    def _subdivide(
        self, report: StepReport, marking: MarkingResult, tracer: Tracer
    ) -> None:
        with tracer.phase("subdivision") as sp:
            ledger = CostLedger(self.nproc, self.machine, tracer=tracer)
            result = self.adaptive.refine(
                marking, part=self.elem_owner(), ledger=ledger
            )
            ledger.close()
            tracer.advance(ledger.elapsed)
            sp.attrs["growth_factor"] = result.growth_factor
            tracer.metric("repro.adapt.elements_after", self.adaptive.mesh.ne)
        report.subdivision_time = ledger.elapsed
        report.growth_factor = result.growth_factor
        report.mesh_sizes = self.adaptive.mesh.sizes()

    def _balance(
        self, report: StepReport, wcomp: np.ndarray, tracer: Tracer
    ) -> None:
        """Evaluate → repartition → reassign → decide → remap."""
        if self.nproc == 1:
            return
        with tracer.phase("balance"):
            with tracer.phase("evaluate") as sp:
                triggered = needs_repartition(
                    wcomp, self.part, self.nproc, self.imbalance_threshold
                )
                sp.attrs["triggered"] = triggered
            if not triggered:
                return
            report.repartition_triggered = True
            tracer.count("repartitions_triggered")
            npart = self.F * self.nproc

            with tracer.phase("repartition") as sp:
                graph = self.dual.graph.with_vwgt(
                    np.asarray(wcomp, dtype=np.int64)
                )
                old_as_parts = (self.part * self.F).astype(np.int64)
                new_part = repartition(
                    graph, npart, old_as_parts, seed=self.seed, tracer=tracer
                )
                report.partition_time = partition_time(
                    self.dual.n, self.nproc, self.machine
                )
                tracer.advance(report.partition_time)
                sp.attrs.update(npart=npart, n=self.dual.n)
            tracer.metric(
                "repro.partition.imbalance",
                pq.imbalance(graph, self.part, self.nproc),
                when="before",
            )
            tracer.metric(
                "repro.partition.edgecut",
                float(pq.edgecut(graph, self.part)),
                when="before",
            )

            # data physically moved: the *current* (pre- or post-subdivision)
            # refinement trees, depending on remap_when
            wremap_now = self.adaptive.wremap()
            with tracer.phase("gather_scatter") as sp:
                S = similarity_matrix(
                    self.part, new_part, wremap_now, self.nproc, npart
                )
                # §4.3: each processor computes its own row; a host gathers
                # the P×F-integer rows, solves, and scatters the mapping back
                # ("a minuscule amount of time" — modelled, so the claim is
                # checkable)
                gs_ledger = CostLedger(self.nproc, self.machine, tracer=tracer)
                charge_gather_scatter(gs_ledger, npart)
                gs_ledger.close()
                report.gather_scatter_time = gs_ledger.elapsed
                tracer.advance(report.gather_scatter_time)
                sp.attrs["entries"] = int(np.count_nonzero(S))

            with tracer.phase("reassign") as sp:
                # the modelled §4.4 cost: O(E log E) sort of the nonzero
                # similarity entries at the host, then the linear assignment
                # pass — kept in the same virtual clock as every other phase
                report.reassign_time = reassignment_time(
                    int(np.count_nonzero(S)), npart, self.machine
                )
                t0 = time.perf_counter()
                proc_of_part = _REASSIGNERS[self.reassigner](
                    S, self.F, self.machine.alpha, self.machine.beta
                )
                report.reassign_wall_seconds = time.perf_counter() - t0
                tracer.advance(report.reassign_time)
                sp.attrs["wall_seconds"] = report.reassign_wall_seconds

            new_proc = proc_of_part[new_part]
            stats = remap_stats(
                S, proc_of_part, self.machine.alpha, self.machine.beta
            )
            report.stats = stats
            total_mass = float(S.sum())
            tracer.metric("repro.partition.diag_mass", float(stats.objective))
            tracer.metric(
                "repro.partition.diag_fraction",
                float(stats.objective) / total_mass if total_mass else 1.0,
            )
            # paper Table 1 quantities for both reassignment methods, so
            # every run report can compare greedy against optimal MWBG
            # (re-solving the assignment here costs wall time only — the
            # modelled reassign_time above is unchanged)
            mappings = {
                "greedy": proc_of_part
                if self.reassigner == "heuristic_mwbg"
                else heuristic_mwbg(S, F=self.F),
                "mwbg": proc_of_part
                if self.reassigner == "optimal_mwbg"
                else optimal_mwbg(S, F=self.F),
            }
            for method, mapping in mappings.items():
                mstats = remap_stats(
                    S, mapping, self.machine.alpha, self.machine.beta
                )
                tracer.metric(
                    "repro.reassign.total_v", mstats.c_total, method=method
                )
                tracer.metric(
                    "repro.reassign.max_v", mstats.c_max, method=method
                )
                tracer.metric(
                    "repro.reassign.max_sr",
                    max(mstats.max_sent, mstats.max_received),
                    method=method,
                )
            with tracer.phase("decide") as sp:
                decision = self.cost_model.decide(
                    wcomp, self.part, new_proc, self.nproc, stats
                )
                sp.attrs.update(
                    gain=decision.gain, cost=decision.cost,
                    accept=decision.accept,
                )
            report.decision = decision
            chosen = new_proc if decision.accept else self.part
            tracer.metric(
                "repro.partition.imbalance",
                pq.imbalance(graph, chosen, self.nproc),
                when="after",
            )
            tracer.metric(
                "repro.partition.edgecut",
                float(pq.edgecut(graph, chosen)),
                when="after",
            )
            if not decision.accept:
                return  # the new partitioning is discarded (Fig. 1)
            tracer.count("repartitions_accepted")

            with tracer.phase("remap") as sp:
                execu = execute_remap(
                    self.part,
                    new_proc,
                    wremap_now,
                    self.nproc,
                    storage_words=self.cost_model.storage_words,
                    machine=self.machine,
                    tracer=tracer,
                    backend=self.backend,
                )
                tracer.advance(execu.time_seconds)
                sp.attrs.update(
                    elements_moved=execu.elements_moved,
                    messages=execu.messages,
                    words_moved=execu.words_moved,
                )
            tracer.count("elements_moved", execu.elements_moved)
            tracer.count("words_moved", execu.words_moved)
            tracer.metric(
                "repro.remap.elements_moved", execu.elements_moved,
                kind="counter",
            )
            tracer.metric(
                "repro.remap.words_moved", execu.words_moved, kind="counter"
            )
            tracer.metric(
                "repro.remap.messages", execu.messages, kind="counter"
            )
            report.remap = execu
            report.remap_time = execu.time_seconds
            report.accepted = True
            self.part = new_proc
