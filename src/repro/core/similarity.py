"""Similarity matrix construction (paper §4.3).

Entry ``S[i, j]`` is the sum of the ``Wremap`` of all dual-graph vertices
in *new* partition ``j`` that currently reside on processor ``i``.  In the
paper each processor computes its own row from its subdomain; a host
gathers the rows (P×F integers each — "a minuscule amount of time"),
solves the reassignment, and scatters the answer.  We build the matrix with
one vectorized histogram and optionally model the gather/solve/scatter cost
on the virtual machine.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.ledger import CostLedger

__all__ = ["similarity_matrix", "charge_gather_scatter"]


def similarity_matrix(
    old_part: np.ndarray,
    new_part: np.ndarray,
    wremap: np.ndarray,
    nproc: int,
    npart: int | None = None,
) -> np.ndarray:
    """Build the (nproc, npart) similarity matrix.

    ``npart`` defaults to ``nproc`` (F = 1); with F > 1 pass
    ``npart = F * nproc``.
    """
    old_part = np.asarray(old_part, dtype=np.int64)
    new_part = np.asarray(new_part, dtype=np.int64)
    wremap = np.asarray(wremap, dtype=np.int64)
    if not (old_part.shape == new_part.shape == wremap.shape):
        raise ValueError("old_part, new_part, wremap must align")
    if npart is None:
        npart = nproc
    if npart % nproc != 0:
        raise ValueError(
            f"number of partitions ({npart}) must be a multiple of the "
            f"number of processors ({nproc})"
        )
    if old_part.size:
        if old_part.min() < 0 or old_part.max() >= nproc:
            raise ValueError("old_part labels out of range")
        if new_part.min() < 0 or new_part.max() >= npart:
            raise ValueError("new_part labels out of range")
    S = np.zeros((nproc, npart), dtype=np.int64)
    np.add.at(S, (old_part, new_part), wremap)
    return S


def charge_gather_scatter(ledger: CostLedger, npart: int) -> None:
    """Model the host gather of one row per processor and the scatter of
    the partition-to-processor mapping (paper: P×F integers per row)."""
    p = ledger.nranks
    for r in range(1, p):
        ledger.add_message(r, 0, npart)  # row of S to the host
    for r in range(1, p):
        ledger.add_message(0, r, npart)  # mapping back
    ledger.barrier()
