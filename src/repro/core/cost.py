"""Gain/cost acceptance test for a proposed remapping (paper §4.5–4.6).

The new partitioning and processor reassignment are accepted iff the
computational gain exceeds the redistribution cost:

    T_iter · N_adapt · (W_max_old − W_max_new)  +  (T_refine − T_refine_new)
        >  M · C · T_lat  +  N · T_setup

where ``W_max`` is the Wcomp of the most heavily loaded processor under the
old/new partitionings, the ``T_refine`` term credits the better-balanced
subdivision phase obtained by remapping *before* refinement, ``M`` is the
per-element storage in words, and (C, N) are (C_total, N_total) under the
TotalV metric or (C_max, N_max) under MaxV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.machine import MachineModel, SP2_1997

from .metrics import RemapStats

__all__ = ["CostModel", "Decision"]


@dataclass(frozen=True)
class Decision:
    """Outcome of the gain/cost comparison."""

    gain: float  #: expected seconds saved by balancing
    cost: float  #: expected seconds spent redistributing
    accept: bool
    w_max_old: int
    w_max_new: int
    refine_credit: float


@dataclass(frozen=True)
class CostModel:
    """Machine-dependent parameters of the acceptance test.

    Parameters
    ----------
    machine:
        Supplies :math:`T_{lat}` (``t_word``) and :math:`T_{setup}`.
    t_iter:
        Seconds to run one solver iteration on one element of the original
        mesh (per unit of Wcomp).
    n_adapt:
        Solver iterations between mesh adaptions.
    storage_words:
        M — storage requirement per element for the solver and adaptor.
    t_child:
        Seconds for the subdivision phase to create one element (used for
        the refine-balance credit of §4.6).
    metric:
        ``"totalv"`` or ``"maxv"`` — which (C, N) pair prices the remap.
    """

    machine: MachineModel = SP2_1997
    t_iter: float = 2.0e-5
    n_adapt: int = 50
    storage_words: int = 24
    t_child: float = 1.0e-5
    metric: str = "totalv"

    def __post_init__(self) -> None:
        if self.metric not in ("totalv", "maxv"):
            raise ValueError(f"metric must be 'totalv' or 'maxv', got {self.metric!r}")

    # --- pieces ---------------------------------------------------------------

    def redistribution_cost(self, stats: RemapStats) -> float:
        """M·C·T_lat + N·T_setup with (C, N) chosen by the metric."""
        if self.metric == "totalv":
            c, n = stats.c_total, stats.n_total
        else:
            c, n = stats.c_max, stats.n_max
        return (
            self.storage_words * c * self.machine.t_word
            + n * self.machine.t_setup
        )

    def solver_phase_time(self, w_max: float) -> float:
        """Time of one solve phase given the most-loaded processor's Wcomp."""
        return self.t_iter * self.n_adapt * w_max

    def refine_phase_time(self, children_max: float) -> float:
        """Subdivision-phase time given the max per-processor children."""
        return self.t_child * children_max

    # --- the decision -----------------------------------------------------------

    def decide(
        self,
        wcomp: np.ndarray,
        old_proc: np.ndarray,
        new_proc: np.ndarray,
        nproc: int,
        stats: RemapStats,
    ) -> Decision:
        """Accept/reject a remap given predicted weights and both ownerships.

        ``wcomp`` are the *predicted* post-subdivision weights per initial
        element (§4.6), so the refine-balance credit falls out of the same
        numbers: predicted children ≈ predicted leaves.
        """
        wcomp = np.asarray(wcomp, dtype=np.float64)
        old_loads = np.bincount(old_proc, weights=wcomp, minlength=nproc)
        new_loads = np.bincount(new_proc, weights=wcomp, minlength=nproc)
        w_max_old = float(old_loads.max())
        w_max_new = float(new_loads.max())
        refine_credit = self.refine_phase_time(w_max_old) - self.refine_phase_time(
            w_max_new
        )
        gain = (
            self.solver_phase_time(w_max_old)
            - self.solver_phase_time(w_max_new)
            + refine_credit
        )
        cost = self.redistribution_cost(stats)
        return Decision(
            gain=gain,
            cost=cost,
            accept=gain > cost,
            w_max_old=int(w_max_old),
            w_max_new=int(w_max_new),
            refine_credit=refine_credit,
        )
