"""Adaption-run history: per-step records, cumulative accounting, export.

The paper evaluates single steps; production runs execute the Fig.-1 cycle
for many adaptions, and the quantities worth tracking accumulate — solver
time saved, data moved, remap decisions taken.  :class:`AdaptionHistory`
collects the framework's :class:`~repro.core.framework.StepReport` objects
and renders the anatomy table / cumulative summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .framework import StepReport

__all__ = ["AdaptionHistory"]


@dataclass
class AdaptionHistory:
    """Accumulates step reports from a LoadBalancedAdaptiveSolver run."""

    reports: list[StepReport] = field(default_factory=list)

    def record(self, report: StepReport) -> StepReport:
        """Append a step (returns it, so calls can be chained inline)."""
        self.reports.append(report)
        return report

    def __len__(self) -> int:
        return len(self.reports)

    # --- cumulative quantities -------------------------------------------------

    @property
    def total_elements_moved(self) -> int:
        return sum(r.remap.elements_moved for r in self.reports if r.remap)

    @property
    def total_remap_time(self) -> float:
        return sum(r.remap_time for r in self.reports)

    @property
    def total_adaption_time(self) -> float:
        return sum(r.adaption_time for r in self.reports)

    @property
    def accepted_steps(self) -> int:
        return sum(1 for r in self.reports if r.accepted)

    @property
    def rejected_steps(self) -> int:
        return sum(
            1 for r in self.reports if r.repartition_triggered and not r.accepted
        )

    def imbalance_trajectory(self) -> list[tuple[float, float]]:
        """(before, after) predicted/actual imbalance per step."""
        return [(r.imbalance_before, r.imbalance_after) for r in self.reports]

    # --- rendering -----------------------------------------------------------------

    def anatomy_table(self) -> str:
        """Per-step phase times in the style of the paper's Fig. 6."""
        hdr = (
            f"{'step':>4s} {'mark':>9s} {'part':>9s} {'reass':>9s} "
            f"{'remap':>9s} {'subdiv':>9s} {'imb_in':>7s} {'imb_out':>8s} "
            f"{'G':>6s} {'status':>9s}"
        )
        lines = [hdr]
        for i, r in enumerate(self.reports, 1):
            status = (
                "remapped" if r.accepted
                else ("rejected" if r.repartition_triggered else "balanced")
            )
            lines.append(
                f"{i:4d} {r.marking_time:9.4f} {r.partition_time:9.4f} "
                f"{r.reassign_time:9.4f} {r.remap_time:9.4f} "
                f"{r.subdivision_time:9.4f} {r.imbalance_before:7.2f} "
                f"{r.imbalance_after:8.2f} {r.growth_factor:6.2f} {status:>9s}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        n = len(self.reports)
        if n == 0:
            return "no adaption steps recorded"
        return (
            f"{n} steps: {self.accepted_steps} remapped, "
            f"{self.rejected_steps} rejected, "
            f"{n - self.accepted_steps - self.rejected_steps} already balanced; "
            f"moved {self.total_elements_moved} refinement-tree nodes in "
            f"{self.total_remap_time:.4f}s; adaption {self.total_adaption_time:.4f}s"
        )
