"""Dual graph of the initial computational mesh (paper §4.1).

The tetrahedra of the *initial* mesh are the dual vertices; an edge joins
two dual vertices when the elements share a face.  Partitioning the dual
assigns tetrahedra — and, through the refinement trees, all their
descendants — to processors.  Because adaption only changes the two vertex
weights (``Wcomp`` = leaves, ``Wremap`` = total tree nodes) and never the
topology, "the repartitioning time depends only on the initial problem size
and the number of partitions, but not on the size of the adapted mesh."
"""

from __future__ import annotations

import numpy as np

from repro.adapt.adaptor import AdaptiveMesh
from repro.mesh.tetmesh import TetMesh
from repro.partition.graph import Graph

__all__ = ["DualGraph"]


class DualGraph:
    """The dual graph with the two adaption-driven weight vectors."""

    def __init__(self, mesh: TetMesh):
        self.mesh = mesh
        self.graph = Graph.from_pairs(mesh.dual_pairs, mesh.ne)
        self.wcomp = np.ones(mesh.ne, dtype=np.int64)
        self.wremap = np.ones(mesh.ne, dtype=np.int64)

    @property
    def n(self) -> int:
        return self.graph.n

    def update_weights(self, wcomp: np.ndarray, wremap: np.ndarray) -> None:
        """Install new weights (from the refinement forest, actual or
        predicted)."""
        wcomp = np.asarray(wcomp, dtype=np.int64)
        wremap = np.asarray(wremap, dtype=np.int64)
        if wcomp.shape != (self.n,) or wremap.shape != (self.n,):
            raise ValueError(f"weights must have shape ({self.n},)")
        if np.any(wcomp < 1) or np.any(wremap < wcomp):
            raise ValueError(
                "need wcomp >= 1 and wremap >= wcomp (a tree has at least "
                "as many nodes as leaves)"
            )
        self.wcomp = wcomp
        self.wremap = wremap

    def update_from(self, adaptive: AdaptiveMesh) -> None:
        """Pull current weights from an adaptive mesh's forest."""
        self.update_weights(adaptive.wcomp(), adaptive.wremap())

    def update_predicted(self, adaptive: AdaptiveMesh, marking) -> None:
        """Pull *predicted* weights for a pending marking (paper §4.6:
        weights adjusted as though subdivision had already taken place)."""
        wcomp, wremap = adaptive.predicted_weights(marking)
        self.update_weights(wcomp, wremap)

    def comp_graph(self) -> Graph:
        """Graph weighted by Wcomp — what the repartitioner balances."""
        return self.graph.with_vwgt(self.wcomp)

    def remap_graph(self) -> Graph:
        """Graph weighted by Wremap — what the remapper pays to move."""
        return self.graph.with_vwgt(self.wremap)

    def element_centroids(self) -> np.ndarray:
        """Initial-element centroids (for geometric baseline partitioners)."""
        return self.mesh.coords[self.mesh.elems].mean(axis=1)
