"""Processor reassignment (paper §4.4).

Given the similarity matrix, map the ``npart = F·P`` new partitions onto
the ``P`` processors so the redistribution cost is minimised:

* :func:`optimal_mwbg` — maximally weighted bipartite graph matching,
  optimal for the **TotalV** metric (maximise retained weight ⇔ minimise
  total elements moved).  F > 1 is handled by duplicating each processor
  (and its incident edges) F times, exactly as in the paper.
* :func:`heuristic_mwbg` — the paper's greedy algorithm: sort all entries
  in descending order (they use a radix sort; we use NumPy's O(E log E)
  sort — same output, deterministic tie-breaks) and assign greedily.
  Theorem 1 guarantees objective ≥ ½ · optimal; the corollary bounds data
  movement at ≤ 2× optimal.  O(E) assignment after the sort.
* :func:`optimal_bmcm` — bottleneck maximum cardinality matching, optimal
  for the **MaxV** metric (minimise the most-loaded processor's
  max(α·sent, β·received)).  The paper uses Gabow–Tarjan; we obtain the
  same optimum by binary-searching the bottleneck threshold over a
  Hopcroft–Karp feasibility test.  Implemented for F = 1, like the paper.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linear_sum_assignment
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import maximum_bipartite_matching

from repro.parallel.machine import MachineModel, SP2_1997

__all__ = [
    "optimal_mwbg",
    "heuristic_mwbg",
    "optimal_bmcm",
    "objective_value",
    "reassignment_time",
    "brute_force_totalv",
    "brute_force_maxv",
]

#: Work units per similarity entry in the O(E log E) sort (§4.4).
C_SORT = 1.0
#: Work units per entry/partition of the linear greedy-assignment pass.
C_ASSIGN = 1.0


def reassignment_time(
    n_entries: int, npart: int, machine: MachineModel = SP2_1997
) -> float:
    """Modelled host seconds for the §4.4 processor reassignment.

    The paper sizes the reassignment as a sort of the ``E`` nonzero
    similarity-matrix entries (``E ≤ P·(P·F)``; they use radix sort, we
    use an O(E log E) comparison sort — same asymptotics at these sizes)
    followed by a linear greedy assignment over entries and partitions.
    It runs serially on the gathered rows at the host, so the whole cost
    is charged as local work under the machine model — the same virtual
    clock every other :class:`~repro.core.framework.StepReport` phase is
    measured in.
    """
    if n_entries < 0:
        raise ValueError(f"negative entry count: {n_entries}")
    if npart < 1:
        raise ValueError(f"need at least one partition, got {npart}")
    e = max(int(n_entries), 1)
    units = C_SORT * e * math.log2(e + 1) + C_ASSIGN * (e + npart)
    return machine.work_time(units)


def _check_S(S: np.ndarray, F: int) -> tuple[np.ndarray, int, int]:
    S = np.asarray(S, dtype=np.int64)
    if S.ndim != 2:
        raise ValueError(f"S must be 2-D, got shape {S.shape}")
    nproc, npart = S.shape
    if npart != F * nproc:
        raise ValueError(
            f"S has {npart} partitions for {nproc} processors; expected F·P "
            f"= {F * nproc}"
        )
    if np.any(S < 0):
        raise ValueError("similarity weights must be non-negative")
    return S, nproc, npart


def objective_value(S: np.ndarray, proc_of_part: np.ndarray) -> int:
    """The TotalV objective F = Σ_j S[proc_of_part[j], j] (retained weight)."""
    S = np.asarray(S)
    proc_of_part = np.asarray(proc_of_part, dtype=np.int64)
    return int(S[proc_of_part, np.arange(S.shape[1])].sum())


def optimal_mwbg(S: np.ndarray, F: int = 1) -> np.ndarray:
    """Optimal TotalV assignment; returns ``proc_of_part`` of length F·P."""
    S, nproc, npart = _check_S(S, F)
    big = np.repeat(S, F, axis=0)  # duplicate each processor F times
    rows, cols = linear_sum_assignment(big, maximize=True)
    proc_of_part = np.empty(npart, dtype=np.int64)
    proc_of_part[cols] = rows // F  # fold the F copies back
    return proc_of_part


def heuristic_mwbg(S: np.ndarray, F: int = 1) -> np.ndarray:
    """The paper's greedy heuristic (pseudocode in §4.4), O(E log E + E).

    Entries are visited in descending weight; ties broken by (processor,
    partition) index so the result is deterministic.  Zero entries are used
    if needed, exactly as the paper allows.
    """
    S, nproc, npart = _check_S(S, F)
    i_idx, j_idx = np.nonzero(S)
    w = S[i_idx, j_idx]
    order = np.lexsort((j_idx, i_idx, -w))
    part_map = np.full(npart, -1, dtype=np.int64)
    proc_unmap = np.full(nproc, F, dtype=np.int64)
    count = 0
    for t in order:
        i, j = i_idx[t], j_idx[t]
        if proc_unmap[i] > 0 and part_map[j] < 0:
            proc_unmap[i] -= 1
            part_map[j] = i
            count += 1
            if count == npart:
                break
    if count < npart:  # fall back to zero entries, in index order
        free_parts = np.flatnonzero(part_map < 0)
        free_slots = np.repeat(np.arange(nproc), proc_unmap)
        part_map[free_parts] = free_slots[: free_parts.shape[0]]
    return part_map


def optimal_bmcm(S: np.ndarray, alpha: float = 1.0, beta: float = 1.0) -> np.ndarray:
    """Optimal MaxV assignment (F = 1): minimise over perfect matchings the
    maximum per-edge cost max(α·sent_i, β·recv_j) where
    sent = rowsum_i − S[i,j] and recv = colsum_j − S[i,j].

    Exact bottleneck assignment: binary search the threshold over the sorted
    distinct edge costs, testing perfect-matching feasibility with
    Hopcroft–Karp.
    """
    S, nproc, npart = _check_S(S, F=1)
    row = S.sum(axis=1, keepdims=True)
    col = S.sum(axis=0, keepdims=True)
    cost = np.maximum(alpha * (row - S), beta * (col - S))
    levels = np.unique(cost)
    lo, hi = 0, levels.shape[0] - 1
    # a perfect matching always exists at the max threshold (complete graph)
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_perfect_matching(cost <= levels[mid]):
            hi = mid
        else:
            lo = mid + 1
    feasible = cost <= levels[lo]
    match = _perfect_matching(feasible)
    proc_of_part = np.empty(npart, dtype=np.int64)
    proc_of_part[match] = np.arange(nproc)
    return proc_of_part


def _has_perfect_matching(mask: np.ndarray) -> bool:
    m = maximum_bipartite_matching(csr_matrix(mask), perm_type="column")
    return bool(np.all(m >= 0))


def _perfect_matching(mask: np.ndarray) -> np.ndarray:
    """Row -> matched column under ``mask`` (must be perfect)."""
    m = maximum_bipartite_matching(csr_matrix(mask), perm_type="column")
    if np.any(m < 0):
        raise RuntimeError("expected a perfect matching")
    return m


# --- exhaustive references for tests ---------------------------------------


def brute_force_totalv(S: np.ndarray) -> int:
    """Optimal TotalV objective by enumeration (tests only; F = 1, small P)."""
    from itertools import permutations

    S = np.asarray(S)
    n = S.shape[0]
    return max(
        sum(int(S[p[j], j]) for j in range(n)) for p in permutations(range(n))
    )


def brute_force_maxv(S: np.ndarray, alpha: float = 1.0, beta: float = 1.0) -> float:
    """Optimal MaxV bottleneck by enumeration (tests only)."""
    from itertools import permutations

    S = np.asarray(S)
    n = S.shape[0]
    row = S.sum(axis=1)
    col = S.sum(axis=0)
    best = np.inf
    for p in permutations(range(n)):
        worst = max(
            max(alpha * (row[p[j]] - S[p[j], j]), beta * (col[j] - S[p[j], j]))
            for j in range(n)
        )
        best = min(best, worst)
    return float(best)
