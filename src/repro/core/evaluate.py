"""The quick evaluation step gating the load balancer (paper Fig. 1).

After edge marking, the predicted weights tell us how unbalanced the mesh
*will be* once subdivided.  "A quick evaluation step determines if the new
mesh will be so unbalanced as to warrant a repartitioning.  If the current
partitions will remain adequately load balanced, control is passed back to
the subdivision phase of the mesh adaptor."
"""

from __future__ import annotations

import numpy as np

__all__ = ["load_imbalance", "needs_repartition"]


def load_imbalance(wcomp: np.ndarray, proc: np.ndarray, nproc: int) -> float:
    """Max per-processor Wcomp over the balanced average (>= 1.0)."""
    wcomp = np.asarray(wcomp, dtype=np.float64)
    proc = np.asarray(proc, dtype=np.int64)
    if wcomp.shape != proc.shape:
        raise ValueError("wcomp and proc must align")
    loads = np.bincount(proc, weights=wcomp, minlength=nproc)
    avg = wcomp.sum() / nproc
    return float(loads.max() / avg) if avg > 0 else 1.0


def needs_repartition(
    wcomp: np.ndarray, proc: np.ndarray, nproc: int, threshold: float = 1.1
) -> bool:
    """True when the predicted imbalance exceeds ``threshold``."""
    if threshold < 1.0:
        raise ValueError(f"threshold must be >= 1.0, got {threshold}")
    return load_imbalance(wcomp, proc, nproc) > threshold
