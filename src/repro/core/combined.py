"""Combined TotalV + MaxV reassignment (the paper's stated future work).

§4.4: "Note that TotalV does not consider the execution times of
bottleneck processors while MaxV ignores bandwidth contention.  In
general, the objective function may need to use a combination of both
metrics to effectively incorporate all related costs.  This issue will be
addressed in future work."

We implement that combination: the assignment cost is

    J(map) = (1 − λ) · C_total(map) + λ · C_max(map),

λ = 0 recovering TotalV and λ = 1 MaxV.  The solver seeds from the exact
optima of both endpoints (optimal MWBG and optimal BMCM), then improves J
with pairwise-swap local search to a local optimum — guaranteed no worse
than the better endpoint seed under J.
"""

from __future__ import annotations

import numpy as np

from .metrics import remap_stats
from .reassign import optimal_bmcm, optimal_mwbg

__all__ = ["combined_cost", "combined_reassign"]


def combined_cost(
    S: np.ndarray,
    proc_of_part: np.ndarray,
    lam: float,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> float:
    """J(map) = (1−λ)·C_total + λ·C_max."""
    st = remap_stats(S, proc_of_part, alpha=alpha, beta=beta)
    return (1.0 - lam) * st.c_total + lam * st.c_max


def combined_reassign(
    S: np.ndarray,
    lam: float = 0.5,
    alpha: float = 1.0,
    beta: float = 1.0,
    max_sweeps: int = 8,
) -> np.ndarray:
    """Assignment minimising the λ-combination of TotalV and MaxV (F = 1).

    Seeds from both exact endpoint optima and locally improves with
    partition-pair swaps; deterministic sweep order.
    """
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lam must be in [0, 1], got {lam}")
    S = np.asarray(S, dtype=np.int64)
    seeds = [optimal_mwbg(S), optimal_bmcm(S, alpha=alpha, beta=beta)]
    best = min(seeds, key=lambda m: combined_cost(S, m, lam, alpha, beta))
    best = best.copy()
    best_cost = combined_cost(S, best, lam, alpha, beta)

    npart = S.shape[1]
    for _ in range(max_sweeps):
        improved = False
        for j in range(npart):
            for k in range(j + 1, npart):
                cand = best.copy()
                cand[j], cand[k] = cand[k], cand[j]
                c = combined_cost(S, cand, lam, alpha, beta)
                if c < best_cost - 1e-12:
                    best, best_cost = cand, c
                    improved = True
        if not improved:
            break
    return best
