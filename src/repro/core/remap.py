"""The data remapper (paper §4.6): physically migrate elements and measure
the cost on the virtual machine.

Every initial-mesh element moves with its whole refinement tree (that is
why ``Wremap`` counts all tree nodes).  The migration is executed as an
SPMD program on the :class:`~repro.parallel.VirtualMachine`: each rank
packs one message per destination (paying per-element packing work and the
transfer cost), receives its incoming sets, and rebuilds its local data
structures (per-received-element work).  The program's makespan is the
measured remapping time reported in Figs. 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.backends import record_backend_run, resolve_backend
from repro.parallel.machine import MachineModel, SP2_1997
from repro.parallel.runtime import per_rank

__all__ = ["RemapExecution", "build_move_matrix", "execute_remap"]

#: Work units to pack or unpack one element's payload.
PACK_WORK_PER_ELEM = 2.0
#: Work units to rebuild internal/shared structures per received element.
REBUILD_WORK_PER_ELEM = 4.0


@dataclass(frozen=True)
class RemapExecution:
    """Result of physically executing a remap on the virtual machine."""

    time_seconds: float  #: VM makespan of the migration program
    elements_moved: int
    messages: int
    words_moved: int
    new_owner: np.ndarray  #: (n_initial_elements,) processor after the move


def build_move_matrix(
    old_proc: np.ndarray,
    new_proc: np.ndarray,
    wremap: np.ndarray,
    nproc: int,
) -> np.ndarray:
    """``(P, P)`` element counts moving from each processor to each other."""
    old_proc = np.asarray(old_proc, dtype=np.int64)
    new_proc = np.asarray(new_proc, dtype=np.int64)
    wremap = np.asarray(wremap, dtype=np.int64)
    if not (old_proc.shape == new_proc.shape == wremap.shape):
        raise ValueError("old_proc, new_proc, wremap must align")
    move = np.zeros((nproc, nproc), dtype=np.int64)
    np.add.at(move, (old_proc, new_proc), wremap)
    np.fill_diagonal(move, 0)  # staying put is free
    return move


def execute_remap(
    old_proc: np.ndarray,
    new_proc: np.ndarray,
    wremap: np.ndarray,
    nproc: int,
    storage_words: int = 24,
    machine: MachineModel = SP2_1997,
    tracer=None,
    backend="virtual",
) -> RemapExecution:
    """Migrate ownership from ``old_proc`` to ``new_proc`` on the VM.

    Conservation is asserted: every element is owned by exactly one
    processor before and after.  With ``tracer`` set to a
    :class:`repro.obs.Tracer`, every virtual-machine send/recv of the
    migration program is mirrored into it, so the exported trace shows
    the full communication schedule of the remap.  ``backend`` selects
    the communicator backend executing the migration program.
    """
    move = build_move_matrix(old_proc, new_proc, wremap, nproc)
    comm = resolve_backend(backend, nproc, machine=machine, tracer=tracer)

    send_plans = [
        [(d, int(move[r, d])) for d in range(nproc) if move[r, d] > 0]
        for r in range(nproc)
    ]
    recv_counts = [int((move[:, r] > 0).sum()) for r in range(nproc)]

    def program(comm, sends, n_in):
        # pack and ship one message per destination
        for dest, elems in sends:
            yield from comm.compute(PACK_WORK_PER_ELEM * elems)
            yield from comm.send(
                ("elements", comm.rank, elems),
                dest=dest,
                tag=1,
                nwords=elems * storage_words,
            )
        got = 0
        for _ in range(n_in):
            payload = yield from comm.recv(tag=1)
            _, _, elems = payload
            yield from comm.compute(PACK_WORK_PER_ELEM * elems)  # unpack
            got += elems
        # rebuild internal and shared data structures
        yield from comm.compute(REBUILD_WORK_PER_ELEM * got)
        yield from comm.barrier()
        return got

    res = comm.run(program, per_rank(send_plans), per_rank(recv_counts))
    record_backend_run(tracer, "remap", res)

    received = np.array(res.returns)
    expected_in = move.sum(axis=0)
    assert np.array_equal(received, expected_in), "element conservation"

    return RemapExecution(
        time_seconds=res.makespan,
        elements_moved=int(move.sum()),
        messages=int((move > 0).sum()),  # element sets, excl. barrier traffic
        words_moved=int(move.sum()) * storage_words,
        new_owner=np.array(new_proc, dtype=np.int64),
    )
