"""The paper's primary contribution: global-view dynamic load balancing.

Dual graph of the initial mesh (§4.1), similarity-matrix construction
(§4.3), processor reassignment by optimal/heuristic MWBG and optimal BMCM
(§4.4), the TotalV/MaxV cost metrics and gain/cost acceptance test
(§4.5), the efficient remap-before-subdivision data mover (§4.6), and the
framework driver tying them to the mesh adaptor and partitioner (Fig. 1).
"""

from .checkpoint import load_checkpoint, save_checkpoint
from .combined import combined_cost, combined_reassign
from .cost import CostModel, Decision
from .dualgraph import DualGraph
from .evaluate import load_imbalance, needs_repartition
from .framework import LoadBalancedAdaptiveSolver, StepReport
from .history import AdaptionHistory
from .metrics import RemapStats, remap_stats
from .reassign import (
    brute_force_maxv,
    brute_force_totalv,
    heuristic_mwbg,
    objective_value,
    optimal_bmcm,
    optimal_mwbg,
)
from .remap import RemapExecution, build_move_matrix, execute_remap
from .similarity import charge_gather_scatter, similarity_matrix

__all__ = [
    "AdaptionHistory",
    "CostModel",
    "Decision",
    "DualGraph",
    "LoadBalancedAdaptiveSolver",
    "RemapExecution",
    "RemapStats",
    "StepReport",
    "brute_force_maxv",
    "brute_force_totalv",
    "build_move_matrix",
    "charge_gather_scatter",
    "combined_cost",
    "combined_reassign",
    "execute_remap",
    "heuristic_mwbg",
    "load_checkpoint",
    "load_imbalance",
    "needs_repartition",
    "objective_value",
    "optimal_bmcm",
    "optimal_mwbg",
    "remap_stats",
    "save_checkpoint",
    "similarity_matrix",
]
