"""Reproduction harness for every table and figure of the paper's §5."""

from .calibrate import (
    CalibrationReport,
    calibrate,
    format_calibration,
    run_exec_phase_workload,
)
from .cases import CASE_NAMES, PROC_COUNTS, REAL_FRACTIONS, RotorCase, make_case
from .figures import (
    PAPER_G,
    fig4_speedup,
    fig5_remap_times,
    fig6_anatomy,
    fig7_max_improvement,
    fig8_actual_improvement,
    max_improvement,
)
from .fit import (
    FittedModel,
    fit_calibration,
    fit_machine_model,
    format_fits,
    phase_cost_features,
)
from .sweep import SWEEP_PROCS, case_for, run_step
from .table1 import grid_sizes
from .table2 import MapperRow, mapper_comparison

__all__ = [
    "CASE_NAMES",
    "CalibrationReport",
    "MapperRow",
    "PAPER_G",
    "PROC_COUNTS",
    "REAL_FRACTIONS",
    "RotorCase",
    "SWEEP_PROCS",
    "FittedModel",
    "calibrate",
    "case_for",
    "fit_calibration",
    "fit_machine_model",
    "format_calibration",
    "format_fits",
    "fig4_speedup",
    "fig5_remap_times",
    "fig6_anatomy",
    "fig7_max_improvement",
    "fig8_actual_improvement",
    "grid_sizes",
    "make_case",
    "mapper_comparison",
    "max_improvement",
    "phase_cost_features",
    "run_exec_phase_workload",
    "run_step",
]
