"""Plain-text charts for the experiment reports.

The paper's figures are log/linear line plots over processor counts; in a
terminal-only reproduction we render the same series as aligned ASCII
charts so shapes (crossovers, saturation, U-curves) are visible at a
glance in ``python -m repro report`` output and in EXPERIMENTS.md.
"""

from __future__ import annotations

import math

__all__ = ["ascii_chart", "sparkline"]

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values, log: bool = False) -> str:
    """One-line bar chart of a numeric sequence."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if log:
        vals = [math.log10(max(v, 1e-12)) for v in vals]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _TICKS[0] * len(vals)
    idx = [min(int((v - lo) / span * len(_TICKS)), len(_TICKS) - 1) for v in vals]
    return "".join(_TICKS[i] for i in idx)


def ascii_chart(
    series: dict[str, dict[int, float]],
    height: int = 10,
    width: int = 60,
    log_y: bool = False,
    title: str = "",
    xlabel: str = "P",
) -> str:
    """Multi-series line chart over a shared (sorted) integer x-axis.

    Each series is drawn with its own marker; y is linear or log10.
    ``xlabel`` names the x-axis (processor counts by default; run reports
    pass ``"cycle"``).
    """
    if not series:
        return ""
    markers = "ox+*#@%&"
    xs = sorted({x for s in series.values() for x in s})
    ys_all = [v for s in series.values() for v in s.values()]
    if log_y:
        transform = lambda v: math.log10(max(v, 1e-12))  # noqa: E731
    else:
        transform = float
    lo = min(transform(v) for v in ys_all)
    hi = max(transform(v) for v in ys_all)
    if hi - lo <= 0:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    xpos = {x: int(i / max(len(xs) - 1, 1) * (width - 1)) for i, x in enumerate(xs)}
    for (name, s), mark in zip(series.items(), markers):
        for x, v in s.items():
            col = xpos[x]
            row = height - 1 - int(
                (transform(v) - lo) / (hi - lo) * (height - 1)
            )
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    ymax = f"{10**hi:.3g}" if log_y else f"{hi:.3g}"
    ymin = f"{10**lo:.3g}" if log_y else f"{lo:.3g}"
    lines.append(f"{ymax:>9s} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 9 + " │" + "".join(row))
    lines.append(f"{ymin:>9s} ┤" + "".join(grid[-1]))
    lines.append(" " * 9 + " └" + "─" * width)
    xlabels = " ".join(str(x) for x in xs)
    lines.append(" " * 11 + f"{xlabel} = {xlabels}")
    legend = "   ".join(
        f"{mark}={name}" for (name, _s), mark in zip(series.items(), markers)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
