"""The paper's figures as data series (4, 5, 6, 7, 8)."""

from __future__ import annotations

from .cases import CASE_NAMES, PROC_COUNTS
from .sweep import (
    SWEEP_PROCS,
    actual_improvement,
    growth_factor,
    remap_series,
    run_step,
    speedup_series,
)

__all__ = [
    "fig4_speedup",
    "fig5_remap_times",
    "fig6_anatomy",
    "fig7_max_improvement",
    "fig8_actual_improvement",
    "max_improvement",
]

#: Mesh growth factors of the paper's three strategies (§5).
PAPER_G = {"Real_1": 1.353, "Real_2": 3.310, "Real_3": 5.279}


def fig4_speedup(resolution: int = 8) -> dict[str, dict[str, dict[int, float]]]:
    """Speedup of the parallel mesh adaptor, remap after vs before
    refinement, per strategy: ``{case: {mode: {P: speedup}}}``."""
    return {
        name: {
            mode: speedup_series(resolution, name, mode)
            for mode in ("after", "before")
        }
        for name in CASE_NAMES
    }


def fig5_remap_times(resolution: int = 8) -> dict[str, dict[str, dict[int, float]]]:
    """Remapping seconds, after vs before refinement, per strategy."""
    return {
        name: {
            mode: remap_series(resolution, name, mode)
            for mode in ("after", "before")
        }
        for name in CASE_NAMES
    }


def fig6_anatomy(resolution: int = 8) -> dict[str, dict[str, dict[int, float]]]:
    """Adaption / partitioning / reassignment / remapping virtual seconds
    per strategy and P (remap-before mode, TotalV metric, heuristic MWBG —
    as in the paper).

    The anatomy is read from each step's tracer spans
    (``StepReport.phase_times()``), not from hand-maintained report
    fields: adaption = marking + subdivision spans, reassignment = the
    §4.3 gather/scatter plus the §4.4 reassign span.
    """
    out: dict[str, dict[str, dict[int, float]]] = {}
    for name in CASE_NAMES:
        series: dict[str, dict[int, float]] = {
            "adaption": {}, "partitioning": {}, "reassignment": {},
            "remapping": {},
        }
        for p in PROC_COUNTS:
            rep = run_step(resolution, name, "before", p)
            phases = rep.phase_times()
            series["adaption"][p] = phases["marking"] + phases["subdivision"]
            series["partitioning"][p] = phases["repartition"]
            series["reassignment"][p] = (
                phases["gather_scatter"] + phases["reassign"]
            )
            series["remapping"][p] = phases["remap"]
        out[name] = series
    return out


def max_improvement(p: int, g: float) -> float:
    """Closed-form maximum impact of load balancing (paper §5).

    With growth factor G, the worst case puts all 1:8 refinement on a
    subset of processors; the most-loaded one then holds
    min(8N/P, GN − (P−1)N/P) elements against GN/P balanced, giving an
    improvement factor of min(8, P(G−1)+1)/G.
    """
    if g < 1.0 or g > 8.0:
        raise ValueError(f"growth factor must be in [1, 8], got {g}")
    if p < 1:
        raise ValueError(f"P must be >= 1, got {p}")
    return min(8.0, p * (g - 1.0) + 1.0) / g


def fig7_max_improvement(
    resolution: int | None = None,
) -> dict[str, dict[int, float]]:
    """Maximum load-balancing impact curves.

    With ``resolution`` given, uses the *measured* growth factors of our
    meshes; otherwise the paper's G values (1.353 / 3.310 / 5.279).
    """
    gs = (
        {n: growth_factor(resolution, n) for n in CASE_NAMES}
        if resolution is not None
        else dict(PAPER_G)
    )
    return {
        name: {p: max_improvement(p, g) for p in SWEEP_PROCS}
        for name, g in gs.items()
    }


def fig8_actual_improvement(resolution: int = 8) -> dict[str, dict[int, float]]:
    """Measured impact of load balancing on flow-solver max loads."""
    return {name: actual_improvement(resolution, name) for name in CASE_NAMES}
