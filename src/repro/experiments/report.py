"""Render experiment results as paper-style text tables and series.

``python -m repro.experiments.report [resolution]`` prints every table and
figure of the evaluation section; the benchmark files print the same rows.
"""

from __future__ import annotations

import sys
from contextlib import nullcontext

from repro.obs import Tracer, use_tracer

from .cases import CASE_NAMES, REAL_FRACTIONS, make_case
from .figures import (
    PAPER_G,
    fig4_speedup,
    fig5_remap_times,
    fig6_anatomy,
    fig7_max_improvement,
    fig8_actual_improvement,
)
from .sweep import growth_factor
from .table1 import grid_sizes
from .table2 import mapper_comparison

__all__ = [
    "format_table1",
    "format_table2",
    "format_series",
    "format_counters",
    "run_all",
]


def format_table1(rows: dict[str, dict[str, int]]) -> str:
    hdr = f"{'':10s} {'Vertices':>10s} {'Elements':>10s} {'Edges':>10s} {'BdyFaces':>10s}"
    lines = [hdr]
    for name, sz in rows.items():
        lines.append(
            f"{name:10s} {sz['vertices']:10d} {sz['elements']:10d} "
            f"{sz['edges']:10d} {sz['bdy_faces']:10d}"
        )
    return "\n".join(lines)


def format_table2(rows) -> str:
    hdr = (
        f"{'P':>4s} {'Method':>8s} {'Max(S,R)':>9s} {'TotElems':>9s} "
        f"{'Reass.Time':>11s}"
    )
    lines = [hdr]
    for r in rows:
        lines.append(
            f"{r.nproc:4d} {r.method:>8s} {r.max_sent_recv:9d} "
            f"{r.total_elems:9d} {r.reassign_seconds:11.6f}"
        )
    return "\n".join(lines)


def format_series(series: dict[int, float], fmt: str = "8.3f") -> str:
    return "  ".join(f"P={p}:{v:{fmt}}" for p, v in sorted(series.items()))


def format_counters(tracer: Tracer) -> str:
    """Render a tracer's counters/gauges as a small two-column table."""
    lines = [f"{'counter':28s} {'value':>14s}"]
    for name, value in sorted(tracer.counters.items()):
        lines.append(f"{name:28s} {value:14g}")
    for name, value in sorted(tracer.gauges.items()):
        lines.append(f"{name + ' (gauge)':28s} {value:14g}")
    return "\n".join(lines)


def run_all(resolution: int = 8, tracer: Tracer | None = None) -> str:
    """Run every experiment and return the full text report.

    All reported times are *virtual* machine-model seconds (see
    :mod:`repro.obs`).  Pass a :class:`~repro.obs.Tracer` to record every
    solver step's phase spans and counters for export; a counter summary
    is then appended to the report.
    """
    ctx = use_tracer(tracer) if tracer is not None else nullcontext()
    with ctx:
        return _run_all(resolution, tracer)


def _run_all(resolution: int, tracer: Tracer | None) -> str:
    out: list[str] = []
    case = make_case(resolution)
    out.append(f"=== Rotor case at resolution {resolution} "
               f"({case.mesh.ne} elements, {case.mesh.nedges} edges) ===\n")

    out.append("--- Table 1: grid sizes after one refinement level ---")
    out.append(format_table1(grid_sizes(case)))
    out.append("")

    out.append("--- Growth factors G (paper: "
               + ", ".join(f"{n}={g}" for n, g in PAPER_G.items()) + ") ---")
    for n in CASE_NAMES:
        out.append(f"  {n}: G = {growth_factor(resolution, n):.3f} "
                   f"(marks {REAL_FRACTIONS[n]:.0%} of edges)")
    out.append("")

    out.append("--- Table 2: mapper comparison (Real_2) ---")
    out.append(format_table2(mapper_comparison(case)))
    out.append("")

    out.append("--- Fig 4: adaptor speedup, remap after vs before ---")
    fig4 = fig4_speedup(resolution)
    for name, modes in fig4.items():
        for mode, series in modes.items():
            out.append(f"  {name:7s} {mode:6s}: {format_series(series, '6.1f')}")
    from .ascii_plot import ascii_chart

    out.append("")
    out.append(ascii_chart(
        {f"{n}/{m}": s for n, ms in fig4.items() for m, s in ms.items()},
        title="  speedup vs P (all strategies)", height=12,
    ))
    out.append("")

    out.append("--- Fig 5: remap seconds, after vs before ---")
    for name, modes in fig5_remap_times(resolution).items():
        for mode, series in modes.items():
            out.append(f"  {name:7s} {mode:6s}: {format_series(series, '8.4f')}")
    out.append("")

    out.append("--- Fig 6: anatomy (virtual seconds, from tracer spans) ---")
    for name, phases in fig6_anatomy(resolution).items():
        for phase, series in phases.items():
            out.append(f"  {name:7s} {phase:12s}: {format_series(series, '8.4f')}")
    out.append("")

    out.append("--- Fig 7: max impact of load balancing (paper G values) ---")
    for name, series in fig7_max_improvement(None).items():
        out.append(f"  {name:7s}: {format_series(series, '6.2f')}")
    out.append("")

    out.append("--- Fig 8: actual impact of load balancing ---")
    for name, series in fig8_actual_improvement(resolution).items():
        out.append(f"  {name:7s}: {format_series(series, '6.2f')}")
    out.append("")

    if tracer is not None:
        out.append("--- Observability counters (whole report run) ---")
        out.append(format_counters(tracer))
        out.append("")

    return "\n".join(out)


if __name__ == "__main__":
    res = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    print(run_all(res))
