"""Table 1: grid sizes after one refinement level of each strategy."""

from __future__ import annotations

from repro.adapt.adaptor import AdaptiveMesh

from .cases import CASE_NAMES, RotorCase

__all__ = ["grid_sizes"]


def grid_sizes(case: RotorCase) -> dict[str, dict[str, int]]:
    """Rows of Table 1: Initial plus one row per Real strategy."""
    rows = {"Initial": case.mesh.sizes()}
    for name in CASE_NAMES:
        am = AdaptiveMesh(case.mesh, solution=case.solution)
        marking = am.mark(edge_mask=case.marking_mask(name))
        am.refine(marking)
        rows[name] = am.mesh.sizes()
    return rows
