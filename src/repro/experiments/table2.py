"""Table 2: mapper comparison on the Real_2 strategy.

For each processor count, the similarity matrix of the repartitioning is
handed to the three mappers — optimal MWBG and heuristic MWBG (TotalV
metric) and optimal BMCM (MaxV metric) — and we report the paper's columns:
max(sent, received), total elements moved, and the reassignment wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.adapt.adaptor import AdaptiveMesh
from repro.core.metrics import remap_stats
from repro.core.reassign import heuristic_mwbg, optimal_bmcm, optimal_mwbg
from repro.core.similarity import similarity_matrix
from repro.partition.multilevel import multilevel_kway
from repro.partition.repartition import repartition

from .cases import PROC_COUNTS, RotorCase

__all__ = ["MapperRow", "mapper_comparison"]

_METHODS = {
    "OptMWBG": lambda S: optimal_mwbg(S),
    "HeuMWBG": lambda S: heuristic_mwbg(S),
    "OptBMCM": lambda S: optimal_bmcm(S),
}


@dataclass(frozen=True)
class MapperRow:
    nproc: int
    method: str
    max_sent_recv: int
    total_elems: int
    reassign_seconds: float


def mapper_comparison(
    case: RotorCase,
    strategy: str = "Real_2",
    procs: tuple[int, ...] = PROC_COUNTS,
    repeats: int = 3,
) -> list[MapperRow]:
    """One row per (P, method), as in the paper's Table 2."""
    am = AdaptiveMesh(case.mesh, solution=case.solution)
    marking = am.mark(edge_mask=case.marking_mask(strategy))
    wcomp_pred, _ = am.predicted_weights(marking)
    wremap_now = am.wremap()  # remap before subdivision moves these
    from repro.core.dualgraph import DualGraph

    dual = DualGraph(case.mesh)

    rows: list[MapperRow] = []
    for p in procs:
        old = multilevel_kway(dual.comp_graph(), p, seed=0)
        new = repartition(
            dual.graph.with_vwgt(wcomp_pred), p, old, seed=0
        )
        S = similarity_matrix(old, new, wremap_now, p)
        for name, solve in _METHODS.items():
            t = np.inf
            for _ in range(repeats):
                t0 = time.perf_counter()
                assignment = solve(S)
                t = min(t, time.perf_counter() - t0)
            st = remap_stats(S, assignment)
            rows.append(
                MapperRow(
                    nproc=p,
                    method=name,
                    max_sent_recv=max(st.max_sent, st.max_received),
                    total_elems=st.c_total,
                    reassign_seconds=t,
                )
            )
    return rows
