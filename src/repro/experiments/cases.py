"""The rotor-acoustics test case and the Real_1/2/3 refinement strategies.

Paper §5: the computational mesh simulates Purcell's UH-1H rotor-blade
acoustics experiment (13,967 vertices / 60,968 tetrahedra / 78,343 edges),
and the three strategies Real_1, Real_2, Real_3 subdivide 5%, 33%, and 60%
of the initial mesh's edges based on an error indicator computed from the
flow solution.

We do not have the UH-1H mesh; :func:`make_case` builds a synthetic graded
rotor domain with an analytic rotor-acoustics field.  Edges are targeted by
the same fractions using element-coherent feature detection (velocity
magnitude), which reproduces the tightly clustered refinement regions the
paper's indicator produced — the paper's growth factors (1.353 / 3.310 /
5.279) are almost exactly the zero-amplification ideal ``7·f + 1``, and
this targeting lands within ~10–15% of them.

``resolution=8`` (the default, ≈ 6k elements) keeps the full experiment
sweep fast; pass ``resolution=17`` for a paper-scale (≈ 59k element) mesh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adapt.marking import target_elements_by_fraction
from repro.mesh.generate import BladeSpec, rotor_domain_mesh
from repro.mesh.tetmesh import TetMesh
from repro.solver.fields import rotor_acoustics_field
from repro.solver.indicator import density_indicator
from repro.solver.state import primitive

__all__ = ["RotorCase", "make_case", "REAL_FRACTIONS", "CASE_NAMES", "PROC_COUNTS"]

#: Fractions of initial-mesh edges subdivided by Real_1, Real_2, Real_3.
REAL_FRACTIONS = {"Real_1": 0.05, "Real_2": 0.33, "Real_3": 0.60}
CASE_NAMES = tuple(REAL_FRACTIONS)

#: Paper's processor sweep.
PROC_COUNTS = (2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class RotorCase:
    """A reproducible instance of the paper's experimental setup."""

    mesh: TetMesh
    blade: BladeSpec
    solution: np.ndarray  #: (nv, 5) conservative rotor-acoustics state
    elem_error: np.ndarray  #: per-element feature-detection error
    edge_error: np.ndarray  #: per-edge jump indicator (diagnostics)

    def marking_mask(self, name: str) -> np.ndarray:
        """Edge mask of strategy ``name`` (one of Real_1/Real_2/Real_3)."""
        if name not in REAL_FRACTIONS:
            raise KeyError(f"unknown strategy {name!r}; choose from {CASE_NAMES}")
        return target_elements_by_fraction(
            self.mesh, self.elem_error, REAL_FRACTIONS[name]
        )


def make_case(resolution: int = 8, seed: int = 0) -> RotorCase:
    """Build the synthetic rotor case at the given mesh resolution."""
    mesh, blade = rotor_domain_mesh(resolution=resolution, grading=2.0)
    q = rotor_acoustics_field(mesh.coords, blade)
    _rho, vel, _p = primitive(q)
    speed = np.linalg.norm(vel, axis=1)
    elem_err = speed[mesh.elems].max(axis=1)
    # deterministic tiny jitter breaks exact ties between symmetric elements
    # so fraction targeting is stable across platforms
    rng = np.random.default_rng(seed)
    elem_err = elem_err * (1.0 + 1e-9 * rng.random(mesh.ne))
    return RotorCase(
        mesh=mesh,
        blade=blade,
        solution=q,
        elem_error=elem_err,
        edge_error=density_indicator(mesh, q),
    )
