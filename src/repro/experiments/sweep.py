"""Shared experiment sweep: one adapt/balance step per (case, mode, P).

All of Figs. 4, 5, 6, and 8 are views of the same sweep — the paper runs
one refinement step of each Real strategy across processor counts, with
data remapping either after or before the subdivision phase.  Results are
memoised per process so the figure benches don't redo each other's work.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.cost import CostModel
from repro.core.framework import LoadBalancedAdaptiveSolver, StepReport
from repro.parallel.machine import SP2_1997

from .cases import PROC_COUNTS, RotorCase, make_case

__all__ = ["run_step", "case_for", "PROC_COUNTS", "SWEEP_PROCS"]

#: Processor counts for figure sweeps (paper plots 1..64).
SWEEP_PROCS = (1,) + PROC_COUNTS


@lru_cache(maxsize=4)
def case_for(resolution: int) -> RotorCase:
    return make_case(resolution=resolution)


@lru_cache(maxsize=256)
def run_step(
    resolution: int,
    case_name: str,
    mode: str,
    nproc: int,
    reassigner: str = "heuristic_mwbg",
    seed: int = 0,
) -> StepReport:
    """One Fig.-1 cycle for the given strategy/mode/processor count.

    The imbalance threshold is set just above 1 so the balancer always
    engages (as in the paper's experiments), and the solver-centric cost
    model makes the gain comfortably exceed the redistribution cost.
    """
    case = case_for(resolution)
    solver = LoadBalancedAdaptiveSolver(
        case.mesh,
        nproc,
        machine=SP2_1997,
        cost_model=CostModel(machine=SP2_1997),
        reassigner=reassigner,
        remap_when=mode,
        imbalance_threshold=1.0,
        seed=seed,
    )
    return solver.adapt_step(edge_mask=case.marking_mask(case_name))


def speedup_series(
    resolution: int, case_name: str, mode: str
) -> dict[int, float]:
    """Parallel mesh-adaption speedup T(1)/T(P) over the processor sweep."""
    t1 = run_step(resolution, case_name, mode, 1).adaption_time
    return {
        p: t1 / run_step(resolution, case_name, mode, p).adaption_time
        for p in SWEEP_PROCS
    }


def remap_series(resolution: int, case_name: str, mode: str) -> dict[int, float]:
    """Measured remapping seconds over the processor sweep (P >= 2)."""
    return {
        p: run_step(resolution, case_name, mode, p).remap_time
        for p in PROC_COUNTS
    }


def growth_factor(resolution: int, case_name: str) -> float:
    """Mesh growth factor G of one strategy (independent of P)."""
    return run_step(resolution, case_name, "before", 1).growth_factor


def actual_improvement(resolution: int, case_name: str) -> dict[int, float]:
    """Fig. 8: flow-solver time without balancing over with balancing.

    Both quantities use the *actual* post-refinement weights; the
    unbalanced mapping is the pre-adaption partition, the balanced one is
    what the framework produced.
    """
    case = case_for(resolution)
    out: dict[int, float] = {}
    for p in SWEEP_PROCS:
        solver = LoadBalancedAdaptiveSolver(
            case.mesh,
            p,
            machine=SP2_1997,
            cost_model=CostModel(machine=SP2_1997),
            imbalance_threshold=1.0,
        )
        part_before = solver.part.copy()
        solver.adapt_step(edge_mask=case.marking_mask(case_name))
        w = solver.adaptive.wcomp().astype(np.float64)
        load_unbal = np.bincount(part_before, weights=w, minlength=p).max()
        load_bal = np.bincount(solver.part, weights=w, minlength=p).max()
        out[p] = float(load_unbal / load_bal)
    return out
