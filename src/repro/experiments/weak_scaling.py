"""Weak-scaling sweep of the virtual-machine scheduler itself.

The paper evaluates at SP2 scale (tens of processors); the extreme-scale
AMR line of work (Schornbaum & Rüde, PAPERS.md) runs the same kind of
adapt/balance cycle on 65k+ cores.  To price the cross-matrix experiment
plan at those rank counts, this module runs a fig6-style *execution
phase* — compute, 4-neighbour halo exchange, convergence allreduce, the
exact communication shape of :func:`repro.dist.exec_phase.parallel_mark`
— on synthetic 2D process grids of 1k/4k/16k virtual ranks, and measures
how fast the scheduler chews through it (host wall seconds and scheduler
ops/second).

The workload is synthetic only in its *data* (the halo payloads carry no
mesh); its op stream per rank — ``WorkOp``, tagged sends to each SPL
neighbour, source-wildcard receives, an ``allreduce`` per round — is the
one the marking-propagation loop issues (including its source-wildcard
receives — SPL arrival order is not known in advance), so the measured
throughput is
what the real exec phase would see at that scale.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.kernels import reference_kernels
from repro.obs.tracer import current_tracer
from repro.parallel import SP2_1997, VirtualMachine
from repro.parallel.machine import MachineModel
from repro.parallel.runtime import ANY, RecvOp, SendOp, WorkOp, per_rank

__all__ = [
    "DEFAULT_RANKS",
    "ScalePoint",
    "grid_dims",
    "grid_neighbours",
    "halo_cycle",
    "measure_point",
    "measure_speedup",
]

#: The sweep the CLI and bench report by default.
DEFAULT_RANKS = (1024, 4096, 16384)

#: Halo-exchange tag, matching the exec phase's SPL exchange.
_TAG_HALO = 11


@dataclass(frozen=True)
class ScalePoint:
    """One weak-scaling measurement of the scheduler."""

    nranks: int
    wall_seconds: float  #: host wall time of the ``VirtualMachine.run`` call
    makespan: float  #: modelled virtual seconds of the cycle
    total_messages: int
    total_words: int
    ops: int  #: scheduler operations executed (causal nodes recorded)
    rounds: int  #: propagation rounds the cycle ran

    @property
    def ops_per_second(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0


def grid_dims(nranks: int) -> tuple[int, int]:
    """Most-square ``(px, py)`` factorisation with ``px * py == nranks``."""
    if nranks < 1:
        raise ValueError(f"need at least one rank, got {nranks}")
    px = int(math.isqrt(nranks))
    while nranks % px:
        px -= 1
    return px, nranks // px


def grid_neighbours(nranks: int) -> list[list[int]]:
    """4-neighbour (non-periodic) adjacency on the :func:`grid_dims` grid —
    the synthetic stand-in for each rank's SPL neighbour list."""
    px, py = grid_dims(nranks)
    nbrs: list[list[int]] = []
    for r in range(nranks):
        x, y = r % px, r // px
        out = []
        if x > 0:
            out.append(r - 1)
        if x + 1 < px:
            out.append(r + 1)
        if y > 0:
            out.append(r - px)
        if y + 1 < py:
            out.append(r + px)
        nbrs.append(out)
    return nbrs


def _work_units(nranks: int, base: float) -> list[float]:
    """Deterministic per-rank load variation (±25% around ``base``), so the
    schedule has real stragglers instead of lock-step rounds."""
    h = (np.arange(nranks, dtype=np.uint64) * np.uint64(2654435761)) % 97
    return (base * (0.75 + 0.5 * (h / 96.0))).tolist()


def _halo_program(comm, nbrs, units, halo_words, rounds):
    """One rank of the fig6-style execution phase (see module docstring).

    The halo ops are built once per rank and reused across rounds (ops
    are read-only value carriers, so reuse is safe): the sweep prices the
    scheduler's dispatch, matching, and recording — not the program's own
    per-round object allocation.  The convergence check stays on the
    communicator's ``allreduce`` so collective traffic is represented.
    """
    payload = np.arange(halo_words, dtype=np.int64)
    nw = max(1, halo_words)
    send_ops = [SendOp(d, _TAG_HALO, payload, nw) for d in nbrs]
    # the exec phase receives with a source wildcard (``comm.recv(tag=11)``
    # — SPL arrival order is not known in advance), so the bench does too
    recv_op = RecvOp(ANY, _TAG_HALO)
    n_in = len(nbrs)
    work_op = WorkOp(units)
    checksum = 0
    it = 0
    while True:
        it += 1
        yield work_op
        for op in send_ops:
            yield op
        for _ in range(n_in):
            data, _src, _tag = yield recv_op
            checksum += data.shape[0]
        more = yield from comm.allreduce(it < rounds, op=lambda a, b: a or b)
        if not more:
            break
    return checksum, it


def halo_cycle(
    nranks: int,
    rounds: int = 3,
    halo_words: int = 64,
    work_units: float = 200.0,
    machine: MachineModel = SP2_1997,
    trace: bool = True,
    tracer=None,
):
    """Run one fig6-style cycle at ``nranks``; returns the ``RunResult``.

    ``tracer`` defaults to the ambient :func:`~repro.obs.tracer.current_tracer`
    — the same convention the communicator backends use — so under the
    bench suite the sweep prices the scheduler exactly as the
    adapt/balance pipeline runs it: the optimized path registers one lazy
    columnar chunk, the reference path mirrors every event eagerly.
    """
    if tracer is None:
        tracer = current_tracer()
    vm = VirtualMachine(nranks, machine, trace=trace, tracer=tracer)
    return vm.run(
        _halo_program,
        per_rank(grid_neighbours(nranks)),
        per_rank(_work_units(nranks, work_units)),
        halo_words,
        rounds,
    )


def measure_point(
    nranks: int,
    rounds: int = 3,
    halo_words: int = 64,
    work_units: float = 200.0,
    machine: MachineModel = SP2_1997,
    trace: bool = True,
    reference: bool = False,
) -> ScalePoint:
    """Time one :func:`halo_cycle` and fold it into a :class:`ScalePoint`.

    ``reference=True`` times the ``REPRO_REFERENCE_KERNELS`` scheduler
    path instead of the optimized one.
    """
    kwargs = dict(rounds=rounds, halo_words=halo_words,
                  work_units=work_units, machine=machine, trace=trace)
    if reference:
        with reference_kernels():
            t0 = time.perf_counter()
            res = halo_cycle(nranks, **kwargs)
            wall = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        res = halo_cycle(nranks, **kwargs)
        wall = time.perf_counter() - t0
    rec = res._record
    if rec is not None:
        ops = rec.nnodes
    elif res.nodes is not None:  # reference path records eagerly
        ops = len(res.nodes)
    else:
        ops = 0
    return ScalePoint(
        nranks=nranks,
        wall_seconds=wall,
        makespan=res.makespan,
        total_messages=res.total_messages,
        total_words=res.total_words,
        ops=ops,
        rounds=max(r for _c, r in res.returns),
    )


def measure_speedup(
    nranks: int,
    rounds: int = 3,
    halo_words: int = 64,
    work_units: float = 200.0,
    machine: MachineModel = SP2_1997,
    repeats: int = 1,
) -> tuple[ScalePoint, ScalePoint, float]:
    """Measure optimized and reference schedulers on the same traced cycle.

    Returns ``(optimized, reference, speedup)`` where speedup is the
    reference-to-optimized wall ratio, taking the best (min-wall) of
    ``repeats`` shots per path.  Each shot runs under its own fresh
    ambient :class:`~repro.obs.tracer.Tracer` — the full-pipeline
    configuration, where the reference path mirrors every scheduler event
    into the tracer eagerly and the optimized path registers one lazy
    columnar chunk — and no shot pays for a predecessor's accumulated
    trace.  Neither path materializes the optimized path's lazy views
    inside the timed region; that asymmetry (eager objects vs columnar
    append) is precisely what the optimization removes.
    """
    from repro.obs.tracer import Tracer, use_tracer

    kwargs = dict(rounds=rounds, halo_words=halo_words,
                  work_units=work_units, machine=machine, trace=True)
    opts: list[ScalePoint] = []
    refs: list[ScalePoint] = []
    for _ in range(max(1, repeats)):
        with use_tracer(Tracer()):
            opts.append(measure_point(nranks, **kwargs))
        with use_tracer(Tracer()):
            refs.append(measure_point(nranks, reference=True, **kwargs))
    opt = min(opts, key=lambda p: p.wall_seconds)
    ref = min(refs, key=lambda p: p.wall_seconds)
    speedup = (
        ref.wall_seconds / opt.wall_seconds if opt.wall_seconds > 0 else 0.0
    )
    return opt, ref, speedup
