"""Transport throughput microbench: queue pickling vs zero-copy slabs.

The paper's LogGP model charges ``t_word`` per 8-byte word on the wire,
so the measured backends' *message throughput* is what decides whether
wall times can track the model at realistic payload sizes.  This module
streams numpy payloads between two real rank processes and measures
bytes/s per backend, which is how the ``shm`` transport's speedup over
the pickling ``multiprocessing`` wire is tracked
(``ext_transport_throughput`` in the bench registry).

The workload is a one-way stream: rank 0 sends ``nmsgs`` float64 arrays
to rank 1, which touches each payload (first/last element into a
checksum, so a lazily-wrong view would be caught) and acknowledges once
at the end.  Throughput is computed from the run's makespan — the
maximum measured rank wall, which excludes process fork/teardown.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.parallel.backends import create_communicator

__all__ = [
    "ThroughputPoint",
    "measure_throughput",
    "throughput_comparison",
    "format_throughput",
]

_TAG_DATA = 7
_TAG_ACK = 8


class ThroughputPoint(NamedTuple):
    """One measured (backend, payload size) throughput sample."""

    backend: str
    payload_bytes: int
    nmsgs: int
    seconds: float  #: best-of-repeats makespan of the stream
    bytes_per_s: float
    ms_per_msg: float
    transport: dict | None  #: transport counters (``shm`` only)


def _stream_program(comm, nmsgs: int, nwords: int):
    """Rank 0 streams ``nmsgs`` arrays of ``nwords`` float64 to rank 1.

    The send buffer is deliberately *not* mutated between sends: the
    queue backend's buffered send pickles lazily (feeder thread), so a
    mutated buffer races with serialization there — whereas the slab
    transport copies synchronously at send time and would hide the race.
    """
    if comm.rank == 0:
        a = np.arange(nwords, dtype=np.float64)
        checksum = 0.0
        for _ in range(nmsgs):
            checksum += float(a[0]) + float(a[-1])
            yield from comm.send(a, 1, tag=_TAG_DATA)
        theirs = yield from comm.recv(source=1, tag=_TAG_ACK)
        return (checksum, theirs)
    if comm.rank == 1:
        checksum = 0.0
        for _ in range(nmsgs):
            a = yield from comm.recv(source=0, tag=_TAG_DATA)
            # touch both ends so a wrong view/stride surfaces as a value
            checksum += float(a[0]) + float(a[-1])
            del a  # release the zero-copy view -> slab recycles
        yield from comm.send(checksum, 0, tag=_TAG_ACK)
        return checksum
    return None


def measure_throughput(
    backend: str,
    payload_bytes: int,
    nmsgs: int = 128,
    repeats: int = 3,
    timeout: float = 120.0,
    **opts,
) -> ThroughputPoint:
    """Stream ``nmsgs`` payloads of ``payload_bytes`` through ``backend``.

    Runs the stream ``repeats`` times and keeps the fastest makespan
    (standard minimum-filter for a loaded host).  Verifies the receiver's
    checksum against the sender's on every repeat, so a transport that
    corrupted or dropped a payload fails loudly rather than benching it.
    """
    nwords = max(1, payload_bytes // 8)
    if backend == "shm":
        # size slabs to the payload so every point stays zero-copy
        from repro.parallel.backends.shm import DEFAULT_SLAB_BYTES

        opts.setdefault("slab_bytes", max(DEFAULT_SLAB_BYTES, nwords * 8))
    best = None
    transport = None
    for _ in range(max(1, repeats)):
        comm = create_communicator(backend, 2, timeout=timeout, **opts)
        res = comm.run(_stream_program, nmsgs, nwords)
        sent, acked = res.returns[0]
        got = res.returns[1]
        if not (sent == acked == got):
            raise RuntimeError(
                f"{backend} transport corrupted the stream: sender checksum "
                f"{sent!r}, receiver {got!r}, ack {acked!r}"
            )
        if best is None or res.makespan < best:
            best = res.makespan
            transport = res.transport
    total = nwords * 8 * nmsgs
    return ThroughputPoint(
        backend=backend,
        payload_bytes=nwords * 8,
        nmsgs=nmsgs,
        seconds=best,
        bytes_per_s=total / best if best > 0 else float("inf"),
        ms_per_msg=best / nmsgs * 1e3,
        transport=transport,
    )


def throughput_comparison(
    payload_sizes: tuple[int, ...] = (64 << 10, 1 << 20, 4 << 20),
    nmsgs: int = 128,
    repeats: int = 3,
    backends: tuple[str, ...] = ("multiprocessing", "shm"),
) -> list[dict]:
    """Measure every backend at every payload size.

    Returns one row per size: the per-backend :class:`ThroughputPoint`
    plus ``speedup`` of the last backend over the first (i.e. zero-copy
    over pickling with the default pair).
    """
    rows = []
    for size in payload_sizes:
        points = {
            b: measure_throughput(b, size, nmsgs=nmsgs, repeats=repeats)
            for b in backends
        }
        first, last = backends[0], backends[-1]
        rows.append({
            "payload_bytes": size,
            "points": points,
            "speedup": points[first].seconds / points[last].seconds,
        })
    return rows


def _human_size(nbytes: int) -> str:
    if nbytes >= 1 << 20 and nbytes % (1 << 20) == 0:
        return f"{nbytes >> 20}MB"
    if nbytes >= 1 << 10:
        return f"{nbytes >> 10}KB"
    return f"{nbytes}B"


def format_throughput(rows: list[dict]) -> str:
    """ASCII table of a :func:`throughput_comparison` result."""
    lines = [
        f"{'payload':>8} {'backend':>16} {'MB/s':>10} {'ms/msg':>8} "
        f"{'speedup':>8}"
    ]
    for row in rows:
        for i, (name, pt) in enumerate(row["points"].items()):
            last = i == len(row["points"]) - 1
            lines.append(
                f"{_human_size(row['payload_bytes']):>8} {name:>16} "
                f"{pt.bytes_per_s / 1e6:>10.1f} {pt.ms_per_msg:>8.3f} "
                f"{row['speedup']:>7.1f}x" if last else
                f"{_human_size(row['payload_bytes']):>8} {name:>16} "
                f"{pt.bytes_per_s / 1e6:>10.1f} {pt.ms_per_msg:>8.3f} "
                f"{'':>8}"
            )
    return "\n".join(lines)
