"""Calibrate the LogGP machine model against real parallel execution.

The paper reports wall-clock seconds measured on an IBM SP2; this library
models them on a LogGP virtual machine.  With the communicator backends
(:mod:`repro.parallel.backends`) the *same* rank programs also run on real
cores, so the model becomes checkable: :func:`calibrate` executes the
fig6 exec-phase workload — the §3 pipeline of marking propagation,
distributed subdivision, element migration, and the finalization gather
on decomposed rotor-case data — once per backend, verifies the payloads
are identical, and reports modelled virtual seconds next to measured
wall seconds phase by phase.

Interpretation note: the measured/modelled ratio is *not* an error — the
virtual machine models a 1997 SP2, not this host.  The ratio's
phase-to-phase consistency is what validates the model's shape; its
magnitude is the machine-constant rescaling a present-day
:class:`~repro.parallel.machine.MachineModel` calibration would apply.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.adapt.adaptor import AdaptiveMesh
from repro.dist import decompose, finalize, migrate, parallel_mark, parallel_refine
from repro.dist.refine_exec import canonical_signature
from repro.parallel.backends import available_backends
from repro.parallel.machine import MachineModel, SP2_1997
from repro.partition import Graph, multilevel_kway, repartition

__all__ = ["calibrate", "run_exec_phase_workload", "CalibrationReport",
           "PhaseRun", "format_calibration"]

#: Pipeline phases in execution order.
PHASES = ("mark", "refine", "migrate", "gather")


@dataclass(frozen=True)
class PhaseRun:
    """One phase's outcome on one backend."""

    phase: str
    backend: str
    makespan: float  #: the backend's clock: modelled (virtual) or wall
    host_wall: float  #: host wall seconds around the whole phase call


@dataclass(frozen=True)
class WorkloadResult:
    """Everything one backend produced for the exec-phase workload."""

    backend: str
    phases: list[PhaseRun]
    edge_marked: np.ndarray  #: marking fixpoint (payload of the mark phase)
    refine_signature: np.ndarray  #: canonical merged refined-mesh signature
    elements_moved: int
    final_ne: int  #: elements in the reassembled global mesh
    #: ``repro.transport.*`` counter totals accumulated over the run's
    #: backend executions (all zero for backends without a slab transport)
    transport: dict = field(default_factory=dict)

    def makespans(self) -> dict[str, float]:
        return {p.phase: p.makespan for p in self.phases}

    def host_walls(self) -> dict[str, float]:
        return {p.phase: p.host_wall for p in self.phases}


@dataclass(frozen=True)
class CalibrationReport:
    """Modelled-vs-measured comparison over the same workload."""

    resolution: int
    nproc: int
    machine: MachineModel
    reference: WorkloadResult  #: the virtual (modelled) run
    measured: list[WorkloadResult] = field(default_factory=list)
    payloads_identical: bool = True
    mismatches: list[str] = field(default_factory=list)


def run_exec_phase_workload(
    resolution: int,
    nproc: int,
    backend: str = "virtual",
    machine: MachineModel = SP2_1997,
    tracer=None,
    seed: int = 0,
) -> WorkloadResult:
    """Run the fig6 exec-phase pipeline on the named backend.

    The rank programs and their inputs are identical for every backend;
    only the transport differs.  Decomposition/partitioning happen on the
    host and are excluded from the phase clocks.
    """
    from repro.parallel.backends.shm import (
        reset_transport_totals,
        transport_totals,
    )

    from .cases import make_case

    reset_transport_totals()
    case = make_case(resolution, seed=seed)
    mesh = case.mesh
    dual = Graph.from_pairs(mesh.dual_pairs, mesh.ne)
    part = multilevel_kway(dual, nproc, seed=seed)
    locals_ = decompose(mesh, part, nproc)
    marks = case.marking_mask("Real_2")

    phases: list[PhaseRun] = []

    def timed(phase, fn):
        t0 = time.perf_counter()
        if tracer is not None:
            # Named span so measured runs land under a phase the trace
            # tooling (skew table, critical path, report) can attribute.
            with tracer.phase(phase, kind="compute", backend=backend):
                out = fn()
        else:
            out = fn()
        host_wall = time.perf_counter() - t0
        phases.append(PhaseRun(phase, backend, _makespan(out), host_wall))
        if tracer is not None:
            tracer.metric(
                "repro.calibrate.phase_seconds", _makespan(out),
                kind="counter", phase=phase, backend=backend,
            )
            tracer.metric(
                "repro.calibrate.host_wall_seconds", host_wall,
                kind="counter", phase=phase, backend=backend,
            )
        return out

    mark_res = timed("mark", lambda: parallel_mark(
        mesh, locals_, marks, machine=machine, tracer=tracer, backend=backend
    ))

    am = AdaptiveMesh(mesh)
    marking = am.mark(edge_mask=mark_res.edge_marked)
    refine_res = timed("refine", lambda: parallel_refine(
        mesh, locals_, marking, machine=machine, tracer=tracer, backend=backend
    ))

    wcomp_pred, _ = am.predicted_weights(marking)
    new_part = repartition(dual.with_vwgt(wcomp_pred), nproc, part, seed=seed)
    mig = timed("migrate", lambda: migrate(
        mesh, locals_, new_part, machine=machine, tracer=tracer,
        backend=backend,
    ))

    fin = timed("gather", lambda: finalize(
        mig.locals, machine=machine, tracer=tracer, backend=backend
    ))

    return WorkloadResult(
        backend=backend,
        phases=phases,
        edge_marked=mark_res.edge_marked,
        refine_signature=refine_res.merged_signature(),
        elements_moved=mig.elements_moved,
        final_ne=fin.mesh.ne,
        transport=transport_totals(),
    )


def _makespan(result) -> float:
    for attr in ("time_seconds", "seconds", "gather_seconds"):
        if hasattr(result, attr):
            return float(getattr(result, attr))
    raise AttributeError(f"no makespan field on {result!r}")


def calibrate(
    resolution: int = 4,
    nproc: int = 4,
    backends: tuple[str, ...] | None = None,
    machine: MachineModel = SP2_1997,
    tracer=None,
    seed: int = 0,
) -> CalibrationReport:
    """Run the workload on ``virtual`` plus each measured backend.

    ``backends`` defaults to every registered backend other than
    ``virtual`` and ``mpi4py`` (the latter needs an ``mpiexec`` launch,
    so it only participates when explicitly requested from an MPI job).
    Payload identity between the reference run and every measured run is
    verified and reported, never assumed.
    """
    if backends is None:
        backends = tuple(
            b for b in available_backends() if b not in ("virtual", "mpi4py")
        )
    reference = run_exec_phase_workload(
        resolution, nproc, "virtual", machine=machine, tracer=tracer,
        seed=seed,
    )
    measured: list[WorkloadResult] = []
    mismatches: list[str] = []
    for name in backends:
        res = run_exec_phase_workload(
            resolution, nproc, name, machine=machine, tracer=tracer,
            seed=seed,
        )
        measured.append(res)
        if not np.array_equal(res.edge_marked, reference.edge_marked):
            mismatches.append(f"{name}: marking fixpoint differs")
        if not np.array_equal(res.refine_signature, reference.refine_signature):
            mismatches.append(f"{name}: refined-mesh signature differs")
        if res.elements_moved != reference.elements_moved:
            mismatches.append(f"{name}: migration moved a different element set")
        if res.final_ne != reference.final_ne:
            mismatches.append(f"{name}: reassembled mesh size differs")
    return CalibrationReport(
        resolution=resolution,
        nproc=nproc,
        machine=machine,
        reference=reference,
        measured=measured,
        payloads_identical=not mismatches,
        mismatches=mismatches,
    )


def format_calibration(report: CalibrationReport) -> str:
    """Render the measured-vs-modelled table as aligned ASCII."""
    lines = [
        f"calibrate: resolution {report.resolution}, P={report.nproc} — "
        f"modelled LogGP seconds (t_setup={report.machine.t_setup:g}, "
        f"t_word={report.machine.t_word:g}, t_work={report.machine.t_work:g}) "
        "vs measured wall seconds",
    ]
    ref = report.reference.makespans()
    for run in report.measured:
        got = run.makespans()
        lines.append(f"\nbackend {run.backend!r} vs 'virtual':")
        lines.append(
            f"  {'phase':10s} {'modelled(s)':>12s} {'measured(s)':>12s} "
            f"{'measured/modelled':>18s}"
        )
        for phase in PHASES:
            v, w = ref[phase], got[phase]
            ratio = f"{w / v:18.2f}" if v > 0 else " " * 18
            lines.append(f"  {phase:10s} {v:12.6f} {w:12.6f} {ratio}")
        v_tot = sum(ref.values())
        w_tot = sum(got.values())
        ratio = f"{w_tot / v_tot:18.2f}" if v_tot > 0 else " " * 18
        lines.append(f"  {'total':10s} {v_tot:12.6f} {w_tot:12.6f} {ratio}")
        t = run.transport
        if t and (t.get("msgs_zero_copy") or t.get("msgs_pickled")):
            lines.append(
                f"  transport: {t.get('bytes_zero_copy', 0) / 1e6:.2f} MB "
                f"zero-copy ({t.get('msgs_zero_copy', 0)} msgs) / "
                f"{t.get('bytes_pickled', 0) / 1e6:.2f} MB pickled "
                f"({t.get('msgs_pickled', 0)} msgs), "
                f"slab reuse {t.get('slab_reuse', 0)}, "
                f"spills {t.get('spills', 0)}"
            )
    by_name = {run.backend: run for run in report.measured}
    if "multiprocessing" in by_name and "shm" in by_name:
        pickle_w = by_name["multiprocessing"].host_walls()
        zc_w = by_name["shm"].host_walls()
        lines.append(
            "\npickle vs zero-copy (measured host wall, same workload):"
        )
        lines.append(
            f"  {'phase':10s} {'pickle(s)':>12s} {'zero-copy(s)':>12s} "
            f"{'speedup':>8s}"
        )
        for phase in PHASES:
            p, z = pickle_w[phase], zc_w[phase]
            speedup = f"{p / z:7.2f}x" if z > 0 else " " * 8
            lines.append(f"  {phase:10s} {p:12.6f} {z:12.6f} {speedup}")
        p_tot, z_tot = sum(pickle_w.values()), sum(zc_w.values())
        speedup = f"{p_tot / z_tot:7.2f}x" if z_tot > 0 else " " * 8
        lines.append(f"  {'total':10s} {p_tot:12.6f} {z_tot:12.6f} {speedup}")
    if report.payloads_identical:
        lines.append(
            "\npayloads: identical across backends "
            "(marking fixpoint, refined-mesh signature, migration, gather)"
        )
    else:
        lines.append("\npayloads: MISMATCH")
        lines.extend(f"  - {m}" for m in report.mismatches)
    return "\n".join(lines)
