"""Fit LogGP machine constants to measured phase times.

``repro calibrate`` prints measured/modelled ratios and leaves the
rescaling to the reader; this module closes the loop.  The modelled time
of each exec-phase is (to the LogGP model) a linear combination

    t_phase  =  n_setup * t_setup  +  n_word * t_word  +  n_work * t_work

whose coefficients — critical-path message count, word volume, and work
units — can be *extracted from the virtual machine itself* by running
the same workload under three unit machine models (t_setup=1 with the
other constants 0, and so on).  Regressing the measured backend's phase
walls on those features recovers the machine constants of the host the
way Figure 6's SP2 constants were measured in 1997.

Caveat: the virtual makespan is a max over ranks of per-rank sums, so
the extracted features are exact only while the critical path does not
shift with the constants; for this library's phase workloads the rank
with the most elements dominates every term, which keeps the linear
form honest (and the fit's residual reports how honest).

Least squares is solved with a nonnegativity guard: machine constants
below zero are meaningless, so negative coefficients are clamped to
zero and the remaining columns refit (the standard active-set sweep for
small problems).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.machine import MachineModel, SP2_1997

from .calibrate import PHASES, CalibrationReport, run_exec_phase_workload

__all__ = [
    "FittedModel",
    "phase_cost_features",
    "fit_machine_model",
    "fit_calibration",
    "format_fits",
]

#: Unit machine models used to extract one feature column each.
_UNIT_MODELS = (
    ("n_setup", MachineModel(t_setup=1.0, t_word=0.0, t_work=0.0)),
    ("n_word", MachineModel(t_setup=0.0, t_word=1.0, t_work=0.0)),
    ("n_work", MachineModel(t_setup=0.0, t_word=0.0, t_work=1.0)),
)


@dataclass(frozen=True)
class FittedModel:
    """Machine constants regressed from one backend's measured phases."""

    backend: str
    t_setup: float
    t_word: float
    t_work: float
    residual_rms: float  #: RMS of (measured - fitted) over the phases
    measured: dict  #: phase -> measured seconds the fit saw
    fitted: dict  #: phase -> seconds the fitted model reproduces

    def as_machine(self) -> MachineModel:
        return MachineModel(
            t_setup=self.t_setup, t_word=self.t_word, t_work=self.t_work
        )


def phase_cost_features(
    resolution: int, nproc: int, seed: int = 0
) -> dict[str, np.ndarray]:
    """Extract each phase's (n_setup, n_word, n_work) critical-path costs.

    Runs the fig6 exec-phase workload three times on the ``virtual``
    backend under the unit machine models; the phase makespan under each
    is that feature's coefficient.  Deterministic, so the three runs see
    bit-identical workloads.
    """
    columns = []
    for _name, machine in _UNIT_MODELS:
        res = run_exec_phase_workload(
            resolution, nproc, "virtual", machine=machine, seed=seed
        )
        columns.append(res.makespans())
    return {
        phase: np.array([col[phase] for col in columns])
        for phase in PHASES
    }


def fit_machine_model(
    features: dict[str, np.ndarray],
    measured: dict[str, float],
    backend: str = "measured",
) -> FittedModel:
    """Nonnegative least-squares fit of the three machine constants.

    ``features`` maps phase -> (n_setup, n_word, n_work); ``measured``
    maps phase -> seconds on the real backend.  Any constant the
    unconstrained solution drives negative is clamped to zero and the
    rest refit, so the returned model is always physically meaningful.
    """
    phases = [p for p in PHASES if p in features and p in measured]
    if len(phases) < 3:
        raise ValueError(
            f"need at least 3 phases to fit 3 constants, got {phases}"
        )
    X = np.array([features[p] for p in phases], dtype=float)
    y = np.array([measured[p] for p in phases], dtype=float)
    active = [0, 1, 2]
    theta = np.zeros(3)
    while active:
        sol, *_ = np.linalg.lstsq(X[:, active], y, rcond=None)
        if (sol >= 0).all():
            theta[:] = 0.0
            theta[active] = sol
            break
        # drop the most negative coefficient and refit the rest
        active.pop(int(np.argmin(sol)))
    fitted_y = X @ theta
    fitted = {p: float(v) for p, v in zip(phases, fitted_y)}
    resid = float(np.sqrt(np.mean((y - fitted_y) ** 2)))
    return FittedModel(
        backend=backend,
        t_setup=float(theta[0]),
        t_word=float(theta[1]),
        t_work=float(theta[2]),
        residual_rms=resid,
        measured={p: float(measured[p]) for p in phases},
        fitted=fitted,
    )


def fit_calibration(
    report: CalibrationReport, seed: int = 0
) -> list[FittedModel]:
    """Fit machine constants for every measured backend in ``report``.

    The feature extraction reruns the workload on the virtual machine
    (cheap and deterministic), so only the report's resolution/nproc are
    needed — measured phase times come from the report itself.
    """
    features = phase_cost_features(report.resolution, report.nproc, seed=seed)
    return [
        fit_machine_model(features, run.makespans(), backend=run.backend)
        for run in report.measured
    ]


def format_fits(fits: list[FittedModel]) -> str:
    """Render fitted constants next to the SP2 reference as ASCII."""
    lines = ["fitted machine constants (nonnegative least squares):"]
    lines.append(
        f"  {'backend':16s} {'t_setup':>12s} {'t_word':>12s} "
        f"{'t_work':>12s} {'rms resid(s)':>13s}"
    )
    lines.append(
        f"  {'SP2_1997 (ref)':16s} {SP2_1997.t_setup:12.3e} "
        f"{SP2_1997.t_word:12.3e} {SP2_1997.t_work:12.3e} {'—':>13s}"
    )
    for f in fits:
        lines.append(
            f"  {f.backend:16s} {f.t_setup:12.3e} {f.t_word:12.3e} "
            f"{f.t_work:12.3e} {f.residual_rms:13.3e}"
        )
    for f in fits:
        lines.append(f"\n  {f.backend}: measured vs fitted per phase")
        for p in f.measured:
            lines.append(
                f"    {p:10s} measured {f.measured[p]:.6f}s   "
                f"fitted {f.fitted[p]:.6f}s"
            )
    return "\n".join(lines)
