"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
report [RESOLUTION]
    Regenerate every table and figure of the paper's evaluation section
    (default resolution 8 ≈ 6k elements; 13 is paper-scale).
case [RESOLUTION]
    Print the synthetic rotor case's mesh sizes and growth factors.
version
    Print the package version.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    cmd, *rest = argv
    if cmd == "version":
        import repro

        print(repro.__version__)
        return 0
    if cmd == "report":
        from repro.experiments.report import run_all

        res = int(rest[0]) if rest else 8
        print(run_all(res))
        return 0
    if cmd == "case":
        from repro.experiments import CASE_NAMES, make_case
        from repro.experiments.sweep import growth_factor

        res = int(rest[0]) if rest else 8
        case = make_case(res)
        sz = case.mesh.sizes()
        print(f"resolution {res}: " + ", ".join(f"{k}={v}" for k, v in sz.items()))
        for name in CASE_NAMES:
            print(f"  {name}: G = {growth_factor(res, name):.3f}")
        return 0
    print(f"unknown command {cmd!r}; try --help", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
