"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
report [RESOLUTION | TRACE.jsonl]
    With a numeric target: regenerate every table and figure of the
    paper's evaluation section (default resolution 8 ≈ 6k elements; 13 is
    paper-scale).  With a trace-file path: render a run report from the
    exported JSONL (``--format ascii|html|both``, ``--out PATH``).
step [RESOLUTION]
    Run one load-balanced adapt/balance cycle on the rotor case and print
    its phase anatomy from tracer spans (``--nproc`` selects P,
    ``--reassigner`` the processor-reassignment algorithm, ``--backend``
    the communicator backend executing the remap's rank programs).
calibrate [RESOLUTION]
    Run the fig6 exec-phase workload (marking propagation, distributed
    subdivision, migration, finalization gather) on the virtual backend
    and on each real-execution backend (default: multiprocessing),
    verify the payloads are identical, and print measured wall seconds
    against the LogGP-modelled virtual seconds phase by phase.
critical-path TRACE.jsonl
    Reconstruct the happens-before DAG from an exported trace and print
    the critical path: makespan attribution by (phase, kind), the top
    path segments, and per-cycle stragglers.  Virtual-time and measured
    wall-clock paths are both printed when the trace carries them
    (``--clock`` pins one).
diff A.jsonl B.jsonl
    Compare two traces' critical-path compositions — e.g. a greedy run
    against an MWBG run — and report which phase segments account for
    the makespan delta (``--clock wall`` compares measured runs).
scale [--ranks P ...]
    Weak-scaling sweep of the virtual-machine scheduler itself: run the
    fig6-style execution phase (compute, halo exchange, convergence
    allreduce) at 1k/4k/16k virtual ranks and print host wall seconds
    and scheduler ops/second per point.  ``--compare`` also times the
    ``REPRO_REFERENCE_KERNELS`` scheduler path on each point and prints
    the optimized-over-reference speedup.
case [RESOLUTION]
    Print the synthetic rotor case's mesh sizes and growth factors.
version
    Print the package version.

Tracing
-------
``report`` and ``step`` accept ``--trace-out PATH`` to export the run's
phase spans, events, metrics, counters, and causal message DAG as JSONL
(schema ``repro.obs/v4``) and ``--chrome-out PATH`` to additionally
write a Chrome-trace JSON that ``chrome://tracing`` or
https://ui.perfetto.dev can open (message sends render as flow arrows).
Feed the JSONL back to ``report`` for the dashboard, or to
``critical-path`` / ``diff`` for makespan attribution.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command")

    def add_tracing(p):
        p.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="export phase spans/metrics/counters as JSONL (repro.obs/v4)",
        )
        p.add_argument(
            "--chrome-out", metavar="PATH", default=None,
            help="export a chrome://tracing-loadable trace JSON",
        )

    p_report = sub.add_parser(
        "report",
        help="regenerate all tables/figures, or render a trace-file report",
    )
    p_report.add_argument(
        "target", nargs="?", default="8",
        help="experiment resolution (integer) or a trace .jsonl path",
    )
    p_report.add_argument(
        "--format", dest="fmt", default="ascii",
        choices=("ascii", "html", "both"),
        help="trace-report output format (trace-file mode only)",
    )
    p_report.add_argument(
        "--out", metavar="PATH", default=None,
        help="HTML output path (default: trace path with .html suffix)",
    )
    p_report.add_argument(
        "--top", type=int, default=10,
        help="span-table size in the trace report",
    )
    add_tracing(p_report)

    p_step = sub.add_parser("step", help="one traced adapt/balance cycle")
    p_step.add_argument("resolution", nargs="?", type=int, default=6)
    p_step.add_argument("--nproc", type=int, default=8)
    p_step.add_argument("--strategy", default="Real_2",
                        choices=("Real_1", "Real_2", "Real_3"))
    p_step.add_argument(
        "--reassigner", default="heuristic_mwbg",
        choices=("heuristic_mwbg", "optimal_mwbg", "optimal_bmcm", "combined"),
        help="processor-reassignment algorithm for the balance phase",
    )
    p_step.add_argument(
        "--backend", default="virtual",
        help="communicator backend for the remap's rank programs "
             "(see `python -m repro calibrate --help` for the registry)",
    )
    add_tracing(p_step)

    p_cal = sub.add_parser(
        "calibrate",
        help="measured-vs-modelled phase times on the exec-phase workload",
    )
    p_cal.add_argument("resolution", nargs="?", type=int, default=4)
    p_cal.add_argument("--nproc", type=int, default=4)
    p_cal.add_argument(
        "--backend", action="append", default=None, metavar="NAME",
        help="measured backend(s) to compare against 'virtual' "
             "(repeatable; default: every registered real-execution "
             "backend except mpi4py)",
    )
    p_cal.add_argument(
        "--fit", action="store_true",
        help="least-squares fit of t_setup/t_word/t_work machine "
             "constants from the measured phase times",
    )
    add_tracing(p_cal)

    p_cp = sub.add_parser(
        "critical-path",
        help="critical-path / straggler breakdown of an exported trace",
    )
    p_cp.add_argument("trace", help="trace .jsonl path (repro.obs/v4)")
    p_cp.add_argument(
        "--top", type=int, default=10,
        help="number of critical-path segments to list",
    )
    p_cp.add_argument(
        "--clock", default="auto", choices=("auto", "virtual", "wall"),
        help="which timeline to analyse: modelled virtual time, measured "
             "wall time, or both when present (default: auto)",
    )

    p_diff = sub.add_parser(
        "diff",
        help="compare two traces' critical-path compositions",
    )
    p_diff.add_argument("trace_a", help="baseline trace .jsonl path")
    p_diff.add_argument("trace_b", help="candidate trace .jsonl path")
    p_diff.add_argument(
        "--top", type=int, default=15,
        help="number of (phase, kind) rows to list",
    )
    p_diff.add_argument(
        "--clock", default="virtual", choices=("virtual", "wall"),
        help="compare modelled virtual-time paths (default) or measured "
             "wall-clock paths",
    )

    p_scale = sub.add_parser(
        "scale",
        help="weak-scaling sweep of the VM scheduler (1k-16k virtual ranks)",
    )
    p_scale.add_argument(
        "--ranks", type=int, action="append", default=None, metavar="P",
        help="virtual rank count to measure (repeatable; "
             "default: 1024 4096 16384)",
    )
    p_scale.add_argument("--rounds", type=int, default=3,
                         help="propagation rounds per cycle")
    p_scale.add_argument("--halo-words", type=int, default=64,
                         help="words per halo message")
    p_scale.add_argument("--work-units", type=float, default=200.0,
                         help="mean compute units per rank per round")
    p_scale.add_argument(
        "--compare", action="store_true",
        help="also time the reference scheduler path and print the speedup",
    )
    p_scale.add_argument(
        "--repeats", type=int, default=1,
        help="shots per path with --compare (best wall is reported)",
    )

    p_case = sub.add_parser("case", help="print case sizes and growth factors")
    p_case.add_argument("resolution", nargs="?", type=int, default=8)

    sub.add_parser("version", help="print the package version")
    return parser


def _export(tracer, trace_out: str | None, chrome_out: str | None) -> None:
    from repro.obs import export_chrome_trace, export_jsonl, validate_jsonl

    if trace_out:
        n = export_jsonl(tracer, trace_out)
        validate_jsonl(trace_out)
        print(f"wrote {n} JSONL records to {trace_out}")
    if chrome_out:
        n = export_chrome_trace(tracer, chrome_out)
        print(f"wrote {n} Chrome-trace events to {chrome_out} "
              "(open in chrome://tracing or ui.perfetto.dev)")


def _cmd_report(args) -> int:
    try:
        resolution = int(args.target)
    except ValueError:
        return _cmd_trace_report(args)

    from repro.experiments.report import run_all
    from repro.obs import Tracer

    tracing = bool(args.trace_out or args.chrome_out)
    tracer = Tracer() if tracing else None
    print(run_all(resolution, tracer=tracer))
    if tracer is not None:
        _export(tracer, args.trace_out, args.chrome_out)
    return 0


def _cmd_trace_report(args) -> int:
    import os

    from repro.obs import read_jsonl, render_ascii, render_html

    path = args.target
    if not os.path.exists(path):
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    tracer = read_jsonl(path)
    if args.fmt in ("ascii", "both"):
        print(render_ascii(tracer, source=path, top=args.top), end="")
    if args.fmt in ("html", "both"):
        out = args.out or os.path.splitext(path)[0] + ".html"
        with open(out, "w") as fh:
            fh.write(render_html(tracer, source=path, top=args.top))
        print(f"wrote HTML report to {out}")
    return 0


def _cmd_step(args) -> int:
    from repro.core import CostModel, LoadBalancedAdaptiveSolver
    from repro.experiments import make_case
    from repro.experiments.report import format_counters
    from repro.obs import Tracer
    from repro.parallel import SP2_1997

    case = make_case(args.resolution)
    tracer = Tracer()
    solver = LoadBalancedAdaptiveSolver(
        case.mesh,
        args.nproc,
        machine=SP2_1997,
        cost_model=CostModel(machine=SP2_1997),
        imbalance_threshold=1.0,
        reassigner=args.reassigner,
        backend=args.backend,
        tracer=tracer,
    )
    report = solver.adapt_step(edge_mask=case.marking_mask(args.strategy))

    clock = (
        "times are virtual seconds"
        if args.backend == "virtual"
        else f"remap ran on the {args.backend!r} backend (measured wall); "
             "other phases are virtual seconds"
    )
    print(f"one {args.strategy} step at resolution {args.resolution} "
          f"on P={args.nproc} ({args.reassigner}; {clock}):")
    for name, seconds in report.phase_times().items():
        print(f"  {name:14s} {seconds:10.6f}")
    print(f"  {'total':14s} {report.total_time:10.6f}")
    print(f"  (reassignment host wall time, for reference: "
          f"{report.reassign_wall_seconds:.6f} s)")
    print()
    print(format_counters(tracer))
    _export(tracer, args.trace_out, args.chrome_out)
    return 0


def _cmd_calibrate(args) -> int:
    from repro.experiments import calibrate, format_calibration
    from repro.obs import Tracer
    from repro.parallel import available_backends

    backends = args.backend
    if backends is not None:
        unknown = [b for b in backends if b not in available_backends()]
        if unknown:
            print(
                f"error: unknown backend(s) {unknown}; registered: "
                f"{', '.join(available_backends())}",
                file=sys.stderr,
            )
            return 2
        backends = tuple(b for b in backends if b != "virtual")
    tracing = bool(args.trace_out or args.chrome_out)
    tracer = Tracer() if tracing else None
    report = calibrate(
        args.resolution, args.nproc, backends=backends, tracer=tracer
    )
    print(format_calibration(report))
    if args.fit:
        from repro.experiments.fit import fit_calibration, format_fits

        print()
        print(format_fits(fit_calibration(report)))
    if tracer is not None:
        from repro.obs.wallclock import format_clock_skew

        skew_table = format_clock_skew(tracer)
        if skew_table:
            print()
            print(skew_table)
        _export(tracer, args.trace_out, args.chrome_out)
    return 0 if report.payloads_identical else 1


def _read_trace(path: str):
    import os

    from repro.obs import read_jsonl

    if not os.path.exists(path):
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return None
    return read_jsonl(path)


def _cmd_critical_path(args) -> int:
    from repro.obs import analyze, format_critical_path

    tracer = _read_trace(args.trace)
    if tracer is None:
        return 2
    virtual = analyze(tracer) if args.clock in ("auto", "virtual") else None
    wall = analyze(tracer, clock="wall") if args.clock in ("auto", "wall") \
        else None
    if wall is not None and not wall.runs:
        if args.clock == "wall":
            print(f"note: {args.trace} carries no measured (wall-clock) "
                  "runs; run the workload on a real backend with tracing "
                  "enabled", file=sys.stderr)
        else:
            wall = None  # auto: nothing measured to show
    if virtual is not None and not virtual.runs and not virtual.supersteps:
        if args.clock == "virtual" or wall is None:
            print(f"note: {args.trace} carries no causal records "
                  "(re-export with schema repro.obs/v3 or later)",
                  file=sys.stderr)
        else:
            virtual = None  # auto: measured-only trace
    shown = [a for a in (virtual, wall) if a is not None]
    for i, analysis in enumerate(shown):
        if i:
            print()
            print("measured (wall clock):")
        print(format_critical_path(analysis, top=args.top))
    return 0


def _cmd_diff(args) -> int:
    import os

    from repro.obs import analyze, diff, format_diff

    tracer_a = _read_trace(args.trace_a)
    tracer_b = _read_trace(args.trace_b)
    if tracer_a is None or tracer_b is None:
        return 2
    clock = args.clock
    analysis_a = analyze(tracer_a, clock=clock) if clock == "wall" \
        else analyze(tracer_a)
    analysis_b = analyze(tracer_b, clock=clock) if clock == "wall" \
        else analyze(tracer_b)
    label_a = os.path.basename(args.trace_a)
    label_b = os.path.basename(args.trace_b)
    if label_a == label_b:
        label_a, label_b = args.trace_a, args.trace_b
    what = ("measured (wall-clock) runs" if clock == "wall"
            else "causal records")
    for label, analysis in ((label_a, analysis_a), (label_b, analysis_b)):
        if not analysis.runs and not analysis.supersteps:
            print(f"note: {label} carries no {what}; its side of the "
                  "comparison is empty and only the other trace's "
                  "composition is shown", file=sys.stderr)
    d = diff(analysis_a, analysis_b)
    print(format_diff(d, label_a=label_a, label_b=label_b, top=args.top))
    return 0


def _cmd_scale(args) -> int:
    from repro.experiments.weak_scaling import (
        DEFAULT_RANKS,
        measure_point,
        measure_speedup,
    )
    from repro.obs import Tracer
    from repro.obs.tracer import use_tracer

    ranks = args.ranks or list(DEFAULT_RANKS)
    kwargs = dict(rounds=args.rounds, halo_words=args.halo_words,
                  work_units=args.work_units)
    print("weak scaling of the VM scheduler "
          f"(fig6-style execution phase; {args.rounds} rounds, "
          f"{args.halo_words}-word halos):")
    hdr = (f"  {'P':>6s} {'wall s':>9s} {'ops':>10s} {'ops/s':>11s} "
           f"{'makespan':>10s}")
    if args.compare:
        hdr += f" {'ref s':>9s} {'speedup':>8s}"
    print(hdr)
    for p in ranks:
        if args.compare:
            opt, ref, speedup = measure_speedup(
                p, repeats=args.repeats, **kwargs
            )
            extra = f" {ref.wall_seconds:9.3f} {speedup:7.2f}x"
        else:
            # same full-pipeline configuration measure_speedup uses:
            # one fresh ambient tracer per shot
            with use_tracer(Tracer()):
                opt = measure_point(p, trace=True, **kwargs)
            extra = ""
        print(f"  {p:6d} {opt.wall_seconds:9.3f} {opt.ops:10d} "
              f"{opt.ops_per_second:11.0f} {opt.makespan:10.4f}{extra}")
    return 0


def _cmd_case(args) -> int:
    from repro.experiments import CASE_NAMES, make_case
    from repro.experiments.sweep import growth_factor

    case = make_case(args.resolution)
    sz = case.mesh.sizes()
    print(f"resolution {args.resolution}: "
          + ", ".join(f"{k}={v}" for k, v in sz.items()))
    for name in CASE_NAMES:
        print(f"  {name}: G = {growth_factor(args.resolution, name):.3f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        print(__doc__)
        return 0
    if args.command == "version":
        import repro

        print(repro.__version__)
        return 0
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "step":
        return _cmd_step(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "critical-path":
        return _cmd_critical_path(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "scale":
        return _cmd_scale(args)
    if args.command == "case":
        return _cmd_case(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
