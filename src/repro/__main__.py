"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
report [RESOLUTION | TRACE.jsonl]
    With a numeric target: regenerate every table and figure of the
    paper's evaluation section (default resolution 8 ≈ 6k elements; 13 is
    paper-scale).  With a trace-file path: render a run report from the
    exported JSONL (``--format ascii|html|both``, ``--out PATH``).
step [RESOLUTION]
    Run one load-balanced adapt/balance cycle on the rotor case and print
    its phase anatomy from tracer spans (``--nproc`` selects P,
    ``--reassigner`` the processor-reassignment algorithm, ``--backend``
    the communicator backend executing the remap's rank programs).
    ``--live`` renders an in-place ASCII dashboard (cycle, phase stack,
    per-rank busy/idle, resource usage) while the step runs.
watch [STATUS.json]
    Attach to a live run from another terminal: poll the status file a
    ``--live`` run publishes under ``.repro_runs/live/`` (newest by
    default) and render the same dashboard (``--once`` prints a single
    snapshot and exits).
runs {list | show ID | compare A B | regress [ID] | index TRACE}
    Query the cross-run history store (``.repro_runs/``, override with
    ``--dir`` or ``REPRO_RUNS_DIR``).  Every traced ``report``/``step``/
    ``calibrate`` run and every ``scripts/bench_suite.py`` run is indexed
    automatically; ``compare`` prints metric-by-metric deltas and
    ``regress`` flags a run against the rolling median of its matching
    predecessors (exit status 1 when any metric regressed).
calibrate [RESOLUTION]
    Run the fig6 exec-phase workload (marking propagation, distributed
    subdivision, migration, finalization gather) on the virtual backend
    and on each real-execution backend (default: multiprocessing),
    verify the payloads are identical, and print measured wall seconds
    against the LogGP-modelled virtual seconds phase by phase.
critical-path TRACE.jsonl
    Reconstruct the happens-before DAG from an exported trace and print
    the critical path: makespan attribution by (phase, kind), the top
    path segments, and per-cycle stragglers.  Virtual-time and measured
    wall-clock paths are both printed when the trace carries them
    (``--clock`` pins one).
diff A.jsonl B.jsonl
    Compare two traces' critical-path compositions — e.g. a greedy run
    against an MWBG run — and report which phase segments account for
    the makespan delta (``--clock wall`` compares measured runs).
scale [--ranks P ...]
    Weak-scaling sweep of the virtual-machine scheduler itself: run the
    fig6-style execution phase (compute, halo exchange, convergence
    allreduce) at 1k/4k/16k virtual ranks and print host wall seconds
    and scheduler ops/second per point.  ``--compare`` also times the
    ``REPRO_REFERENCE_KERNELS`` scheduler path on each point and prints
    the optimized-over-reference speedup.
case [RESOLUTION]
    Print the synthetic rotor case's mesh sizes and growth factors.
version
    Print the package version.

Tracing
-------
``report`` and ``step`` accept ``--trace-out PATH`` to export the run's
phase spans, events, metrics, counters, resource samples, and causal
message DAG as JSONL (schema ``repro.obs/v5``) and ``--chrome-out PATH``
to additionally write a Chrome-trace JSON that ``chrome://tracing`` or
https://ui.perfetto.dev can open (message sends render as flow arrows).
Feed the JSONL back to ``report`` for the dashboard, or to
``critical-path`` / ``diff`` for makespan attribution.  Traced runs are
indexed into the run-history store automatically (``--no-history``
opts out).
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command")

    def add_tracing(p):
        p.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="export phase spans/metrics/counters as JSONL (repro.obs/v5)",
        )
        p.add_argument(
            "--chrome-out", metavar="PATH", default=None,
            help="export a chrome://tracing-loadable trace JSON",
        )
        p.add_argument(
            "--no-history", action="store_true",
            help="do not index the exported trace into the run-history store",
        )
        p.add_argument(
            "--runs-dir", metavar="DIR", default=None,
            help="run-history store root (default: $REPRO_RUNS_DIR or "
                 "./.repro_runs)",
        )

    p_report = sub.add_parser(
        "report",
        help="regenerate all tables/figures, or render a trace-file report",
    )
    p_report.add_argument(
        "target", nargs="?", default="8",
        help="experiment resolution (integer) or a trace .jsonl path",
    )
    p_report.add_argument(
        "--format", dest="fmt", default="ascii",
        choices=("ascii", "html", "both"),
        help="trace-report output format (trace-file mode only)",
    )
    p_report.add_argument(
        "--out", metavar="PATH", default=None,
        help="HTML output path (default: trace path with .html suffix)",
    )
    p_report.add_argument(
        "--top", type=int, default=10,
        help="span-table size in the trace report",
    )
    add_tracing(p_report)

    p_step = sub.add_parser("step", help="one traced adapt/balance cycle")
    p_step.add_argument("resolution", nargs="?", type=int, default=6)
    p_step.add_argument("--nproc", type=int, default=8)
    p_step.add_argument("--strategy", default="Real_2",
                        choices=("Real_1", "Real_2", "Real_3"))
    p_step.add_argument(
        "--reassigner", default="heuristic_mwbg",
        choices=("heuristic_mwbg", "optimal_mwbg", "optimal_bmcm", "combined"),
        help="processor-reassignment algorithm for the balance phase",
    )
    p_step.add_argument(
        "--backend", default="virtual",
        help="communicator backend for the remap's rank programs "
             "(see `python -m repro calibrate --help` for the registry)",
    )
    p_step.add_argument(
        "--live", action="store_true",
        help="render a live ASCII dashboard (phases, per-rank busy/idle, "
             "resource usage) while the step runs; also publishes a "
             "status file `repro watch` can attach to",
    )
    add_tracing(p_step)

    p_cal = sub.add_parser(
        "calibrate",
        help="measured-vs-modelled phase times on the exec-phase workload",
    )
    p_cal.add_argument("resolution", nargs="?", type=int, default=4)
    p_cal.add_argument("--nproc", type=int, default=4)
    p_cal.add_argument(
        "--backend", action="append", default=None, metavar="NAME",
        help="measured backend(s) to compare against 'virtual' "
             "(repeatable; default: every registered real-execution "
             "backend except mpi4py)",
    )
    p_cal.add_argument(
        "--fit", action="store_true",
        help="least-squares fit of t_setup/t_word/t_work machine "
             "constants from the measured phase times",
    )
    add_tracing(p_cal)

    p_cp = sub.add_parser(
        "critical-path",
        help="critical-path / straggler breakdown of an exported trace",
    )
    p_cp.add_argument("trace", help="trace .jsonl path (repro.obs/v4)")
    p_cp.add_argument(
        "--top", type=int, default=10,
        help="number of critical-path segments to list",
    )
    p_cp.add_argument(
        "--clock", default="auto", choices=("auto", "virtual", "wall"),
        help="which timeline to analyse: modelled virtual time, measured "
             "wall time, or both when present (default: auto)",
    )

    p_diff = sub.add_parser(
        "diff",
        help="compare two traces' critical-path compositions",
    )
    p_diff.add_argument("trace_a", help="baseline trace .jsonl path")
    p_diff.add_argument("trace_b", help="candidate trace .jsonl path")
    p_diff.add_argument(
        "--top", type=int, default=15,
        help="number of (phase, kind) rows to list",
    )
    p_diff.add_argument(
        "--clock", default="virtual", choices=("virtual", "wall"),
        help="compare modelled virtual-time paths (default) or measured "
             "wall-clock paths",
    )

    p_scale = sub.add_parser(
        "scale",
        help="weak-scaling sweep of the VM scheduler (1k-16k virtual ranks)",
    )
    p_scale.add_argument(
        "--ranks", type=int, action="append", default=None, metavar="P",
        help="virtual rank count to measure (repeatable; "
             "default: 1024 4096 16384)",
    )
    p_scale.add_argument("--rounds", type=int, default=3,
                         help="propagation rounds per cycle")
    p_scale.add_argument("--halo-words", type=int, default=64,
                         help="words per halo message")
    p_scale.add_argument("--work-units", type=float, default=200.0,
                         help="mean compute units per rank per round")
    p_scale.add_argument(
        "--compare", action="store_true",
        help="also time the reference scheduler path and print the speedup",
    )
    p_scale.add_argument(
        "--repeats", type=int, default=1,
        help="shots per path with --compare (best wall is reported)",
    )

    p_case = sub.add_parser("case", help="print case sizes and growth factors")
    p_case.add_argument("resolution", nargs="?", type=int, default=8)

    p_watch = sub.add_parser(
        "watch", help="attach a dashboard to a running --live run"
    )
    p_watch.add_argument(
        "path", nargs="?", default=None,
        help="status file to watch (default: newest under the live dir)",
    )
    p_watch.add_argument(
        "--dir", default=None,
        help="status-file directory (default: <runs dir>/live)",
    )
    p_watch.add_argument("--interval", type=float, default=0.5,
                         help="poll interval in seconds")
    p_watch.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (status 1 when none found)",
    )
    p_watch.add_argument(
        "--timeout", type=float, default=0.0,
        help="give up after this many seconds with no live run (0 = wait "
             "forever)",
    )

    p_runs = sub.add_parser(
        "runs", help="query the cross-run history store (.repro_runs/)"
    )
    p_runs.add_argument(
        "--dir", default=None,
        help="store root (default: $REPRO_RUNS_DIR or ./.repro_runs)",
    )
    rsub = p_runs.add_subparsers(dest="runs_command")
    rsub.add_parser("list", help="one row per stored run, newest last")
    pr_show = rsub.add_parser("show", help="full record of one run")
    pr_show.add_argument("id", help="run id (unique prefix accepted)")
    pr_cmp = rsub.add_parser(
        "compare", help="metric-by-metric deltas between two stored runs"
    )
    pr_cmp.add_argument("id_a", help="baseline run id")
    pr_cmp.add_argument("id_b", help="candidate run id")
    pr_reg = rsub.add_parser(
        "regress",
        help="flag a run against the rolling median of its matching "
             "predecessors (exit 1 on regression)",
    )
    pr_reg.add_argument(
        "id", nargs="?", default=None,
        help="candidate run id (default: the newest stored run)",
    )
    pr_reg.add_argument("--window", type=int, default=None,
                        help="rolling-baseline size (default 5)")
    pr_reg.add_argument("--threshold", type=float, default=None,
                        help="allowed cost factor before flagging "
                             "(default 1.15)")
    pr_idx = rsub.add_parser(
        "index", help="summarize a trace file into the store"
    )
    pr_idx.add_argument("trace", help="trace .jsonl path")
    pr_idx.add_argument("--label", default="",
                        help="series label (default: the trace basename)")

    sub.add_parser("version", help="print the package version")
    return parser


def _export(tracer, trace_out: str | None, chrome_out: str | None,
            label: str = "", config: dict | None = None,
            history: bool = True, runs_dir: str | None = None) -> None:
    from repro.obs import export_chrome_trace, export_jsonl, validate_jsonl

    if trace_out:
        n = export_jsonl(tracer, trace_out)
        validate_jsonl(trace_out)
        print(f"wrote {n} JSONL records to {trace_out}")
        if history:
            from repro.obs.runs import RunStore, index_trace

            rec = index_trace(
                RunStore(runs_dir), trace_out, label=label, config=config
            )
            print(f"indexed run {rec.id} into {RunStore(runs_dir).root} "
                  f"(compare with `repro runs list`)")
    if chrome_out:
        n = export_chrome_trace(tracer, chrome_out)
        print(f"wrote {n} Chrome-trace events to {chrome_out} "
              "(open in chrome://tracing or ui.perfetto.dev)")


def _sampled_host(tracer, hub=None):
    """Context: sample the host process's resources into ``tracer``.

    The closing ``record_resource_samples`` call is what puts
    ``resource`` records into every traced CLI run, real backend or not;
    with a live hub the samples also stream straight to the dashboard.
    """
    import contextlib

    if tracer is None:
        return contextlib.nullcontext()

    from repro.obs import ResourceSampler, record_resource_samples

    emit = None
    if hub is not None:
        def emit(t, rss, cpu, gcs):
            hub.publish("resource", rank=None, rss_bytes=rss,
                        cpu_seconds=cpu, gc_collections=gcs)

    @contextlib.contextmanager
    def cm():
        sampler = ResourceSampler(emit=emit).start()
        try:
            yield sampler
        finally:
            sampler.stop()
            record_resource_samples(
                tracer, sampler.rows(), rank=None, backend="host"
            )

    return cm()


def _cmd_report(args) -> int:
    try:
        resolution = int(args.target)
    except ValueError:
        return _cmd_trace_report(args)

    from repro.experiments.report import run_all
    from repro.obs import Tracer

    tracing = bool(args.trace_out or args.chrome_out)
    tracer = Tracer() if tracing else None
    with _sampled_host(tracer):
        print(run_all(resolution, tracer=tracer))
    if tracer is not None:
        _export(
            tracer, args.trace_out, args.chrome_out,
            label=f"report/r{resolution}",
            config={"command": "report", "resolution": resolution},
            history=not args.no_history, runs_dir=args.runs_dir,
        )
    return 0


def _cmd_trace_report(args) -> int:
    import os

    from repro.obs import read_jsonl, render_ascii, render_html

    path = args.target
    if not os.path.exists(path):
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    tracer = read_jsonl(path)
    if args.fmt in ("ascii", "both"):
        print(render_ascii(tracer, source=path, top=args.top), end="")
    if args.fmt in ("html", "both"):
        out = args.out or os.path.splitext(path)[0] + ".html"
        with open(out, "w") as fh:
            fh.write(render_html(tracer, source=path, top=args.top))
        print(f"wrote HTML report to {out}")
    return 0


def _cmd_step(args) -> int:
    import contextlib
    import os

    from repro.core import CostModel, LoadBalancedAdaptiveSolver
    from repro.experiments import make_case
    from repro.experiments.report import format_counters
    from repro.obs import Tracer
    from repro.parallel import SP2_1997

    case = make_case(args.resolution)
    with contextlib.ExitStack() as stack:
        hub = None
        if args.live:
            from repro.obs import (
                LiveChannel,
                LiveDisplay,
                TelemetryHub,
                use_live,
            )
            from repro.obs.live import default_status_dir

            hub = TelemetryHub(
                title=f"repro step r{args.resolution} P{args.nproc} "
                      f"{args.backend}"
            )
            hub.channel = LiveChannel()
            stack.enter_context(use_live(hub))
            status_path = os.path.join(
                default_status_dir(args.runs_dir),
                f"step-{os.getpid()}.json",
            )
            stack.callback(hub.channel.close)  # after the display stops
            stack.enter_context(LiveDisplay(
                hub, channel=hub.channel, status_path=status_path
            ))
        tracer = Tracer()  # picks up the ambient hub when --live
        if args.trace_out or args.chrome_out or args.live:
            stack.enter_context(_sampled_host(tracer, hub=hub))
        solver = LoadBalancedAdaptiveSolver(
            case.mesh,
            args.nproc,
            machine=SP2_1997,
            cost_model=CostModel(machine=SP2_1997),
            imbalance_threshold=1.0,
            reassigner=args.reassigner,
            backend=args.backend,
            tracer=tracer,
        )
        report = solver.adapt_step(edge_mask=case.marking_mask(args.strategy))

    clock = (
        "times are virtual seconds"
        if args.backend == "virtual"
        else f"remap ran on the {args.backend!r} backend (measured wall); "
             "other phases are virtual seconds"
    )
    print(f"one {args.strategy} step at resolution {args.resolution} "
          f"on P={args.nproc} ({args.reassigner}; {clock}):")
    for name, seconds in report.phase_times().items():
        print(f"  {name:14s} {seconds:10.6f}")
    print(f"  {'total':14s} {report.total_time:10.6f}")
    print(f"  (reassignment host wall time, for reference: "
          f"{report.reassign_wall_seconds:.6f} s)")
    print()
    print(format_counters(tracer))
    _export(
        tracer, args.trace_out, args.chrome_out,
        label=f"step/r{args.resolution}",
        config={
            "command": "step", "resolution": args.resolution,
            "nproc": args.nproc, "strategy": args.strategy,
            "reassigner": args.reassigner, "backend": args.backend,
        },
        history=not args.no_history, runs_dir=args.runs_dir,
    )
    return 0


def _cmd_calibrate(args) -> int:
    from repro.experiments import calibrate, format_calibration
    from repro.obs import Tracer
    from repro.parallel import available_backends

    backends = args.backend
    if backends is not None:
        unknown = [b for b in backends if b not in available_backends()]
        if unknown:
            print(
                f"error: unknown backend(s) {unknown}; registered: "
                f"{', '.join(available_backends())}",
                file=sys.stderr,
            )
            return 2
        backends = tuple(b for b in backends if b != "virtual")
    tracing = bool(args.trace_out or args.chrome_out)
    tracer = Tracer() if tracing else None
    with _sampled_host(tracer):
        report = calibrate(
            args.resolution, args.nproc, backends=backends, tracer=tracer
        )
    print(format_calibration(report))
    if args.fit:
        from repro.experiments.fit import fit_calibration, format_fits

        print()
        print(format_fits(fit_calibration(report)))
    if tracer is not None:
        from repro.obs.wallclock import format_clock_skew

        skew_table = format_clock_skew(tracer)
        if skew_table:
            print()
            print(skew_table)
        _export(
            tracer, args.trace_out, args.chrome_out,
            label=f"calibrate/r{args.resolution}",
            config={
                "command": "calibrate", "resolution": args.resolution,
                "nproc": args.nproc,
                "backends": sorted(backends) if backends else None,
            },
            history=not args.no_history, runs_dir=args.runs_dir,
        )
    return 0 if report.payloads_identical else 1


def _read_trace(path: str):
    import os

    from repro.obs import read_jsonl

    if not os.path.exists(path):
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return None
    return read_jsonl(path)


def _cmd_critical_path(args) -> int:
    from repro.obs import analyze, format_critical_path

    tracer = _read_trace(args.trace)
    if tracer is None:
        return 2
    virtual = analyze(tracer) if args.clock in ("auto", "virtual") else None
    wall = analyze(tracer, clock="wall") if args.clock in ("auto", "wall") \
        else None
    if wall is not None and not wall.runs:
        if args.clock == "wall":
            print(f"note: {args.trace} carries no measured (wall-clock) "
                  "runs; run the workload on a real backend with tracing "
                  "enabled", file=sys.stderr)
        else:
            wall = None  # auto: nothing measured to show
    if virtual is not None and not virtual.runs and not virtual.supersteps:
        if args.clock == "virtual" or wall is None:
            print(f"note: {args.trace} carries no causal records "
                  "(re-export with schema repro.obs/v3 or later)",
                  file=sys.stderr)
        else:
            virtual = None  # auto: measured-only trace
    shown = [a for a in (virtual, wall) if a is not None]
    for i, analysis in enumerate(shown):
        if i:
            print()
            print("measured (wall clock):")
        print(format_critical_path(analysis, top=args.top))
    return 0


def _cmd_diff(args) -> int:
    import os

    from repro.obs import analyze, diff, format_diff

    tracer_a = _read_trace(args.trace_a)
    tracer_b = _read_trace(args.trace_b)
    if tracer_a is None or tracer_b is None:
        return 2
    clock = args.clock
    analysis_a = analyze(tracer_a, clock=clock) if clock == "wall" \
        else analyze(tracer_a)
    analysis_b = analyze(tracer_b, clock=clock) if clock == "wall" \
        else analyze(tracer_b)
    label_a = os.path.basename(args.trace_a)
    label_b = os.path.basename(args.trace_b)
    if label_a == label_b:
        label_a, label_b = args.trace_a, args.trace_b
    what = ("measured (wall-clock) runs" if clock == "wall"
            else "causal records")
    for label, analysis in ((label_a, analysis_a), (label_b, analysis_b)):
        if not analysis.runs and not analysis.supersteps:
            print(f"note: {label} carries no {what}; its side of the "
                  "comparison is empty and only the other trace's "
                  "composition is shown", file=sys.stderr)
    d = diff(analysis_a, analysis_b)
    print(format_diff(d, label_a=label_a, label_b=label_b, top=args.top))
    return 0


def _cmd_scale(args) -> int:
    from repro.experiments.weak_scaling import (
        DEFAULT_RANKS,
        measure_point,
        measure_speedup,
    )
    from repro.obs import Tracer
    from repro.obs.tracer import use_tracer

    ranks = args.ranks or list(DEFAULT_RANKS)
    kwargs = dict(rounds=args.rounds, halo_words=args.halo_words,
                  work_units=args.work_units)
    print("weak scaling of the VM scheduler "
          f"(fig6-style execution phase; {args.rounds} rounds, "
          f"{args.halo_words}-word halos):")
    hdr = (f"  {'P':>6s} {'wall s':>9s} {'ops':>10s} {'ops/s':>11s} "
           f"{'makespan':>10s}")
    if args.compare:
        hdr += f" {'ref s':>9s} {'speedup':>8s}"
    print(hdr)
    for p in ranks:
        if args.compare:
            opt, ref, speedup = measure_speedup(
                p, repeats=args.repeats, **kwargs
            )
            extra = f" {ref.wall_seconds:9.3f} {speedup:7.2f}x"
        else:
            # same full-pipeline configuration measure_speedup uses:
            # one fresh ambient tracer per shot
            with use_tracer(Tracer()):
                opt = measure_point(p, trace=True, **kwargs)
            extra = ""
        print(f"  {p:6d} {opt.wall_seconds:9.3f} {opt.ops:10d} "
              f"{opt.ops_per_second:11.0f} {opt.makespan:10.4f}{extra}")
    return 0


def _cmd_case(args) -> int:
    from repro.experiments import CASE_NAMES, make_case
    from repro.experiments.sweep import growth_factor

    case = make_case(args.resolution)
    sz = case.mesh.sizes()
    print(f"resolution {args.resolution}: "
          + ", ".join(f"{k}={v}" for k, v in sz.items()))
    for name in CASE_NAMES:
        print(f"  {name}: G = {growth_factor(args.resolution, name):.3f}")
    return 0


def _cmd_watch(args) -> int:
    import time as _time

    from repro.obs.live import (
        default_status_dir,
        load_status,
        newest_status,
        render_dashboard,
    )

    status_dir = args.dir or default_status_dir()

    def find():
        return args.path or newest_status(status_dir)

    if args.once:
        path = find()
        snap = load_status(path) if path else None
        if snap is None:
            print(f"no live run found (looked in {status_dir}); start one "
                  "with `repro step --live`", file=sys.stderr)
            return 1
        print(render_dashboard(snap))
        return 0

    isatty = sys.stdout.isatty()
    last_height = 0
    seen = False
    waited = 0.0
    try:
        while True:
            path = find()
            snap = load_status(path) if path else None
            if snap is None:
                if seen:
                    print("live run ended")
                    return 0
                if args.timeout and waited >= args.timeout:
                    print(f"no live run appeared within {args.timeout:g}s "
                          f"(looked in {status_dir})", file=sys.stderr)
                    return 1
                _time.sleep(args.interval)
                waited += args.interval
                continue
            seen = True
            text = render_dashboard(snap)
            if isatty and last_height:
                sys.stdout.write(f"\x1b[{last_height}F\x1b[J")
            sys.stdout.write(text + ("\n" if isatty else "\n---\n"))
            sys.stdout.flush()
            last_height = text.count("\n") + 1
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_runs(args) -> int:
    from repro.obs.runs import (
        DEFAULT_THRESHOLD,
        DEFAULT_WINDOW,
        RunStore,
        find_regressions,
        format_compare,
        format_record,
        format_regressions,
        format_runs_list,
        index_trace,
    )

    store = RunStore(args.dir)
    cmd = args.runs_command
    if cmd is None or cmd == "list":
        print(format_runs_list(store.records()))
        return 0
    try:
        if cmd == "show":
            print(format_record(store.get(args.id)))
            return 0
        if cmd == "compare":
            print(format_compare(store.get(args.id_a), store.get(args.id_b)))
            return 0
        if cmd == "regress":
            records = store.records()
            if args.id is not None:
                candidate = store.get(args.id)
            elif records:
                candidate = records[-1]
            else:
                print(f"error: no runs stored in {store.root}",
                      file=sys.stderr)
                return 2
            threshold = args.threshold or DEFAULT_THRESHOLD
            flags, pool = find_regressions(
                records, candidate,
                window=args.window or DEFAULT_WINDOW,
                threshold=threshold,
            )
            print(format_regressions(candidate, flags, pool, threshold))
            return 1 if flags else 0
        if cmd == "index":
            import os

            if not os.path.exists(args.trace):
                print(f"error: no such trace file: {args.trace}",
                      file=sys.stderr)
                return 2
            rec = index_trace(store, args.trace, label=args.label)
            print(f"indexed run {rec.id} ({rec.label}) into {store.root}")
            return 0
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 2


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        print(__doc__)
        return 0
    if args.command == "version":
        import repro

        print(repro.__version__)
        return 0
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "step":
        return _cmd_step(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "critical-path":
        return _cmd_critical_path(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "scale":
        return _cmd_scale(args)
    if args.command == "case":
        return _cmd_case(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "runs":
        return _cmd_runs(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
