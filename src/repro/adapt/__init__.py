"""3D_TAG-style tetrahedral mesh adaption (paper §3).

Edge-based marking with pattern-upgrade propagation, vectorized 1:2 / 1:4 /
1:8 subdivision, refinement forests carrying the dual-graph weights, and
constraint-checked coarsening.
"""

from .adaptor import AdaptiveMesh
from .coarsen import CoarsenReport, peel_last_level
from .marking import (
    MarkingResult,
    target_elements_by_fraction,
    element_patterns,
    propagate_markings,
    shared_edge_mask,
    target_by_fraction,
    target_by_threshold,
)
from .patterns import (
    NUM_CHILDREN,
    PAT_1TO2,
    PAT_1TO4,
    PAT_1TO8,
    PAT_NONE,
    PATTERN_KIND,
    UPGRADE,
    classify,
    is_valid,
    pattern_bits,
    upgrade,
)
from .refine import RefineResult, subdivide
from .strategies import mark_cylinder, mark_halfspace, mark_shell, mark_sphere
from .tree import RefinementForest

__all__ = [
    "AdaptiveMesh",
    "CoarsenReport",
    "MarkingResult",
    "NUM_CHILDREN",
    "PAT_1TO2",
    "PAT_1TO4",
    "PAT_1TO8",
    "PAT_NONE",
    "PATTERN_KIND",
    "RefineResult",
    "RefinementForest",
    "UPGRADE",
    "classify",
    "element_patterns",
    "is_valid",
    "mark_cylinder",
    "mark_halfspace",
    "mark_shell",
    "mark_sphere",
    "pattern_bits",
    "peel_last_level",
    "propagate_markings",
    "shared_edge_mask",
    "subdivide",
    "target_by_fraction",
    "target_elements_by_fraction",
    "target_by_threshold",
    "upgrade",
]
