"""Adaption statistics and diagnostics.

The edge-based scheme's selling point (paper §3) is *anisotropic*
refinement: "the elements are defined by their six edges rather than by
their four vertices.  This feature makes the mesh adaption procedure
capable of performing anisotropic refinement and coarsening that results
in a more efficient distribution of grid points."  These helpers quantify
that: subdivision-type histograms (1:2 and 1:4 are the anisotropic types),
marking amplification, and element-quality evolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.geometry import aspect_ratios
from repro.mesh.tetmesh import TetMesh

from .marking import MarkingResult
from .patterns import NUM_CHILDREN, PAT_1TO2, PAT_1TO4, PAT_1TO8, PAT_NONE, classify

__all__ = ["MarkingStats", "marking_stats", "quality_change"]


@dataclass(frozen=True)
class MarkingStats:
    """Summary of one marking fixpoint."""

    n_elements: int
    n_unchanged: int
    n_1to2: int  #: anisotropic bisections
    n_1to4: int  #: anisotropic face subdivisions
    n_1to8: int  #: isotropic subdivisions
    marked_edges: int
    seed_edges: int  #: edges targeted before propagation
    amplification: float  #: marked / seed (>= 1)
    predicted_children: int
    predicted_growth: float

    @property
    def anisotropic_fraction(self) -> float:
        """Fraction of refined elements using an anisotropic type."""
        refined = self.n_1to2 + self.n_1to4 + self.n_1to8
        if refined == 0:
            return 0.0
        return (self.n_1to2 + self.n_1to4) / refined

    def summary(self) -> str:
        return (
            f"{self.n_elements} elements: {self.n_unchanged} unchanged, "
            f"{self.n_1to2} x 1:2, {self.n_1to4} x 1:4, {self.n_1to8} x 1:8 "
            f"({self.anisotropic_fraction:.0%} of refined anisotropic); "
            f"{self.seed_edges} -> {self.marked_edges} edges "
            f"(amplification {self.amplification:.2f}); "
            f"predicted growth {self.predicted_growth:.2f}x"
        )


def marking_stats(
    marking: MarkingResult, seed_mask: np.ndarray | None = None
) -> MarkingStats:
    """Classify a marking fixpoint's subdivision types and amplification."""
    kinds = classify(marking.patterns)
    counts = {
        k: int((kinds == k).sum())
        for k in (PAT_NONE, PAT_1TO2, PAT_1TO4, PAT_1TO8)
    }
    marked = int(marking.edge_marked.sum())
    seed = int(np.asarray(seed_mask).sum()) if seed_mask is not None else marked
    children = int(NUM_CHILDREN[marking.patterns].sum())
    n = marking.patterns.shape[0]
    return MarkingStats(
        n_elements=n,
        n_unchanged=counts[PAT_NONE],
        n_1to2=counts[PAT_1TO2],
        n_1to4=counts[PAT_1TO4],
        n_1to8=counts[PAT_1TO8],
        marked_edges=marked,
        seed_edges=seed,
        amplification=marked / seed if seed else 1.0,
        predicted_children=children,
        predicted_growth=children / n if n else 1.0,
    )


def quality_change(before: TetMesh, after: TetMesh) -> dict[str, float]:
    """Element-quality statistics across a refinement (aspect ratios
    normalised so a regular tetrahedron scores 1; larger is worse)."""
    qb = aspect_ratios(before.coords, before.elems)
    qa = aspect_ratios(after.coords, after.elems)
    return {
        "mean_before": float(qb.mean()),
        "mean_after": float(qa.mean()),
        "worst_before": float(qb.max()),
        "worst_after": float(qa.max()),
    }
