"""Edge targeting and the iterative marking-propagation loop (paper §3).

Refinement is split into two phases: *marking* (this module — a pure
bookkeeping step during which the grid is unchanged) and *subdivision*
(:mod:`repro.adapt.refine`).  The split is what enables the paper's key
optimisation: remapping data after marking but before subdivision (§4.6).

Marking starts from an error indicator per edge, then iteratively upgrades
every element's 6-bit pattern to a valid subdivision type; upgrades mark
additional edges, which may invalidate neighbouring elements' patterns, so
the process repeats until a fixpoint.  In the distributed setting the same
loop runs per partition with an exchange of newly-marked shared edges after
every iteration; the result is identical to the serial fixpoint, and
:func:`propagate_markings` models the parallel execution time through an
optional :class:`~repro.parallel.CostLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import reference_enabled
from repro.mesh.tetmesh import TetMesh
from repro.parallel.ledger import CostLedger

from .patterns import UPGRADE, pattern_bits

__all__ = [
    "target_by_fraction",
    "target_by_threshold",
    "target_elements_by_fraction",
    "propagate_markings",
    "MarkingResult",
    "element_patterns",
    "shared_edge_mask",
]

_POW2 = (1 << np.arange(6)).astype(np.int64)


def target_by_fraction(error: np.ndarray, refine_frac: float) -> np.ndarray:
    """Mark the ``refine_frac`` highest-error edges for subdivision.

    This is how the paper constructs its Real_1/2/3 strategies, which
    subdivide 5%, 33%, and 60% of the initial mesh's edges.
    """
    error = np.asarray(error, dtype=np.float64)
    if not 0.0 <= refine_frac <= 1.0:
        raise ValueError(f"refine_frac must be in [0, 1], got {refine_frac}")
    n = error.shape[0]
    k = int(round(refine_frac * n))
    mask = np.zeros(n, dtype=bool)
    if k > 0:
        # ties broken by edge id for determinism
        order = np.lexsort((np.arange(n), -error))
        mask[order[:k]] = True
    return mask


def target_by_threshold(
    error: np.ndarray, hi: float, lo: float
) -> tuple[np.ndarray, np.ndarray]:
    """Classic two-threshold targeting: refine above ``hi``, coarsen below
    ``lo`` (paper §3: "edges whose error values exceed a specified upper
    threshold are targeted for subdivision...")."""
    error = np.asarray(error, dtype=np.float64)
    if lo > hi:
        raise ValueError(f"lo ({lo}) must not exceed hi ({hi})")
    return error > hi, error < lo


def target_elements_by_fraction(
    mesh: TetMesh, elem_error: np.ndarray, edge_frac: float
) -> np.ndarray:
    """Mark all six edges of the highest-error elements until the marked
    set reaches ``edge_frac`` of the mesh's edges.

    Element-coherent targeting reproduces the tightly clustered markings of
    the paper's solution-based indicator: fully-marked elements subdivide
    1:8 while their face neighbours upgrade to clean 1:4 patterns, so
    pattern propagation adds almost nothing and the growth factor stays
    near the ideal ``7·f + 1``.
    """
    elem_error = np.asarray(elem_error, dtype=np.float64)
    if elem_error.shape != (mesh.ne,):
        raise ValueError(f"expected one error per element ({mesh.ne},)")
    if not 0.0 <= edge_frac <= 1.0:
        raise ValueError(f"edge_frac must be in [0, 1], got {edge_frac}")
    target = int(round(edge_frac * mesh.nedges))
    mask = np.zeros(mesh.nedges, dtype=bool)
    if target == 0:
        return mask
    order = np.lexsort((np.arange(mesh.ne), -elem_error))
    # rank of each element in priority order
    rank = np.empty(mesh.ne, dtype=np.int64)
    rank[order] = np.arange(mesh.ne)
    # each edge is first claimed by its highest-priority element
    first_rank = np.full(mesh.nedges, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(
        first_rank, mesh.elem2edge.ravel(), np.repeat(rank, 6)
    )
    # cumulative count of distinct edges after taking the top-k elements
    claimed = np.sort(first_rank[first_rank < np.iinfo(np.int64).max])
    # k* = smallest rank cutoff whose claimed-edge count reaches the target
    kstar = int(claimed[target - 1])  # claimed is sorted by claiming rank
    mask[first_rank <= kstar] = True
    return mask


def element_patterns(mesh: TetMesh, edge_marked: np.ndarray) -> np.ndarray:
    """6-bit pattern of each element given a global edge mask."""
    return (edge_marked[mesh.elem2edge].astype(np.int64) * _POW2).sum(axis=1)


def shared_edge_mask(mesh: TetMesh, part: np.ndarray) -> np.ndarray:
    """Edges incident to elements of more than one partition.

    These are the edges whose markings must be communicated (each shared
    edge's SPL in the paper's terminology).
    """
    owner = part[np.repeat(np.arange(mesh.ne), 6)]
    eids = mesh.elem2edge.ravel()
    lo = np.full(mesh.nedges, np.iinfo(np.int64).max, dtype=np.int64)
    hi = np.full(mesh.nedges, -1, dtype=np.int64)
    np.minimum.at(lo, eids, owner)
    np.maximum.at(hi, eids, owner)
    return (hi >= 0) & (lo != hi)


@dataclass(frozen=True)
class MarkingResult:
    """Fixpoint of the marking propagation.

    Attributes
    ----------
    edge_marked:
        Final boolean mask over edges (closed under pattern upgrades).
    patterns:
        Valid 6-bit pattern per element.
    iterations:
        Number of propagation rounds until the fixpoint.
    """

    edge_marked: np.ndarray
    patterns: np.ndarray
    iterations: int


def propagate_markings(
    mesh: TetMesh,
    edge_marked: np.ndarray,
    part: np.ndarray | None = None,
    ledger: CostLedger | None = None,
) -> MarkingResult:
    """Upgrade element patterns to valid subdivision types until stable.

    Parameters
    ----------
    mesh:
        The current computational mesh.
    edge_marked:
        Initial boolean mask of edges targeted for subdivision.
    part, ledger:
        When both are given, the parallel execution of the loop is modelled:
        each round charges every rank the pattern-recomputation work of its
        own elements and one message per neighbouring partition carrying the
        newly-marked shared edges (paper §3's SPL exchange).  The marking
        *result* is independent of the partitioning.
    """
    edge_marked = np.array(edge_marked, dtype=bool)
    if edge_marked.shape != (mesh.nedges,):
        raise ValueError(
            f"edge mask must have shape ({mesh.nedges},), got {edge_marked.shape}"
        )
    model_parallel = part is not None and ledger is not None
    if model_parallel:
        shared = shared_edge_mask(mesh, part)
        elems_per_rank = np.bincount(part, minlength=ledger.nranks)
        # which partitions touch each shared edge (for message accounting);
        # the ordered rank-pair table is hoisted here so each round's charge
        # is a bincount instead of a Python loop over edges × SPL pairs
        edge_ranks = _edge_rank_incidence(mesh, part)
        edge_rank_pairs = None if reference_enabled() else _edge_rank_pairs(edge_ranks)

    patterns = element_patterns(mesh, edge_marked)
    iterations = 0
    touched_per_rank = elems_per_rank if model_parallel else None
    while True:
        iterations += 1
        upgraded = UPGRADE[patterns]
        bits = pattern_bits(upgraded)
        new_marked = edge_marked.copy()
        new_marked[mesh.elem2edge[bits]] = True
        if model_parallel:
            # round 1 examines every local element; later rounds only the
            # elements adjacent to edges newly marked in the previous round
            # (3D_TAG's incident-edge lists make that lookup O(1))
            ledger.add_work_all(touched_per_rank)
            newly = new_marked & ~edge_marked & shared
            _charge_shared_exchange(ledger, edge_ranks, newly, edge_rank_pairs)
            ledger.barrier()
            newly_any = new_marked & ~edge_marked
            touch = newly_any[mesh.elem2edge].any(axis=1)
            touched_per_rank = np.bincount(
                part[touch], minlength=ledger.nranks
            )
        if np.array_equal(new_marked, edge_marked) and np.array_equal(
            UPGRADE[patterns], patterns
        ):
            break
        edge_marked = new_marked
        patterns = element_patterns(mesh, edge_marked)

    assert np.array_equal(UPGRADE[patterns], patterns), "fixpoint not valid"
    return MarkingResult(edge_marked=edge_marked, patterns=patterns, iterations=iterations)


def _edge_rank_incidence(mesh: TetMesh, part: np.ndarray):
    """CSR-ish map: for each edge, the sorted unique ranks touching it."""
    owner = part[np.repeat(np.arange(mesh.ne), 6)]
    eids = mesh.elem2edge.ravel()
    order = np.lexsort((owner, eids))
    e_sorted = eids[order]
    r_sorted = owner[order]
    keep = np.ones(e_sorted.shape[0], dtype=bool)
    keep[1:] = (e_sorted[1:] != e_sorted[:-1]) | (r_sorted[1:] != r_sorted[:-1])
    return e_sorted[keep], r_sorted[keep]


def _edge_rank_pairs(edge_ranks):
    """Ordered distinct rank pairs (src, dst, edge) of every edge's SPL.

    Built once per :func:`propagate_markings` call; each round's exchange
    charge then reduces to one ``bincount`` over the newly-marked subset.
    """
    e_ids, r_ids = edge_ranks
    n = e_ids.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return empty, empty, empty
    starts = np.flatnonzero(np.r_[True, e_ids[1:] != e_ids[:-1]])
    counts = np.diff(np.r_[starts, n])
    npair = counts * (counts - 1)
    total = int(npair.sum())
    if total == 0:
        return empty, empty, empty
    seg = np.repeat(np.arange(starts.shape[0]), npair)
    offsets = np.cumsum(npair) - npair
    p = np.arange(total) - offsets[seg]
    km1 = (counts - 1)[seg]
    a = p // km1
    b = p % km1
    b = b + (b >= a)  # skip the diagonal: b ranges over positions != a
    src = r_ids[starts[seg] + a]
    dst = r_ids[starts[seg] + b]
    pair_edge = e_ids[starts[seg]]
    return src, dst, pair_edge


def _charge_shared_exchange(
    ledger: CostLedger, edge_ranks, newly: np.ndarray, pairs=None
):
    """Charge one message per (owner, neighbour) partition pair carrying the
    newly-marked shared edges between them (1 word per edge id)."""
    e_ids, r_ids = edge_ranks
    sel = newly[e_ids]
    if not sel.any():
        return
    nr = ledger.nranks
    if pairs is not None and not reference_enabled():
        src, dst, pair_edge = pairs
        psel = newly[pair_edge]
        volume = np.bincount(
            src[psel] * nr + dst[psel], minlength=nr * nr
        ).reshape(nr, nr)
        ledger.add_exchange(volume)
        return
    es, rs = e_ids[sel], r_ids[sel]
    # count newly-marked shared edges per rank pair: every rank touching the
    # edge sends its local copy's id to every other rank in the edge's SPL
    # group by edge: ranks of each edge are contiguous in es/rs
    starts = np.flatnonzero(np.r_[True, es[1:] != es[:-1]])
    ends = np.r_[starts[1:], es.shape[0]]
    volume = np.zeros((nr, nr), dtype=np.int64)
    for s, e in zip(starts, ends):
        ranks = rs[s:e]
        for i in ranks:
            for j in ranks:
                if i != j:
                    volume[i, j] += 1
    ledger.add_exchange(volume)
