"""Mesh coarsening (paper §3): constraint-checked undo of refinement.

The paper's coarsening rules:

* edges cannot be coarsened beyond the initial mesh;
* edges must be coarsened in the reverse of the order they were refined;
* an edge can coarsen if and only if its *sibling* (the other half of the
  bisected parent edge) is also targeted;
* reinstated parents get adjusted patterns and are re-subdivided by
  invoking the refinement procedure, which restores a valid mesh.

We realise these rules by peeling the most recent refinement level: a
parent-edge bisection is undone iff *both* of its half-edges are targeted
for coarsening (the sibling rule); the previous mesh is then re-marked with
the surviving bisections and re-subdivided.  Pattern propagation during the
re-marking may legitimately resurrect some undone bisections — that is the
paper's "parents are then subdivided based on their new patterns" step.
Peeling repeatedly coarsens deeper levels in reverse order, and stops at
the initial mesh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.ledger import CostLedger

from .marking import MarkingResult, propagate_markings
from .refine import RefineResult, subdivide

__all__ = ["CoarsenReport", "peel_last_level"]


@dataclass(frozen=True)
class CoarsenReport:
    """Outcome of one coarsening pass.

    ``n_undone`` counts bisections actually removed after re-propagation
    (``n_candidates`` were eligible under the sibling rule); ``changed`` is
    False when the pass was a no-op (nothing eligible, or propagation
    reinstated everything).
    """

    changed: bool
    n_targeted_edges: int
    n_candidates: int
    n_undone: int
    elements_removed: int
    new_marking: MarkingResult | None = None
    new_result: RefineResult | None = None


def peel_last_level(
    mesh_before,
    last_marking: MarkingResult,
    last_result: RefineResult,
    coarsen_mask: np.ndarray,
    solution_before: np.ndarray | None = None,
    part: np.ndarray | None = None,
    ledger: CostLedger | None = None,
) -> CoarsenReport:
    """Undo eligible bisections of the most recent refinement step.

    Parameters
    ----------
    mesh_before:
        The mesh *before* the last refinement step.
    last_marking / last_result:
        The marking fixpoint and subdivision result of that step.
    coarsen_mask:
        Boolean mask over the *current* (refined) mesh's edges targeting
        edges for removal.
    """
    cur_mesh = last_result.mesh
    coarsen_mask = np.asarray(coarsen_mask, dtype=bool)
    if coarsen_mask.shape != (cur_mesh.nedges,):
        raise ValueError(
            f"coarsen mask must have shape ({cur_mesh.nedges},), got "
            f"{coarsen_mask.shape}"
        )

    bisected = np.flatnonzero(last_marking.edge_marked)
    halves = last_result.edge_children[bisected]  # (nb, 2) current-mesh edge ids
    # sibling rule: undo only if both half-edges are targeted
    undo = coarsen_mask[halves[:, 0]] & coarsen_mask[halves[:, 1]]
    n_candidates = int(undo.sum())
    if n_candidates == 0:
        return CoarsenReport(
            changed=False,
            n_targeted_edges=int(coarsen_mask.sum()),
            n_candidates=0,
            n_undone=0,
            elements_removed=0,
        )

    new_mark = last_marking.edge_marked.copy()
    new_mark[bisected[undo]] = False
    marking2 = propagate_markings(mesh_before, new_mark, part=part, ledger=ledger)
    undone_final = last_marking.edge_marked & ~marking2.edge_marked
    n_undone = int(undone_final.sum())
    if n_undone == 0:
        return CoarsenReport(
            changed=False,
            n_targeted_edges=int(coarsen_mask.sum()),
            n_candidates=n_candidates,
            n_undone=0,
            elements_removed=0,
        )

    result2 = subdivide(
        mesh_before, marking2, solution=solution_before, part=part, ledger=ledger
    )
    return CoarsenReport(
        changed=True,
        n_targeted_edges=int(coarsen_mask.sum()),
        n_candidates=n_candidates,
        n_undone=n_undone,
        elements_removed=cur_mesh.ne - result2.mesh.ne,
        new_marking=marking2,
        new_result=result2,
    )
