"""The subdivision phase of mesh refinement (paper §3).

Given a mesh whose elements carry *valid* 6-bit patterns (the fixpoint of
:func:`repro.adapt.marking.propagate_markings`), each element is subdivided
independently:

* **1:2** — the marked edge ``(a, b)`` is bisected at its midpoint ``m``;
  children replace ``a`` resp. ``b`` by ``m``.
* **1:4** — the marked face ``(A, B, C)`` (apex ``D``) is split into four
  triangles; children are three corner tets plus the medial tet, all with
  apex ``D``.
* **1:8** — isotropic: four corner tets plus the inner octahedron, which is
  split into four tets around its shortest diagonal (the three candidate
  diagonals join midpoints of opposite edges).

Subdivision is vectorized by grouping elements over the 14 concrete cases
(6 edges × 1:2, 4 faces × 1:4, 3 diagonals × 1:8, plus unrefined).  The
result records full provenance — parent element, midpoint vertex per
bisected edge, child edges of each bisected edge — which the refinement
forest and the coarsening procedure consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import reference_enabled
from repro.mesh.tetmesh import TetMesh
from repro.mesh.topology import (
    FACE_EDGE_MASKS,
    FACE_EDGES,
    LOCAL_EDGES,
    LOCAL_FACES,
    OPPOSITE_EDGE,
)
from repro.parallel.ledger import CostLedger

from .marking import MarkingResult
from .patterns import NUM_CHILDREN, UPGRADE

__all__ = ["RefineResult", "subdivide", "SUBDIV_WORK_PER_CHILD"]

#: Work units to create one child element (allocate, connect, update shared
#: data) — far costlier than one marking-phase pattern check (1 unit), which
#: is why the subdivision phase dominates the adaptor's runtime.
SUBDIV_WORK_PER_CHILD = 30.0

# Octahedron equator cycles: for the diagonal joining the midpoints of local
# edges (d, OPPOSITE_EDGE[d]), the other four midpoints in cyclic order such
# that consecutive entries share a parent vertex (see tests for the check).
_DIAG_CYCLE = {0: (1, 2, 4, 3), 1: (0, 2, 5, 3), 2: (0, 1, 5, 4)}


# --- precomputed child index tables ----------------------------------------
# Each table row is one child tet, with entries indexing the 10-wide
# per-element vertex row [v0, v1, v2, v3, m0, ..., m5] (parent corners then
# edge midpoints).  Child assembly for a whole pattern group is then a
# single fancy-index gather instead of per-face/per-diagonal column stacks.


def _build_child_tables() -> list[tuple[int, np.ndarray]]:
    tables: list[tuple[int, np.ndarray]] = []
    # 1:2 — the marked edge (a, b) is bisected: children swap one endpoint
    for le in range(6):
        a, b = (int(x) for x in LOCAL_EDGES[le])
        c1 = list(range(4))
        c1[b] = 4 + le
        c2 = list(range(4))
        c2[a] = 4 + le
        tables.append((1 << le, np.array([c1, c2], dtype=np.int64)))
    # 1:4 — marked face (A, B, C) with apex D: three corner tets + medial
    for f in range(4):
        A, B, C = (int(x) for x in LOCAL_FACES[f])
        D = (set(range(4)) - {A, B, C}).pop()
        eAB, eAC, eBC = (4 + int(e) for e in FACE_EDGES[f])
        tables.append(
            (
                int(FACE_EDGE_MASKS[f]),
                np.array(
                    [
                        [A, eAB, eAC, D],
                        [B, eAB, eBC, D],
                        [C, eAC, eBC, D],
                        [eAB, eBC, eAC, D],
                    ],
                    dtype=np.int64,
                ),
            )
        )
    return tables


_CHILD_TABLES = _build_child_tables()

#: 1:8 corner tets (independent of the octahedron diagonal choice).
_CORNER_TABLE = np.array(
    [
        [c, 4 + e0, 4 + e1, 4 + e2]
        for c, (e0, e1, e2) in enumerate(
            [(0, 1, 2), (0, 3, 4), (1, 3, 5), (2, 4, 5)]
        )
    ],
    dtype=np.int64,
)

#: 1:8 octahedron tets for each diagonal choice d.
_OCTA_TABLES = {
    d: np.array(
        [
            [4 + d, 4 + int(OPPOSITE_EDGE[d]), 4 + cyc[k], 4 + cyc[(k + 1) % 4]]
            for k in range(4)
        ],
        dtype=np.int64,
    )
    for d, cyc in _DIAG_CYCLE.items()
}


@dataclass(frozen=True)
class RefineResult:
    """Provenance of one subdivision step.

    Attributes
    ----------
    mesh:
        The refined mesh (fresh connectivity; vertex ids 0..nv_old-1 are the
        old vertices, the rest are edge midpoints).
    parent:
        ``(ne_new,)`` old element id of each new element.
    child_count:
        ``(ne_old,)`` number of children per old element (1 = unrefined).
    midpoint_of:
        ``(nedges_old,)`` new vertex id of each bisected old edge, -1 else.
    edge_children:
        ``(nedges_old, 2)`` ids *in the new mesh* of the two half-edges of
        each bisected old edge ((a, m) then (m, b)), -1 rows otherwise.
    edge_survivor:
        ``(nedges_old,)`` id in the new mesh of each unbisected old edge,
        -1 for bisected ones.
    solution:
        Vertex solution carried to the new mesh (midpoints linearly
        interpolated), or None if no solution was supplied.
    """

    mesh: TetMesh
    parent: np.ndarray
    child_count: np.ndarray
    midpoint_of: np.ndarray
    edge_children: np.ndarray
    edge_survivor: np.ndarray
    solution: np.ndarray | None

    @property
    def growth_factor(self) -> float:
        """Mesh growth factor G = ne_new / ne_old (paper §5, Fig. 7)."""
        return self.mesh.ne / self.child_count.shape[0]


def subdivide(
    mesh: TetMesh,
    marking: MarkingResult,
    solution: np.ndarray | None = None,
    part: np.ndarray | None = None,
    ledger: CostLedger | None = None,
) -> RefineResult:
    """Subdivide every element according to its (valid) pattern.

    When ``part``/``ledger`` are given, each rank is charged work
    proportional to the number of children its elements create — this is
    how the load-(im)balance of the subdivision phase enters the timing
    model (remapping *before* subdivision balances exactly this phase).
    """
    patterns = np.asarray(marking.patterns, dtype=np.int64)
    if patterns.shape != (mesh.ne,):
        raise ValueError(f"patterns must have shape ({mesh.ne},)")
    if not np.array_equal(UPGRADE[patterns], patterns):
        raise ValueError("patterns must be valid (run propagate_markings first)")
    edge_marked = np.asarray(marking.edge_marked, dtype=bool)

    # --- midpoint vertices --------------------------------------------------
    nv_old = mesh.nv
    marked_ids = np.flatnonzero(edge_marked)
    midpoint_of = np.full(mesh.nedges, -1, dtype=np.int64)
    midpoint_of[marked_ids] = nv_old + np.arange(marked_ids.shape[0])
    mid_coords = 0.5 * (
        mesh.coords[mesh.edges[marked_ids, 0]] + mesh.coords[mesh.edges[marked_ids, 1]]
    )
    new_coords = np.vstack([mesh.coords, mid_coords])

    # per-element vertex ids and midpoint ids
    ev = mesh.elems  # (ne, 4)
    em = midpoint_of[mesh.elem2edge]  # (ne, 6), -1 where edge unbisected

    if reference_enabled():
        new_elems, parent = _assemble_children_reference(ev, em, patterns, new_coords)
    else:
        new_elems, parent = _assemble_children(ev, em, patterns, new_coords)
    # group children contiguously by parent element (stable order within)
    order = np.argsort(parent, kind="stable")
    new_elems = new_elems[order]
    parent = parent[order]
    child_count = np.bincount(parent, minlength=mesh.ne)
    assert np.array_equal(child_count, NUM_CHILDREN[patterns]), "child count"

    new_mesh = TetMesh.from_elems(new_coords, new_elems)

    # --- edge provenance ------------------------------------------------------
    nv_new = new_mesh.nv
    new_keys = new_mesh.edges[:, 0] * nv_new + new_mesh.edges[:, 1]

    def lookup(pairs: np.ndarray) -> np.ndarray:
        lo = pairs.min(axis=1).astype(np.int64)
        hi = pairs.max(axis=1).astype(np.int64)
        keys = lo * nv_new + hi
        pos = np.searchsorted(new_keys, keys)
        ok = (pos < new_keys.shape[0]) & (new_keys[np.minimum(pos, len(new_keys) - 1)] == keys)
        out = np.where(ok, pos, -1)
        return out

    edge_children = np.full((mesh.nedges, 2), -1, dtype=np.int64)
    if marked_ids.size:
        a = mesh.edges[marked_ids, 0]
        b = mesh.edges[marked_ids, 1]
        m = midpoint_of[marked_ids]
        edge_children[marked_ids, 0] = lookup(np.column_stack([a, m]))
        edge_children[marked_ids, 1] = lookup(np.column_stack([m, b]))
        assert np.all(edge_children[marked_ids] >= 0), "half-edges must exist"
    surv_ids = np.flatnonzero(~edge_marked)
    edge_survivor = np.full(mesh.nedges, -1, dtype=np.int64)
    if surv_ids.size:
        edge_survivor[surv_ids] = lookup(mesh.edges[surv_ids])
        assert np.all(edge_survivor[surv_ids] >= 0), "unbisected edges survive"

    # --- solution interpolation -------------------------------------------------
    new_solution = None
    if solution is not None:
        solution = np.asarray(solution, dtype=np.float64)
        if solution.shape[0] != nv_old:
            raise ValueError(
                f"solution has {solution.shape[0]} rows, mesh has {nv_old} vertices"
            )
        mid_sol = 0.5 * (
            solution[mesh.edges[marked_ids, 0]] + solution[mesh.edges[marked_ids, 1]]
        )
        new_solution = np.concatenate([solution, mid_sol])

    # --- parallel timing: subdivision work ∝ children created ------------------
    if part is not None and ledger is not None:
        work = np.bincount(part, weights=child_count.astype(np.float64),
                           minlength=ledger.nranks)
        ledger.add_work_all(SUBDIV_WORK_PER_CHILD * work)
        ledger.barrier()

    return RefineResult(
        mesh=new_mesh,
        parent=parent,
        child_count=child_count,
        midpoint_of=midpoint_of,
        edge_children=edge_children,
        edge_survivor=edge_survivor,
        solution=new_solution,
    )


def _shortest_diagonals(
    mids: np.ndarray, new_coords: np.ndarray
) -> np.ndarray:
    """Per-element index d of the shortest octahedron diagonal (d, opposite)."""
    dlen = np.empty((mids.shape[0], 3))
    for d in range(3):
        o = OPPOSITE_EDGE[d]
        dlen[:, d] = np.linalg.norm(
            new_coords[mids[:, d]] - new_coords[mids[:, o]], axis=1
        )
    return np.argmin(dlen, axis=1)


def _assemble_children(
    ev: np.ndarray,
    em: np.ndarray,
    patterns: np.ndarray,
    new_coords: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Build (child quadruples, parent ids) via the precomputed index tables.

    ``vm`` concatenates parent corners and edge midpoints into one 10-wide
    row per element, so every pattern group becomes a single gather
    ``vm[idx][:, table]``; transposing to (child, element, 4) before the
    reshape reproduces the reference's child-major concatenation order.
    """
    vm = np.concatenate([ev, em], axis=1)  # (ne, 10)
    # seed with empties so meshes with no elements still assemble
    chunks: list[np.ndarray] = [np.empty((0, 4), dtype=np.int64)]
    parents: list[np.ndarray] = [np.empty(0, dtype=np.int64)]

    keep = patterns == 0
    if keep.any():
        chunks.append(ev[keep])
        parents.append(np.flatnonzero(keep))

    for pattern, table in _CHILD_TABLES:  # 6× 1:2 then 4× 1:4
        idx = np.flatnonzero(patterns == pattern)
        if not idx.size:
            continue
        kids = vm[idx][:, table]  # (nidx, nchild, 4)
        chunks.append(kids.transpose(1, 0, 2).reshape(-1, 4))
        parents.append(np.tile(idx, table.shape[0]))

    idx8 = np.flatnonzero(patterns == 0b111111)
    if idx8.size:
        vm8 = vm[idx8]
        chunks.append(vm8[:, _CORNER_TABLE].transpose(1, 0, 2).reshape(-1, 4))
        parents.append(np.tile(idx8, 4))
        diag = _shortest_diagonals(em[idx8], new_coords)
        for d in range(3):
            seld = diag == d
            if not seld.any():
                continue
            kids = vm8[seld][:, _OCTA_TABLES[d]]
            chunks.append(kids.transpose(1, 0, 2).reshape(-1, 4))
            parents.append(np.tile(idx8[seld], 4))

    return np.concatenate(chunks), np.concatenate(parents)


def _assemble_children_reference(
    ev: np.ndarray,
    em: np.ndarray,
    patterns: np.ndarray,
    new_coords: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference assembly: per-pattern column stacks (one array op per child)."""
    chunks: list[np.ndarray] = [np.empty((0, 4), dtype=np.int64)]
    parents: list[np.ndarray] = [np.empty(0, dtype=np.int64)]

    # unrefined elements pass through
    keep = patterns == 0
    if keep.any():
        chunks.append(ev[keep])
        parents.append(np.flatnonzero(keep))

    # 1:2 — one marked edge e=(a,b): children swap one endpoint for m
    for le in range(6):
        sel = patterns == (1 << le)
        if not sel.any():
            continue
        idx = np.flatnonzero(sel)
        a, b = LOCAL_EDGES[le]
        m = em[idx, le]
        c1 = ev[idx].copy()
        c1[:, b] = m
        c2 = ev[idx].copy()
        c2[:, a] = m
        chunks.append(np.concatenate([c1, c2]))
        parents.append(np.tile(idx, 2))

    # 1:4 — one marked face (A,B,C), apex D
    for f in range(4):
        sel = patterns == int(FACE_EDGE_MASKS[f])
        if not sel.any():
            continue
        idx = np.flatnonzero(sel)
        A, B, C = LOCAL_FACES[f]
        D = (set(range(4)) - {int(A), int(B), int(C)}).pop()
        eAB, eAC, eBC = FACE_EDGES[f]
        vA, vB, vC, vD = ev[idx, A], ev[idx, B], ev[idx, C], ev[idx, D]
        mAB, mAC, mBC = em[idx, eAB], em[idx, eAC], em[idx, eBC]
        kids = np.concatenate(
            [
                np.column_stack([vA, mAB, mAC, vD]),
                np.column_stack([vB, mAB, mBC, vD]),
                np.column_stack([vC, mAC, mBC, vD]),
                np.column_stack([mAB, mBC, mAC, vD]),
            ]
        )
        chunks.append(kids)
        parents.append(np.tile(idx, 4))

    # 1:8 — isotropic; split the inner octahedron on its shortest diagonal
    sel8 = patterns == 0b111111
    if sel8.any():
        idx8 = np.flatnonzero(sel8)
        mids = em[idx8]  # (n8, 6), all valid
        diag = _shortest_diagonals(mids, new_coords)
        # four corner tets (same for every diagonal choice)
        corner_local_edges = [(0, 1, 2), (0, 3, 4), (1, 3, 5), (2, 4, 5)]
        kids = [
            np.column_stack(
                [ev[idx8, c], mids[:, e0], mids[:, e1], mids[:, e2]]
            )
            for c, (e0, e1, e2) in enumerate(corner_local_edges)
        ]
        chunks.append(np.concatenate(kids))
        parents.append(np.tile(idx8, 4))
        for d in range(3):
            seld = diag == d
            if not seld.any():
                continue
            idxd = idx8[seld]
            md = mids[seld]
            o = OPPOSITE_EDGE[d]
            cyc = _DIAG_CYCLE[d]
            oct_kids = [
                np.column_stack(
                    [md[:, d], md[:, o], md[:, cyc[k]], md[:, cyc[(k + 1) % 4]]]
                )
                for k in range(4)
            ]
            chunks.append(np.concatenate(oct_kids))
            parents.append(np.tile(idxd, 4))

    return np.concatenate(chunks), np.concatenate(parents)
