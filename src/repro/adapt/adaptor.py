"""The mesh adaptor driver: mark → (balance hook) → subdivide → coarsen.

:class:`AdaptiveMesh` owns the current computational mesh, the per-initial-
element refinement forest, the optional vertex solution, and the step
history needed by the reverse-order coarsening rule.  The load-balancing
framework (paper Fig. 1) interposes between :meth:`mark` and :meth:`refine`:
after marking, the predicted dual-graph weights are known, so the mesh can
be repartitioned and remapped *before* it grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.tetmesh import TetMesh
from repro.parallel.ledger import CostLedger

from .coarsen import CoarsenReport, peel_last_level
from .marking import MarkingResult, propagate_markings, target_by_fraction
from .refine import RefineResult, subdivide
from .tree import RefinementForest

__all__ = ["AdaptiveMesh"]


@dataclass
class _Step:
    mesh_before: TetMesh
    solution_before: np.ndarray | None
    marking: MarkingResult
    result: RefineResult


class AdaptiveMesh:
    """An adaptively refined tetrahedral mesh with full provenance.

    Parameters
    ----------
    mesh:
        The *initial* computational mesh; its elements are the vertices of
        the dual graph for the whole adaptive computation (paper §4.1).
    solution:
        Optional ``(nv, k)`` vertex solution, interpolated on refinement.
    """

    def __init__(self, mesh: TetMesh, solution: np.ndarray | None = None):
        if solution is not None:
            solution = np.asarray(solution, dtype=np.float64)
            if solution.ndim == 1:
                solution = solution[:, None]
            if solution.shape[0] != mesh.nv:
                raise ValueError(
                    f"solution has {solution.shape[0]} rows for {mesh.nv} vertices"
                )
        self.initial_mesh = mesh
        self.mesh = mesh
        self.solution = solution
        self.forest = RefinementForest(mesh.ne)
        self.steps: list[_Step] = []

    # --- marking -----------------------------------------------------------

    def mark(
        self,
        edge_error: np.ndarray | None = None,
        refine_frac: float | None = None,
        edge_mask: np.ndarray | None = None,
        part: np.ndarray | None = None,
        ledger: CostLedger | None = None,
    ) -> MarkingResult:
        """Target edges and propagate patterns to a valid fixpoint.

        Provide either an explicit ``edge_mask``, or ``edge_error`` together
        with ``refine_frac`` (mark the top fraction of edges by error — how
        the paper builds Real_1/2/3).
        """
        if edge_mask is None:
            if edge_error is None or refine_frac is None:
                raise ValueError(
                    "provide edge_mask, or edge_error with refine_frac"
                )
            edge_mask = target_by_fraction(edge_error, refine_frac)
        return propagate_markings(self.mesh, edge_mask, part=part, ledger=ledger)

    # --- subdivision ---------------------------------------------------------

    def refine(
        self,
        marking: MarkingResult,
        part: np.ndarray | None = None,
        ledger: CostLedger | None = None,
    ) -> RefineResult:
        """Subdivide the current mesh according to ``marking``."""
        result = subdivide(
            self.mesh, marking, solution=self.solution, part=part, ledger=ledger
        )
        self.steps.append(
            _Step(self.mesh, self.solution, marking, result)
        )
        self.forest.record_refinement(result.parent, result.child_count)
        self.mesh = result.mesh
        self.solution = result.solution
        return result

    # --- coarsening ------------------------------------------------------------

    def coarsen(
        self,
        coarsen_mask: np.ndarray,
        part: np.ndarray | None = None,
        ledger: CostLedger | None = None,
    ) -> CoarsenReport:
        """Coarsen targeted edges of the most recent refinement level.

        A no-op (``changed=False``) when the mesh is the initial mesh —
        edges cannot be coarsened beyond it.
        """
        if not self.steps:
            return CoarsenReport(
                changed=False,
                n_targeted_edges=int(np.asarray(coarsen_mask).sum()),
                n_candidates=0,
                n_undone=0,
                elements_removed=0,
            )
        last = self.steps[-1]
        report = peel_last_level(
            last.mesh_before,
            last.marking,
            last.result,
            coarsen_mask,
            solution_before=last.solution_before,
            part=part,
            ledger=ledger,
        )
        if report.changed:
            assert report.new_marking is not None and report.new_result is not None
            self.forest.pop_level()
            if report.new_marking.edge_marked.any():
                self.steps[-1] = _Step(
                    last.mesh_before, last.solution_before,
                    report.new_marking, report.new_result,
                )
                self.forest.record_refinement(
                    report.new_result.parent, report.new_result.child_count
                )
                self.mesh = report.new_result.mesh
                self.solution = report.new_result.solution
            else:
                # the whole level was undone: drop it from the history so a
                # later coarsen can reach the level beneath (reverse order)
                self.steps.pop()
                self.mesh = last.mesh_before
                self.solution = last.solution_before
        return report

    # --- weights for the dual graph -----------------------------------------

    def wcomp(self) -> np.ndarray:
        """Current computational weight per initial element."""
        return self.forest.wcomp()

    def wremap(self) -> np.ndarray:
        """Current remapping weight per initial element."""
        return self.forest.wremap()

    def predicted_weights(self, marking: MarkingResult):
        """(Wcomp, Wremap) as if ``marking`` had already been subdivided."""
        return self.forest.predicted_weights(marking.patterns)

    def elem_partition(self, part_initial: np.ndarray) -> np.ndarray:
        """Map a partition over *initial* elements to current elements:
        every descendant lives where its refinement-tree root lives."""
        part_initial = np.asarray(part_initial)
        if part_initial.shape != (self.initial_mesh.ne,):
            raise ValueError(
                f"partition must cover the {self.initial_mesh.ne} initial elements"
            )
        return part_initial[self.forest.root_of_elem]
