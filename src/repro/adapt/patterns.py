"""Edge-marking patterns and the subdivision-type upgrade table (paper §3).

Each tetrahedron combines the marked/unmarked state of its six edges into a
6-bit pattern.  Only three subdivision types are allowed:

* **1:2** — exactly one edge marked (anisotropic bisection),
* **1:4** — the three edges of one face marked,
* **1:8** — all six edges marked (isotropic subdivision).

Any other nonzero pattern is *invalid* and must be upgraded to the smallest
valid superset: a multi-edge pattern contained in a single face becomes that
face's 1:4 pattern; anything else becomes 1:8.  (Two distinct edges lie in
at most one common face, so the 1:4 upgrade target is unique.)  Upgrading
marks additional edges, which propagates to the neighbours sharing them —
the iterative loop in :mod:`repro.adapt.marking`.

Because upgraded patterns give every face 0, 1, or 3 marked edges — never
2 — adjacent elements always triangulate their shared face identically, so
the refined mesh is conforming.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.topology import FACE_EDGE_MASKS

__all__ = [
    "PAT_NONE",
    "PAT_1TO2",
    "PAT_1TO4",
    "PAT_1TO8",
    "UPGRADE",
    "NUM_CHILDREN",
    "PATTERN_KIND",
    "classify",
    "upgrade",
    "pattern_bits",
    "is_valid",
]

PAT_NONE = 0
PAT_1TO2 = 1
PAT_1TO4 = 2
PAT_1TO8 = 3

_FULL = 0b111111


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    upgrade = np.zeros(64, dtype=np.int64)
    kind = np.zeros(64, dtype=np.int64)
    nchildren = np.zeros(64, dtype=np.int64)
    face_masks = [int(m) for m in FACE_EDGE_MASKS]
    for p in range(64):
        pop = bin(p).count("1")
        if p == 0:
            up = 0
        elif pop == 1:
            up = p
        else:
            containing = [m for m in face_masks if p & ~m == 0]
            up = containing[0] if containing else _FULL
        upgrade[p] = up
        pop_up = bin(up).count("1")
        if up == 0:
            kind[p], nchildren[p] = PAT_NONE, 1
        elif pop_up == 1:
            kind[p], nchildren[p] = PAT_1TO2, 2
        elif up in face_masks:
            kind[p], nchildren[p] = PAT_1TO4, 4
        else:
            assert up == _FULL
            kind[p], nchildren[p] = PAT_1TO8, 8
    return upgrade, kind, nchildren


#: pattern -> smallest valid superset pattern.
UPGRADE, _KIND_OF_RAW, _NCHILD_OF_RAW = _build_tables()

#: pattern (already valid) -> subdivision kind of its upgrade.
PATTERN_KIND = _KIND_OF_RAW

#: pattern -> number of children its upgrade produces (1, 2, 4, or 8).
NUM_CHILDREN = _NCHILD_OF_RAW


def pattern_bits(patterns: np.ndarray) -> np.ndarray:
    """Expand patterns ``(n,)`` to a boolean ``(n, 6)`` local-edge mask."""
    patterns = np.asarray(patterns, dtype=np.int64)
    return (patterns[:, None] >> np.arange(6)) & 1 != 0


def is_valid(patterns: np.ndarray) -> np.ndarray:
    """True where a pattern is one of the three allowed types (or empty)."""
    patterns = np.asarray(patterns, dtype=np.int64)
    return UPGRADE[patterns] == patterns


def classify(patterns: np.ndarray) -> np.ndarray:
    """Subdivision kind (PAT_*) each pattern upgrades to."""
    return PATTERN_KIND[np.asarray(patterns, dtype=np.int64)]


def upgrade(patterns: np.ndarray) -> np.ndarray:
    """Upgrade each pattern to its smallest valid superset."""
    return UPGRADE[np.asarray(patterns, dtype=np.int64)]
