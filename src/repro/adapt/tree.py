"""Refinement forest: one tree per initial-mesh element (paper §4.1).

The dual graph's two weights come from these trees: ``Wcomp`` is the number
of *leaves* in an initial element's refinement tree (only leaves participate
in the flow computation) and ``Wremap`` is the *total* number of tree nodes
(all descendants move with the root when the element is remapped).

The forest records one *level* per refinement step.  The newest level can be
popped (see :mod:`repro.adapt.coarsen`), which is how the reverse-order
coarsening constraint — "edges must be coarsened in an order that is
reversed from the one by which they were refined" — is realised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .patterns import NUM_CHILDREN

__all__ = ["RefinementForest"]


@dataclass
class _Level:
    parent: np.ndarray  # (ne_new,) previous-mesh element id per new element
    child_count: np.ndarray  # (ne_prev,)
    root_before: np.ndarray  # (ne_prev,) root-of-element before this level


@dataclass
class RefinementForest:
    """Per-initial-element refinement trees, maintained incrementally."""

    n_roots: int
    root_of_elem: np.ndarray = field(init=False)
    n_leaves: np.ndarray = field(init=False)
    n_nodes: np.ndarray = field(init=False)
    levels: list[_Level] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.root_of_elem = np.arange(self.n_roots, dtype=np.int64)
        self.n_leaves = np.ones(self.n_roots, dtype=np.int64)
        self.n_nodes = np.ones(self.n_roots, dtype=np.int64)

    # --- updates ---------------------------------------------------------------

    def record_refinement(self, parent: np.ndarray, child_count: np.ndarray) -> None:
        """Append one refinement level (from a ``RefineResult``)."""
        parent = np.asarray(parent, dtype=np.int64)
        child_count = np.asarray(child_count, dtype=np.int64)
        if child_count.shape != self.root_of_elem.shape:
            raise ValueError(
                f"child_count has shape {child_count.shape}, expected "
                f"{self.root_of_elem.shape}"
            )
        self.levels.append(
            _Level(parent=parent, child_count=child_count,
                   root_before=self.root_of_elem)
        )
        dl, dn = self._deltas(self.root_of_elem, child_count)
        self.n_leaves += dl
        self.n_nodes += dn
        self.root_of_elem = self.root_of_elem[parent]

    def pop_level(self) -> None:
        """Undo the most recent refinement level's bookkeeping."""
        if not self.levels:
            raise IndexError("forest has no refinement levels to pop")
        lvl = self.levels.pop()
        dl, dn = self._deltas(lvl.root_before, lvl.child_count)
        self.n_leaves -= dl
        self.n_nodes -= dn
        self.root_of_elem = lvl.root_before

    def _deltas(
        self, root_before: np.ndarray, child_count: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-root (leaf, node) count changes of one refinement level.

        A leaf with k > 1 children stops being a leaf (+k leaves, -1) and
        the k children are new tree nodes (+k nodes); k == 1 changes nothing.
        """
        refined = child_count > 1
        dl = np.bincount(
            root_before[refined],
            weights=(child_count[refined] - 1).astype(np.float64),
            minlength=self.n_roots,
        ).astype(np.int64)
        dn = np.bincount(
            root_before[refined],
            weights=child_count[refined].astype(np.float64),
            minlength=self.n_roots,
        ).astype(np.int64)
        return dl, dn

    # --- weights (paper §4.1) -------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of refinement levels recorded."""
        return len(self.levels)

    def wcomp(self) -> np.ndarray:
        """Computational weight per initial element: leaves of its tree."""
        return self.n_leaves.copy()

    def wremap(self) -> np.ndarray:
        """Remapping weight per initial element: total nodes of its tree."""
        return self.n_nodes.copy()

    def predicted_weights(self, patterns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Weights *as if* the current marking had already been subdivided.

        This is the key §4.6 step: after the marking phase the refinement
        patterns are known, so the dual-graph weights can be adjusted before
        any data is moved or any element actually created.
        """
        patterns = np.asarray(patterns, dtype=np.int64)
        if patterns.shape != self.root_of_elem.shape:
            raise ValueError(
                f"patterns shape {patterns.shape} != current element count "
                f"{self.root_of_elem.shape}"
            )
        k = NUM_CHILDREN[patterns]
        wcomp = np.bincount(
            self.root_of_elem, weights=k.astype(np.float64), minlength=self.n_roots
        ).astype(np.int64)
        dn = np.where(k > 1, k, 0)
        wremap = self.n_nodes + np.bincount(
            self.root_of_elem, weights=dn.astype(np.float64), minlength=self.n_roots
        ).astype(np.int64)
        return wcomp, wremap
