"""Geometric edge-marking strategies.

Paper §5: "Several other edge-marking strategies based on geometry have
been investigated elsewhere [1]."  These are those strategies: mark every
edge whose midpoint falls inside a geometric region — useful for
controlled experiments (the refinement region is known exactly) and for
driving adaption where the feature location is known a priori (rotor wake
cylinders, shock planes).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.geometry import edge_midpoints
from repro.mesh.tetmesh import TetMesh

__all__ = ["mark_sphere", "mark_cylinder", "mark_halfspace", "mark_shell"]


def _midpoints(mesh: TetMesh) -> np.ndarray:
    return edge_midpoints(mesh.coords, mesh.edges)


def mark_sphere(
    mesh: TetMesh, center: tuple[float, float, float], radius: float
) -> np.ndarray:
    """Edges whose midpoint lies inside a sphere."""
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    d = np.linalg.norm(_midpoints(mesh) - np.asarray(center), axis=1)
    return d <= radius


def mark_shell(
    mesh: TetMesh,
    center: tuple[float, float, float],
    radius: float,
    thickness: float,
) -> np.ndarray:
    """Edges whose midpoint lies inside a spherical shell (moving fronts)."""
    if thickness <= 0:
        raise ValueError(f"thickness must be positive, got {thickness}")
    d = np.linalg.norm(_midpoints(mesh) - np.asarray(center), axis=1)
    return np.abs(d - radius) <= 0.5 * thickness


def mark_cylinder(
    mesh: TetMesh,
    a: tuple[float, float, float],
    b: tuple[float, float, float],
    radius: float,
) -> np.ndarray:
    """Edges whose midpoint lies within ``radius`` of segment ``a``–``b``
    (the classic rotor-wake marking region)."""
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    ab = b - a
    denom = float(ab @ ab)
    if denom <= 0:
        raise ValueError("cylinder axis endpoints must differ")
    mid = _midpoints(mesh)
    t = np.clip((mid - a) @ ab / denom, 0.0, 1.0)
    d = np.linalg.norm(mid - (a + t[:, None] * ab), axis=1)
    return d <= radius


def mark_halfspace(
    mesh: TetMesh, point: tuple[float, float, float], normal: tuple[float, float, float]
) -> np.ndarray:
    """Edges whose midpoint lies on the ``normal`` side of a plane."""
    n = np.asarray(normal, dtype=np.float64)
    if not np.linalg.norm(n) > 0:
        raise ValueError("normal must be nonzero")
    return (_midpoints(mesh) - np.asarray(point)) @ n >= 0.0
