"""Derivation of edge/face connectivity from an element list (vectorized).

These routines build the edge-based data structures of paper §3: the global
edge list, the element→edge incidence (six edges per tetrahedron), the
edge→element and vertex→edge adjacency lists ("these lists eliminate
extensive searches and are crucial to the efficiency of the overall adaption
scheme"), and the boundary faces.
"""

from __future__ import annotations

import numpy as np

from .topology import LOCAL_EDGES, LOCAL_FACES

__all__ = [
    "build_edges",
    "build_faces",
    "csr_from_pairs",
    "invert_to_csr",
]


def build_edges(elems: np.ndarray, nv: int) -> tuple[np.ndarray, np.ndarray]:
    """Extract unique edges and the ``(ne, 6)`` element→edge map.

    Edges are returned as an ``(nedge, 2)`` array with the lower vertex id
    first, sorted lexicographically, so edge ids are a deterministic
    function of the element list.
    """
    elems = np.asarray(elems)
    pairs = elems[:, LOCAL_EDGES]  # (ne, 6, 2)
    lo = pairs.min(axis=2).astype(np.int64)
    hi = pairs.max(axis=2).astype(np.int64)
    keys = lo * nv + hi  # unique scalar key per undirected edge
    uniq, inverse = np.unique(keys.ravel(), return_inverse=True)
    edges = np.column_stack([uniq // nv, uniq % nv]).astype(np.int64)
    elem2edge = inverse.reshape(elems.shape[0], 6).astype(np.int64)
    return edges, elem2edge


def build_faces(
    elems: np.ndarray, nv: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify the triangular faces of a tetrahedral mesh.

    Returns
    -------
    bnd_faces:
        ``(nb, 3)`` vertex triples of faces belonging to exactly one element.
    bnd_elem:
        ``(nb,)`` owning element of each boundary face.
    dual_pairs:
        ``(ni, 2)`` element pairs sharing each interior face — exactly the
        edge list of the dual graph (paper §4.1).

    Raises
    ------
    ValueError
        If any face is shared by more than two elements (non-manifold mesh).
    """
    elems = np.asarray(elems)
    ne = elems.shape[0]
    if ne == 0:
        empty3 = np.empty((0, 3), dtype=np.int64)
        empty1 = np.empty(0, dtype=np.int64)
        return empty3, empty1, np.empty((0, 2), dtype=np.int64)
    tri = np.sort(elems[:, LOCAL_FACES], axis=2).astype(np.int64)  # (ne,4,3)
    keys = (tri[..., 0] * nv + tri[..., 1]) * nv + tri[..., 2]
    flat = keys.ravel()
    owner = np.repeat(np.arange(ne, dtype=np.int64), 4)

    order = np.argsort(flat, kind="stable")
    skeys = flat[order]
    sown = owner[order]
    # group boundaries over the sorted keys
    new_grp = np.empty(skeys.shape[0], dtype=bool)
    new_grp[0] = True
    new_grp[1:] = skeys[1:] != skeys[:-1]
    starts = np.flatnonzero(new_grp)
    counts = np.diff(np.append(starts, skeys.shape[0]))
    if np.any(counts > 2):
        bad = skeys[starts[counts > 2]][0]
        raise ValueError(f"non-manifold mesh: face key {bad} in >2 elements")

    b_idx = starts[counts == 1]
    i_idx = starts[counts == 2]
    bnd_elem = sown[b_idx]
    bkeys = skeys[b_idx]
    v2 = bkeys % nv
    v1 = (bkeys // nv) % nv
    v0 = bkeys // (nv * nv)
    bnd_faces = np.column_stack([v0, v1, v2])
    dual_pairs = np.column_stack([sown[i_idx], sown[i_idx + 1]])
    return bnd_faces, bnd_elem, dual_pairs


def csr_from_pairs(
    rows: np.ndarray, vals: np.ndarray, nrows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build a CSR adjacency (``ptr``, ``dat``) from (row, value) pairs.

    Values within a row keep ascending ``vals`` order, making the structure
    deterministic.
    """
    rows = np.asarray(rows, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.int64)
    order = np.lexsort((vals, rows))
    srows = rows[order]
    ptr = np.zeros(nrows + 1, dtype=np.int64)
    np.add.at(ptr, srows + 1, 1)
    np.cumsum(ptr, out=ptr)
    return ptr, vals[order]


def invert_to_csr(mapping: np.ndarray, nrows: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert a dense ``(n, k)`` map (e.g. elem→edge) into CSR (edge→elem)."""
    mapping = np.asarray(mapping, dtype=np.int64)
    n, k = mapping.shape
    owners = np.repeat(np.arange(n, dtype=np.int64), k)
    return csr_from_pairs(mapping.ravel(), owners, nrows)
