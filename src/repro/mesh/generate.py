"""Synthetic tetrahedral mesh generators.

The paper's experiments use the UH-1H helicopter rotor-blade mesh from
Purcell's acoustics experiment (13,967 vertices / 60,968 tetrahedra), which
we do not have.  These generators produce conforming tetrahedral meshes of
parameterisable size; ``rotor_domain_mesh`` additionally embeds blade
metadata that the synthetic flow fields (``repro.solver.fields``) use to
concentrate solution features — reproducing the *localized refinement*
character of the paper's Real_1/2/3 cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from .tetmesh import TetMesh

__all__ = ["box_mesh", "rotor_domain_mesh", "BladeSpec", "single_tet", "two_tets"]

# The six Kuhn tetrahedra of the unit cube: each is a monotone path from
# corner (0,0,0) to corner (1,1,1) along one permutation of the axes.  This
# subdivision is conforming across neighbouring cubes.
_KUHN_PATHS = []
for perm in sorted(permutations(range(3))):
    corner = np.zeros(3, dtype=np.int64)
    path = [corner.copy()]
    for axis in perm:
        corner = corner.copy()
        corner[axis] = 1
        path.append(corner)
    _KUHN_PATHS.append(np.array(path))
_KUHN_PATHS = np.array(_KUHN_PATHS)  # (6, 4, 3) of 0/1 offsets


def box_mesh(
    nx: int,
    ny: int,
    nz: int,
    bounds: tuple[tuple[float, float], ...] = ((0.0, 1.0), (0.0, 1.0), (0.0, 1.0)),
) -> TetMesh:
    """Structured box split into ``6 * nx * ny * nz`` Kuhn tetrahedra."""
    if min(nx, ny, nz) < 1:
        raise ValueError(f"need at least one cell per axis, got {(nx, ny, nz)}")
    divs = (nx, ny, nz)
    axes = [np.linspace(lo, hi, n + 1) for (lo, hi), n in zip(bounds, divs)]
    grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
    coords = grid.reshape(-1, 3)

    def vid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    ci, cj, ck = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ci, cj, ck = ci.ravel(), cj.ravel(), ck.ravel()  # (ncell,)
    elems = np.empty((ci.size * 6, 4), dtype=np.int64)
    for t, path in enumerate(_KUHN_PATHS):
        for v, off in enumerate(path):
            elems[t :: 6, v] = vid(ci + off[0], cj + off[1], ck + off[2])
    return TetMesh.from_elems(coords, elems)


@dataclass(frozen=True)
class BladeSpec:
    """Axis segment and radius of the synthetic 'rotor blade' feature."""

    start: tuple[float, float, float]
    end: tuple[float, float, float]
    radius: float

    def distance(self, pts: np.ndarray) -> np.ndarray:
        """Distance from each point to the blade axis segment."""
        a = np.asarray(self.start)
        b = np.asarray(self.end)
        ab = b - a
        t = np.clip((pts - a) @ ab / (ab @ ab), 0.0, 1.0)
        proj = a + t[:, None] * ab
        return np.linalg.norm(pts - proj, axis=1)


def rotor_domain_mesh(
    resolution: int = 8,
    aspect: tuple[int, int, int] = (2, 1, 1),
    grading: float = 2.0,
) -> tuple[TetMesh, BladeSpec]:
    """A stretched box domain with an embedded blade-like feature region.

    ``resolution`` cells along the unit axis; the number of elements is
    ``6 * (aspect_x * aspect_y * aspect_z) * resolution**3``.  The blade
    runs along the x axis at mid-height, mimicking a rotor blade spanning
    part of the domain.

    ``grading`` > 1 concentrates vertices toward the blade plane in the
    cross-flow (y, z) axes, like the body-fitted rotor meshes the paper
    uses: a point at normalised offset ``u ∈ [-1, 1]`` from the centre
    plane maps to ``sign(u)·|u|**grading``.  The per-axis map is monotone,
    so grid cells stay axis-aligned boxes and the Kuhn subdivision remains
    conforming.
    """
    if grading < 1.0:
        raise ValueError(f"grading must be >= 1, got {grading}")
    ax, ay, az = aspect
    bounds = ((0.0, float(ax)), (0.0, float(ay)), (0.0, float(az)))
    mesh = box_mesh(ax * resolution, ay * resolution, az * resolution, bounds)
    if grading > 1.0:
        coords = mesh.coords.copy()
        for axis, extent in ((1, float(ay)), (2, float(az))):
            u = 2.0 * coords[:, axis] / extent - 1.0
            coords[:, axis] = 0.5 * extent * (1.0 + np.sign(u) * np.abs(u) ** grading)
        mesh = TetMesh.from_elems(coords, mesh.elems)
    blade = BladeSpec(
        start=(0.25 * ax, 0.5 * ay, 0.5 * az),
        end=(0.80 * ax, 0.5 * ay, 0.5 * az),
        radius=0.08 * min(ay, az),
    )
    return mesh, blade


def single_tet() -> TetMesh:
    """The reference tetrahedron — smallest possible mesh, used in tests."""
    coords = np.array(
        [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
    )
    elems = np.array([[0, 1, 2, 3]])
    return TetMesh.from_elems(coords, elems)


def two_tets() -> TetMesh:
    """Two tetrahedra sharing a face — smallest mesh with an interior face."""
    coords = np.array(
        [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
        ]
    )
    elems = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
    return TetMesh.from_elems(coords, elems)
