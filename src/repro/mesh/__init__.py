"""Tetrahedral mesh substrate with 3D_TAG-style edge-based connectivity."""

from .generate import BladeSpec, box_mesh, rotor_domain_mesh, single_tet, two_tets
from .geometry import (
    aspect_ratios,
    edge_lengths,
    edge_midpoints,
    fix_orientation,
    tet_volumes,
)
from .tetmesh import TetMesh
from .topology import (
    EDGE_FACES,
    FACE_EDGE_MASKS,
    FACE_EDGES,
    LOCAL_EDGES,
    LOCAL_FACES,
    OPPOSITE_EDGE,
)

__all__ = [
    "BladeSpec",
    "EDGE_FACES",
    "FACE_EDGES",
    "FACE_EDGE_MASKS",
    "LOCAL_EDGES",
    "LOCAL_FACES",
    "OPPOSITE_EDGE",
    "TetMesh",
    "aspect_ratios",
    "box_mesh",
    "edge_lengths",
    "edge_midpoints",
    "fix_orientation",
    "rotor_domain_mesh",
    "single_tet",
    "tet_volumes",
    "two_tets",
]
