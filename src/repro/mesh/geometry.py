"""Geometric primitives for tetrahedral meshes (vectorized)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "tet_volumes",
    "fix_orientation",
    "edge_lengths",
    "edge_midpoints",
    "aspect_ratios",
]


def tet_volumes(coords: np.ndarray, elems: np.ndarray) -> np.ndarray:
    """Signed volumes of each tetrahedron (positive = right-handed)."""
    p = coords[elems]  # (ne, 4, 3)
    a = p[:, 1] - p[:, 0]
    b = p[:, 2] - p[:, 0]
    c = p[:, 3] - p[:, 0]
    return np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0


def fix_orientation(coords: np.ndarray, elems: np.ndarray) -> np.ndarray:
    """Return a copy of ``elems`` with every tetrahedron right-handed.

    Flipping the last two vertices negates the signed volume and leaves the
    element's vertex set (hence its edges) unchanged.
    """
    elems = np.array(elems, copy=True)
    neg = tet_volumes(coords, elems) < 0
    elems[neg, 2], elems[neg, 3] = elems[neg, 3].copy(), elems[neg, 2].copy()
    return elems


def edge_lengths(coords: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Euclidean length of each edge (``edges`` is an ``(n, 2)`` index array)."""
    d = coords[edges[:, 1]] - coords[edges[:, 0]]
    return np.linalg.norm(d, axis=1)


def edge_midpoints(coords: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Midpoint coordinates of each edge."""
    return 0.5 * (coords[edges[:, 0]] + coords[edges[:, 1]])


def aspect_ratios(coords: np.ndarray, elems: np.ndarray) -> np.ndarray:
    """Crude element quality: longest edge cubed over volume, normalised so
    a regular tetrahedron scores 1.  Larger is worse; inf for degenerate."""
    from .topology import LOCAL_EDGES

    p = coords[elems]  # (ne, 4, 3)
    ev = p[:, LOCAL_EDGES[:, 1]] - p[:, LOCAL_EDGES[:, 0]]  # (ne, 6, 3)
    lmax = np.sqrt((ev**2).sum(axis=2)).max(axis=1)
    vol = np.abs(tet_volumes(coords, elems))
    # regular tet: V = L^3 / (6*sqrt(2))  =>  L^3 / V = 6*sqrt(2)
    with np.errstate(divide="ignore"):
        return (lmax**3 / vol) / (6.0 * np.sqrt(2.0))
