"""Mesh persistence and export.

The paper's finalization phase exists so "the host can then interface the
mesh directly to the appropriate post-processing module" (visualization,
restart snapshots).  This module provides both: a lossless NumPy archive
for restarts and a legacy-ASCII VTK export for viewers.
"""

from __future__ import annotations

import os

import numpy as np

from .tetmesh import TetMesh

__all__ = ["save_mesh", "load_mesh", "write_vtk"]

_FORMAT_VERSION = 1


def save_mesh(path: str, mesh: TetMesh, solution: np.ndarray | None = None) -> None:
    """Save a mesh (and optional vertex solution) to a ``.npz`` archive.

    Only coords and elems are stored; connectivity is re-derived on load,
    which both keeps snapshots small and guarantees the loaded mesh passes
    the same invariants as a freshly built one.
    """
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "coords": mesh.coords,
        "elems": mesh.elems,
    }
    if solution is not None:
        solution = np.asarray(solution, dtype=np.float64)
        if solution.shape[0] != mesh.nv:
            raise ValueError(
                f"solution has {solution.shape[0]} rows for {mesh.nv} vertices"
            )
        payload["solution"] = solution
    np.savez_compressed(path, **payload)


def load_mesh(path: str) -> tuple[TetMesh, np.ndarray | None]:
    """Load a mesh saved by :func:`save_mesh`; returns (mesh, solution)."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported mesh format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        mesh = TetMesh.from_elems(data["coords"], data["elems"], orient=False)
        solution = data["solution"] if "solution" in data else None
    return mesh, solution


def write_vtk(
    path: str,
    mesh: TetMesh,
    point_data: dict[str, np.ndarray] | None = None,
    cell_data: dict[str, np.ndarray] | None = None,
    title: str = "repro mesh",
) -> None:
    """Write a legacy-ASCII VTK unstructured grid (tetra cells).

    ``point_data``/``cell_data`` map field names to per-vertex/per-element
    scalar arrays.
    """
    point_data = point_data or {}
    cell_data = cell_data or {}
    for name, arr in point_data.items():
        if np.asarray(arr).shape[0] != mesh.nv:
            raise ValueError(f"point field {name!r} must have {mesh.nv} values")
    for name, arr in cell_data.items():
        if np.asarray(arr).shape[0] != mesh.ne:
            raise ValueError(f"cell field {name!r} must have {mesh.ne} values")

    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {mesh.nv} double",
    ]
    lines.extend(" ".join(f"{x:.17g}" for x in p) for p in mesh.coords)
    lines.append(f"CELLS {mesh.ne} {5 * mesh.ne}")
    lines.extend("4 " + " ".join(str(v) for v in e) for e in mesh.elems)
    lines.append(f"CELL_TYPES {mesh.ne}")
    lines.extend("10" for _ in range(mesh.ne))  # VTK_TETRA

    def emit_fields(kind: str, count: int, fields: dict) -> None:
        if not fields:
            return
        lines.append(f"{kind} {count}")
        for name, arr in fields.items():
            arr = np.asarray(arr, dtype=np.float64).ravel()
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            lines.extend(f"{v:.17g}" for v in arr)

    emit_fields("POINT_DATA", mesh.nv, point_data)
    emit_fields("CELL_DATA", mesh.ne, cell_data)

    tmp = f"{path}.tmp"
    with open(tmp, "w") as f:
        f.write("\n".join(lines) + "\n")
    os.replace(tmp, path)
