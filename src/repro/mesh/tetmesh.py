"""The tetrahedral mesh container with edge-based connectivity."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .build import build_edges, build_faces, invert_to_csr
from .geometry import fix_orientation, tet_volumes
from .topology import LOCAL_EDGES

__all__ = ["TetMesh"]


@dataclass
class TetMesh:
    """An unstructured tetrahedral mesh with 3D_TAG-style connectivity.

    Attributes
    ----------
    coords:
        ``(nv, 3)`` vertex coordinates.
    elems:
        ``(ne, 4)`` vertex ids per element, positively oriented.
    edges:
        ``(nedge, 2)`` unique vertex pairs, lower id first, lexicographic.
    elem2edge:
        ``(ne, 6)`` edge ids per element in local edge order.
    bnd_faces / bnd_elem:
        ``(nb, 3)`` boundary vertex triples and their owning element.
    dual_pairs:
        ``(ni, 2)`` pairs of elements sharing an interior face — the dual
        graph edge list used by the load balancer.
    edge2elem_ptr / edge2elem_dat:
        CSR adjacency from each edge to the elements sharing it.
    vert2edge_ptr / vert2edge_dat:
        CSR adjacency from each vertex to its incident edges.
    """

    coords: np.ndarray
    elems: np.ndarray
    edges: np.ndarray = field(repr=False)
    elem2edge: np.ndarray = field(repr=False)
    bnd_faces: np.ndarray = field(repr=False)
    bnd_elem: np.ndarray = field(repr=False)
    dual_pairs: np.ndarray = field(repr=False)
    edge2elem_ptr: np.ndarray = field(repr=False)
    edge2elem_dat: np.ndarray = field(repr=False)
    vert2edge_ptr: np.ndarray = field(repr=False)
    vert2edge_dat: np.ndarray = field(repr=False)

    # --- construction -------------------------------------------------------

    @classmethod
    def from_elems(
        cls, coords: np.ndarray, elems: np.ndarray, orient: bool = True
    ) -> "TetMesh":
        """Build the full connectivity from vertices and an element list."""
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        elems = np.ascontiguousarray(elems, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (nv, 3), got {coords.shape}")
        if elems.ndim != 2 or elems.shape[1] != 4:
            raise ValueError(f"elems must be (ne, 4), got {elems.shape}")
        nv = coords.shape[0]
        if elems.size and (elems.min() < 0 or elems.max() >= nv):
            raise ValueError("element vertex index out of range")
        if orient:
            elems = fix_orientation(coords, elems)
        edges, elem2edge = build_edges(elems, nv)
        bnd_faces, bnd_elem, dual_pairs = build_faces(elems, nv)
        e2e_ptr, e2e_dat = invert_to_csr(elem2edge, edges.shape[0])
        v2e_pairs = edges.ravel()
        eids = np.repeat(np.arange(edges.shape[0], dtype=np.int64), 2)
        from .build import csr_from_pairs

        v2e_ptr, v2e_dat = csr_from_pairs(v2e_pairs, eids, nv)
        return cls(
            coords=coords,
            elems=elems,
            edges=edges,
            elem2edge=elem2edge,
            bnd_faces=bnd_faces,
            bnd_elem=bnd_elem,
            dual_pairs=dual_pairs,
            edge2elem_ptr=e2e_ptr,
            edge2elem_dat=e2e_dat,
            vert2edge_ptr=v2e_ptr,
            vert2edge_dat=v2e_dat,
        )

    # --- sizes --------------------------------------------------------------

    @property
    def nv(self) -> int:
        return self.coords.shape[0]

    @property
    def ne(self) -> int:
        return self.elems.shape[0]

    @property
    def nedges(self) -> int:
        return self.edges.shape[0]

    @property
    def nbnd(self) -> int:
        return self.bnd_faces.shape[0]

    def sizes(self) -> dict[str, int]:
        """Grid-size row in the format of the paper's Table 1."""
        return {
            "vertices": self.nv,
            "elements": self.ne,
            "edges": self.nedges,
            "bdy_faces": self.nbnd,
        }

    # --- queries ------------------------------------------------------------

    def edge_elems(self, edge: int) -> np.ndarray:
        """Elements sharing ``edge`` (the edge's element list, paper §3)."""
        return self.edge2elem_dat[self.edge2elem_ptr[edge] : self.edge2elem_ptr[edge + 1]]

    def vertex_edges(self, vertex: int) -> np.ndarray:
        """Edges incident on ``vertex``."""
        return self.vert2edge_dat[self.vert2edge_ptr[vertex] : self.vert2edge_ptr[vertex + 1]]

    def volumes(self) -> np.ndarray:
        return tet_volumes(self.coords, self.elems)

    def total_volume(self) -> float:
        return float(self.volumes().sum())

    # --- validation -----------------------------------------------------------

    def check(self) -> None:
        """Verify all structural invariants; raise AssertionError on failure.

        Intended for tests and debugging — O(ne log ne).
        """
        assert self.elems.shape == (self.ne, 4)
        assert np.all(self.edges[:, 0] < self.edges[:, 1]), "edge order"
        keys = self.edges[:, 0] * self.nv + self.edges[:, 1]
        assert np.all(np.diff(keys) > 0), "edges sorted & unique"
        vols = self.volumes()
        assert np.all(vols > 0), f"non-positive volumes: {np.sum(vols <= 0)}"
        # elem2edge consistency with local edge table
        pairs = np.sort(self.elems[:, LOCAL_EDGES], axis=2)
        assert np.array_equal(self.edges[self.elem2edge], pairs), "elem2edge"
        # every element has 4 distinct vertices
        assert np.all(
            np.diff(np.sort(self.elems, axis=1), axis=1) > 0
        ), "degenerate element"
        # CSR inverses round-trip
        for e in range(min(self.nedges, 50)):
            for el in self.edge_elems(e):
                assert e in self.elem2edge[el]
        # boundary faces belong to their owning element
        for f in range(min(self.nbnd, 50)):
            face = set(self.bnd_faces[f].tolist())
            assert face <= set(self.elems[self.bnd_elem[f]].tolist())
