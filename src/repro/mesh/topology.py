"""Canonical local topology of a tetrahedral element.

The whole adaption scheme (paper §3) is *edge based*: an element is defined
by its six edges rather than its four vertices.  This module pins down the
local numbering conventions shared by the mesh, adaptor, and dual-graph
modules.

Local vertex order: ``v0, v1, v2, v3``; an element is positively oriented
when ``det[v1-v0, v2-v0, v3-v0] > 0``.

Local edge order (index → vertex pair)::

    0: (0,1)   1: (0,2)   2: (0,3)   3: (1,2)   4: (1,3)   5: (2,3)

Local face order (index → vertex triple, and the edges each face contains)::

    0: (0,1,2) -> edges {0,1,3}
    1: (0,1,3) -> edges {0,2,4}
    2: (0,2,3) -> edges {1,2,5}
    3: (1,2,3) -> edges {3,4,5}
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LOCAL_EDGES",
    "LOCAL_FACES",
    "FACE_EDGES",
    "FACE_EDGE_MASKS",
    "OPPOSITE_EDGE",
    "EDGE_FACES",
]

#: Local edge index -> (local vertex, local vertex).
LOCAL_EDGES = np.array(
    [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], dtype=np.int64
)

#: Local face index -> (local vertex triple).
LOCAL_FACES = np.array(
    [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)], dtype=np.int64
)

#: Local face index -> the three local edge indices lying on that face.
FACE_EDGES = np.array(
    [(0, 1, 3), (0, 2, 4), (1, 2, 5), (3, 4, 5)], dtype=np.int64
)

#: Local face index -> 6-bit mask of the edges on that face.
FACE_EDGE_MASKS = np.array(
    [sum(1 << e for e in face) for face in FACE_EDGES], dtype=np.int64
)

#: Local edge index -> the opposite edge (sharing no vertex).
#: (0,1)<->(2,3), (0,2)<->(1,3), (0,3)<->(1,2)
OPPOSITE_EDGE = np.array([5, 4, 3, 2, 1, 0], dtype=np.int64)

#: Local edge index -> the two local faces containing it.
EDGE_FACES = np.array(
    [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)], dtype=np.int64
)


def _selfcheck() -> None:
    """Internal consistency of the constant tables (run at import)."""
    for e, (a, b) in enumerate(LOCAL_EDGES):
        o = OPPOSITE_EDGE[e]
        oa, ob = LOCAL_EDGES[o]
        assert {int(a), int(b)} | {int(oa), int(ob)} == {0, 1, 2, 3}
        faces = [
            f
            for f in range(4)
            if {int(a), int(b)} <= set(int(x) for x in LOCAL_FACES[f])
        ]
        assert faces == sorted(int(x) for x in EDGE_FACES[e])
    for f in range(4):
        fv = set(int(x) for x in LOCAL_FACES[f])
        for e in FACE_EDGES[f]:
            a, b = LOCAL_EDGES[e]
            assert {int(a), int(b)} <= fv


_selfcheck()
