"""Hexahedral meshes — the "any polyhedra" claim of paper §2.

"An edge-based data structure does not limit the user to a particular type
of volume element.  Even though tetrahedral elements are used in this
paper, any arbitrary combination of polyhedra can be used.  This is also
true for our load balancing procedure."

:class:`HexMesh` carries the same structural interface the load balancer
consumes from :class:`~repro.mesh.tetmesh.TetMesh` — ``ne``, ``coords``,
``elems``, ``dual_pairs`` (elements sharing a face), ``edges`` — so
:class:`~repro.core.dualgraph.DualGraph`, the partitioners, the similarity
matrix, the reassignment algorithms, and the remapper all run on it
unchanged (demonstrated in tests).  Mesh *adaption* remains tet-specific,
exactly as in the paper.

Local numbering (VTK hexahedron order): vertices 0-3 are the bottom quad
(counter-clockwise seen from below), 4-7 the top quad above them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HexMesh", "hex_box_mesh", "HEX_EDGES", "HEX_FACES"]

#: The 12 edges of a hexahedron (local vertex pairs).
HEX_EDGES = np.array(
    [
        (0, 1), (1, 2), (2, 3), (3, 0),  # bottom
        (4, 5), (5, 6), (6, 7), (7, 4),  # top
        (0, 4), (1, 5), (2, 6), (3, 7),  # verticals
    ],
    dtype=np.int64,
)

#: The 6 quadrilateral faces (local vertex quadruples).
HEX_FACES = np.array(
    [
        (0, 1, 2, 3),  # bottom
        (4, 5, 6, 7),  # top
        (0, 1, 5, 4),
        (1, 2, 6, 5),
        (2, 3, 7, 6),
        (3, 0, 4, 7),
    ],
    dtype=np.int64,
)


@dataclass
class HexMesh:
    """Structured-topology hexahedral mesh with dual-graph connectivity."""

    coords: np.ndarray
    elems: np.ndarray  #: (ne, 8) vertex ids in VTK order
    edges: np.ndarray = field(repr=False)
    elem2edge: np.ndarray = field(repr=False)
    bnd_faces: np.ndarray = field(repr=False)  #: (nb, 4) quad vertex ids
    dual_pairs: np.ndarray = field(repr=False)

    @classmethod
    def from_elems(cls, coords: np.ndarray, elems: np.ndarray) -> "HexMesh":
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        elems = np.ascontiguousarray(elems, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (nv, 3), got {coords.shape}")
        if elems.ndim != 2 or elems.shape[1] != 8:
            raise ValueError(f"elems must be (ne, 8), got {elems.shape}")
        nv = coords.shape[0]
        if elems.size and (elems.min() < 0 or elems.max() >= nv):
            raise ValueError("element vertex index out of range")

        # unique edges (same recipe as the tet mesh, 12 per element)
        pairs = elems[:, HEX_EDGES]
        lo = pairs.min(axis=2).astype(np.int64)
        hi = pairs.max(axis=2).astype(np.int64)
        keys = lo * nv + hi
        uniq, inverse = np.unique(keys.ravel(), return_inverse=True)
        edges = np.column_stack([uniq // nv, uniq % nv]).astype(np.int64)
        elem2edge = inverse.reshape(elems.shape[0], 12).astype(np.int64)

        # quad faces: key on the sorted vertex quadruple
        quads = np.sort(elems[:, HEX_FACES], axis=2).astype(np.int64)  # (ne,6,4)
        fkeys = (
            ((quads[..., 0] * nv + quads[..., 1]) * nv + quads[..., 2]) * nv
            + quads[..., 3]
        )
        flat = fkeys.ravel()
        owner = np.repeat(np.arange(elems.shape[0], dtype=np.int64), 6)
        order = np.argsort(flat, kind="stable")
        skeys, sown = flat[order], owner[order]
        if skeys.shape[0]:
            first = np.r_[True, skeys[1:] != skeys[:-1]]
            starts = np.flatnonzero(first)
            counts = np.diff(np.append(starts, skeys.shape[0]))
            if np.any(counts > 2):
                raise ValueError("non-manifold hex mesh: face in >2 elements")
            b_idx = starts[counts == 1]
            i_idx = starts[counts == 2]
            face_flat = elems[:, HEX_FACES].reshape(-1, 4)
            bnd_faces = face_flat[order[b_idx]]
            dual_pairs = np.column_stack([sown[i_idx], sown[i_idx + 1]])
        else:
            bnd_faces = np.empty((0, 4), dtype=np.int64)
            dual_pairs = np.empty((0, 2), dtype=np.int64)
        return cls(
            coords=coords,
            elems=elems,
            edges=edges,
            elem2edge=elem2edge,
            bnd_faces=bnd_faces,
            dual_pairs=dual_pairs,
        )

    @property
    def nv(self) -> int:
        return self.coords.shape[0]

    @property
    def ne(self) -> int:
        return self.elems.shape[0]

    @property
    def nedges(self) -> int:
        return self.edges.shape[0]

    def volumes(self) -> np.ndarray:
        """Element volumes by decomposition into 6 tetrahedra per hex."""
        from .geometry import tet_volumes

        # Kuhn decomposition along the 0-6 diagonal
        tets = np.array(
            [
                (0, 1, 2, 6), (0, 2, 3, 6), (0, 3, 7, 6),
                (0, 7, 4, 6), (0, 4, 5, 6), (0, 5, 1, 6),
            ]
        )
        vols = np.zeros(self.ne)
        for t in tets:
            vols += np.abs(tet_volumes(self.coords, self.elems[:, t]))
        return vols

    def total_volume(self) -> float:
        return float(self.volumes().sum())

    def element_centroids(self) -> np.ndarray:
        return self.coords[self.elems].mean(axis=1)


def hex_box_mesh(
    nx: int,
    ny: int,
    nz: int,
    bounds: tuple[tuple[float, float], ...] = ((0, 1), (0, 1), (0, 1)),
) -> HexMesh:
    """Structured box of ``nx*ny*nz`` hexahedra."""
    if min(nx, ny, nz) < 1:
        raise ValueError(f"need at least one cell per axis, got {(nx, ny, nz)}")
    axes = [np.linspace(lo, hi, n + 1) for (lo, hi), n in zip(bounds, (nx, ny, nz))]
    grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
    coords = grid.reshape(-1, 3)

    def vid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    ci, cj, ck = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ci, cj, ck = ci.ravel(), cj.ravel(), ck.ravel()
    # VTK order: bottom quad CCW, then top quad
    elems = np.column_stack(
        [
            vid(ci, cj, ck),
            vid(ci + 1, cj, ck),
            vid(ci + 1, cj + 1, ck),
            vid(ci, cj + 1, ck),
            vid(ci, cj, ck + 1),
            vid(ci + 1, cj, ck + 1),
            vid(ci + 1, cj + 1, ck + 1),
            vid(ci, cj + 1, ck + 1),
        ]
    )
    return HexMesh.from_elems(coords, elems)
