"""Distributed subdivision: each rank refines its local region (paper §3).

"Once all edge markings are complete, each processor executes the mesh
adaption code without the need for further communication, since all edges
are consistently marked.  The only task remaining is to update the shared
edge and vertex information as the mesh is adapted ...  If a shared edge
is bisected, its two children and the center vertex inherit its SPL.
However, if a new edge is created that lies across an element face,
communication is sometimes required to determine whether it is shared or
internal."

:func:`parallel_refine` runs exactly that: every rank subdivides its local
mesh independently (real subdivision of real local data inside the rank
program), inherits SPLs for bisected shared edges locally, and exchanges
one message per neighbour for the face-crossing new edges.  The merged
result is geometrically identical to the global subdivision — asserted via
canonical element signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adapt.marking import MarkingResult, element_patterns
from repro.adapt.patterns import UPGRADE
from repro.adapt.refine import SUBDIV_WORK_PER_CHILD, subdivide
from repro.mesh.tetmesh import TetMesh
from repro.mesh.topology import FACE_EDGE_MASKS
from repro.parallel.backends import record_backend_run, resolve_backend
from repro.parallel.machine import MachineModel, SP2_1997
from repro.parallel.runtime import per_rank

from .localmesh import LocalMesh

__all__ = ["parallel_refine", "ParallelRefineResult", "canonical_signature"]


def canonical_signature(mesh: TetMesh) -> np.ndarray:
    """Order-independent geometric signature: sorted per-element coordinate
    multisets, lexicographically ordered."""
    pts = np.sort(mesh.coords[mesh.elems].reshape(mesh.ne, -1), axis=1)
    return pts[np.lexsort(pts.T)]


@dataclass(frozen=True)
class ParallelRefineResult:
    """Outcome of distributed subdivision."""

    local_meshes: list[TetMesh]  #: refined subgrid per rank
    time_seconds: float  #: VM makespan (subdivision + SPL updates)
    messages: int  #: face-edge classification messages
    total_children: int

    def merged_signature(self) -> np.ndarray:
        """Canonical signature of the union of all local refined meshes."""
        sigs = [canonical_signature(m) for m in self.local_meshes if m.ne]
        allsig = np.vstack(sigs)
        return allsig[np.lexsort(allsig.T)]


def parallel_refine(
    global_mesh: TetMesh,
    locals_: list[LocalMesh],
    marking: MarkingResult,
    machine: MachineModel = SP2_1997,
    tracer=None,
    backend="virtual",
) -> ParallelRefineResult:
    """Subdivide every local mesh under a globally-consistent marking.

    ``tracer`` (or the ambient one) records the virtual machine's events
    and causal message DAG.  ``backend`` selects the communicator backend
    executing the rank programs; the subdivision work is real on every
    backend, so payloads (the refined local meshes) are identical across
    backends while ``time_seconds`` switches from modelled to measured.
    """
    if tracer is None:
        from repro.obs import current_tracer

        tracer = current_tracer()
    edge_marked = np.asarray(marking.edge_marked, dtype=bool)
    if edge_marked.shape != (global_mesh.nedges,):
        raise ValueError(
            f"marking must cover the {global_mesh.nedges} global edges"
        )
    nproc = len(locals_)

    local_inputs = []
    for lm in locals_:
        lmask = edge_marked[lm.edge_l2g]
        patterns = element_patterns(lm.mesh, lmask)
        if not np.array_equal(UPGRADE[patterns], patterns):
            raise ValueError(
                "marking is not a propagation fixpoint on the local mesh"
            )
        lmarking = MarkingResult(
            edge_marked=lmask, patterns=patterns, iterations=0
        )
        # shared faces: local boundary faces that are interior globally,
        # i.e. faces whose three edges are all shared.  New edges created
        # across such faces need a classification round-trip per SPL rank.
        n_face_checks = _count_shared_face_new_edges(lm, lmask, patterns)
        nbrs = sorted(set(lm.edge_spl_dat.tolist()))
        local_inputs.append((lm, lmarking, n_face_checks, nbrs))

    def program(comm, lm: LocalMesh, lmarking, n_checks, nbrs):
        # independent local subdivision (the real data structure work)
        result = subdivide(lm.mesh, lmarking)
        yield from comm.compute(SUBDIV_WORK_PER_CHILD * result.mesh.ne)
        # bisected shared edges: children + midpoint inherit the SPL — a
        # purely local update (one unit per shared bisected edge)
        shared_bisected = int((lmarking.edge_marked & lm.edge_shared).sum())
        yield from comm.compute(2.0 * shared_bisected)
        # face-crossing new edges: ask each SPL neighbour whether its copy
        # exists (shared) or not (internal)
        for r in nbrs:
            yield from comm.send(n_checks, dest=r, tag=21,
                                 nwords=max(1, n_checks))
        replies = 0
        for _ in nbrs:
            _ = yield from comm.recv(tag=21)
            replies += 1
        yield from comm.barrier()
        return result.mesh, result.mesh.ne

    comm = resolve_backend(backend, nproc, machine=machine, tracer=tracer)
    res = comm.run(
        program,
        per_rank([x[0] for x in local_inputs]),
        per_rank([x[1] for x in local_inputs]),
        per_rank([x[2] for x in local_inputs]),
        per_rank([x[3] for x in local_inputs]),
    )
    record_backend_run(tracer, "refine", res)

    meshes = [ret[0] for ret in res.returns]
    total_children = sum(ret[1] for ret in res.returns)
    return ParallelRefineResult(
        local_meshes=meshes,
        time_seconds=res.makespan,
        messages=res.total_messages,
        total_children=total_children,
    )


def _count_shared_face_new_edges(
    lm: LocalMesh, lmask: np.ndarray, patterns: np.ndarray
) -> int:
    """Count new edges that will lie across *shared* faces.

    A 1:4 (or 1:8) subdivision creates three medial edges on each fully
    marked face; when that face lies on the partition boundary, the medial
    edges' shared/internal status needs the paper's communication step.
    """
    if lm.ne == 0:
        return 0
    face_masks = [int(m) for m in FACE_EDGE_MASKS]
    count = 0
    shared = lm.edge_shared
    for f, mask in enumerate(face_masks):
        full = (patterns & mask) == mask
        if not full.any():
            continue
        from repro.mesh.topology import FACE_EDGES

        fe = lm.mesh.elem2edge[:, FACE_EDGES[f]]
        face_shared = shared[fe].all(axis=1)
        count += int((full & face_shared).sum()) * 3
    return count
