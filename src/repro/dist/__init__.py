"""Distributed-mesh layer (paper §3): initialization, SPL bookkeeping,
element migration, and the finalization gather."""

from .decompose import decompose, rank_incidence
from .exec_phase import ParallelMarkResult, parallel_mark
from .gather import FinalizeResult, finalize
from .localmesh import LocalMesh
from .migrate import MigrateResult, migrate
from .refine_exec import (
    ParallelRefineResult,
    canonical_signature,
    parallel_refine,
)

__all__ = [
    "FinalizeResult",
    "LocalMesh",
    "MigrateResult",
    "ParallelMarkResult",
    "ParallelRefineResult",
    "canonical_signature",
    "decompose",
    "finalize",
    "migrate",
    "parallel_mark",
    "parallel_refine",
    "rank_incidence",
]
