"""The execution phase of parallel mesh adaption on distributed data.

Paper §3: "The execution phase runs a copy of 3D_TAG on each processor
that adapts its local region, while maintaining a globally-consistent grid
along partition boundaries ... elements have to be continuously upgraded
to one of the three allowed subdivision patterns.  This causes some
propagation of edges targeted for refinement that could mark local copies
of shared edges inconsistently ... Communication is therefore required
after each iteration of the propagation process.  Every processor sends a
list of all the newly-marked local copies of shared edges to all the
other processors in their SPLs.  The process may continue for several
iterations, and edge markings could propagate back and forth across
partitions."

:func:`parallel_mark` is that loop as real SPMD rank programs on the
virtual machine, operating on :class:`~repro.dist.LocalMesh` data.  The
merged result provably equals the serial fixpoint of
:func:`repro.adapt.marking.propagate_markings` — asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adapt.marking import element_patterns
from repro.adapt.patterns import UPGRADE, pattern_bits
from repro.mesh.tetmesh import TetMesh
from repro.parallel.backends import record_backend_run, resolve_backend
from repro.parallel.machine import MachineModel, SP2_1997
from repro.parallel.runtime import per_rank

from .localmesh import LocalMesh

__all__ = ["parallel_mark", "ParallelMarkResult"]


@dataclass(frozen=True)
class ParallelMarkResult:
    """Outcome of the distributed marking loop."""

    edge_marked: np.ndarray  #: global edge mask at the fixpoint
    iterations: int  #: propagation rounds until global stability
    time_seconds: float  #: VM makespan of the loop
    messages: int  #: SPL-exchange messages sent
    words: int  #: words carried by those messages


def parallel_mark(
    global_mesh: TetMesh,
    locals_: list[LocalMesh],
    initial_marks: np.ndarray,
    machine: MachineModel = SP2_1997,
    tracer=None,
    backend="virtual",
) -> ParallelMarkResult:
    """Run the marking-propagation loop as SPMD programs over local meshes.

    ``initial_marks`` is a boolean mask over the *global* mesh's edges
    (the error-indicator targeting, which is symmetric across shared edges
    "because shared edges have the same flow and geometry information
    regardless of their processor number").  ``tracer`` (or the ambient
    one) records the loop's events and causal message DAG.  ``backend``
    selects the communicator backend (a registered name or a ready-made
    backend object); ``time_seconds`` is then that backend's makespan —
    modelled virtual seconds on ``virtual``, measured wall seconds on the
    real-execution backends.
    """
    if tracer is None:
        from repro.obs import current_tracer

        tracer = current_tracer()
    initial_marks = np.asarray(initial_marks, dtype=bool)
    if initial_marks.shape != (global_mesh.nedges,):
        raise ValueError(
            f"initial marks must cover the {global_mesh.nedges} global edges"
        )
    nproc = len(locals_)

    # per-rank immutable context
    local_marks0 = [initial_marks[lm.edge_l2g].copy() for lm in locals_]
    # SPL neighbour lists per rank (ranks sharing at least one edge)
    neighbours = [
        sorted(set(lm.edge_spl_dat.tolist())) for lm in locals_
    ]
    # per-rank: for each neighbour, the local shared edges they co-own
    shared_with = []
    for lm in locals_:
        by_nbr: dict[int, list[int]] = {}
        for le in np.flatnonzero(lm.edge_shared):
            for r in lm.edge_spl(le):
                by_nbr.setdefault(int(r), []).append(int(le))
        shared_with.append(by_nbr)

    def program(comm, lm: LocalMesh, marks: np.ndarray, nbrs, shared):
        marked = marks.copy()
        g2l_keys = lm.edge_l2g  # ascending, so searchsorted resolves g->l
        rounds = 0
        while True:
            rounds += 1
            # one local 3D_TAG upgrade sweep (vectorized over local elements)
            patterns = element_patterns(lm.mesh, marked)
            bits = pattern_bits(UPGRADE[patterns])
            new_marked = marked.copy()
            if lm.ne:
                new_marked[lm.mesh.elem2edge[bits]] = True
            yield from comm.compute(lm.ne)

            newly = new_marked & ~marked
            marked = new_marked
            # exchange newly-marked local copies of shared edges with every
            # processor in their SPLs (global ids travel on the wire)
            incoming_any = False
            for r in nbrs:
                mine = [le for le in shared[r] if newly[le]]
                payload = lm.edge_l2g[mine] if mine else np.empty(0, np.int64)
                yield from comm.send(payload, dest=r, tag=11,
                                     nwords=max(1, payload.shape[0]))
            for _ in nbrs:
                payload = yield from comm.recv(tag=11)
                if payload.shape[0]:
                    loc = np.searchsorted(g2l_keys, payload)
                    fresh = ~marked[loc]
                    if fresh.any():
                        incoming_any = True
                        marked[loc] = True
            changed = bool(newly.any()) or incoming_any
            any_change = yield from comm.allreduce(changed, op=lambda a, b: a or b)
            if not any_change:
                break
        return marked, rounds

    comm = resolve_backend(backend, nproc, machine=machine, tracer=tracer)
    res = comm.run(
        program,
        per_rank(locals_),
        per_rank(local_marks0),
        per_rank(neighbours),
        per_rank(shared_with),
    )
    record_backend_run(tracer, "mark", res)

    merged = np.zeros(global_mesh.nedges, dtype=bool)
    rounds = 0
    for lm, (marked, r) in zip(locals_, res.returns):
        merged[lm.edge_l2g[marked]] = True
        rounds = max(rounds, r)
        # consistency along partition boundaries: every shared copy agrees
    for lm, (marked, _r) in zip(locals_, res.returns):
        assert np.array_equal(marked, merged[lm.edge_l2g]), (
            "shared edge markings diverged across partitions"
        )

    return ParallelMarkResult(
        edge_marked=merged,
        iterations=rounds,
        time_seconds=res.makespan,
        messages=res.total_messages,
        words=res.total_words,
    )
