"""Initialization phase: distribute the global mesh across processors.

Builds one :class:`~repro.dist.localmesh.LocalMesh` per rank from a
partition vector, deriving local numbering, local→global maps, shared
flags, and shared-processor lists — the paper §3 initialization executed
"only once for each problem outside the main
solution→adaption→load-balancing cycle".
"""

from __future__ import annotations

import numpy as np

from repro.mesh.tetmesh import TetMesh

from .localmesh import LocalMesh

__all__ = ["decompose", "rank_incidence"]


def rank_incidence(
    ids_per_rank: list[np.ndarray], n_global: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """For global objects touched by several ranks, build a CSR map
    global id → sorted ranks, plus the per-object touch count."""
    all_ids = np.concatenate(ids_per_rank) if ids_per_rank else np.empty(0, np.int64)
    all_ranks = np.concatenate(
        [np.full(ids.shape[0], r, dtype=np.int64) for r, ids in enumerate(ids_per_rank)]
    ) if ids_per_rank else np.empty(0, np.int64)
    order = np.lexsort((all_ranks, all_ids))
    sids, sranks = all_ids[order], all_ranks[order]
    ptr = np.zeros(n_global + 1, dtype=np.int64)
    np.add.at(ptr, sids + 1, 1)
    np.cumsum(ptr, out=ptr)
    counts = np.diff(ptr)
    return ptr, sranks, counts


def decompose(mesh: TetMesh, part: np.ndarray, nproc: int) -> list[LocalMesh]:
    """Split ``mesh`` into per-rank local meshes according to ``part``.

    Every element belongs to exactly one rank; vertices and edges on
    partition boundaries are replicated with consistent SPLs.
    """
    part = np.asarray(part, dtype=np.int64)
    if part.shape != (mesh.ne,):
        raise ValueError(f"part must have shape ({mesh.ne},), got {part.shape}")
    if part.size and (part.min() < 0 or part.max() >= nproc):
        raise ValueError(f"part labels must be in [0, {nproc})")

    # global vertex/edge sets per rank
    vert_ids = []
    edge_ids = []
    elem_ids = []
    for r in range(nproc):
        els = np.flatnonzero(part == r)
        elem_ids.append(els)
        vert_ids.append(np.unique(mesh.elems[els]))
        edge_ids.append(np.unique(mesh.elem2edge[els]))

    v_ptr, v_ranks, v_counts = rank_incidence(vert_ids, mesh.nv)
    e_ptr, e_ranks, e_counts = rank_incidence(edge_ids, mesh.nedges)

    locals_: list[LocalMesh] = []
    for r in range(nproc):
        els = elem_ids[r]
        gverts = vert_ids[r]
        gedges = edge_ids[r]
        # local numbering: position in the sorted unique global id list
        lelems = np.searchsorted(gverts, mesh.elems[els])
        lmesh = TetMesh.from_elems(mesh.coords[gverts], lelems, orient=False)
        # map local edges (from the local mesh build) back to global ids
        lpairs = gverts[lmesh.edges]  # global endpoint pairs, lo<hi holds
        gkeys = mesh.edges[:, 0] * mesh.nv + mesh.edges[:, 1]
        lkeys = lpairs[:, 0] * mesh.nv + lpairs[:, 1]
        edge_l2g = np.searchsorted(gkeys, lkeys)
        assert np.array_equal(gkeys[edge_l2g], lkeys), "local edge must exist globally"
        assert np.array_equal(np.sort(edge_l2g), gedges), "edge sets agree"

        v_shared = v_counts[gverts] > 1
        e_shared = e_counts[edge_l2g] > 1

        vs_ptr, vs_dat = _spl_csr(gverts, v_ptr, v_ranks, r)
        es_ptr, es_dat = _spl_csr(edge_l2g, e_ptr, e_ranks, r)

        locals_.append(
            LocalMesh(
                rank=r,
                mesh=lmesh,
                elem_l2g=els,
                vert_l2g=gverts,
                edge_l2g=edge_l2g,
                vert_shared=v_shared,
                edge_shared=e_shared,
                vert_spl_ptr=vs_ptr,
                vert_spl_dat=vs_dat,
                edge_spl_ptr=es_ptr,
                edge_spl_dat=es_dat,
            )
        )
    return locals_


def _spl_csr(gids, ptr, ranks, own_rank):
    """CSR of other-ranks per local object from the global incidence."""
    counts = []
    data = []
    for g in gids:
        spl = ranks[ptr[g] : ptr[g + 1]]
        spl = spl[spl != own_rank]
        counts.append(spl.shape[0])
        data.append(spl)
    out_ptr = np.zeros(len(gids) + 1, dtype=np.int64)
    np.cumsum(np.asarray(counts, dtype=np.int64), out=out_ptr[1:])
    out_dat = (
        np.concatenate(data) if data else np.empty(0, dtype=np.int64)
    )
    return out_ptr, out_dat
