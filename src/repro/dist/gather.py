"""Finalization phase: connect the subgrids back into one global mesh.

Paper §3: "It is sometimes necessary to create a single global mesh after
one or more adaption steps ... Each local object is first assigned a
unique global number.  All processors then update their local data
structures accordingly.  Finally, a gather operation is performed by a
host processor to concatenate the local data structures into a global
mesh."

:func:`finalize` performs exactly that: shared objects are deduplicated by
ownership (lowest sharing rank owns), fresh global numbers are assigned,
and the host concatenates.  The gather's communication is optionally
executed on the virtual machine to measure its cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.tetmesh import TetMesh
from repro.parallel.backends import record_backend_run, resolve_backend
from repro.parallel.machine import MachineModel, SP2_1997
from repro.parallel.runtime import per_rank

from .localmesh import LocalMesh

__all__ = ["finalize", "FinalizeResult"]


@dataclass(frozen=True)
class FinalizeResult:
    """Outcome of the finalization gather."""

    mesh: TetMesh  #: the reconnected global mesh
    vert_new_global: list[np.ndarray]  #: per-rank local vertex -> new global id
    elem_new_global: list[np.ndarray]  #: per-rank local element -> new global id
    gather_seconds: float  #: VM-measured host-gather time


def finalize(
    locals_: list[LocalMesh],
    machine: MachineModel = SP2_1997,
    host: int = 0,
    tracer=None,
    backend="virtual",
) -> FinalizeResult:
    """Assemble the per-rank subgrids into one global mesh.

    Shared vertices are identified through the SPLs: the lowest rank in a
    vertex's sharing set *owns* it and assigns its new global number;
    non-owners translate their local ids through the shared match.  The
    concatenated element list preserves per-rank order (rank-major), so
    the result is deterministic.
    """
    nproc = len(locals_)
    if nproc == 0:
        raise ValueError("need at least one local mesh")

    # --- assign new global vertex numbers, owners first ----------------------
    # ownership: owner(v) = min(rank, *SPL); owners number their vertices
    owned_counts = []
    owner_masks = []
    for lm in locals_:
        spl_sizes = np.diff(lm.vert_spl_ptr)
        first_other = np.full(lm.nv, np.iinfo(np.int64).max, dtype=np.int64)
        has = spl_sizes > 0
        # SPLs are sorted, so the first entry is the minimum other rank
        first_other[has] = lm.vert_spl_dat[lm.vert_spl_ptr[:-1][has]]
        owner_masks.append(~has | (lm.rank < first_other))
        owned_counts.append(int(owner_masks[-1].sum()))
    offsets = np.concatenate([[0], np.cumsum(owned_counts)])[:-1]

    # owners assign numbers; shared copies resolve through the *old* global
    # ids (the match that the SPL bookkeeping encodes)
    old_to_new: dict[int, int] = {}
    vert_new_global: list[np.ndarray] = []
    for lm, own, off in zip(locals_, owner_masks, offsets):
        new_ids = np.full(lm.nv, -1, dtype=np.int64)
        new_ids[own] = off + np.arange(int(own.sum()))
        for lv in np.flatnonzero(own & lm.vert_shared):
            old_to_new[int(lm.vert_l2g[lv])] = int(new_ids[lv])
        vert_new_global.append(new_ids)
    for lm, new_ids in zip(locals_, vert_new_global):
        for lv in np.flatnonzero(new_ids < 0):
            new_ids[lv] = old_to_new[int(lm.vert_l2g[lv])]

    # --- host gather of coordinates and elements --------------------------------
    total_verts = int(sum(owned_counts))
    coords = np.zeros((total_verts, 3))
    elem_chunks = []
    elem_new_global = []
    next_elem = 0
    for lm, own, new_ids in zip(locals_, owner_masks, vert_new_global):
        coords[new_ids[own]] = lm.mesh.coords[own]
        elem_chunks.append(new_ids[lm.mesh.elems])
        elem_new_global.append(next_elem + np.arange(lm.ne))
        next_elem += lm.ne
    elems = np.vstack(elem_chunks)
    mesh = TetMesh.from_elems(coords, elems, orient=False)

    # --- VM-timed gather to the host -----------------------------------------
    payload_words = [
        3 * int(own.sum()) + 4 * lm.ne
        for lm, own in zip(locals_, owner_masks)
    ]

    if tracer is None:
        from repro.obs import current_tracer

        tracer = current_tracer()
    comm = resolve_backend(backend, nproc, machine=machine, tracer=tracer)
    # Measured backends ship the gathered blocks for real (see migrate);
    # the virtual machine keeps the modelled-traffic form.
    real_wire = bool(getattr(comm, "measured", False))

    def program(comm, words):
        if comm.rank == host:
            for _ in range(comm.size - 1):
                _ = yield from comm.recv(tag=9)
            yield from comm.compute(sum(payload_words))  # concatenation
        else:
            payload = np.zeros(words, dtype=np.float64) if real_wire else None
            yield from comm.send(payload, dest=host, tag=9, nwords=words)
        yield from comm.barrier()
    res = comm.run(program, per_rank(payload_words))
    record_backend_run(tracer, "gather", res)

    return FinalizeResult(
        mesh=mesh,
        vert_new_global=vert_new_global,
        elem_new_global=elem_new_global,
        gather_seconds=res.makespan,
    )
