"""Rank-local view of a distributed tetrahedral mesh (paper §3).

The parallel 3D_TAG "initialization phase takes as input the global
initial grid and the corresponding partition information ... It then
distributes the global data across the processors, defining a local number
for each mesh object, and creating the mapping for objects that are shared
by multiple processors.  Shared vertices and edges are identified by
searching for elements that lie on partition boundaries.  A bit flag is
set to distinguish between shared and internal objects.  A list of shared
processors (SPL) is also generated for each shared object."

:class:`LocalMesh` is exactly that per-rank state: a local
:class:`~repro.mesh.TetMesh`, local→global maps for vertices/edges/
elements, shared flags, and CSR shared-processor lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.tetmesh import TetMesh

__all__ = ["LocalMesh"]


@dataclass
class LocalMesh:
    """One processor's subgrid with shared-object bookkeeping.

    Attributes
    ----------
    rank:
        Owning processor.
    mesh:
        The local :class:`TetMesh` in local numbering.
    elem_l2g / vert_l2g / edge_l2g:
        Local id → global id for elements, vertices, edges.
    vert_shared / edge_shared:
        Bit flags distinguishing shared from internal objects.
    vert_spl_ptr / vert_spl_dat (and edge counterparts):
        CSR shared-processor lists: for local object ``i``,
        ``dat[ptr[i]:ptr[i+1]]`` are the *other* ranks sharing it (empty
        for internal objects).
    """

    rank: int
    mesh: TetMesh
    elem_l2g: np.ndarray
    vert_l2g: np.ndarray
    edge_l2g: np.ndarray
    vert_shared: np.ndarray
    edge_shared: np.ndarray
    vert_spl_ptr: np.ndarray = field(repr=False)
    vert_spl_dat: np.ndarray = field(repr=False)
    edge_spl_ptr: np.ndarray = field(repr=False)
    edge_spl_dat: np.ndarray = field(repr=False)

    @property
    def ne(self) -> int:
        return self.mesh.ne

    @property
    def nv(self) -> int:
        return self.mesh.nv

    def vertex_spl(self, v: int) -> np.ndarray:
        """Other ranks sharing local vertex ``v`` (empty if internal)."""
        return self.vert_spl_dat[self.vert_spl_ptr[v] : self.vert_spl_ptr[v + 1]]

    def edge_spl(self, e: int) -> np.ndarray:
        """Other ranks sharing local edge ``e`` (empty if internal)."""
        return self.edge_spl_dat[self.edge_spl_ptr[e] : self.edge_spl_ptr[e + 1]]

    def shared_fraction(self) -> float:
        """Fraction of local objects that are shared — the paper reports
        the parallel code's extra storage is proportional to this (< 10%
        of serial memory for their cases)."""
        total = self.nv + self.mesh.nedges
        if total == 0:
            return 0.0
        return float(self.vert_shared.sum() + self.edge_shared.sum()) / total

    def check(self, global_mesh: TetMesh) -> None:
        """Validate local↔global consistency against the global mesh."""
        assert self.elem_l2g.shape == (self.ne,)
        assert self.vert_l2g.shape == (self.nv,)
        assert self.edge_l2g.shape == (self.mesh.nedges,)
        # local elements are the global elements' vertex sets
        gv = np.sort(global_mesh.elems[self.elem_l2g], axis=1)
        lv = np.sort(self.vert_l2g[self.mesh.elems], axis=1)
        assert np.array_equal(gv, lv), "element vertex sets"
        # local coords come from the global coords
        assert np.array_equal(
            self.mesh.coords, global_mesh.coords[self.vert_l2g]
        ), "coords"
        # local edges map onto global edges with the same endpoints
        ge = global_mesh.edges[self.edge_l2g]
        le = np.sort(self.vert_l2g[self.mesh.edges], axis=1)
        assert np.array_equal(ge, le), "edge endpoints"
        # SPLs never contain the owning rank and are sorted
        for v in range(min(self.nv, 64)):
            spl = self.vertex_spl(v)
            assert self.rank not in spl
            assert np.all(np.diff(spl) > 0)
            assert bool(self.vert_shared[v]) == (spl.size > 0)
