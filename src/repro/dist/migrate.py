"""Element migration at the data-structure level (paper §4.6's remapper).

"When an element is moved from one processor to another, a communication
cost as well as a computational overhead are incurred ... The
computational overhead is the time necessary to rebuild the internal and
shared data structures."

:func:`migrate` physically moves elements between local meshes and
rebuilds every per-rank structure (local numbering, l2g maps, shared
flags, SPLs).  The result is bit-identical to decomposing the global mesh
under the new partition — asserted in tests — while the communication is
executed on the virtual machine for timing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.tetmesh import TetMesh
from repro.parallel.backends import record_backend_run, resolve_backend
from repro.parallel.machine import MachineModel, SP2_1997
from repro.parallel.runtime import per_rank

from .decompose import decompose
from .localmesh import LocalMesh

__all__ = ["migrate", "MigrateResult"]


@dataclass(frozen=True)
class MigrateResult:
    locals: list[LocalMesh]  #: rebuilt per-rank meshes under the new partition
    seconds: float  #: VM-measured migration time (transfer + rebuild)
    elements_moved: int
    messages: int


def migrate(
    global_mesh: TetMesh,
    locals_: list[LocalMesh],
    new_part: np.ndarray,
    storage_words_per_elem: int = 24,
    rebuild_work_per_elem: float = 6.0,
    machine: MachineModel = SP2_1997,
    tracer=None,
    backend="virtual",
) -> MigrateResult:
    """Move elements so rank ``r`` ends up owning ``new_part == r``.

    ``new_part`` indexes *global* elements.  Transfer sizes follow the
    per-element storage model; each rank pays rebuild work proportional to
    its new local size (compaction + shared-data reconstruction).
    ``tracer`` (or the ambient one) records the migration's events and
    causal message DAG.  ``backend`` selects the communicator backend;
    ``seconds`` is that backend's makespan (modelled on ``virtual``,
    measured wall on real-execution backends).
    """
    if tracer is None:
        from repro.obs import current_tracer

        tracer = current_tracer()
    nproc = len(locals_)
    new_part = np.asarray(new_part, dtype=np.int64)
    if new_part.shape != (global_mesh.ne,):
        raise ValueError(
            f"new_part must have shape ({global_mesh.ne},), got {new_part.shape}"
        )

    old_part = np.empty(global_mesh.ne, dtype=np.int64)
    for lm in locals_:
        old_part[lm.elem_l2g] = lm.rank

    move = np.zeros((nproc, nproc), dtype=np.int64)
    np.add.at(move, (old_part, new_part), 1)
    np.fill_diagonal(move, 0)

    # physical exchange on the VM: one message per (src, dst) element set
    send_plans = [
        [(d, int(move[r, d])) for d in range(nproc) if move[r, d] > 0]
        for r in range(nproc)
    ]
    recv_counts = [int((move[:, r] > 0).sum()) for r in range(nproc)]
    new_sizes = np.bincount(new_part, minlength=nproc)

    comm = resolve_backend(backend, nproc, machine=machine, tracer=tracer)
    # On measured backends the element blocks really cross the wire —
    # `nwords`-sized float64 payloads — so the wall clocks pay for the
    # words the model charges (and the zero-copy transport can carry
    # them).  The virtual machine keeps the modelled-traffic form: the
    # clock only reads `nwords`, and skipping the allocation keeps the
    # deterministic path's host wall unchanged.
    real_wire = bool(getattr(comm, "measured", False))

    def program(comm, sends, n_in, new_size):
        for dest, elems in sends:
            yield from comm.compute(2.0 * elems)  # pack
            words = elems * storage_words_per_elem
            payload = np.zeros(words, dtype=np.float64) if real_wire else None
            yield from comm.send(payload, dest=dest, tag=3, nwords=words)
        for _ in range(n_in):
            _ = yield from comm.recv(tag=3)
        # rebuild local numbering, adjacency, shared flags, SPLs
        yield from comm.compute(rebuild_work_per_elem * new_size)
        yield from comm.barrier()
    res = comm.run(
        program,
        per_rank(send_plans),
        per_rank(recv_counts),
        per_rank([int(s) for s in new_sizes]),
    )
    record_backend_run(tracer, "migrate", res)

    new_locals = decompose(global_mesh, new_part, nproc)
    return MigrateResult(
        locals=new_locals,
        seconds=res.makespan,
        elements_moved=int(move.sum()),
        messages=int((move > 0).sum()),
    )
