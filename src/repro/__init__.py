"""repro — reproduction of Oliker & Biswas (SPAA 1997).

*Efficient Load Balancing and Data Remapping for Adaptive Grid Calculations.*

The package implements the paper's full framework for parallel adaptive
flow computation — flow solver, 3D_TAG-style tetrahedral mesh adaptor,
multilevel mesh repartitioner, similarity-matrix processor reassignment
(optimal/heuristic MWBG and optimal BMCM), remapping cost model, and the
data remapper — on top of a deterministic virtual message-passing machine.
The :mod:`repro.obs` observability layer records every phase as nestable
spans (virtual + wall clocks) exportable to JSONL and Chrome-trace format.

Start with :class:`repro.core.framework.LoadBalancedAdaptiveSolver` or the
scripts in ``examples/``.
"""

__version__ = "0.1.0"

__all__ = ["adapt", "core", "mesh", "obs", "parallel", "partition", "solver"]
