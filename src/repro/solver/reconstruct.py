"""Piecewise-linear solution reconstruction (paper §2).

"Improved accuracy is achieved by using a piecewise linear reconstruction
of the solution in each control volume."  This module implements the
standard vertex-centered recipe:

* per-vertex gradients by weighted least squares over the edge-connected
  neighbours (the edge-based data structure makes the normal equations a
  single pass over edges);
* MUSCL extrapolation of each edge's left/right states to the edge
  midpoint, guarded by a Barth–Jespersen-style limiter that keeps the
  reconstructed values inside the local min/max of the vertex
  neighbourhood (positivity-preserving in practice).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import reference_enabled, scatter_add_rows
from repro.mesh.tetmesh import TetMesh

__all__ = ["lsq_gradients", "limit_barth_jespersen", "muscl_edge_states"]


def lsq_gradients(mesh: TetMesh, q: np.ndarray) -> np.ndarray:
    """Least-squares gradient of each solution component at each vertex.

    Solves, per vertex i, ``min_g Σ_j w_ij (g·(x_j−x_i) − (q_j−q_i))²``
    over edge neighbours j with inverse-distance weights.  Returns
    ``(nv, ncomp, 3)``.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    if q.shape[0] != mesh.nv:
        raise ValueError(f"q must have {mesh.nv} rows, got {q.shape[0]}")
    e = mesh.edges
    d = mesh.coords[e[:, 1]] - mesh.coords[e[:, 0]]  # (ne, 3)
    dist2 = (d**2).sum(axis=1)
    w = 1.0 / np.maximum(dist2, 1e-300)  # inverse-distance-squared weights

    # normal-equation matrices A (nv, 3, 3) and right sides b (nv, ncomp, 3)
    outer = w[:, None, None] * d[:, :, None] * d[:, None, :]
    dq = q[e[:, 1]] - q[e[:, 0]]  # (ne, ncomp)
    rhs = w[:, None, None] * dq[:, :, None] * d[:, None, :]  # (ne, ncomp, 3)
    if reference_enabled():
        A = np.zeros((mesh.nv, 3, 3))
        np.add.at(A, e[:, 0], outer)
        np.add.at(A, e[:, 1], outer)
        b = np.zeros((mesh.nv, q.shape[1], 3))
        np.add.at(b, e[:, 0], rhs)
        np.add.at(b, e[:, 1], rhs)
    else:
        idx = e.T.ravel()  # all lower endpoints then all upper, as above
        A = scatter_add_rows(idx, np.concatenate([outer, outer]), mesh.nv)
        b = scatter_add_rows(idx, np.concatenate([rhs, rhs]), mesh.nv)

    # regularise rank-deficient stencils (isolated/boundary corners)
    A += 1e-12 * np.eye(3)
    grads = np.linalg.solve(A[:, None], b[..., None])[..., 0]
    return grads


def limit_barth_jespersen(
    mesh: TetMesh, q: np.ndarray, grads: np.ndarray
) -> np.ndarray:
    """Per-vertex limiter ψ ∈ [0, 1] keeping midpoint extrapolations within
    the neighbourhood's min/max envelope.  Returns ``(nv, ncomp)``."""
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    e = mesh.edges
    qmin = q.copy()
    qmax = q.copy()
    np.minimum.at(qmin, e[:, 0], q[e[:, 1]])
    np.minimum.at(qmin, e[:, 1], q[e[:, 0]])
    np.maximum.at(qmax, e[:, 0], q[e[:, 1]])
    np.maximum.at(qmax, e[:, 1], q[e[:, 0]])

    psi = np.ones_like(q)
    half = 0.5 * (mesh.coords[e[:, 1]] - mesh.coords[e[:, 0]])  # to midpoint
    for side, sign in ((0, 1.0), (1, -1.0)):
        v = e[:, side]
        dq = sign * np.einsum("ecx,ex->ec", grads[v], half)  # (ne, ncomp)
        room = np.where(dq > 0, qmax[v] - q[v], qmin[v] - q[v])
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(np.abs(dq) > 1e-300, room / dq, 1.0)
        np.minimum.at(psi, v, np.clip(ratio, 0.0, 1.0))
    return psi


def muscl_edge_states(
    mesh: TetMesh, q: np.ndarray, grads: np.ndarray, psi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Limited left/right states at each edge midpoint: ``(qL, qR)``."""
    e = mesh.edges
    half = 0.5 * (mesh.coords[e[:, 1]] - mesh.coords[e[:, 0]])
    dL = np.einsum("ecx,ex->ec", grads[e[:, 0]], half)
    dR = np.einsum("ecx,ex->ec", grads[e[:, 1]], -half)
    qL = q[e[:, 0]] + psi[e[:, 0]] * dL
    qR = q[e[:, 1]] + psi[e[:, 1]] * dR
    return qL, qR
