"""Flow solver substrate: edge-based finite-volume Euler solver, synthetic
rotor flow fields, and the edge error indicator driving mesh adaption."""

from .euler import EulerSolver, dual_volumes, edge_normals
from .fields import rotor_acoustics_field, spherical_blast_field, uniform_flow
from .indicator import (
    density_indicator,
    edge_error_indicator,
    feature_indicator,
    mach_indicator,
    speed_indicator,
)
from .periodic import box_periodic_pairs, validate_pairs
from .reconstruct import limit_barth_jespersen, lsq_gradients, muscl_edge_states
from .state import (
    GAMMA,
    conservative,
    max_wave_speed,
    pressure,
    primitive,
    sound_speed,
)

__all__ = [
    "EulerSolver",
    "box_periodic_pairs",
    "feature_indicator",
    "limit_barth_jespersen",
    "lsq_gradients",
    "muscl_edge_states",
    "speed_indicator",
    "validate_pairs",
    "GAMMA",
    "conservative",
    "density_indicator",
    "dual_volumes",
    "edge_error_indicator",
    "edge_normals",
    "mach_indicator",
    "max_wave_speed",
    "pressure",
    "primitive",
    "rotor_acoustics_field",
    "sound_speed",
    "spherical_blast_field",
    "uniform_flow",
]
