"""Edge-based, vertex-centered finite-volume Euler solver (paper §2).

The paper's flow code (Strawn & Barth) "solves for the unknowns at the
vertices of the mesh and satisfies the integral conservation laws on
nonoverlapping polyhedral control volumes surrounding these vertices" with
"an edge-based data structure".  This module implements that scheme on the
median-dual tessellation:

* the control volume of vertex ``i`` is a quarter of each incident
  tetrahedron's volume;
* the dual interface between vertices ``i`` and ``j`` inside a shared
  tetrahedron is the pair of triangles joining the edge midpoint, the two
  face centroids containing the edge, and the cell centroid — summing their
  directed areas over all sharing tetrahedra gives the edge coefficient
  ``n_ij`` (median duals close exactly, so a uniform flow is preserved at
  interior vertices);
* fluxes use the Rusanov (local Lax–Friedrichs) approximation, computed
  once per edge and scattered antisymmetrically, so the interior scheme is
  conservative by construction;
* time integration is conventional explicit (forward Euler under a CFL
  bound), as in the paper.

Boundary vertices are held at their initial state (frozen far-field),
which is sufficient for the solver's role here: producing feature-bearing
flow fields whose error indicator drives the mesh adaption experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import reference_enabled, scatter_add_rows
from repro.mesh.tetmesh import TetMesh
from repro.mesh.topology import LOCAL_EDGES
from repro.obs import current_tracer

from .state import GAMMA, max_wave_speed, primitive

__all__ = ["EulerSolver", "dual_volumes", "edge_normals"]


def dual_volumes(mesh: TetMesh) -> np.ndarray:
    """Median-dual control volume per vertex: ¼ of each incident tet."""
    vols = mesh.volumes()
    if reference_enabled():
        out = np.zeros(mesh.nv)
        for c in range(4):
            np.add.at(out, mesh.elems[:, c], vols / 4.0)
        return out
    # corner-major concatenation reproduces the reference's addition order
    return scatter_add_rows(mesh.elems.T.ravel(), np.tile(vols / 4.0, 4), mesh.nv)


def _parity(perm: tuple[int, ...]) -> int:
    inv = sum(
        1
        for i in range(len(perm))
        for j in range(i + 1, len(perm))
        if perm[i] > perm[j]
    )
    return inv % 2


def edge_normals(mesh: TetMesh) -> np.ndarray:
    """Directed median-dual interface area per edge, oriented from
    ``edges[:,0]`` to ``edges[:,1]``.

    Within each (positively oriented) tetrahedron, the dual interface of
    local edge ``(a, b)`` is the two triangles joining the edge midpoint,
    the centroids of the two faces containing the edge, and the cell
    centroid.  Ordering the remaining vertices ``(k, l)`` so that
    ``(a, b, k, l)`` is an even permutation makes the summed directed area
    point from ``a`` to ``b`` consistently, which gives exact closure
    (Σ_j n_ij = 0) at interior vertices — free-stream preservation.
    """
    coords = mesh.coords
    p = coords[mesh.elems]  # (ne, 4, 3)
    cell = p.mean(axis=1)  # (ne, 3)
    reference = reference_enabled()
    out = np.zeros((mesh.nedges, 3))
    all_eids: list[np.ndarray] = []
    all_n: list[np.ndarray] = []
    for le, (a, b) in enumerate(LOCAL_EDGES):
        a, b = int(a), int(b)
        k, l = (c for c in range(4) if c not in (a, b))
        if _parity((a, b, k, l)) == 1:
            k, l = l, k
        xa, xb = p[:, a], p[:, b]
        mid = 0.5 * (xa + xb)
        f1 = (xa + xb + p[:, k]) / 3.0  # centroid of face (a, b, k)
        f2 = (xa + xb + p[:, l]) / 3.0  # centroid of face (a, b, l)
        n = 0.5 * np.cross(f1 - mid, cell - mid) + 0.5 * np.cross(
            cell - mid, f2 - mid
        )
        eids = mesh.elem2edge[:, le]
        # global edges store the lower vertex first; flip the contribution
        # where local a is the edge's higher global vertex
        flip = mesh.edges[eids, 0] != mesh.elems[:, a]
        n = np.where(flip[:, None], -n, n)
        if reference:
            np.add.at(out, eids, n)
        else:
            all_eids.append(eids)
            all_n.append(n)
    if not reference:
        # local-edge-major concatenation matches the reference's order
        out = scatter_add_rows(
            np.concatenate(all_eids), np.concatenate(all_n), mesh.nedges
        )
    return out


@dataclass
class EulerSolver:
    """Explicit edge-based Euler solver on a tetrahedral mesh.

    ``order=1`` uses the vertex states directly at each edge (robust,
    first-order); ``order=2`` applies the paper's piecewise-linear
    reconstruction — limited least-squares MUSCL extrapolation to the edge
    midpoints — before the numerical flux.  ``flux`` selects the Riemann
    solver ("rusanov" or "hllc"); ``time_scheme`` the explicit integrator
    ("euler", "rk2", or "rk3" — strong-stability-preserving forms).
    """

    mesh: TetMesh
    q: np.ndarray  #: (nv, 5) conservative state
    order: int = 1
    periodic_pairs: np.ndarray | None = None  #: (npairs, 2) matched vertices
    flux: str = "rusanov"
    time_scheme: str = "euler"

    def __post_init__(self) -> None:
        from .fluxes import FLUXES

        if self.order not in (1, 2):
            raise ValueError(f"order must be 1 or 2, got {self.order}")
        if self.flux not in FLUXES:
            raise ValueError(
                f"flux must be one of {sorted(FLUXES)}, got {self.flux!r}"
            )
        if self.time_scheme not in ("euler", "rk2", "rk3"):
            raise ValueError(
                f"time_scheme must be euler/rk2/rk3, got {self.time_scheme!r}"
            )
        self._flux_fn = FLUXES[self.flux]
        self.q = np.array(self.q, dtype=np.float64)
        if self.q.shape != (self.mesh.nv, 5):
            raise ValueError(
                f"state must have shape ({self.mesh.nv}, 5), got {self.q.shape}"
            )
        self.vol = dual_volumes(self.mesh)
        self.normals = edge_normals(self.mesh)
        self._boundary = np.zeros(self.mesh.nv, dtype=bool)
        self._boundary[np.unique(self.mesh.bnd_faces)] = True
        if self.periodic_pairs is not None:
            from .periodic import validate_pairs

            self.periodic_pairs = validate_pairs(self.mesh, self.periodic_pairs)
            # periodic vertices are computed DOFs, not frozen far field, and
            # each pair shares one control volume spanning the domain seam;
            # pairs that also touch a NON-periodic boundary face (edges and
            # corners of the seam planes) stay frozen — their lateral
            # boundary patches are not closed by the pairing
            is_per = np.zeros(self.mesh.nv, dtype=bool)
            is_per[self.periodic_pairs.ravel()] = True
            lateral = ~is_per[self.mesh.bnd_faces].all(axis=1)
            on_lateral = np.zeros(self.mesh.nv, dtype=bool)
            on_lateral[np.unique(self.mesh.bnd_faces[lateral])] = True
            self._boundary[self.periodic_pairs.ravel()] = False
            self._boundary[is_per & on_lateral] = True
            a, b = self.periodic_pairs[:, 0], self.periodic_pairs[:, 1]
            combined = self.vol[a] + self.vol[b]
            self.vol = self.vol.copy()
            self.vol[a] = combined
            self.vol[b] = combined
            # mirror the initial state so the pair starts consistent
            self.q[b] = self.q[a]

    @property
    def boundary_vertices(self) -> np.ndarray:
        return np.flatnonzero(self._boundary)

    def residual(self, q: np.ndarray | None = None) -> np.ndarray:
        """Net flux into each control volume (interior scheme)."""
        if q is None:
            q = self.q
        e = self.mesh.edges
        if self.order == 2:
            from .reconstruct import (
                limit_barth_jespersen,
                lsq_gradients,
                muscl_edge_states,
            )

            grads = lsq_gradients(self.mesh, q)
            psi = limit_barth_jespersen(self.mesh, q, grads)
            qL, qR = muscl_edge_states(self.mesh, q, grads, psi)
        else:
            qL = q[e[:, 0]]
            qR = q[e[:, 1]]
        f = self._flux_fn(qL, qR, self.normals)
        if reference_enabled():
            res = np.zeros_like(q)
            np.subtract.at(res, e[:, 0], f)
            np.add.at(res, e[:, 1], f)
        else:
            # x - f == x + (-f) bitwise, so one endpoint-major bincount pass
            # reproduces subtract-then-add exactly
            res = scatter_add_rows(
                e.T.ravel(), np.concatenate([-f, f]), q.shape[0]
            )
        if self.periodic_pairs is not None:
            # the pair is one control volume: residuals accumulate across
            # the seam and both copies receive the combined value
            a, b = self.periodic_pairs[:, 0], self.periodic_pairs[:, 1]
            combined = res[a] + res[b]
            res[a] = combined
            res[b] = combined
        return res

    def stable_dt(self, cfl: float = 0.5) -> float:
        """CFL time step from dual volumes, interface areas, wave speeds."""
        e = self.mesh.edges
        area = np.linalg.norm(self.normals, axis=1)
        lam = np.maximum(
            max_wave_speed(self.q[e[:, 0]]), max_wave_speed(self.q[e[:, 1]])
        )
        if reference_enabled():
            speed_sum = np.zeros(self.mesh.nv)
            np.add.at(speed_sum, e[:, 0], lam * area)
            np.add.at(speed_sum, e[:, 1], lam * area)
        else:
            speed_sum = scatter_add_rows(
                e.T.ravel(), np.tile(lam * area, 2), self.mesh.nv
            )
        with np.errstate(divide="ignore"):
            dt = self.vol / np.maximum(speed_sum, 1e-300)
        return cfl * float(dt.min())

    def _stage(self, q: np.ndarray, dt: float) -> np.ndarray:
        """One forward-Euler stage q + dt·L(q) with frozen boundaries."""
        upd = dt * self.residual(q) / self.vol[:, None]
        upd[self._boundary] = 0.0
        return q + upd

    def step(self, dt: float | None = None, cfl: float = 0.5) -> float:
        """Advance one explicit step of the selected scheme; returns dt.

        Boundary vertices are frozen (far-field Dirichlet).  RK2/RK3 are
        the strong-stability-preserving (Shu–Osher) convex forms.
        """
        if dt is None:
            dt = self.stable_dt(cfl)
        q0 = self.q
        if self.time_scheme == "euler":
            self.q = self._stage(q0, dt)
        elif self.time_scheme == "rk2":
            q1 = self._stage(q0, dt)
            self.q = 0.5 * q0 + 0.5 * self._stage(q1, dt)
        else:  # rk3
            q1 = self._stage(q0, dt)
            q2 = 0.75 * q0 + 0.25 * self._stage(q1, dt)
            self.q = q0 / 3.0 + (2.0 / 3.0) * self._stage(q2, dt)
        tracer = current_tracer()
        if tracer is not None and dt > 0:
            dq = (self.q - q0) / dt
            tracer.metric(
                "repro.solver.residual_norm",
                float(np.sqrt(np.mean(dq * dq))),
                kind="histogram",
                scheme=self.time_scheme,
            )
        return dt

    def run(self, n_steps: int, cfl: float = 0.5) -> np.ndarray:
        """Run ``n_steps`` explicit iterations; returns the state."""
        for _ in range(n_steps):
            self.step(cfl=cfl)
        return self.q

    def mach(self) -> np.ndarray:
        """Mach number per vertex (diagnostic)."""
        rho, vel, p = primitive(self.q)
        c = np.sqrt(GAMMA * p / rho)
        return np.linalg.norm(vel, axis=1) / c

    def work_per_iteration(self) -> float:
        """Abstract work units per solver iteration (edge-dominated, §2:
        cell-vertex edge schemes are inherently efficient)."""
        return 8.0 * self.mesh.nedges + 2.0 * self.mesh.nv
