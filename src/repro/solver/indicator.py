"""Edge error indicator computed from the flow solution (paper §3).

"At each mesh adaption step, tetrahedral elements are targeted for
coarsening, refinement, or no change by computing an error indicator for
each edge."  Following the solution-difference family of indicators used
with 3D_TAG, the indicator of edge (i, j) is the jump of a monitored
quantity across the edge, optionally scaled by edge length (so refinement
stops once an edge is short enough to resolve the local gradient).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.geometry import edge_lengths
from repro.mesh.tetmesh import TetMesh

from .state import primitive

__all__ = ["edge_error_indicator", "density_indicator", "mach_indicator"]


def edge_error_indicator(
    mesh: TetMesh,
    vertex_quantity: np.ndarray,
    length_scaled: bool = True,
) -> np.ndarray:
    """|Δq| across each edge, optionally multiplied by edge length."""
    q = np.asarray(vertex_quantity, dtype=np.float64)
    if q.shape != (mesh.nv,):
        raise ValueError(f"expected one value per vertex ({mesh.nv}), got {q.shape}")
    jump = np.abs(q[mesh.edges[:, 1]] - q[mesh.edges[:, 0]])
    if length_scaled:
        jump = jump * edge_lengths(mesh.coords, mesh.edges)
    return jump


def density_indicator(mesh: TetMesh, q: np.ndarray) -> np.ndarray:
    """Density-jump indicator — the workhorse for shock-dominated flows."""
    rho, _vel, _p = primitive(q)
    return edge_error_indicator(mesh, rho)


def feature_indicator(
    mesh: TetMesh, vertex_values: np.ndarray, combine: str = "max"
) -> np.ndarray:
    """Feature-detection indicator: edge value from its endpoint values.

    Jump indicators pick out edges *crossing* a feature; feature-detection
    indicators (velocity or vorticity magnitude, standard in rotorcraft
    adaption) mark every edge *inside* the feature region, so the targeted
    set stays spatially compact — which is what gives the paper its tightly
    clustered refinement regions (growth factors well below marking-fraction
    blow-up).
    """
    v = np.asarray(vertex_values, dtype=np.float64)
    if v.shape != (mesh.nv,):
        raise ValueError(f"expected one value per vertex ({mesh.nv}), got {v.shape}")
    a, b = v[mesh.edges[:, 0]], v[mesh.edges[:, 1]]
    if combine == "max":
        return np.maximum(a, b)
    if combine == "mean":
        return 0.5 * (a + b)
    raise ValueError(f"combine must be 'max' or 'mean', got {combine!r}")


def speed_indicator(mesh: TetMesh, q: np.ndarray) -> np.ndarray:
    """Velocity-magnitude feature indicator (rotor wake detection)."""
    _rho, vel, _p = primitive(q)
    return feature_indicator(mesh, np.linalg.norm(vel, axis=1))


def mach_indicator(mesh: TetMesh, q: np.ndarray) -> np.ndarray:
    """Mach-number-jump indicator (what the rotor papers adapt on)."""
    from .state import GAMMA

    rho, vel, p = primitive(q)
    c = np.sqrt(GAMMA * np.maximum(p, 1e-300) / rho)
    mach = np.linalg.norm(vel, axis=1) / c
    return edge_error_indicator(mesh, mach)
