"""Flow state: conservative variables and the ideal-gas EOS.

The state vector per vertex is ``[rho, rho*u, rho*v, rho*w, E]`` with
``E = p/(gamma-1) + rho*|v|^2/2`` and ``gamma = 1.4`` (air).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GAMMA",
    "conservative",
    "primitive",
    "pressure",
    "sound_speed",
    "max_wave_speed",
]

GAMMA = 1.4


def conservative(rho: np.ndarray, vel: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Build ``(n, 5)`` conservative states from density, velocity, pressure."""
    rho = np.asarray(rho, dtype=np.float64)
    vel = np.asarray(vel, dtype=np.float64).reshape(rho.shape[0], 3)
    p = np.asarray(p, dtype=np.float64)
    if np.any(rho <= 0) or np.any(p <= 0):
        raise ValueError("density and pressure must be positive")
    q = np.empty((rho.shape[0], 5))
    q[:, 0] = rho
    q[:, 1:4] = rho[:, None] * vel
    q[:, 4] = p / (GAMMA - 1.0) + 0.5 * rho * (vel**2).sum(axis=1)
    return q


def primitive(q: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split conservative states into (rho, velocity, pressure)."""
    q = np.asarray(q, dtype=np.float64)
    rho = q[:, 0]
    vel = q[:, 1:4] / rho[:, None]
    p = (GAMMA - 1.0) * (q[:, 4] - 0.5 * rho * (vel**2).sum(axis=1))
    return rho, vel, p


def pressure(q: np.ndarray) -> np.ndarray:
    return primitive(q)[2]


def sound_speed(q: np.ndarray) -> np.ndarray:
    rho, _vel, p = primitive(q)
    return np.sqrt(GAMMA * np.maximum(p, 1e-300) / rho)


def max_wave_speed(q: np.ndarray) -> np.ndarray:
    """|v| + c per state — the Rusanov dissipation speed."""
    _rho, vel, _p = primitive(q)
    return np.linalg.norm(vel, axis=1) + sound_speed(q)
