"""Synthetic flow fields standing in for the rotor-acoustics solution.

The paper's error indicator is computed from an Euler solution around a
UH-1H rotor blade at transonic hover-tip Mach numbers — a flow dominated by
a compact high-gradient region near the blade (the shock system whose
acoustics [23] studies).  These analytic fields reproduce that *structure*:
smooth background flow plus localized steep features tied to the
:class:`~repro.mesh.generate.BladeSpec`, so the fraction-based edge
targeting of Real_1/2/3 selects spatially-correlated regions exactly as a
real solution would.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.generate import BladeSpec

from .state import conservative

__all__ = ["uniform_flow", "rotor_acoustics_field", "spherical_blast_field"]


def uniform_flow(
    coords: np.ndarray,
    rho: float = 1.0,
    vel: tuple[float, float, float] = (0.5, 0.0, 0.0),
    p: float = 1.0,
) -> np.ndarray:
    """Constant free-stream state at every vertex."""
    n = coords.shape[0]
    return conservative(
        np.full(n, rho), np.tile(np.asarray(vel, dtype=np.float64), (n, 1)),
        np.full(n, p),
    )


def rotor_acoustics_field(
    coords: np.ndarray,
    blade: BladeSpec,
    tip_mach: float = 0.9,
    wave_radius: float | None = None,
) -> np.ndarray:
    """Blade-bound shock layer plus an impulsive acoustic wave front.

    Density and pressure rise steeply inside a thin layer around the blade
    (the transonic shock system) and across a cylindrical wave front of
    radius ``wave_radius`` centred on the blade tip (the high-speed
    impulsive noise front of [23]); velocity swirls around the blade axis,
    scaled to ``tip_mach``.
    """
    pts = np.asarray(coords, dtype=np.float64)
    d_blade = blade.distance(pts)
    tip = np.asarray(blade.end)
    r_tip = np.linalg.norm(pts - tip, axis=1)
    if wave_radius is None:
        wave_radius = 4.0 * blade.radius

    # steep but smooth bumps: widths set by the blade radius
    w = blade.radius
    layer = np.exp(-((d_blade / (1.5 * w)) ** 2))
    front = np.exp(-(((r_tip - wave_radius) / (0.75 * w)) ** 2))

    rho = 1.0 + 0.8 * layer + 0.4 * front
    p = 1.0 + 1.2 * layer + 0.6 * front

    # swirl about the blade axis (unit x of the blade direction)
    axis = np.asarray(blade.end) - np.asarray(blade.start)
    axis = axis / np.linalg.norm(axis)
    rel = pts - np.asarray(blade.start)
    tangential = np.cross(axis, rel)
    norm = np.linalg.norm(tangential, axis=1, keepdims=True)
    tangential = np.divide(
        tangential, norm, out=np.zeros_like(tangential), where=norm > 1e-12
    )
    speed = tip_mach * np.exp(-d_blade / (4.0 * w))
    vel = tangential * speed[:, None]
    return conservative(rho, vel, p)


def spherical_blast_field(
    coords: np.ndarray,
    center: tuple[float, float, float],
    radius: float,
    strength: float = 4.0,
) -> np.ndarray:
    """Sod-like spherical blast: hot dense ball in quiescent gas.

    A classic adaption driver: the contact/shock structure expands through
    the mesh, exercising refinement *and* coarsening as features move.
    """
    pts = np.asarray(coords, dtype=np.float64)
    r = np.linalg.norm(pts - np.asarray(center), axis=1)
    inside = 0.5 * (1.0 - np.tanh((r - radius) / (0.15 * radius)))
    rho = 1.0 + (strength - 1.0) * inside
    p = 1.0 + (strength - 1.0) * inside
    vel = np.zeros((pts.shape[0], 3))
    return conservative(rho, vel, p)
