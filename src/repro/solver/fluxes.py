"""Numerical flux functions for the edge-based Euler solver.

The baseline is the Rusanov (local Lax–Friedrichs) flux — maximally robust
and maximally dissipative.  HLLC restores the contact wave and is the
standard choice for production vertex-centered codes; both share the
interface ``flux(qL, qR, n) -> (nedges, 5)`` with ``n`` the directed dual
interface areas.
"""

from __future__ import annotations

import numpy as np

from .state import GAMMA, max_wave_speed, primitive

__all__ = ["rusanov_flux", "hllc_flux", "physical_flux", "FLUXES"]


def physical_flux(q: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Euler flux of states ``q`` projected on directed areas ``n``."""
    rho, vel, p = primitive(q)
    vn = np.einsum("ij,ij->i", vel, n)
    f = np.empty_like(q)
    f[:, 0] = rho * vn
    f[:, 1:4] = rho[:, None] * vel * vn[:, None] + p[:, None] * n
    f[:, 4] = (q[:, 4] + p) * vn
    return f


def rusanov_flux(qL: np.ndarray, qR: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Local Lax–Friedrichs: central flux plus |λ|max jump dissipation."""
    area = np.linalg.norm(n, axis=1)
    lam = np.maximum(max_wave_speed(qL), max_wave_speed(qR))
    f = 0.5 * (physical_flux(qL, n) + physical_flux(qR, n))
    f -= 0.5 * (lam * area)[:, None] * (qR - qL)
    return f


def hllc_flux(qL: np.ndarray, qR: np.ndarray, n: np.ndarray) -> np.ndarray:
    """HLLC approximate Riemann solver (Toro), per edge.

    Wave speeds from the Einfeldt/Roe-average estimates; the contact wave
    is resolved explicitly, which makes the scheme markedly less
    dissipative than Rusanov on contact/shear-dominated flows.
    """
    area = np.linalg.norm(n, axis=1)
    safe = np.maximum(area, 1e-300)
    nhat = n / safe[:, None]

    rhoL, velL, pL = primitive(qL)
    rhoR, velR, pR = primitive(qR)
    unL = np.einsum("ij,ij->i", velL, nhat)
    unR = np.einsum("ij,ij->i", velR, nhat)
    cL = np.sqrt(GAMMA * np.maximum(pL, 1e-300) / rhoL)
    cR = np.sqrt(GAMMA * np.maximum(pR, 1e-300) / rhoR)

    # Einfeldt-style bounds
    sL = np.minimum(unL - cL, unR - cR)
    sR = np.maximum(unL + cL, unR + cR)
    # contact speed
    denom = rhoL * (sL - unL) - rhoR * (sR - unR)
    sM = (pR - pL + rhoL * unL * (sL - unL) - rhoR * unR * (sR - unR)) / np.where(
        np.abs(denom) > 1e-300, denom, 1e-300
    )

    fL = physical_flux(qL, nhat)
    fR = physical_flux(qR, nhat)

    def star_state(q, rho, un, p, s, sm):
        """HLLC star-region state (vector over edges)."""
        factor = rho * (s - un) / np.where(np.abs(s - sm) > 1e-300, s - sm, 1e-300)
        qs = np.empty_like(q)
        qs[:, 0] = factor
        vel = q[:, 1:4] / rho[:, None]
        qs[:, 1:4] = factor[:, None] * (vel + (sm - un)[:, None] * nhat)
        e = q[:, 4] / rho
        qs[:, 4] = factor * (
            e + (sm - un) * (sm + p / (rho * np.where(np.abs(s - un) > 1e-300,
                                                      s - un, 1e-300)))
        )
        return qs

    qLs = star_state(qL, rhoL, unL, pL, sL, sM)
    qRs = star_state(qR, rhoR, unR, pR, sR, sM)

    f = np.where(
        (sL >= 0)[:, None],
        fL,
        np.where(
            (sM >= 0)[:, None],
            fL + sL[:, None] * (qLs - qL),
            np.where(
                (sR >= 0)[:, None],
                fR + sR[:, None] * (qRs - qR),
                fR,
            ),
        ),
    )
    return f * area[:, None]


#: Registry used by :class:`~repro.solver.euler.EulerSolver`.
FLUXES = {"rusanov": rusanov_flux, "hllc": hllc_flux}
