"""Periodic boundary support (paper §2).

"For a rotor in hover, the grid encompasses an appropriate fraction of the
rotor azimuth.  Periodicity is enforced by forming control volumes that
include information from opposite sides of the grid domain."

We realise the same idea on matched vertex pairs: each periodic pair is a
single degree of freedom whose control volume is the union of the two
half-volumes; residuals accumulate across the pair and the combined update
is applied to both copies.  :func:`box_periodic_pairs` matches opposite
faces of a box domain (our stand-in for an azimuthal wedge).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.tetmesh import TetMesh

__all__ = ["box_periodic_pairs", "validate_pairs"]


def box_periodic_pairs(mesh: TetMesh, axis: int, tol: float = 1e-9) -> np.ndarray:
    """Match boundary vertices on the two faces normal to ``axis``.

    Returns an ``(npairs, 2)`` array of (low-face, high-face) vertex ids.
    Raises if the faces do not match point-for-point (the mesh generator
    guarantees they do for box meshes).
    """
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1, or 2, got {axis}")
    lo = mesh.coords[:, axis].min()
    hi = mesh.coords[:, axis].max()
    on_lo = np.flatnonzero(np.abs(mesh.coords[:, axis] - lo) <= tol)
    on_hi = np.flatnonzero(np.abs(mesh.coords[:, axis] - hi) <= tol)
    if on_lo.shape[0] != on_hi.shape[0]:
        raise ValueError(
            f"periodic faces differ in vertex count: {on_lo.shape[0]} vs "
            f"{on_hi.shape[0]}"
        )
    others = [a for a in range(3) if a != axis]
    key_lo = on_lo[np.lexsort(tuple(mesh.coords[on_lo, a] for a in others))]
    key_hi = on_hi[np.lexsort(tuple(mesh.coords[on_hi, a] for a in others))]
    if not np.allclose(
        mesh.coords[key_lo][:, others], mesh.coords[key_hi][:, others], atol=tol
    ):
        raise ValueError("periodic faces are not point-matched")
    return np.column_stack([key_lo, key_hi])


def validate_pairs(mesh: TetMesh, pairs: np.ndarray) -> np.ndarray:
    """Sanity-check a periodic pairing: shape, range, no duplicates."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must be (n, 2), got {pairs.shape}")
    if pairs.size:
        if pairs.min() < 0 or pairs.max() >= mesh.nv:
            raise ValueError("pair vertex id out of range")
        flat = pairs.ravel()
        if np.unique(flat).shape[0] != flat.shape[0]:
            raise ValueError("a vertex may appear in at most one periodic pair")
    return pairs
