"""Partition quality metrics: edge cut, load imbalance, communication volume."""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["edgecut", "imbalance", "loads", "comm_volume"]


def loads(graph: Graph, part: np.ndarray, k: int | None = None) -> np.ndarray:
    """Total vertex weight per partition."""
    part = np.asarray(part, dtype=np.int64)
    if k is None:
        k = int(part.max()) + 1 if part.size else 0
    return np.bincount(part, weights=graph.vwgt.astype(np.float64), minlength=k)


def edgecut(graph: Graph, part: np.ndarray) -> int:
    """Total weight of edges whose endpoints lie in different partitions."""
    part = np.asarray(part, dtype=np.int64)
    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.ptr))
    cut = part[src] != part[graph.adj]
    return int(graph.ewgt[cut].sum()) // 2  # each edge counted twice


def imbalance(graph: Graph, part: np.ndarray, k: int) -> float:
    """Max partition load over the perfectly-balanced load (>= 1.0).

    This is the quantity whose decrease the paper's cost model calls the
    computational gain (max-loaded processor dominates a synchronous solver).
    """
    ld = loads(graph, part, k)
    avg = graph.total_vwgt() / k
    if avg == 0:
        return 1.0
    return float(ld.max() / avg)


def comm_volume(graph: Graph, part: np.ndarray, k: int) -> int:
    """Total communication volume: for each vertex, the number of distinct
    remote partitions adjacent to it (the vertices it must be sent to)."""
    part = np.asarray(part, dtype=np.int64)
    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.ptr))
    remote = part[src] != part[graph.adj]
    if not remote.any():
        return 0
    pairs = np.column_stack([src[remote], part[graph.adj[remote]]])
    uniq = np.unique(pairs, axis=0)
    return int(uniq.shape[0])
