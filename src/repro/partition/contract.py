"""Graph contraction: collapse a matching into a coarser graph."""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["contract"]


def contract(graph: Graph, match: np.ndarray) -> tuple[Graph, np.ndarray]:
    """Collapse matched pairs; returns ``(coarse_graph, cmap)``.

    ``cmap[v]`` is the coarse vertex of fine vertex ``v``.  Coarse vertex
    weights are the sums of their constituents; parallel edges between
    coarse vertices merge with weights summed; internal edges vanish.
    """
    n = graph.n
    match = np.asarray(match, dtype=np.int64)
    if match.shape != (n,):
        raise ValueError(f"match must have shape ({n},)")
    # representative = min(v, match[v]); coarse ids by order of representative
    rep = np.minimum(np.arange(n), match)
    uniq, cmap = np.unique(rep, return_inverse=True)
    nc = uniq.shape[0]
    cvwgt = np.bincount(cmap, weights=graph.vwgt.astype(np.float64), minlength=nc)
    # fine edges -> coarse edges
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.ptr))
    csrc = cmap[src]
    cdst = cmap[graph.adj]
    keep = csrc != cdst
    pairs = np.column_stack([csrc[keep], cdst[keep]])
    # each undirected fine edge appears twice; halve by keeping src < dst
    half = pairs[:, 0] < pairs[:, 1]
    coarse = Graph.from_pairs(
        pairs[half], nc, vwgt=cvwgt.astype(np.int64), ewgt=graph.ewgt[keep][half]
    )
    return coarse, cmap
