"""Superelement agglomeration (paper §4.1).

"One minor disadvantage of using the dual grid is when the initial
computational mesh is either too large ...  For extremely large initial
meshes, the partitioning time will be excessive.  This problem can be
circumvented by agglomerating groups of elements into larger
superelements."

:func:`agglomerate` repeatedly contracts heavy-edge matchings of the dual
graph until it shrinks below a target size, returning the superelement
graph and the element→superelement map; :func:`expand_partition` projects
a superelement partition back to elements.
"""

from __future__ import annotations

import numpy as np

from .contract import contract
from .graph import Graph
from .matching import heavy_edge_matching

__all__ = ["agglomerate", "expand_partition"]


def agglomerate(
    graph: Graph, target_n: int, seed: int = 0, max_rounds: int = 32
) -> tuple[Graph, np.ndarray]:
    """Contract ``graph`` until it has at most ``target_n`` vertices.

    Returns ``(supergraph, emap)`` with ``emap[v]`` the superelement of
    fine vertex ``v``.  Superelement weights are the sums of their
    members, so any partitioner balancing the supergraph balances the
    original weights (up to superelement granularity).
    """
    if target_n < 1:
        raise ValueError(f"target_n must be >= 1, got {target_n}")
    rng = np.random.default_rng(seed)
    emap = np.arange(graph.n, dtype=np.int64)
    g = graph
    rounds = 0
    while g.n > target_n and rounds < max_rounds:
        match = heavy_edge_matching(g, rng)
        coarse, cmap = contract(g, match)
        if coarse.n >= g.n:  # nothing matched (e.g. no edges): stop
            break
        emap = cmap[emap]
        g = coarse
        rounds += 1
    return g, emap


def expand_partition(emap: np.ndarray, superpart: np.ndarray) -> np.ndarray:
    """Project a superelement partition back onto the fine elements."""
    emap = np.asarray(emap, dtype=np.int64)
    superpart = np.asarray(superpart, dtype=np.int64)
    if emap.size and emap.max() >= superpart.shape[0]:
        raise ValueError("emap refers to superelements outside superpart")
    return superpart[emap]
