"""Heavy-edge matching for multilevel coarsening (Karypis & Kumar).

Visits vertices in a (seeded) random order; each unmatched vertex matches
the unmatched neighbour connected by the heaviest edge.  Collapsing heavy
edges early removes as much edge weight as possible from coarser levels,
which is what lets the coarsest-level partition already be a good one.

The optimized implementation presorts every adjacency list by
``(-weight, neighbour)`` with one global argsort, so the per-vertex visit
is a short scan that stops at the first unmatched neighbour — no
per-vertex ``flatnonzero``/``lexsort`` allocations.  The scan order equals
the reference's lexsort order, so both produce identical matchings
(:mod:`repro.kernels` selects; ``tests/kernels`` verifies).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import reference_enabled

from .graph import Graph

__all__ = ["heavy_edge_matching", "heavy_edge_matching_reference"]


def heavy_edge_matching(
    graph: Graph,
    rng: np.random.Generator,
    allowed: np.ndarray | None = None,
) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = partner of ``v`` (or ``v`` itself).

    Parameters
    ----------
    allowed:
        Optional per-vertex labels; vertices may only match within the same
        label.  The seeded repartitioner uses this to keep coarsening from
        crossing old-partition boundaries, so the old partition projects
        exactly onto every coarse level.
    """
    if reference_enabled():
        return heavy_edge_matching_reference(graph, rng, allowed)
    n = graph.n
    order = rng.permutation(n).tolist()
    # one pass-wide argsort puts each adjacency segment in (-w, nbr) order:
    # the first free neighbour found in a scan IS the heaviest-edge partner
    # (ties broken by smaller neighbour id), as in the reference lexsort
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.ptr))
    by_weight = np.lexsort((graph.adj, -graph.ewgt, src))
    adj = graph.adj[by_weight].tolist()
    ptr = graph.ptr.tolist()
    match = [-1] * n
    if allowed is None:
        for v in order:
            if match[v] != -1:
                continue
            m = v
            for i in range(ptr[v], ptr[v + 1]):
                u = adj[i]
                if match[u] == -1:
                    m = u
                    break
            match[v] = m
            if m != v:
                match[m] = v
    else:
        lab = np.asarray(allowed).tolist()
        for v in order:
            if match[v] != -1:
                continue
            m = v
            lv = lab[v]
            for i in range(ptr[v], ptr[v + 1]):
                u = adj[i]
                if match[u] == -1 and lab[u] == lv:
                    m = u
                    break
            match[v] = m
            if m != v:
                match[m] = v
    return np.asarray(match, dtype=np.int64)


def heavy_edge_matching_reference(
    graph: Graph,
    rng: np.random.Generator,
    allowed: np.ndarray | None = None,
) -> np.ndarray:
    """Reference matching: per-vertex ``flatnonzero``/``lexsort`` selection."""
    n = graph.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    ptr, adj, ewgt = graph.ptr, graph.adj, graph.ewgt
    for v in order:
        if match[v] != -1:
            continue
        nbrs = adj[ptr[v] : ptr[v + 1]]
        wts = ewgt[ptr[v] : ptr[v + 1]]
        free = match[nbrs] == -1
        if allowed is not None:
            free &= allowed[nbrs] == allowed[v]
        if free.any():
            cand = np.flatnonzero(free)
            # heaviest edge; ties broken by smaller neighbour id for determinism
            w = wts[cand]
            best = cand[np.lexsort((nbrs[cand], -w))[0]]
            u = nbrs[best]
            match[v] = u
            match[u] = v
        else:
            match[v] = v
    return match
