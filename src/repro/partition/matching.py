"""Heavy-edge matching for multilevel coarsening (Karypis & Kumar).

Visits vertices in a (seeded) random order; each unmatched vertex matches
the unmatched neighbour connected by the heaviest edge.  Collapsing heavy
edges early removes as much edge weight as possible from coarser levels,
which is what lets the coarsest-level partition already be a good one.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["heavy_edge_matching"]


def heavy_edge_matching(
    graph: Graph,
    rng: np.random.Generator,
    allowed: np.ndarray | None = None,
) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = partner of ``v`` (or ``v`` itself).

    Parameters
    ----------
    allowed:
        Optional per-vertex labels; vertices may only match within the same
        label.  The seeded repartitioner uses this to keep coarsening from
        crossing old-partition boundaries, so the old partition projects
        exactly onto every coarse level.
    """
    n = graph.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    ptr, adj, ewgt = graph.ptr, graph.adj, graph.ewgt
    for v in order:
        if match[v] != -1:
            continue
        nbrs = adj[ptr[v] : ptr[v + 1]]
        wts = ewgt[ptr[v] : ptr[v + 1]]
        free = match[nbrs] == -1
        if allowed is not None:
            free &= allowed[nbrs] == allowed[v]
        if free.any():
            cand = np.flatnonzero(free)
            # heaviest edge; ties broken by smaller neighbour id for determinism
            w = wts[cand]
            best = cand[np.lexsort((nbrs[cand], -w))[0]]
            u = nbrs[best]
            match[v] = u
            match[u] = v
        else:
            match[v] = v
    return match
