"""Multilevel graph partitioning (paper §4.2) and baselines."""

from .agglomerate import agglomerate, expand_partition
from .baselines import block_partition, random_partition, rcb_partition
from .contract import contract
from .fm_refine import fm_bisection_refine, kway_greedy_refine
from .graph import Graph
from .initial import greedy_graph_growing
from .matching import heavy_edge_matching
from .multilevel import MultilevelPartitioner, multilevel_bisect, multilevel_kway
from .parallel_model import partition_time
from .quality import comm_volume, edgecut, imbalance, loads
from .repartition import repartition
from .spectral import inertial_bisect, spectral_bisect

__all__ = [
    "Graph",
    "agglomerate",
    "expand_partition",
    "inertial_bisect",
    "spectral_bisect",
    "MultilevelPartitioner",
    "block_partition",
    "comm_volume",
    "contract",
    "edgecut",
    "fm_bisection_refine",
    "greedy_graph_growing",
    "heavy_edge_matching",
    "imbalance",
    "kway_greedy_refine",
    "loads",
    "multilevel_bisect",
    "multilevel_kway",
    "partition_time",
    "random_partition",
    "rcb_partition",
    "repartition",
]
