"""Greedy graph growing bisection of the coarsest graph (paper §4.2:
"applies a greedy graph growing algorithm for partitioning the coarsest
graph").

A region is grown from a seed vertex by repeatedly absorbing the frontier
vertex with the highest gain (edge weight toward the region minus edge
weight away) until it holds the target share of the total vertex weight.
Several seeds are tried; the bisection with the smallest cut that meets the
balance tolerance wins.
"""

from __future__ import annotations

import heapq

import numpy as np

from .graph import Graph
from .quality import edgecut

__all__ = ["greedy_graph_growing"]


def greedy_graph_growing(
    graph: Graph,
    target_frac: float,
    rng: np.random.Generator,
    ntries: int = 4,
) -> np.ndarray:
    """Bisect ``graph`` into sides {0, 1}; side 0 aims for ``target_frac``
    of the total vertex weight.  Returns the side array."""
    if not 0.0 < target_frac < 1.0:
        raise ValueError(f"target_frac must be in (0, 1), got {target_frac}")
    n = graph.n
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    total = graph.total_vwgt()
    target = target_frac * total

    best_side = None
    best_cut = np.inf
    seeds = rng.choice(n, size=min(ntries, n), replace=False)
    for seed in seeds:
        side = _grow(graph, int(seed), target)
        cut = edgecut(graph, side)
        # prefer smaller cut; require both sides non-empty
        if side.min() == 0 and side.max() == 1 and cut < best_cut:
            best_cut, best_side = cut, side
    if best_side is None:  # pathological (e.g. single vertex dominating)
        side = np.zeros(n, dtype=np.int64)
        side[np.argsort(graph.vwgt)[: n // 2]] = 1
        best_side = side
    return best_side


def _grow(graph: Graph, seed: int, target: float) -> np.ndarray:
    n = graph.n
    in_region = np.zeros(n, dtype=bool)
    gain = np.zeros(n, dtype=np.int64)
    heap: list[tuple[int, int]] = []
    grown = 0.0

    def absorb(v: int) -> None:
        nonlocal grown
        in_region[v] = True
        grown += graph.vwgt[v]
        nbrs = graph.neighbors(v)
        wts = graph.edge_weights(v)
        for u, w in zip(nbrs, wts):
            if not in_region[u]:
                gain[u] += 2 * w  # edge flips from cut to internal
                heapq.heappush(heap, (-int(gain[u]), int(u)))

    absorb(seed)
    while grown < target and heap:
        g, v = heapq.heappop(heap)
        if in_region[v] or -g != gain[v]:
            continue  # stale heap entry
        if grown + graph.vwgt[v] > 1.5 * target and grown > 0.5 * target:
            continue  # adding a huge vertex would overshoot badly
        absorb(v)
    if grown < target:
        # graph was disconnected: top up with the lightest outside vertices
        outside = np.flatnonzero(~in_region)
        for v in outside[np.argsort(graph.vwgt[outside])]:
            if grown >= target:
                break
            in_region[v] = True
            grown += graph.vwgt[v]
    return np.where(in_region, 0, 1).astype(np.int64)
