"""Baseline partitioners for comparison and testing."""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["random_partition", "block_partition", "rcb_partition"]


def random_partition(graph: Graph, k: int, seed: int = 0) -> np.ndarray:
    """Uniform random assignment — the worst-case locality baseline."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, k, size=graph.n).astype(np.int64)


def block_partition(graph: Graph, k: int) -> np.ndarray:
    """Contiguous index blocks balanced by vertex weight.

    Splits the vertex sequence at the points where the cumulative weight
    crosses multiples of ``total/k`` — the "no partitioner" baseline that a
    mesh generator's element ordering would give you.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    cw = np.cumsum(graph.vwgt)
    total = cw[-1] if cw.size else 0
    bounds = total * (np.arange(1, k) / k)
    # bucket each vertex by its weight midpoint so an indivisible heavy
    # vertex lands on whichever side of the boundary it overlaps most
    mid = cw - graph.vwgt / 2.0
    part = np.searchsorted(bounds, mid, side="right").astype(np.int64)
    return np.minimum(part, k - 1)


def rcb_partition(points: np.ndarray, vwgt: np.ndarray, k: int) -> np.ndarray:
    """Recursive coordinate bisection on vertex coordinates.

    The geometric method classically used for mesh partitioning before
    multilevel graph methods; splits along the longest axis at the weighted
    median, recursively, with proportional weight splits for non-power-of-2
    ``k``.
    """
    points = np.asarray(points, dtype=np.float64)
    vwgt = np.asarray(vwgt, dtype=np.float64)
    if points.shape[0] != vwgt.shape[0]:
        raise ValueError("points and vwgt must align")
    out = np.zeros(points.shape[0], dtype=np.int64)
    _rcb(points, vwgt, np.arange(points.shape[0]), k, 0, out)
    return out


def _rcb(points, vwgt, idx, k, offset, out):
    if k == 1 or idx.size <= 1:
        out[idx] = offset
        return
    k0 = (k + 1) // 2
    pts = points[idx]
    axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
    order = idx[np.argsort(pts[:, axis], kind="stable")]
    cw = np.cumsum(vwgt[order])
    total = cw[-1]
    split = int(np.searchsorted(cw, total * k0 / k, side="left")) + 1
    split = min(max(split, 1), idx.size - 1)
    _rcb(points, vwgt, order[:split], k0, offset, out)
    _rcb(points, vwgt, order[split:], k - k0, offset + k0, out)
