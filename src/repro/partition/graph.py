"""Weighted undirected graph in CSR form for partitioning.

The load balancer partitions the *dual graph* of the initial mesh: dual
vertices are tetrahedra, dual edges join elements sharing a face, vertex
weights are the ``Wcomp``/``Wremap`` of paper §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Graph"]


@dataclass
class Graph:
    """Undirected graph: CSR adjacency with vertex and edge weights.

    ``adj[ptr[v]:ptr[v+1]]`` are the neighbours of ``v``; ``ewgt`` is
    aligned with ``adj`` (each undirected edge appears twice, once per
    direction, with equal weight).
    """

    ptr: np.ndarray
    adj: np.ndarray
    vwgt: np.ndarray
    ewgt: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.ptr = np.asarray(self.ptr, dtype=np.int64)
        self.adj = np.asarray(self.adj, dtype=np.int64)
        self.vwgt = np.asarray(self.vwgt, dtype=np.int64)
        if self.ewgt is None:
            self.ewgt = np.ones(self.adj.shape[0], dtype=np.int64)
        else:
            self.ewgt = np.asarray(self.ewgt, dtype=np.int64)
        if self.ptr.shape[0] != self.n + 1:
            raise ValueError("ptr length must be n+1")
        if self.ewgt.shape != self.adj.shape:
            raise ValueError("ewgt must align with adj")
        if self.vwgt.shape[0] != self.n:
            raise ValueError("vwgt must have one entry per vertex")

    @property
    def n(self) -> int:
        return self.vwgt.shape[0] if self.vwgt is not None else self.ptr.shape[0] - 1

    @property
    def nedges(self) -> int:
        """Number of undirected edges."""
        return self.adj.shape[0] // 2

    def total_vwgt(self) -> int:
        return int(self.vwgt.sum())

    def neighbors(self, v: int) -> np.ndarray:
        return self.adj[self.ptr[v] : self.ptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        return self.ewgt[self.ptr[v] : self.ptr[v + 1]]

    @classmethod
    def from_pairs(
        cls,
        pairs: np.ndarray,
        n: int,
        vwgt: np.ndarray | None = None,
        ewgt: np.ndarray | None = None,
    ) -> "Graph":
        """Build from an ``(m, 2)`` list of undirected edges.

        Parallel edges are merged with weights summed; self-loops dropped.
        """
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if ewgt is None:
            ewgt = np.ones(pairs.shape[0], dtype=np.int64)
        else:
            ewgt = np.asarray(ewgt, dtype=np.int64)
        keep = pairs[:, 0] != pairs[:, 1]
        pairs, ewgt = pairs[keep], ewgt[keep]
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
            raise ValueError("edge endpoint out of range")
        if vwgt is None:
            vwgt = np.ones(n, dtype=np.int64)
        if pairs.shape[0] == 0:
            return cls(
                ptr=np.zeros(n + 1, dtype=np.int64),
                adj=np.empty(0, dtype=np.int64),
                vwgt=vwgt,
                ewgt=np.empty(0, dtype=np.int64),
            )
        # merge duplicates on canonical (lo, hi) keys
        lo = pairs.min(axis=1)
        hi = pairs.max(axis=1)
        keys = lo * n + hi
        order = np.argsort(keys, kind="stable")
        keys_s, lo_s, hi_s, w_s = keys[order], lo[order], hi[order], ewgt[order]
        first = np.r_[True, keys_s[1:] != keys_s[:-1]]
        starts = np.flatnonzero(first)
        wsum = np.add.reduceat(w_s, starts) if starts.size else np.empty(0, np.int64)
        ulo, uhi = lo_s[first], hi_s[first]
        # symmetrize
        src = np.concatenate([ulo, uhi])
        dst = np.concatenate([uhi, ulo])
        ww = np.concatenate([wsum, wsum])
        order2 = np.lexsort((dst, src))
        src, dst, ww = src[order2], dst[order2], ww[order2]
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(ptr, src + 1, 1)
        np.cumsum(ptr, out=ptr)
        return cls(ptr=ptr, adj=dst, vwgt=vwgt, ewgt=ww)

    def with_vwgt(self, vwgt: np.ndarray) -> "Graph":
        """Same topology, new vertex weights (adaption updates Wcomp)."""
        vwgt = np.asarray(vwgt, dtype=np.int64)
        if vwgt.shape[0] != self.n:
            raise ValueError(f"expected {self.n} weights, got {vwgt.shape[0]}")
        return Graph(ptr=self.ptr, adj=self.adj, vwgt=vwgt, ewgt=self.ewgt)
