"""Spectral and inertial bisection baselines.

Classic pre-multilevel partitioners, included as comparison points for the
multilevel method (and because the dynamic-load-balancing literature the
paper cites benchmarks against them):

* **spectral bisection** — split at the weighted median of the Fiedler
  vector (second eigenvector of the graph Laplacian);
* **inertial bisection** — split at the weighted median along the
  principal axis of the vertex coordinates.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .graph import Graph

__all__ = ["spectral_bisect", "inertial_bisect"]


def _weighted_median_split(values: np.ndarray, vwgt: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    cw = np.cumsum(vwgt[order])
    half = cw[-1] / 2.0
    split = int(np.searchsorted(cw, half, side="left")) + 1
    split = min(max(split, 1), values.shape[0] - 1)
    side = np.zeros(values.shape[0], dtype=np.int64)
    side[order[split:]] = 1
    return side


def spectral_bisect(graph: Graph, seed: int = 0) -> np.ndarray:
    """Fiedler-vector bisection balanced by vertex weight.

    Uses LOBPCG/Lanczos on the (edge-weighted) Laplacian; falls back to a
    dense eigensolve for very small graphs.
    """
    n = graph.n
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.ptr))
    W = sp.coo_matrix(
        (graph.ewgt.astype(np.float64), (src, graph.adj)), shape=(n, n)
    ).tocsr()
    deg = np.asarray(W.sum(axis=1)).ravel()
    L = sp.diags(deg) - W
    if n <= 64:
        vals, vecs = np.linalg.eigh(L.toarray())
        fiedler = vecs[:, 1]
    else:
        rng = np.random.default_rng(seed)
        # deflate the constant nullvector and take the smallest remaining
        vals, vecs = spla.eigsh(
            L, k=2, sigma=-1e-8, which="LM",
            v0=rng.standard_normal(n),
        )
        order = np.argsort(vals)
        fiedler = vecs[:, order[1]]
    return _weighted_median_split(fiedler, graph.vwgt.astype(np.float64))


def inertial_bisect(points: np.ndarray, vwgt: np.ndarray) -> np.ndarray:
    """Bisection along the principal inertia axis of weighted points."""
    points = np.asarray(points, dtype=np.float64)
    vwgt = np.asarray(vwgt, dtype=np.float64)
    if points.shape[0] != vwgt.shape[0]:
        raise ValueError("points and vwgt must align")
    if points.shape[0] < 2:
        return np.zeros(points.shape[0], dtype=np.int64)
    mean = np.average(points, axis=0, weights=vwgt)
    centred = (points - mean) * np.sqrt(vwgt)[:, None]
    _u, _s, vt = np.linalg.svd(centred, full_matrices=False)
    axis = vt[0]
    return _weighted_median_split(points @ axis, vwgt)
