"""Execution-time model of the *parallel* multilevel repartitioner.

The paper runs an alpha version of parallel MeTiS and observes (§5, Fig. 6)
that repartitioning time depends essentially on the initial problem size
(the dual graph never grows), is nearly flat in P, and has a shallow
minimum around P ≈ 16 for their 60,968-vertex dual graph: with few
processors each holds a large share of the work; with many, communication
(graph-coloring rounds, boundary exchanges) dominates.

We run our multilevel partitioner serially for *quality* and charge its
parallel *time* through this model:

    T(P) = t_work · C_work · n / P          (local multilevel work)
         + t_setup · C_msg · P              (per-round neighbour/gather traffic)
         + t_setup · C_log · log2(P)        (reduction/synchronisation tree)

The minimum sits at P* = sqrt(C_work·n·t_work / (C_msg·t_setup)); the
default constants put P* ≈ 16 for n ≈ 61k on the SP2 model, matching the
paper's observation.
"""

from __future__ import annotations

import math

from repro.parallel.machine import MachineModel, SP2_1997

__all__ = ["partition_time"]

#: Multilevel work per dual-graph vertex (≈ levels × passes per level).
C_WORK = 30.0
#: Per-processor communication rounds coefficient.
C_MSG = 172.0
#: Synchronisation-tree coefficient.
C_LOG = 40.0


def partition_time(
    n: int,
    p: int,
    machine: MachineModel = SP2_1997,
    c_work: float = C_WORK,
    c_msg: float = C_MSG,
    c_log: float = C_LOG,
) -> float:
    """Modelled wall-clock seconds for a parallel k-way (re)partitioning
    of an ``n``-vertex dual graph on ``p`` processors."""
    if n < 0 or p < 1:
        raise ValueError(f"need n >= 0 and p >= 1, got n={n}, p={p}")
    local = machine.t_work * c_work * n / p
    rounds = machine.t_setup * c_msg * p
    tree = machine.t_setup * c_log * math.log2(p) if p > 1 else 0.0
    return local + rounds + tree
