"""Boundary refinement: Fiduccia–Mattheyses for bisections and greedy
boundary refinement for k-way partitions (paper §4.2: "a combination of
boundary greedy and Kernighan-Lin refinement").

Each refiner ships two implementations selected by :mod:`repro.kernels`:
the optimized default (scalar inner loops on plain Python lists, with
incremental gain maintenance between FM passes) and the straightforward
reference (``*_reference``).  They are bit-identical by construction —
same move sequence, same IEEE-double balance arithmetic — which
``tests/kernels`` verifies on every graph family we partition.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.kernels import reference_enabled

from .graph import Graph

__all__ = [
    "fm_bisection_refine",
    "fm_bisection_refine_reference",
    "kway_greedy_refine",
    "kway_greedy_refine_reference",
]


def _gains_bisection(graph: Graph, side: np.ndarray) -> np.ndarray:
    """FM gain of moving each vertex to the other side (ext - int weight)."""
    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.ptr))
    ext = side[src] != side[graph.adj]
    g = np.zeros(graph.n, dtype=np.int64)
    np.add.at(g, src, np.where(ext, graph.ewgt, -graph.ewgt))
    return g


def _gains_subset(graph: Graph, side: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """FM gains of ``vertices`` only (the incremental inter-pass update)."""
    starts = graph.ptr[vertices]
    counts = graph.ptr[vertices + 1] - starts
    total = int(counts.sum())
    g = np.zeros(vertices.shape[0], dtype=np.int64)
    if total == 0:
        return g
    offsets = np.cumsum(counts) - counts
    eidx = np.repeat(starts - offsets, counts) + np.arange(total)
    owner = np.repeat(np.arange(vertices.shape[0]), counts)
    ext = side[vertices][owner] != side[graph.adj[eidx]]
    np.add.at(g, owner, np.where(ext, graph.ewgt[eidx], -graph.ewgt[eidx]))
    return g


def fm_bisection_refine(
    graph: Graph,
    side: np.ndarray,
    target0: float,
    ub: float = 1.05,
    max_passes: int = 4,
) -> np.ndarray:
    """Refine a bisection with FM passes (hill-climbing + rollback).

    ``target0`` is side 0's intended share of the total vertex weight; a
    move is admissible while the receiving side stays within ``ub`` times
    its target.  Each pass moves every vertex at most once, keeps the best
    prefix of the move sequence (by cut, ties by balance), and rolls back
    past it.  Negative-gain moves are explored until no improvement has
    been seen for a while, which lets FM climb out of local minima.

    Between passes only the gains of moved vertices and their neighbours
    are recomputed (a move — kept or rolled back — can only have disturbed
    its own neighbourhood's cached gains); everything stays on plain
    Python scalars inside the pass to keep the per-move cost flat.
    """
    if reference_enabled():
        return fm_bisection_refine_reference(graph, side, target0, ub, max_passes)
    side_np = np.array(side, dtype=np.int64)
    n = graph.n
    total = graph.total_vwgt()
    caps = (ub * (target0 * total), ub * ((1.0 - target0) * total))
    vwgt_np = graph.vwgt
    w = [
        float(vwgt_np[side_np == 0].sum()),
        float(vwgt_np[side_np == 1].sum()),
    ]
    stall_limit = max(50, n // 4)

    ptr = graph.ptr.tolist()
    adj = graph.adj.tolist()
    ewgt = graph.ewgt.tolist()
    vwgt = vwgt_np.tolist()
    side_l = side_np.tolist()
    fill_caps = (max(caps[0], 1e-12), max(caps[1], 1e-12))

    gain_np = _gains_bisection(graph, side_np)
    touched: list[int] | None = None  # moves of the previous pass
    for _ in range(max_passes):
        if touched:
            side_np = np.asarray(side_l, dtype=np.int64)
            moved = np.asarray(touched, dtype=np.int64)
            starts = graph.ptr[moved]
            counts = graph.ptr[moved + 1] - starts
            offsets = np.cumsum(counts) - counts
            eidx = np.repeat(starts - offsets, counts) + np.arange(
                int(counts.sum())
            )
            aff = np.unique(np.concatenate([moved, graph.adj[eidx]]))
            gain_np[aff] = _gains_subset(graph, side_np, aff)
        gain = gain_np.tolist()
        locked = bytearray(n)
        heaps: list[list[tuple[int, int]]] = [[], []]
        for v in range(n):
            heaps[side_l[v]].append((-gain[v], v))
        heapq.heapify(heaps[0])
        heapq.heapify(heaps[1])
        moves: list[int] = []
        cum = 0
        best_cum = 0
        best_len = 0
        since_best = 0
        while since_best <= stall_limit:
            # best admissible move across both sides: higher gain wins,
            # ties go to the currently more overweight side (side 0 on a
            # full tie, matching the reference's stable sort)
            best_v = -1
            best_s = 0
            best_g = 0
            best_fill = 0.0
            for s in (0, 1):
                heap = heaps[s]
                t = 1 - s
                cap_t = caps[t]
                w_t = w[t]
                while heap:
                    negg, v = heap[0]
                    if locked[v] or side_l[v] != s or -negg != gain[v]:
                        heapq.heappop(heap)  # stale
                        continue
                    if w_t + vwgt[v] > cap_t:
                        heapq.heappop(heap)  # would break balance; drop
                        continue
                    g = -negg
                    fill = w[s] / fill_caps[s]
                    if best_v < 0 or g > best_g or (g == best_g and fill > best_fill):
                        best_v, best_s, best_g, best_fill = v, s, g, fill
                    break
            if best_v < 0:
                break
            s = best_s
            v = best_v
            heapq.heappop(heaps[s])
            cum += gain[v]
            wv = vwgt[v]
            w[s] -= wv
            w[1 - s] += wv
            sv = 1 - s
            side_l[v] = sv
            locked[v] = 1
            moves.append(v)
            for i in range(ptr[v], ptr[v + 1]):
                u = adj[i]
                if locked[u]:
                    continue
                # side_l[v] is already flipped: if u now shares v's side the
                # edge went external->internal (gain drops), else the reverse
                ew = ewgt[i]
                gu = gain[u] + (-2 * ew if side_l[u] == sv else 2 * ew)
                gain[u] = gu
                heapq.heappush(heaps[side_l[u]], (-gu, u))
            if cum > best_cum:
                best_cum = cum
                best_len = len(moves)
                since_best = 0
            else:
                since_best += 1
        for v in moves[best_len:]:  # rollback past the best prefix
            s = side_l[v]
            wv = vwgt[v]
            w[s] -= wv
            w[1 - s] += wv
            side_l[v] = 1 - s
        touched = moves
        if best_cum <= 0:
            break
    return np.asarray(side_l, dtype=np.int64)


def fm_bisection_refine_reference(
    graph: Graph,
    side: np.ndarray,
    target0: float,
    ub: float = 1.05,
    max_passes: int = 4,
) -> np.ndarray:
    """Reference FM: full gain rebuild per pass, numpy scalars throughout."""
    side = np.array(side, dtype=np.int64)
    n = graph.n
    total = graph.total_vwgt()
    targets = np.array([target0 * total, (1.0 - target0) * total])
    caps = ub * targets
    w = np.array(
        [graph.vwgt[side == 0].sum(), graph.vwgt[side == 1].sum()], dtype=np.float64
    )
    stall_limit = max(50, n // 4)

    for _ in range(max_passes):
        gain = _gains_bisection(graph, side)
        locked = np.zeros(n, dtype=bool)
        heaps: list[list[tuple[int, int]]] = [[], []]
        for v in range(n):
            heapq.heappush(heaps[side[v]], (-int(gain[v]), v))
        moves: list[int] = []
        cum = 0
        best_cum = 0
        best_len = 0
        since_best = 0
        while since_best <= stall_limit:
            v = _best_feasible(heaps, side, gain, locked, w, caps, graph)
            if v is None:
                break
            s = int(side[v])
            cum += int(gain[v])
            w[s] -= graph.vwgt[v]
            w[1 - s] += graph.vwgt[v]
            side[v] = 1 - s
            locked[v] = True
            moves.append(v)
            for u, ew in zip(graph.neighbors(v), graph.edge_weights(v)):
                if locked[u]:
                    continue
                # side[v] is already flipped: if u now shares v's side the
                # edge went external->internal (gain drops), else the reverse
                gain[u] += -2 * ew if side[u] == side[v] else 2 * ew
                heapq.heappush(heaps[side[u]], (-int(gain[u]), int(u)))
            if cum > best_cum:
                best_cum = cum
                best_len = len(moves)
                since_best = 0
            else:
                since_best += 1
        for v in moves[best_len:]:  # rollback past the best prefix
            s = int(side[v])
            w[s] -= graph.vwgt[v]
            w[1 - s] += graph.vwgt[v]
            side[v] = 1 - s
        if best_cum <= 0:
            break
    return side


def _best_feasible(heaps, side, gain, locked, w, caps, graph):
    """Pick the best admissible move across both sides.

    Feasibility: the receiving side must stay under its cap.  Among
    feasible candidates the higher gain wins; ties go to the side that is
    currently more overweight (drives toward balance).
    """
    cands = []
    for s in (0, 1):
        heap = heaps[s]
        while heap:
            negg, v = heap[0]
            if locked[v] or side[v] != s or -negg != gain[v]:
                heapq.heappop(heap)  # stale
                continue
            if w[1 - s] + graph.vwgt[v] > caps[1 - s]:
                heapq.heappop(heap)  # would break balance; drop this pass
                continue
            cands.append((int(-negg), float(w[s] / max(caps[s], 1e-12)), s, int(v)))
            break
    if not cands:
        return None
    cands.sort(key=lambda c: (-c[0], -c[1]))
    _, _, s, v = cands[0]
    heapq.heappop(heaps[s])
    return v


def kway_greedy_refine(
    graph: Graph,
    part: np.ndarray,
    k: int,
    ub: float = 1.05,
    max_passes: int = 4,
    balance_only: bool = False,
) -> np.ndarray:
    """Greedy boundary refinement of a k-way partition.

    Boundary vertices move to the neighbouring partition with the largest
    positive gain, provided the destination stays within ``ub`` times the
    average load; overweight partitions may also shed vertices at zero or
    negative gain.  With ``balance_only=True`` cut-improving moves between
    balanced partitions are suppressed — the mode the seeded repartitioner
    uses to keep data movement minimal.
    """
    if reference_enabled():
        return kway_greedy_refine_reference(
            graph, part, k, ub, max_passes, balance_only
        )
    part_np = np.array(part, dtype=np.int64)
    total = graph.total_vwgt()
    cap = ub * (total / k)
    loads = np.bincount(
        part_np, weights=graph.vwgt.astype(np.float64), minlength=k
    ).tolist()
    ptr = graph.ptr.tolist()
    adj = graph.adj.tolist()
    ewgt = graph.ewgt.tolist()
    vwgt = graph.vwgt.tolist()
    part_l = part_np.tolist()
    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.ptr))
    adj_np = graph.adj
    neg_inf = float("-inf")

    for _ in range(max_passes):
        moved = 0
        part_arr = np.asarray(part_l, dtype=np.int64)
        boundary = np.unique(src[part_arr[src] != part_arr[adj_np]]).tolist()
        for v in boundary:
            s = part_l[v]
            conn: dict[int, int] = {}
            for i in range(ptr[v], ptr[v + 1]):
                pu = part_l[adj[i]]
                conn[pu] = conn.get(pu, 0) + ewgt[i]
            internal = conn.get(s, 0)
            overweight = loads[s] > cap
            wv = vwgt[v]
            best_t = -1
            best_gain = neg_inf
            for t in sorted(conn):
                if t == s:
                    continue
                if loads[t] + wv > cap:
                    continue
                g = conn[t] - internal
                if g > best_gain:
                    best_t, best_gain = t, g
            if best_t < 0:
                continue
            improves_cut = best_gain > 0 and not balance_only
            sheds_overload = overweight and loads[best_t] + wv < loads[s]
            if improves_cut or sheds_overload:
                loads[s] -= wv
                loads[best_t] += wv
                part_l[v] = best_t
                moved += 1
        if moved == 0:
            break
    return np.asarray(part_l, dtype=np.int64)


def kway_greedy_refine_reference(
    graph: Graph,
    part: np.ndarray,
    k: int,
    ub: float = 1.05,
    max_passes: int = 4,
    balance_only: bool = False,
) -> np.ndarray:
    """Reference k-way greedy refinement (numpy indexing per vertex)."""
    part = np.array(part, dtype=np.int64)
    total = graph.total_vwgt()
    target = total / k
    cap = ub * target
    loads = np.bincount(part, weights=graph.vwgt.astype(np.float64), minlength=k)

    for _ in range(max_passes):
        moved = 0
        src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.ptr))
        boundary = np.unique(src[part[src] != part[graph.adj]])
        for v in boundary:
            s = int(part[v])
            conn: dict[int, int] = {}
            for u, ew in zip(graph.neighbors(v), graph.edge_weights(v)):
                pu = int(part[u])
                conn[pu] = conn.get(pu, 0) + int(ew)
            internal = conn.get(s, 0)
            overweight = loads[s] > cap
            best_t, best_gain = -1, -np.inf
            for t, c in sorted(conn.items()):
                if t == s:
                    continue
                if loads[t] + graph.vwgt[v] > cap:
                    continue
                gain = c - internal
                if gain > best_gain:
                    best_t, best_gain = t, gain
            if best_t < 0:
                continue
            improves_cut = best_gain > 0 and not balance_only
            sheds_overload = overweight and loads[best_t] + graph.vwgt[v] < loads[s]
            if improves_cut or sheds_overload:
                loads[s] -= graph.vwgt[v]
                loads[best_t] += graph.vwgt[v]
                part[v] = best_t
                moved += 1
        if moved == 0:
            break
    return part
