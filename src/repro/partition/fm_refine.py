"""Boundary refinement: Fiduccia–Mattheyses for bisections and greedy
boundary refinement for k-way partitions (paper §4.2: "a combination of
boundary greedy and Kernighan-Lin refinement").
"""

from __future__ import annotations

import heapq

import numpy as np

from .graph import Graph

__all__ = ["fm_bisection_refine", "kway_greedy_refine"]


def _gains_bisection(graph: Graph, side: np.ndarray) -> np.ndarray:
    """FM gain of moving each vertex to the other side (ext - int weight)."""
    src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.ptr))
    ext = side[src] != side[graph.adj]
    g = np.zeros(graph.n, dtype=np.int64)
    np.add.at(g, src, np.where(ext, graph.ewgt, -graph.ewgt))
    return g


def fm_bisection_refine(
    graph: Graph,
    side: np.ndarray,
    target0: float,
    ub: float = 1.05,
    max_passes: int = 4,
) -> np.ndarray:
    """Refine a bisection with FM passes (hill-climbing + rollback).

    ``target0`` is side 0's intended share of the total vertex weight; a
    move is admissible while the receiving side stays within ``ub`` times
    its target.  Each pass moves every vertex at most once, keeps the best
    prefix of the move sequence (by cut, ties by balance), and rolls back
    past it.  Negative-gain moves are explored until no improvement has
    been seen for a while, which lets FM climb out of local minima.
    """
    side = np.array(side, dtype=np.int64)
    n = graph.n
    total = graph.total_vwgt()
    targets = np.array([target0 * total, (1.0 - target0) * total])
    caps = ub * targets
    w = np.array(
        [graph.vwgt[side == 0].sum(), graph.vwgt[side == 1].sum()], dtype=np.float64
    )
    stall_limit = max(50, n // 4)

    for _ in range(max_passes):
        gain = _gains_bisection(graph, side)
        locked = np.zeros(n, dtype=bool)
        heaps: list[list[tuple[int, int]]] = [[], []]
        for v in range(n):
            heapq.heappush(heaps[side[v]], (-int(gain[v]), v))
        moves: list[int] = []
        cum = 0
        best_cum = 0
        best_len = 0
        since_best = 0
        while since_best <= stall_limit:
            v = _best_feasible(heaps, side, gain, locked, w, caps, graph)
            if v is None:
                break
            s = int(side[v])
            cum += int(gain[v])
            w[s] -= graph.vwgt[v]
            w[1 - s] += graph.vwgt[v]
            side[v] = 1 - s
            locked[v] = True
            moves.append(v)
            for u, ew in zip(graph.neighbors(v), graph.edge_weights(v)):
                if locked[u]:
                    continue
                # side[v] is already flipped: if u now shares v's side the
                # edge went external->internal (gain drops), else the reverse
                gain[u] += -2 * ew if side[u] == side[v] else 2 * ew
                heapq.heappush(heaps[side[u]], (-int(gain[u]), int(u)))
            if cum > best_cum:
                best_cum = cum
                best_len = len(moves)
                since_best = 0
            else:
                since_best += 1
        for v in moves[best_len:]:  # rollback past the best prefix
            s = int(side[v])
            w[s] -= graph.vwgt[v]
            w[1 - s] += graph.vwgt[v]
            side[v] = 1 - s
        if best_cum <= 0:
            break
    return side


def _best_feasible(heaps, side, gain, locked, w, caps, graph):
    """Pick the best admissible move across both sides.

    Feasibility: the receiving side must stay under its cap.  Among
    feasible candidates the higher gain wins; ties go to the side that is
    currently more overweight (drives toward balance).
    """
    cands = []
    for s in (0, 1):
        heap = heaps[s]
        while heap:
            negg, v = heap[0]
            if locked[v] or side[v] != s or -negg != gain[v]:
                heapq.heappop(heap)  # stale
                continue
            if w[1 - s] + graph.vwgt[v] > caps[1 - s]:
                heapq.heappop(heap)  # would break balance; drop this pass
                continue
            cands.append((int(-negg), float(w[s] / max(caps[s], 1e-12)), s, int(v)))
            break
    if not cands:
        return None
    cands.sort(key=lambda c: (-c[0], -c[1]))
    _, _, s, v = cands[0]
    heapq.heappop(heaps[s])
    return v


def kway_greedy_refine(
    graph: Graph,
    part: np.ndarray,
    k: int,
    ub: float = 1.05,
    max_passes: int = 4,
    balance_only: bool = False,
) -> np.ndarray:
    """Greedy boundary refinement of a k-way partition.

    Boundary vertices move to the neighbouring partition with the largest
    positive gain, provided the destination stays within ``ub`` times the
    average load; overweight partitions may also shed vertices at zero or
    negative gain.  With ``balance_only=True`` cut-improving moves between
    balanced partitions are suppressed — the mode the seeded repartitioner
    uses to keep data movement minimal.
    """
    part = np.array(part, dtype=np.int64)
    total = graph.total_vwgt()
    target = total / k
    cap = ub * target
    loads = np.bincount(part, weights=graph.vwgt.astype(np.float64), minlength=k)

    for _ in range(max_passes):
        moved = 0
        src = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.ptr))
        boundary = np.unique(src[part[src] != part[graph.adj]])
        for v in boundary:
            s = int(part[v])
            conn: dict[int, int] = {}
            for u, ew in zip(graph.neighbors(v), graph.edge_weights(v)):
                pu = int(part[u])
                conn[pu] = conn.get(pu, 0) + int(ew)
            internal = conn.get(s, 0)
            overweight = loads[s] > cap
            best_t, best_gain = -1, -np.inf
            for t, c in sorted(conn.items()):
                if t == s:
                    continue
                if loads[t] + graph.vwgt[v] > cap:
                    continue
                gain = c - internal
                if gain > best_gain:
                    best_t, best_gain = t, gain
            if best_t < 0:
                continue
            improves_cut = best_gain > 0 and not balance_only
            sheds_overload = overweight and loads[best_t] + graph.vwgt[v] < loads[s]
            if improves_cut or sheds_overload:
                loads[s] -= graph.vwgt[v]
                loads[best_t] += graph.vwgt[v]
                part[v] = best_t
                moved += 1
        if moved == 0:
            break
    return part
