"""Multilevel k-way graph partitioning (the MeTiS algorithm family).

Coarsen with heavy-edge matching until the graph is small, bisect the
coarsest graph with greedy graph growing, then uncoarsen while refining
with FM at every level.  k-way partitions come from recursive bisection
with proportional weight splits, followed by a final k-way greedy boundary
refinement.  All randomness flows through an explicit seed.
"""

from __future__ import annotations

import numpy as np

from .contract import contract
from .fm_refine import fm_bisection_refine, kway_greedy_refine
from .graph import Graph
from .initial import greedy_graph_growing
from .matching import heavy_edge_matching

__all__ = ["multilevel_bisect", "multilevel_kway", "MultilevelPartitioner"]

#: Stop coarsening below this many vertices.
_COARSEN_TO = 64
#: Stop coarsening when a level shrinks by less than this factor.
_MIN_SHRINK = 0.95


def multilevel_bisect(
    graph: Graph,
    target0: float,
    seed: int = 0,
    ub: float = 1.05,
) -> np.ndarray:
    """Bisect into sides {0, 1}; side 0 targets ``target0`` of the weight."""
    rng = np.random.default_rng(seed)
    levels: list[tuple[Graph, np.ndarray]] = []
    g = graph
    while g.n > _COARSEN_TO:
        match = heavy_edge_matching(g, rng)
        coarse, cmap = contract(g, match)
        if coarse.n > _MIN_SHRINK * g.n:
            break
        levels.append((g, cmap))
        g = coarse
    side = greedy_graph_growing(g, target0, rng)
    side = fm_bisection_refine(g, side, target0, ub=ub)
    for fine, cmap in reversed(levels):
        side = side[cmap]
        side = fm_bisection_refine(fine, side, target0, ub=ub)
    return side


def multilevel_kway(
    graph: Graph,
    k: int,
    seed: int = 0,
    ub: float = 1.05,
) -> np.ndarray:
    """Partition into ``k`` parts via recursive bisection + k-way refine."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    part = np.zeros(graph.n, dtype=np.int64)
    _recurse(graph, np.arange(graph.n, dtype=np.int64), k, 0, seed, ub, part)
    if k > 1:
        part = kway_greedy_refine(graph, part, k, ub=ub)
    return part


def _recurse(
    graph: Graph,
    vertices: np.ndarray,
    k: int,
    offset: int,
    seed: int,
    ub: float,
    out: np.ndarray,
) -> None:
    if k == 1:
        out[vertices] = offset
        return
    k0 = (k + 1) // 2
    sub = _subgraph(graph, vertices)
    side = multilevel_bisect(sub, target0=k0 / k, seed=seed, ub=ub)
    left = vertices[side == 0]
    right = vertices[side == 1]
    _recurse(graph, left, k0, offset, seed * 2 + 1, ub, out)
    _recurse(graph, right, k - k0, offset + k0, seed * 2 + 2, ub, out)


def _subgraph(graph: Graph, vertices: np.ndarray) -> Graph:
    """Induced subgraph with vertices renumbered 0..len(vertices)-1."""
    n = graph.n
    local = np.full(n, -1, dtype=np.int64)
    local[vertices] = np.arange(vertices.shape[0])
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.ptr))
    sel = (local[src] >= 0) & (local[graph.adj] >= 0)
    half = sel & (src < graph.adj)
    pairs = np.column_stack([local[src[half]], local[graph.adj[half]]])
    return Graph.from_pairs(
        pairs, vertices.shape[0], vwgt=graph.vwgt[vertices], ewgt=graph.ewgt[half]
    )


class MultilevelPartitioner:
    """Facade used by the load balancer (paper: "any partitioning algorithm
    could be used, as long as it is fast and delivers reasonably balanced
    partitions based on the new weights")."""

    def __init__(self, ub: float = 1.05, seed: int = 0):
        self.ub = ub
        self.seed = seed

    def partition(self, graph: Graph, k: int) -> np.ndarray:
        """Fresh k-way partition of ``graph``."""
        return multilevel_kway(graph, k, seed=self.seed, ub=self.ub)
