"""Seeded repartitioning — the parallel-MeTiS mode the paper relies on.

Paper §4.2: "An additional benefit of the algorithm is the potential
reduction in remapping cost since parallel MeTiS, unlike the serial
version, uses the previous partition as the initial guess for the
repartitioning."

We reproduce that behaviour: coarsen with heavy-edge matching *restricted
to vertices of the same old partition* (so the old partition projects
exactly onto every coarse level), install the old partition on the coarsest
graph, rebalance it there with k-way greedy refinement, and refine on the
way back up.  The result is balanced under the new weights while staying
close to the old partition, which is what keeps the similarity matrix
diagonal-heavy and the remap volume low.
"""

from __future__ import annotations

import numpy as np

from repro.obs import current_tracer, maybe_phase

from .contract import contract
from .fm_refine import kway_greedy_refine
from .graph import Graph
from .matching import heavy_edge_matching
from .multilevel import multilevel_kway

__all__ = ["repartition"]

_COARSEN_TO = 256
_MIN_SHRINK = 0.95


def repartition(
    graph: Graph,
    k: int,
    old_part: np.ndarray,
    seed: int = 0,
    ub: float = 1.05,
    tracer=None,
) -> np.ndarray:
    """k-way partition balanced under ``graph.vwgt``, biased toward
    ``old_part`` to reduce data movement.

    With a :class:`repro.obs.Tracer` (passed or ambient), the coarsen /
    rebalance / uncoarsen stages are recorded as wall-clock spans (the
    *virtual* partitioning time is modelled separately, by
    :func:`repro.partition.parallel_model.partition_time`).
    """
    tracer = tracer if tracer is not None else current_tracer()
    old_part = np.asarray(old_part, dtype=np.int64)
    if old_part.shape != (graph.n,):
        raise ValueError(f"old_part must have shape ({graph.n},)")
    if old_part.size and (old_part.min() < 0 or old_part.max() >= k):
        raise ValueError("old_part labels must be in [0, k)")
    if k == 1:
        return np.zeros(graph.n, dtype=np.int64)
    if _max_over(graph, old_part, k) <= ub + 1e-9:
        # already balanced under the new weights: moving nothing is the
        # cheapest remap of all (the framework's evaluation step would not
        # normally even call us in this case)
        return old_part.copy()

    rng = np.random.default_rng(seed)
    levels: list[tuple[Graph, np.ndarray]] = []  # (fine graph, fine->coarse map)
    g = graph
    part = old_part
    with maybe_phase(tracer, "repartition.coarsen", n_fine=graph.n) as sp:
        while g.n > max(_COARSEN_TO, 8 * k):
            match = heavy_edge_matching(g, rng, allowed=part)
            coarse, cmap = contract(g, match)
            if coarse.n > _MIN_SHRINK * g.n:
                break
            levels.append((g, cmap))
            # matching never crosses partitions, so the projection is exact
            cpart = np.zeros(coarse.n, dtype=np.int64)
            cpart[cmap] = part
            g, part = coarse, cpart
        if sp is not None:
            sp.attrs.update(levels=len(levels), n_coarse=g.n)

    # rebalance on the coarsest graph, then refine on the way back up;
    # balance_only keeps cut-improving (but data-moving) churn out
    old_coarse = part
    with maybe_phase(tracer, "repartition.rebalance") as sp:
        part = kway_greedy_refine(g, part, k, ub=ub, max_passes=8,
                                  balance_only=True)
        fallback = _max_over(g, part, k) > ub + 1e-9
        if fallback:
            # the old partition is too skewed for local moves to fix: fall
            # back to a fresh partition of the coarse graph (loses some
            # locality but stays cheap — the coarse graph is small), then
            # relabel its parts for maximum weighted agreement with the old
            # partition so the fallback still moves as little data as
            # possible
            part = multilevel_kway(g, k, seed=seed, ub=ub)
            part = _relabel_for_agreement(g, old_coarse, part, k)
        if sp is not None:
            sp.attrs["fallback"] = fallback
    with maybe_phase(tracer, "repartition.uncoarsen", levels=len(levels)):
        for fine, cmap in reversed(levels):
            part = part[cmap]
            part = kway_greedy_refine(fine, part, k, ub=ub, balance_only=True)
    return part


def _max_over(g: Graph, part: np.ndarray, k: int) -> float:
    loads = np.bincount(part, weights=g.vwgt.astype(np.float64), minlength=k)
    return float(loads.max() / (g.total_vwgt() / k))


def _relabel_for_agreement(
    g: Graph, old: np.ndarray, new: np.ndarray, k: int
) -> np.ndarray:
    """Permute ``new``'s labels to maximise weight staying on its old label
    (a k×k assignment problem — the same MWBG structure the processor
    reassignment solves downstream, applied here at the label level)."""
    from scipy.optimize import linear_sum_assignment

    overlap = np.zeros((k, k), dtype=np.int64)
    np.add.at(overlap, (new, old), g.vwgt)
    rows, cols = linear_sum_assignment(overlap, maximize=True)
    perm = np.empty(k, dtype=np.int64)
    perm[rows] = cols
    return perm[new]
