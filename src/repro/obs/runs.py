"""Cross-run history store and regression analytics (``.repro_runs/``).

Every traced run so far has been an island: a JSONL file compared, at
best, against the single committed bench baseline.  This module gives
runs a durable, queryable history — the substrate the ROADMAP's
trace-driven adaptive control reads its policy evidence from:

:class:`RunStore`
    A directory (default ``.repro_runs/``, override with the
    ``REPRO_RUNS_DIR`` environment variable) holding one small JSON
    document per indexed run (schema ``repro.runs/v1``): creation time,
    kind (``trace`` or ``bench``), label, a hash of the run
    configuration, the backends involved, and a flat map of headline
    metrics (makespan, wall seconds, per-phase virtual seconds, balance
    quality, transport totals, resource peaks).  One-file-per-run keeps
    concurrent writers (CI shards, parallel local runs) conflict-free.

:func:`summarize_trace`
    Extract the headline-metric map from a trace file or in-memory
    tracer — phase virtual seconds, critical-path makespan, measured
    wall makespans, partition quality, remap volume, transport counters,
    and ``repro.resource.*`` peaks.

:func:`compare_records` / :func:`find_regressions`
    Metric-by-metric deltas between two runs, and regression flagging of
    a candidate run against a *rolling baseline* — the median of the
    most recent matching runs (same kind, label, and config hash) —
    with a lower-is-better convention everywhere except explicit
    higher-is-better names (speedups).

Surfaced as ``repro runs list|show|compare|regress|index``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field

__all__ = [
    "RUNS_SCHEMA",
    "RunRecord",
    "RunStore",
    "Regression",
    "compare_records",
    "default_store_dir",
    "find_regressions",
    "format_compare",
    "format_record",
    "format_regressions",
    "format_runs_list",
    "hash_config",
    "summarize_trace",
]

RUNS_SCHEMA = "repro.runs/v1"

#: Metric names where larger is better; everything else is treated as a
#: cost (smaller is better) for regression flagging.
HIGHER_IS_BETTER = ("speedup", "ops_per_second", "throughput")

#: Default rolling-baseline window (#prior matching runs) for ``regress``.
DEFAULT_WINDOW = 5

#: Default allowed cost factor vs the rolling baseline before flagging.
DEFAULT_THRESHOLD = 1.15

#: Absolute slack (in the metric's own unit) added to the relative gate
#: so timer noise on near-zero costs does not trip it.
DEFAULT_ABS_SLACK = 1e-9


def default_store_dir() -> str:
    """The store root: ``$REPRO_RUNS_DIR`` or ``.repro_runs`` in the cwd."""
    return os.environ.get("REPRO_RUNS_DIR") or os.path.join(
        os.getcwd(), ".repro_runs"
    )


def hash_config(config: dict | None) -> str:
    """Stable short hash of a run-configuration mapping."""
    text = json.dumps(config or {}, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


@dataclass
class RunRecord:
    """One indexed run (document schema ``repro.runs/v1``)."""

    id: str
    created: str  #: ISO-8601 UTC
    kind: str  #: "trace" | "bench"
    label: str
    config: dict = field(default_factory=dict)
    config_hash: str = ""
    source: str = ""  #: trace path / bench name the record came from
    backends: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)  #: flat name -> number

    def __post_init__(self):
        if not self.config_hash:
            self.config_hash = hash_config(self.config)

    @property
    def baseline_key(self) -> tuple:
        """Records with the same key form one rolling-baseline series."""
        return (self.kind, self.label, self.config_hash)

    def to_json(self) -> dict:
        return {
            "schema": RUNS_SCHEMA,
            "id": self.id,
            "created": self.created,
            "kind": self.kind,
            "label": self.label,
            "config": self.config,
            "config_hash": self.config_hash,
            "source": self.source,
            "backends": list(self.backends),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_json(cls, doc: dict) -> "RunRecord":
        if doc.get("schema") != RUNS_SCHEMA:
            raise ValueError(
                f"unsupported run-record schema {doc.get('schema')!r} "
                f"(expected {RUNS_SCHEMA!r})"
            )
        return cls(
            id=doc["id"],
            created=doc["created"],
            kind=doc["kind"],
            label=doc["label"],
            config=doc.get("config", {}),
            config_hash=doc.get("config_hash", ""),
            source=doc.get("source", ""),
            backends=list(doc.get("backends", ())),
            metrics=dict(doc.get("metrics", {})),
        )


class RunStore:
    """One-JSON-file-per-run store under ``root`` (created lazily)."""

    def __init__(self, root: str | None = None):
        self.root = root or default_store_dir()

    def _path(self, run_id: str) -> str:
        return os.path.join(self.root, f"{run_id}.json")

    def add(self, kind: str, label: str, metrics: dict,
            config: dict | None = None, source: str = "",
            backends=(), run_id: str | None = None) -> RunRecord:
        """Index one run; returns the stored record (id auto-allocated)."""
        if run_id is None:
            stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
            salt = hashlib.sha256(os.urandom(16)).hexdigest()[:8]
            run_id = f"{stamp}-{salt}"
        rec = RunRecord(
            id=run_id,
            created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            kind=kind,
            label=label,
            config=dict(config or {}),
            config_hash="",
            source=source,
            backends=sorted(backends),
            metrics={k: float(v) for k, v in metrics.items()
                     if isinstance(v, (int, float))
                     and not isinstance(v, bool)},
        )
        os.makedirs(self.root, exist_ok=True)
        tmp = self._path(run_id) + f".tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(rec.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self._path(run_id))
        return rec

    def get(self, run_id: str) -> RunRecord:
        """Load one record by exact id or unique prefix."""
        path = self._path(run_id)
        if not os.path.exists(path):
            matches = [r for r in self.ids() if r.startswith(run_id)]
            if len(matches) == 1:
                path = self._path(matches[0])
            elif matches:
                raise KeyError(
                    f"run id prefix {run_id!r} is ambiguous: {matches}"
                )
            else:
                raise KeyError(f"no run {run_id!r} in {self.root}")
        with open(path) as fh:
            return RunRecord.from_json(json.load(fh))

    def ids(self) -> list[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            n[:-5] for n in names
            if n.endswith(".json") and not n.startswith(".")
        )

    def records(self) -> list[RunRecord]:
        """Every readable record, oldest first (id order == time order)."""
        out = []
        for run_id in self.ids():
            try:
                out.append(self.get(run_id))
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                continue  # skip foreign/corrupt files, never fail a listing
        return out

    def __len__(self) -> int:
        return len(self.ids())


# --- trace summarization -----------------------------------------------------


def summarize_trace(tracer) -> tuple[dict, list[str]]:
    """Headline ``(metrics, backends)`` for one tracer (or trace path).

    The metric map is flat name -> float: total/per-phase virtual
    seconds, host wall seconds, virtual and measured critical-path
    makespans, partition quality, remap volume, transport totals, and
    resource peaks — exactly the columns cross-run comparison needs.
    """
    from .causal import analyze
    from .resource import resource_peaks

    if isinstance(tracer, (str, os.PathLike)):
        from .export import read_jsonl

        tracer = read_jsonl(tracer)

    metrics: dict[str, float] = {}
    roots = [s for s in tracer.spans if s.parent is None and not s.open]
    if roots:
        metrics["wall_seconds"] = sum(s.wall_duration for s in roots)
        metrics["virtual_seconds"] = sum(s.v_duration for s in roots)
    phase_v: dict[str, float] = {}
    for s in tracer.spans:
        if s.parent is not None and not s.open:
            phase_v[s.name] = phase_v.get(s.name, 0.0) + s.v_duration
    for name, v in sorted(phase_v.items()):
        metrics[f"phase.{name}.virtual_seconds"] = v

    analysis = analyze(tracer)
    if analysis.runs or analysis.supersteps:
        metrics["makespan"] = analysis.makespan
    wall = analyze(tracer, clock="wall")
    if wall.runs:
        metrics["wall_makespan"] = wall.makespan

    reg = tracer.metrics
    for name, labels, key in (
        ("repro.partition.imbalance", {"when": "before"}, "imbalance_before"),
        ("repro.partition.imbalance", {"when": "after"}, "imbalance_after"),
    ):
        v = reg.max_value(name, labels)
        if v is not None:
            metrics[key] = v
    for name, key in (
        ("repro.remap.elements_moved", "remap_elements_moved"),
        ("repro.remap.words_moved", "remap_words_moved"),
        ("repro.transport.bytes_zero_copy", "transport_bytes_zero_copy"),
        ("repro.transport.bytes_pickled", "transport_bytes_pickled"),
        ("repro.transport.spills", "transport_spills"),
    ):
        if reg.max_value(name) is not None:
            # rank-labelled transport series double the unlabelled totals,
            # so only sum the rank-free samples when both exist
            total = sum(
                float(s.value) for s in reg.samples()
                if s.name == name and s.rank is None
            ) or reg.total(name)
            metrics[key] = total

    peaks = resource_peaks(getattr(tracer, "resource_samples", ()))
    if peaks:
        metrics["peak_rss_bytes"] = max(
            d["peak_rss_bytes"] for d in peaks.values()
        )
        metrics["cpu_seconds"] = sum(
            d["cpu_seconds"] for d in peaks.values()
        )
        metrics["gc_collections"] = sum(
            d["gc_collections"] for d in peaks.values()
        )
        metrics["resource_samples"] = sum(
            d["samples"] for d in peaks.values()
        )

    backends = sorted({
        s.labels_dict["backend"]
        for s in reg.samples()
        if s.name.startswith("repro.backend.") and "backend" in s.labels_dict
    })
    return metrics, backends


def index_trace(store: RunStore, trace_path, label: str = "",
                config: dict | None = None,
                extra_metrics: dict | None = None) -> RunRecord:
    """Summarize ``trace_path`` and add it to ``store`` as a trace run."""
    metrics, backends = summarize_trace(trace_path)
    if extra_metrics:
        metrics.update(extra_metrics)
    return store.add(
        kind="trace",
        label=label or os.path.basename(str(trace_path)),
        metrics=metrics,
        config=config,
        source=str(trace_path),
        backends=backends,
    )


def index_bench_results(store: RunStore, doc: dict,
                        profile: str | None = None) -> list[RunRecord]:
    """Index each bench of a ``repro.bench/v1`` results doc as one record.

    Called by ``scripts/bench_suite.py`` after every run, so the perf
    trajectory accrues automatically from CI and local runs.
    """
    out = []
    for prof, run in doc.get("runs", {}).items():
        if profile is not None and prof != profile:
            continue
        for name, rec in run.get("benches", {}).items():
            metrics = {
                "wall_seconds": rec["wall_seconds"],
                "virtual_seconds": sum(
                    rec.get("virtual_phase_seconds", {}).values()
                ),
            }
            for phase, v in rec.get("virtual_phase_seconds", {}).items():
                metrics[f"phase.{phase}.virtual_seconds"] = v
            for k, v in rec.get("metrics", {}).items():
                metrics[k] = v
            cp = rec.get("critical_path", {})
            if "makespan" in cp:
                metrics["makespan"] = cp["makespan"]
            if "speedup_vs_reference" in rec:
                metrics["speedup_vs_reference"] = rec["speedup_vs_reference"]
            out.append(store.add(
                kind="bench",
                label=f"{prof}/{name}",
                metrics=metrics,
                config={
                    "profile": prof,
                    "resolution": run.get("resolution"),
                    "machine_model": doc.get("suite", {}).get("machine_model"),
                    "seed": doc.get("suite", {}).get("seed"),
                    "bench": name,
                },
                source=name,
            ))
    return out


# --- analytics ---------------------------------------------------------------


def _is_higher_better(name: str) -> bool:
    return any(tok in name for tok in HIGHER_IS_BETTER)


def compare_records(a: RunRecord, b: RunRecord) -> list[tuple]:
    """``(metric, a_value, b_value, delta, pct)`` rows over both metric maps.

    ``delta = b - a``; ``pct`` is the relative change vs ``a`` (None for
    a zero/missing base).  Metrics present on only one side get a None
    on the missing side.
    """
    rows = []
    for name in sorted(set(a.metrics) | set(b.metrics)):
        va, vb = a.metrics.get(name), b.metrics.get(name)
        if va is None or vb is None:
            rows.append((name, va, vb, None, None))
            continue
        delta = vb - va
        pct = (delta / abs(va) * 100.0) if va else None
        rows.append((name, va, vb, delta, pct))
    return rows


@dataclass(frozen=True)
class Regression:
    """One metric of a candidate run flagged against its rolling baseline."""

    metric: str
    candidate: float
    baseline: float  #: rolling-baseline value (median over the window)
    factor: float  #: candidate/baseline for costs, inverted for benefits
    window: int  #: number of baseline runs the median was taken over


def _median(values: list[float]) -> float:
    vs = sorted(values)
    n = len(vs)
    mid = n // 2
    return vs[mid] if n % 2 else (vs[mid - 1] + vs[mid]) / 2.0


def find_regressions(
    history: list[RunRecord],
    candidate: RunRecord,
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
    abs_slack: float = DEFAULT_ABS_SLACK,
) -> tuple[list[Regression], int]:
    """Flag candidate metrics that regressed vs the rolling baseline.

    The baseline pool is the most recent ``window`` runs in ``history``
    sharing the candidate's :attr:`RunRecord.baseline_key` (the candidate
    itself is excluded); each metric's baseline is the median over the
    pool.  A cost metric regresses when ``candidate > baseline *
    threshold + abs_slack``; a higher-is-better metric (speedups) when
    ``candidate < baseline / threshold``.  Returns ``(flags, pool_size)``
    — a zero pool means there is nothing to compare against yet.
    """
    pool = [
        r for r in history
        if r.baseline_key == candidate.baseline_key and r.id != candidate.id
        and r.created <= candidate.created
    ][-window:]
    if not pool:
        return [], 0
    flags: list[Regression] = []
    for name, value in sorted(candidate.metrics.items()):
        base_values = [r.metrics[name] for r in pool if name in r.metrics]
        if not base_values:
            continue
        base = _median(base_values)
        if _is_higher_better(name):
            if base > 0 and value < base / threshold:
                flags.append(Regression(
                    metric=name, candidate=value, baseline=base,
                    factor=base / value if value else float("inf"),
                    window=len(base_values),
                ))
        elif value > base * threshold + abs_slack:
            flags.append(Regression(
                metric=name, candidate=value, baseline=base,
                factor=value / base if base else float("inf"),
                window=len(base_values),
            ))
    flags.sort(key=lambda f: -f.factor)
    return flags, len(pool)


# --- formatting --------------------------------------------------------------


def _fmt_v(v) -> str:
    if v is None:
        return "-"
    a = abs(v)
    if a >= 1e6 or (a > 0 and a < 1e-4):
        return f"{v:.4g}"
    return f"{v:.6g}"


def format_runs_list(records: list[RunRecord]) -> str:
    """One row per stored run, newest last."""
    if not records:
        return "no runs stored (index one with `repro runs index <trace>`)"
    lines = [
        f"{'id':<24s} {'kind':<6s} {'label':<28s} {'backends':<16s} "
        f"{'makespan':>10s} {'wall s':>9s}"
    ]
    for r in records:
        makespan = r.metrics.get("makespan")
        wall = r.metrics.get("wall_seconds")
        lines.append(
            f"{r.id:<24.24s} {r.kind:<6.6s} {r.label:<28.28s} "
            f"{','.join(r.backends) or '-':<16.16s} "
            f"{_fmt_v(makespan):>10s} {_fmt_v(wall):>9s}"
        )
    lines.append(f"{len(records)} run(s)")
    return "\n".join(lines)


def format_record(rec: RunRecord) -> str:
    lines = [
        f"run {rec.id}",
        f"  created:  {rec.created}",
        f"  kind:     {rec.kind}",
        f"  label:    {rec.label}",
        f"  source:   {rec.source or '-'}",
        f"  backends: {', '.join(rec.backends) or '-'}",
        f"  config:   {json.dumps(rec.config, sort_keys=True)} "
        f"(hash {rec.config_hash})",
        "  metrics:",
    ]
    for name, v in sorted(rec.metrics.items()):
        lines.append(f"    {name:<40s} {_fmt_v(v):>14s}")
    return "\n".join(lines)


def format_compare(a: RunRecord, b: RunRecord) -> str:
    rows = compare_records(a, b)
    lines = [
        f"comparing {a.id} (A) vs {b.id} (B):",
        f"  {'metric':<40s} {'A':>14s} {'B':>14s} {'delta':>14s} {'pct':>8s}",
    ]
    for name, va, vb, delta, pct in rows:
        pct_s = f"{pct:+7.1f}%" if pct is not None else "       -"
        lines.append(
            f"  {name:<40.40s} {_fmt_v(va):>14s} {_fmt_v(vb):>14s} "
            f"{_fmt_v(delta):>14s} {pct_s:>8s}"
        )
    return "\n".join(lines)


def format_regressions(candidate: RunRecord, flags: list[Regression],
                       pool: int, threshold: float) -> str:
    head = (f"regression check for {candidate.id} "
            f"({candidate.kind} {candidate.label!r}) against a rolling "
            f"baseline of {pool} matching run(s), threshold "
            f"{threshold:.2f}x:")
    if pool == 0:
        return (head + "\n  no matching prior runs "
                "(same kind, label, and config hash) — nothing to compare")
    if not flags:
        return head + "\n  OK: no metric regressed"
    lines = [head]
    for f in flags:
        lines.append(
            f"  REGRESSION {f.metric}: {_fmt_v(f.candidate)} vs baseline "
            f"{_fmt_v(f.baseline)} ({f.factor:.2f}x worse, "
            f"median of {f.window})"
        )
    return "\n".join(lines)
